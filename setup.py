"""Setuptools entry point.

The canonical metadata lives in ``pyproject.toml``; this file exists so that
``pip install -e .`` works on minimal offline environments whose setuptools
predates native PEP 660 editable-wheel support (no ``wheel`` package
installed).  Keep the two in sync.
"""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    description=(
        "Raster join: rasterization-based real-time spatial aggregation "
        "over arbitrary polygons (reproduction of Tzirita Zacharatou et "
        "al., VLDB 2017)"
    ),
    python_requires=">=3.10",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    install_requires=["numpy>=1.23", "scipy>=1.9"],
    extras_require={"dev": ["pytest>=7", "pytest-benchmark>=4", "hypothesis>=6"]},
)
