"""Warm-restart workloads: the artifact store's cross-process payoff.

PR 1's `QuerySession` made repeated queries warm within one process;
the artifact store makes them warm *across* processes.  This benchmark
measures the accurate engine at the paper's default 1024^2 canvas in
three states over the same 500k-point / NYC-neighborhood query:

* **cold** — fresh session, empty store: full build (triangulation,
  grid index, boundary masks, coverage);
* **memory-warm** — same session, second run: in-memory prepared hit;
* **disk-warm** — a *literally fresh Python process* pointed at the
  populated store directory: its first execution loads the artifact
  instead of rebuilding.

Asserted claims (the PR's acceptance criteria):

* the fresh process reports a store hit and zero triangulation /
  index-build time — nothing polygon-side was rebuilt;
* disk-warm execution is >= 3x faster than the cold build;
* all three states produce bit-identical values.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, ArtifactStore, QuerySession, Sum

POINT_ROWS = 500_000
RESOLUTION = 1024

_CHILD_SCRIPT = r"""
import json, sys, time
import numpy as np
from repro import AccurateRasterJoin, ArtifactStore, PointDataset, QuerySession, Sum
from repro.data import generate_neighborhoods

inputs, store_dir, values_out = sys.argv[1], sys.argv[2], sys.argv[3]
data = np.load(inputs)
points = PointDataset(data["x"], data["y"], {"fare": data["fare"]})
neighborhoods = generate_neighborhoods(seed=0)

# Rebuild-from-scratch reference first (no session, nothing persisted):
# it doubles as this process's warmup, so the load-vs-rebuild ratio below
# compares steady-state work, not interpreter cold-start noise.
rebuild_engine = AccurateRasterJoin(resolution=%(resolution)d)
start = time.perf_counter()
rebuilt = rebuild_engine.execute(points, neighborhoods, aggregate=Sum("fare"))
rebuild_s = time.perf_counter() - start

session = QuerySession(store=ArtifactStore(store_dir))
engine = AccurateRasterJoin(resolution=%(resolution)d, session=session)
start = time.perf_counter()
result = engine.execute(points, neighborhoods, aggregate=Sum("fare"))
wall_s = time.perf_counter() - start
np.save(values_out, result.values)
print(json.dumps({
    "wall_s": wall_s,
    "rebuild_s": rebuild_s,
    "rebuild_matches": bool(np.array_equal(result.values, rebuilt.values)),
    "prepared_store_hits": result.stats.prepared_store_hits,
    "prepared_hits": result.stats.prepared_hits,
    "triangulation_s": result.stats.triangulation_s,
    "index_build_s": result.stats.index_build_s,
    "store_load_s": session.store.load_s,
}))
"""


def _table():
    return harness.table(
        "warm_restart",
        "Cold build vs in-memory warm vs disk-warm fresh process "
        "(accurate @1024^2)",
        ["state", "process", "wall_s", "speedup_vs_cold", "store_hits",
         "triangulation_s"],
    )


def _timed_execute(engine, points, polygons, aggregate):
    start = time.perf_counter()
    result = engine.execute(points, polygons, aggregate=aggregate)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="warm-restart")
def test_warm_restart_smoke(benchmark, taxi, neighborhoods, tmp_path_factory):
    """The acceptance scenario: a restarted process answers warm."""
    points = taxi.head(POINT_ROWS)
    store_dir = tmp_path_factory.mktemp("artifact-store")
    session = QuerySession(store=ArtifactStore(store_dir))
    engine = AccurateRasterJoin(resolution=RESOLUTION, session=session)
    aggregate = Sum("fare")

    # Round 1: cold — builds and (write-through) persists everything.
    cold, cold_s = _timed_execute(engine, points, neighborhoods, aggregate)
    assert cold.stats.prepared_misses == 1
    assert cold.stats.prepared_store_hits == 0
    assert len(session.store) >= 1
    _table().add_row("cold", "first", cold_s, 1.0, 0,
                     cold.stats.triangulation_s)

    # Round 2: in-memory warm (the PR 1 baseline).
    warm, warm_s = _timed_execute(engine, points, neighborhoods, aggregate)
    assert warm.stats.prepared_hits == 1
    assert np.array_equal(warm.values, cold.values)
    _table().add_row("memory-warm", "first", warm_s, cold_s / warm_s, 0,
                     warm.stats.triangulation_s)

    # Round 3: disk-warm — a literally fresh interpreter over the same
    # store directory.  The child regenerates the (deterministic)
    # polygons and reads the exact point columns from a scratch file.
    scratch = tmp_path_factory.mktemp("warm-restart-io")
    inputs = scratch / "points.npz"
    np.savez(inputs, x=points.column("x"), y=points.column("y"),
             fare=points.column("fare"))
    values_out = scratch / "child_values.npy"
    src_root = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_root}{os.pathsep}" + env.get("PYTHONPATH", "")
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT % {"resolution": RESOLUTION},
         str(inputs), str(store_dir), str(values_out)],
        capture_output=True, text=True, env=env,
    )
    assert child.returncode == 0, (
        f"fresh-process run failed:\n{child.stderr}"
    )
    report = json.loads(child.stdout.strip().splitlines()[-1])
    disk_s = report["wall_s"]
    rebuild_s = report["rebuild_s"]
    _table().add_row("cold-rebuild", "fresh", rebuild_s,
                     cold_s / rebuild_s, 0, 0.0)
    _table().add_row("disk-warm", "fresh", disk_s, cold_s / disk_s,
                     report["prepared_store_hits"],
                     report["triangulation_s"])

    # The fresh process answered from the store, not from a rebuild...
    assert report["prepared_store_hits"] == 1
    assert report["prepared_hits"] == 0
    assert report["triangulation_s"] == 0.0
    assert report["index_build_s"] == 0.0
    # ...bit-identically (vs both the parent's cold run and the fresh
    # process's own from-scratch rebuild)...
    assert report["rebuild_matches"]
    child_values = np.load(values_out)
    assert np.array_equal(child_values, cold.values)
    # ...and >= 3x faster than a cold build in the same fresh process
    # (load beats rebuild; same-process comparison keeps interpreter
    # cold-start noise out of the ratio).
    assert disk_s * 3.0 <= rebuild_s, (
        f"disk-warm {disk_s:.3f}s not 3x faster than cold rebuild "
        f"{rebuild_s:.3f}s (store load took {report['store_load_s']:.3f}s)"
    )

    benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods, aggregate=aggregate),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="warm-restart")
def test_demotion_tiers_round_trip(benchmark, taxi, neighborhoods,
                                   tmp_path_factory):
    """Byte-budget demotion end to end at benchmark scale: a session too
    small for the full artifact still answers repeats warm (partial in
    memory + full on disk), bit-identically."""
    points = taxi.head(POINT_ROWS // 2)
    store_dir = tmp_path_factory.mktemp("artifact-store-tiers")
    baseline = AccurateRasterJoin(resolution=RESOLUTION).execute(
        points, neighborhoods, aggregate=Sum("fare")
    )

    # Probe the artifact's full size, then budget below it.
    probe = QuerySession(store=False)
    AccurateRasterJoin(resolution=RESOLUTION, session=probe).execute(
        points, neighborhoods, aggregate=Sum("fare")
    )
    full_bytes = probe.nbytes

    session = QuerySession(
        byte_budget=max(1, full_bytes // 4),
        store=ArtifactStore(store_dir),
    )
    engine = AccurateRasterJoin(resolution=RESOLUTION, session=session)
    first = engine.execute(points, neighborhoods, aggregate=Sum("fare"))
    assert session.partial_demotions >= 1 or session.demotions >= 1
    assert session.nbytes <= session.byte_budget
    second, second_s = _timed_execute(engine, points, neighborhoods,
                                      Sum("fare"))
    assert np.array_equal(first.values, baseline.values)
    assert np.array_equal(second.values, baseline.values)
    assert second.stats.triangulation_s == 0.0  # triangles stayed hot
    _table().add_row("budgeted-warm", "first", second_s, 0.0,
                     second.stats.prepared_store_hits,
                     second.stats.triangulation_s)

    benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods, aggregate=Sum("fare")),
        rounds=1, iterations=1,
    )
