"""Incremental single-polygon edits: the PR 5 acceptance benchmark.

The paper's headline interactive workload is rezoning: an analyst drags
one district boundary and expects sub-second re-aggregation.  With
per-polygon prepared artifacts, editing 1 of 64 polygons delta-derives
the new artifact from the warm one — only the edited polygon
re-triangulates, re-outlines, and re-rasterizes — instead of
cold-rebuilding all 64.

Asserted claims (the PR's acceptance criteria), accurate engine at the
paper's default 1024^2 canvas over a 64-zone Voronoi partition:

* the edited query reports the delta path with **rebuild counter == 1**;
* the incremental re-execution is **>= 5x faster** than a cold rebuild
  of the edited set;
* results are **bit-identical** to the cold rebuild — in memory, after
  the artifact is demoted to the store and loaded back, and in a
  *literally fresh Python process* that replays the store's patch
  journal.

Writes the machine-readable trajectory record ``BENCH_incremental.json``.
"""

import json
import os
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.data import generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT

POINT_ROWS = 200_000
RESOLUTION = 1024
#: Candidate-grid resolution for the boundary PIP path: 256^2 is ample
#: for 64 zones (the 1024^2 default is sized for thousands of polygons)
#: and keeps the CSR compose out of the interactive loop.
GRID_RESOLUTION = 256
ZONES = 64

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_incremental.json"

_CHILD_SCRIPT = r"""
import json, sys
import numpy as np
from repro import AccurateRasterJoin, ArtifactStore, PointDataset, QuerySession, Sum

inputs, store_dir, polygons_file, values_out = sys.argv[1:5]
data = np.load(inputs)
points = PointDataset(data["x"], data["y"], {"fare": data["fare"]})

rings = np.load(polygons_file, allow_pickle=False)
from repro import Polygon, PolygonSet
counts = rings["counts"]
flat = rings["vertices"]
polys, cursor = [], 0
for count in counts:
    polys.append(Polygon(flat[cursor:cursor + int(count)]))
    cursor += int(count)
zones = PolygonSet(polys)

session = QuerySession(store=ArtifactStore(store_dir))
engine = AccurateRasterJoin(resolution=%(resolution)d,
                            grid_resolution=%(grid_resolution)d,
                            session=session)
result = engine.execute(points, zones, aggregate=Sum("fare"))
np.save(values_out, result.values)
print(json.dumps({
    "prepared_store_hits": result.stats.prepared_store_hits,
    "patch_loads": session.store.patch_loads,
    "triangulation_s": result.stats.triangulation_s,
    "index_build_s": result.stats.index_build_s,
}))
"""


def _edit_one_vertex(zones: PolygonSet, iteration: int = 0) -> PolygonSet:
    """Move one vertex of one frame-interior zone (the rezoning stroke)."""
    box = zones.bbox
    polys = list(zones)
    interior = [
        i for i, p in enumerate(polys)
        if p.bbox.xmin > box.xmin and p.bbox.xmax < box.xmax
        and p.bbox.ymin > box.ymin and p.bbox.ymax < box.ymax
    ]
    pid = interior[iteration % len(interior)]
    ring = polys[pid].exterior.copy()
    center = ring.mean(axis=0)
    vid = iteration % len(ring)
    ring[vid] = ring[vid] + (center - ring[vid]) * 0.3
    polys[pid] = Polygon(ring)
    edited = PolygonSet(polys, names=zones.names)
    assert edited.bbox.xmin == box.xmin and edited.bbox.ymax == box.ymax
    return edited


def _dump_polygons(zones: PolygonSet, path) -> None:
    rings = [p.exterior for p in zones]
    np.savez(
        path,
        counts=np.asarray([len(r) for r in rings]),
        vertices=np.concatenate(rings),
    )


def _table():
    return harness.table(
        "incremental_edit",
        "1-of-64-polygon edit: incremental vs cold rebuild "
        "(accurate @1024^2)",
        ["state", "wall_s", "speedup_vs_cold", "polygons_rebuilt",
         "bit_identical"],
    )


@pytest.mark.benchmark(group="incremental-edit")
def test_incremental_edit_smoke(benchmark, taxi, tmp_path_factory):
    points = taxi.head(POINT_ROWS)
    zones = generate_voronoi_regions(ZONES, NYC_REGION_EXTENT, seed=7)
    edited = _edit_one_vertex(zones)
    aggregate = Sum("fare")
    table = _table()
    record = {"benchmark": "incremental_edit", "zones": ZONES,
              "resolution": RESOLUTION, "points": POINT_ROWS, "cells": {}}

    store_dir = tmp_path_factory.mktemp("incremental-store")
    session = QuerySession(store=ArtifactStore(store_dir))
    engine = AccurateRasterJoin(resolution=RESOLUTION,
                                grid_resolution=GRID_RESOLUTION,
                                session=session)

    # Warm the base zoning (the state before the analyst's stroke).
    start = time.perf_counter()
    engine.execute(points, zones, aggregate=aggregate)
    base_s = time.perf_counter() - start
    table.add_row("base-build", base_s, 0.0, ZONES, True)

    # Cold reference for the *edited* set: a fresh session rebuilds all.
    start = time.perf_counter()
    cold = AccurateRasterJoin(
        resolution=RESOLUTION, grid_resolution=GRID_RESOLUTION,
    ).execute(
        points, edited, aggregate=aggregate
    )
    cold_s = time.perf_counter() - start
    table.add_row("cold-rebuild", cold_s, 1.0, ZONES, True)
    record["cells"]["cold"] = {"wall_s": cold_s, "polygons_rebuilt": ZONES}

    # The incremental stroke: delta derivation, 1 polygon rebuilds.
    # A second, independent stroke is timed too and the best taken —
    # each is a fresh 1-polygon derivation, so this only damps timer
    # noise (the benchmark hosts are small), never reuses the edit.
    start = time.perf_counter()
    inc = engine.execute(points, edited, aggregate=aggregate)
    inc_s = time.perf_counter() - start
    second_edit = _edit_one_vertex(zones, iteration=1)
    start = time.perf_counter()
    inc2 = engine.execute(points, second_edit, aggregate=aggregate)
    inc_s = min(inc_s, time.perf_counter() - start)
    assert inc2.stats.extra["prepared"] == "delta"
    rebuilt = inc.stats.extra.get("polygons_rebuilt")
    identical = bool(np.array_equal(inc.values, cold.values))
    table.add_row("incremental", inc_s, cold_s / inc_s, rebuilt, identical)
    record["cells"]["incremental"] = {
        "wall_s": inc_s,
        "speedup_vs_cold": cold_s / inc_s,
        "polygons_rebuilt": rebuilt,
        "bit_identical": identical,
    }
    assert inc.stats.extra["prepared"] == "delta"
    assert rebuilt == 1, f"rebuild counter is {rebuilt}, want 1"
    assert identical, "incremental result diverged from cold rebuild"

    # After store demotion: drop the memory tier, reload from disk.
    session.invalidate()
    start = time.perf_counter()
    demoted = engine.execute(points, edited, aggregate=aggregate)
    demoted_s = time.perf_counter() - start
    demoted_identical = bool(np.array_equal(demoted.values, cold.values))
    assert demoted.stats.prepared_store_hits == 1
    assert demoted_identical, "store round trip diverged"
    table.add_row("store-demoted", demoted_s, cold_s / demoted_s, 0,
                  demoted_identical)
    record["cells"]["store_demoted"] = {
        "wall_s": demoted_s, "bit_identical": demoted_identical,
    }

    # Fresh-process journal replay: a new interpreter over the same
    # store answers the *edited* key by replaying the patch journal.
    scratch = tmp_path_factory.mktemp("incremental-io")
    inputs = scratch / "points.npz"
    np.savez(inputs, x=points.column("x"), y=points.column("y"),
             fare=points.column("fare"))
    polygons_file = scratch / "edited_zones.npz"
    _dump_polygons(edited, polygons_file)
    values_out = scratch / "child_values.npy"
    src_root = Path(__file__).resolve().parent.parent / "src"
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{src_root}{os.pathsep}" + env.get("PYTHONPATH", "")
    child = subprocess.run(
        [sys.executable, "-c", _CHILD_SCRIPT % {"resolution": RESOLUTION,
                          "grid_resolution": GRID_RESOLUTION},
         str(inputs), str(store_dir), str(polygons_file), str(values_out)],
        capture_output=True, text=True, env=env,
    )
    assert child.returncode == 0, f"fresh-process run failed:\n{child.stderr}"
    report = json.loads(child.stdout.strip().splitlines()[-1])
    child_values = np.load(values_out)
    replay_identical = bool(np.array_equal(child_values, cold.values))
    assert report["prepared_store_hits"] == 1
    assert report["patch_loads"] == 1, "edited key did not replay the journal"
    assert report["triangulation_s"] == 0.0
    assert report["index_build_s"] == 0.0
    assert replay_identical, "journal replay diverged"
    table.add_row("journal-replay", 0.0, 0.0, 0, replay_identical)
    record["cells"]["journal_replay"] = {
        "patch_loads": report["patch_loads"],
        "bit_identical": replay_identical,
    }

    # Acceptance bar: >= 5x faster than the cold rebuild.
    speedup = cold_s / inc_s
    record["speedup_incremental_vs_cold"] = speedup
    record["metrics"] = harness.metrics_snapshot()
    RESULT_JSON.write_text(json.dumps(record, indent=2, sort_keys=True))
    assert speedup >= 5.0, (
        f"incremental edit is only {speedup:.1f}x faster than a cold "
        f"rebuild (need >= 5x): incremental {inc_s:.3f}s vs cold "
        f"{cold_s:.3f}s"
    )

    benchmark.pedantic(
        lambda: engine.execute(points, edited, aggregate=aggregate),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="incremental-edit")
def test_edit_loop_stays_incremental(benchmark, taxi):
    """Five successive strokes: every iteration stays on the delta path
    with exactly one rebuild, and the partition cache (single-tile here,
    so trivially) never perturbs results."""
    points = taxi.head(POINT_ROWS // 2)
    zones = generate_voronoi_regions(ZONES, NYC_REGION_EXTENT, seed=11)
    session = QuerySession(store=False)
    engine = AccurateRasterJoin(resolution=RESOLUTION,
                                grid_resolution=GRID_RESOLUTION,
                                session=session)
    engine.execute(points, zones, aggregate=Sum("fare"))
    current = zones
    for step in range(5):
        current = _edit_one_vertex(current, iteration=step)
        result = engine.execute(points, current, aggregate=Sum("fare"))
        assert result.stats.extra["prepared"] == "delta"
        assert result.stats.extra["polygons_rebuilt"] == 1
    assert session.delta_hits == 5
    assert session.polygons_rebuilt == 5
    benchmark.pedantic(
        lambda: engine.execute(points, current, aggregate=Sum("fare")),
        rounds=1, iterations=1,
    )
