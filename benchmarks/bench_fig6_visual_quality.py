"""Figure 6: approximate vs accurate visualizations are indistinguishable.

The paper renders the June-2012 taxi heat map over NYC neighborhoods with
the bounded join at ε = 20 m and argues (via just-noticeable-difference
analysis, §7.6) that the result cannot be told apart from the accurate
one: a sequential colormap offers at most 9 perceivable classes, so
differences below 1/9 in normalized value are invisible; the paper
measures < 0.002.

This bench reproduces the whole pipeline — both joins, choropleth
rendering, pixelwise comparison, and the JND verdict — and saves the two
images for eyeballing.
"""

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, Filter
from repro.viz import (
    JND_THRESHOLD,
    jnd_report,
    render_choropleth,
    write_ppm,
)

POINT_COUNT = 1_000_000
EPSILON_M = 20.0

#: The paper filters on a month; our generator's closest slice is a
#: morning-hours filter, which similarly selects ~1/3 of the data.
FILTERS = [Filter("hour", ">=", 7), Filter("hour", "<=", 12)]


def _table():
    return harness.table(
        "fig6",
        "Visual quality of the bounded join (ε = 20 m, JND analysis)",
        ["metric", "value"],
    )


@pytest.mark.benchmark(group="fig6")
def test_fig6_jnd_indistinguishable(benchmark, taxi, neighborhoods):
    points = taxi.head(POINT_COUNT)
    accurate = AccurateRasterJoin(resolution=1024).execute(
        points, neighborhoods, filters=FILTERS
    )
    engine = BoundedRasterJoin(epsilon=EPSILON_M)
    approx = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods, filters=FILTERS),
        rounds=1, iterations=1,
    )

    report = jnd_report(approx.values, accurate.values)
    _table().add_row("jnd threshold (1/9)", JND_THRESHOLD)
    _table().add_row("max normalized difference", report.max_difference)
    _table().add_row("mean normalized difference", report.mean_difference)
    _table().add_row("regions over threshold", report.perceivable_regions)
    _table().add_row("verdict",
                     "indistinguishable" if report.indistinguishable
                     else "PERCEIVABLE")

    harness.RESULTS_DIR.mkdir(exist_ok=True)
    write_ppm(
        harness.RESULTS_DIR / "fig6_approximate.ppm",
        render_choropleth(neighborhoods, approx.values, resolution=512),
    )
    write_ppm(
        harness.RESULTS_DIR / "fig6_accurate.ppm",
        render_choropleth(neighborhoods, accurate.values, resolution=512),
    )

    # The paper's claim, scaled: well under the JND threshold.
    assert report.indistinguishable
    assert report.max_difference < 0.01


@pytest.mark.benchmark(group="fig6")
def test_fig6_pixelwise_image_difference(benchmark, taxi, neighborhoods):
    """Beyond per-region values: compare the actual rendered rasters.
    Identical normalization + rendering path isolates aggregation error."""
    points = taxi.head(POINT_COUNT // 2)
    accurate = AccurateRasterJoin(resolution=1024).execute(points, neighborhoods)
    engine = BoundedRasterJoin(epsilon=EPSILON_M)
    approx = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    img_a = render_choropleth(neighborhoods, accurate.values, resolution=256)
    img_b = render_choropleth(neighborhoods, approx.values, resolution=256)
    diff = np.abs(img_a.astype(np.int16) - img_b.astype(np.int16))
    _table().add_row("max per-channel pixel diff (0-255)", int(diff.max()))
    _table().add_row("mean per-channel pixel diff", float(diff.mean()))
    # 1/9 of the 255-value channel range is ~28; stay well under it.
    assert diff.max() < 28
