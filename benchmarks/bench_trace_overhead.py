"""Tracing-off overhead gate, plus the CI Chrome-trace artifact.

The observability contract: with ``$REPRO_TRACE`` unset, every
``trace.span(...)`` call site must cost one thread-local lookup and one
branch — indistinguishable from uninstrumented code.  This benchmark
measures exactly that delta on a warm 1024^2 accurate query:

* **baseline** — ``trace.span`` monkeypatched to a raw stub that
  returns the shared no-op context manager unconditionally (the closest
  runnable stand-in for "the call sites were never added");
* **instrumented-off** — the real disabled path.

Runs interleave (baseline, instrumented, baseline, instrumented, ...)
so clock drift and cache effects hit both arms equally, and the gate
compares *medians*: relative overhead under **3%**, or — for hosts
where the warm query is so fast the ratio is noise — an absolute delta
under 5 ms.

Also records one *traced* run's span tree as a Chrome ``trace_event``
file under ``benchmarks/results/`` (the CI artifact), and writes the
``BENCH_trace.json`` trajectory record.
"""

import json
import statistics
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, PointDataset, QuerySession
from repro.data import generate_voronoi_regions
from repro.geometry.bbox import BBox
from repro.obs import export, trace

POINT_ROWS = 400_000
RESOLUTION = 1024
ZONES = 32
REPEATS = 7
OVERHEAD_GATE = 0.03
ABS_SLACK_S = 0.005
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_trace.json"
CHROME_TRACE = harness.RESULTS_DIR / "trace_overhead.chrome.json"


def _table():
    return harness.table(
        "trace_overhead",
        "Tracing-off overhead on a warm 1024^2 accurate query",
        ["arm", "median_s", "overhead", "gate"],
    )


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(23)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
    )
    zones = generate_voronoi_regions(ZONES, EXTENT, seed=23)
    return points, zones


def _timed(engine, points, zones):
    start = time.perf_counter()
    result = engine.execute(points, zones)
    return time.perf_counter() - start, result


def test_tracing_off_overhead(monkeypatch, workload):
    points, zones = workload
    monkeypatch.delenv(trace.TRACE_ENV_VAR, raising=False)
    engine = AccurateRasterJoin(
        resolution=RESOLUTION, session=QuerySession()
    )
    noop = trace._NOOP
    real_span = trace.span

    def stub_span(name, **attrs):
        return noop

    # Warm the session (and the CPU caches) before either arm is timed.
    engine.execute(points, zones)

    baseline_s, instrumented_s = [], []
    for _ in range(REPEATS):
        monkeypatch.setattr(trace, "span", stub_span)
        seconds, _ = _timed(engine, points, zones)
        baseline_s.append(seconds)
        monkeypatch.setattr(trace, "span", real_span)
        seconds, result = _timed(engine, points, zones)
        instrumented_s.append(seconds)
    assert result.trace is None  # the env gate really was off

    base = statistics.median(baseline_s)
    instr = statistics.median(instrumented_s)
    overhead = (instr - base) / base
    table = _table()
    table.add_row("span-stub baseline", base, 0.0, "")
    table.add_row("tracing off", instr, overhead, f"<{OVERHEAD_GATE:.0%}")
    assert overhead < OVERHEAD_GATE or (instr - base) < ABS_SLACK_S, (
        f"tracing-off overhead {overhead:.1%} "
        f"(baseline {base:.4f}s, instrumented {instr:.4f}s)"
    )

    # One traced run: the Chrome trace CI artifact + the trajectory record.
    monkeypatch.setenv(trace.TRACE_ENV_VAR, "1")
    traced_seconds, traced = _timed(engine, points, zones)
    assert traced.trace is not None
    harness.RESULTS_DIR.mkdir(exist_ok=True)
    export.write_chrome_trace(traced.trace, str(CHROME_TRACE))

    RESULT_JSON.write_text(json.dumps({
        "benchmark": "trace_overhead",
        "points": POINT_ROWS,
        "resolution": RESOLUTION,
        "zones": ZONES,
        "repeats": REPEATS,
        "cells": {
            "baseline_median_s": base,
            "tracing_off_median_s": instr,
            "overhead": overhead,
            "gate": OVERHEAD_GATE,
            "traced_run_s": traced_seconds,
            "spans_recorded": sum(1 for _ in traced.trace.walk()),
        },
        "metrics": harness.metrics_snapshot(),
    }, indent=2) + "\n")
