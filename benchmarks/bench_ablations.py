"""Ablation benchmarks for the design choices DESIGN.md calls out.

A1  Triangle pass vs scanline fast path for the polygon draw.
A2  Grid resolution for the index join (the paper tuned 1024^2 vs 4096^2).
A3  MBR vs exact cell assignment (the paper's §7.1 CPU-baseline tweak).
A4  Canvas tiling overhead at a fixed total resolution.
A5  Grid index vs STR R-tree probes for the baseline join.
"""

import time

import numpy as np
import pytest

from benchmarks import harness
from repro import BoundedRasterJoin, GPUDevice, IndexJoin
from repro.index.grid import GridIndex
from repro.index.strtree import STRTree

POINT_COUNT = 1_000_000


# ----------------------------------------------------------------------
# A1: raster paths
# ----------------------------------------------------------------------
def _a1_table():
    return harness.table(
        "ablation_a1",
        "Polygon draw pass: per-triangle masks vs whole-polygon scanline",
        ["path", "resolution", "query_s", "identical_results"],
    )


@pytest.mark.benchmark(group="ablation-a1")
@pytest.mark.parametrize("resolution", [1024, 4096])
def test_a1_raster_paths(benchmark, taxi, neighborhoods, resolution):
    points = taxi.head(POINT_COUNT)
    triangle = BoundedRasterJoin(resolution=resolution)
    scanline = BoundedRasterJoin(resolution=resolution, use_scanline=True)

    tri_result = benchmark.pedantic(
        lambda: triangle.execute(points, neighborhoods), rounds=1, iterations=1
    )
    start = time.perf_counter()
    scan_result = scanline.execute(points, neighborhoods)
    scan_s = time.perf_counter() - start

    identical = bool(np.array_equal(tri_result.values, scan_result.values))
    _a1_table().add_row("triangle", resolution, tri_result.stats.query_s, identical)
    _a1_table().add_row("scanline", resolution, scan_s, identical)
    assert identical, "both raster paths must agree bit-for-bit"


# ----------------------------------------------------------------------
# A2: grid resolution
# ----------------------------------------------------------------------
def _a2_table():
    return harness.table(
        "ablation_a2",
        "Index-join grid resolution (build + probe trade-off)",
        ["grid_cells", "build_s", "query_s", "pip_tests"],
    )


@pytest.mark.benchmark(group="ablation-a2")
@pytest.mark.parametrize("resolution", [128, 512, 1024, 4096])
def test_a2_grid_resolution(benchmark, taxi, neighborhoods, resolution):
    points = taxi.head(POINT_COUNT)
    engine = IndexJoin(mode="gpu", grid_resolution=resolution)
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _a2_table().add_row(
        f"{resolution}^2", result.stats.index_build_s,
        result.stats.query_s, result.stats.pip_tests,
    )


# ----------------------------------------------------------------------
# A3: MBR vs exact cell assignment
# ----------------------------------------------------------------------
def _a3_table():
    return harness.table(
        "ablation_a3",
        "Grid assignment: polygon MBR vs exact geometry (paper §7.1)",
        ["assignment", "build_s", "entries", "query_s", "pip_tests"],
    )


@pytest.mark.benchmark(group="ablation-a3")
@pytest.mark.parametrize("assignment", ["mbr", "exact"])
def test_a3_cell_assignment(benchmark, taxi, neighborhoods, assignment):
    points = taxi.head(POINT_COUNT)
    grid = GridIndex(neighborhoods, resolution=1024, assignment=assignment)
    engine = IndexJoin(
        mode="gpu", grid_resolution=1024, grid_assignment=assignment
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _a3_table().add_row(
        assignment, grid.build_seconds, grid.num_entries,
        result.stats.query_s, result.stats.pip_tests,
    )
    benchmark.extra_info["pip_tests"] = result.stats.pip_tests


def test_a3_exact_assignment_reduces_pip_tests(taxi, neighborhoods):
    points = taxi.head(200_000)
    mbr = IndexJoin(mode="gpu", grid_assignment="mbr").execute(
        points, neighborhoods
    )
    exact = IndexJoin(mode="gpu", grid_assignment="exact").execute(
        points, neighborhoods
    )
    assert np.array_equal(mbr.values, exact.values)
    assert exact.stats.pip_tests <= mbr.stats.pip_tests


# ----------------------------------------------------------------------
# A4: tiling overhead
# ----------------------------------------------------------------------
def _a4_table():
    return harness.table(
        "ablation_a4",
        "Canvas tiling overhead at fixed total resolution 4096",
        ["max_fbo_side", "tiles", "query_s"],
    )


@pytest.mark.benchmark(group="ablation-a4")
@pytest.mark.parametrize("max_side", [4096, 2048, 1024])
def test_a4_tiling_overhead(benchmark, taxi, neighborhoods, max_side):
    points = taxi.head(POINT_COUNT)
    engine = BoundedRasterJoin(
        resolution=4096, device=GPUDevice(max_resolution=max_side)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _a4_table().add_row(max_side, result.stats.extra["tiles"],
                        result.stats.query_s)


def test_a4_tiling_result_invariant(taxi, neighborhoods):
    points = taxi.head(200_000)
    single = BoundedRasterJoin(resolution=2048).execute(points, neighborhoods)
    tiled = BoundedRasterJoin(
        resolution=2048, device=GPUDevice(max_resolution=512)
    ).execute(points, neighborhoods)
    assert np.array_equal(single.values, tiled.values)


# ----------------------------------------------------------------------
# A5: grid vs R-tree probes
# ----------------------------------------------------------------------
def _a5_table():
    return harness.table(
        "ablation_a5",
        "Baseline candidate index: uniform grid vs STR R-tree",
        ["index", "build_s", "probe_100k_s"],
    )


@pytest.mark.benchmark(group="ablation-a5")
def test_a5_grid_vs_rtree(benchmark, taxi, neighborhoods):
    points = taxi.head(100_000)
    grid = GridIndex(neighborhoods, resolution=1024)
    tree = STRTree(neighborhoods)

    def probe_grid():
        cells = grid.cell_of_points(points.xs, points.ys)
        return int(
            (grid.cell_start[cells + 1] - grid.cell_start[cells]).sum()
        )

    def probe_tree():
        total = 0
        for x, y in zip(points.xs[:10_000], points.ys[:10_000]):
            total += len(tree.candidates_of_point(x, y))
        return total * 10  # scaled to the same 100k probes

    benchmark.pedantic(probe_grid, rounds=1, iterations=1)
    start = time.perf_counter()
    probe_grid()
    grid_s = time.perf_counter() - start
    start = time.perf_counter()
    probe_tree()
    tree_s = (time.perf_counter() - start) * 10  # 10k sample -> 100k scale

    _a5_table().add_row("uniform grid", grid.build_seconds, grid_s)
    _a5_table().add_row("STR R-tree", tree.build_seconds, tree_s)
    assert grid_s < tree_s, (
        "O(1) grid probes are the reason the paper chose a grid"
    )
