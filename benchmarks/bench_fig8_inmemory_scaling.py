"""Figure 8: scaling with points, data fits in device memory.

Paper panels: (left) speedup over the single-CPU baseline, (right) total
query time vs. input size, for Taxi ⋈ Neighborhoods.  Expected shape:
bounded raster join scales best (it eliminates all PIP tests — its point
pass is a histogram and its polygon pass is independent of N); accurate
performs fewer PIP tests than the index-join baseline; every GPU approach
sits orders of magnitude above the scalar CPU loop.

Substrate note (EXPERIMENTS.md): NumPy's vectorized PIP is relatively
cheaper than divergent per-thread PIP on real GPUs, so the bounded
variant's win over the fused index join emerges at larger N than in the
paper — the crossover is part of the reproduced series.
"""

import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice, IndexJoin

SIZES = [500_000, 1_000_000, 2_000_000, 4_000_000]
EPSILON_M = 10.0  # the paper's default ε for NYC polygons

_cpu_anchor: dict = {}


def _table():
    return harness.table(
        "fig8",
        "In-memory scaling, Taxi ⋈ Neighborhoods (ε = 10 m)",
        ["engine", "points", "query_s", "speedup_vs_single_cpu"],
    )


def _cpu_seconds_per_point(taxi, neighborhoods) -> float:
    if "sec_per_point" not in _cpu_anchor:
        _cpu_anchor["sec_per_point"] = harness.single_cpu_seconds_per_point(
            taxi, neighborhoods
        )
    return _cpu_anchor["sec_per_point"]


def _run(benchmark, engine, points, polygons, label, resident_columns=("x", "y")):
    device = engine.device
    resident = device.make_resident(
        {name: points.column(name) for name in resident_columns}
    )
    try:
        result = benchmark.pedantic(
            lambda: engine.execute(resident, polygons), rounds=1, iterations=1
        )
    finally:
        resident.free()
    assert result.stats.transfer_s == 0.0, "in-memory run must not transfer"
    return result


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("n", SIZES)
def test_fig8_bounded(benchmark, taxi, neighborhoods, n):
    engine = BoundedRasterJoin(epsilon=EPSILON_M, device=GPUDevice())
    result = _run(benchmark, engine, taxi.head(n), neighborhoods, "bounded")
    cpu = _cpu_seconds_per_point(taxi, neighborhoods) * n
    _table().add_row("bounded-raster", n, result.stats.query_s,
                     cpu / result.stats.query_s)
    assert result.stats.pip_tests == 0


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("n", SIZES)
def test_fig8_accurate(benchmark, taxi, neighborhoods, n):
    engine = AccurateRasterJoin(resolution=1024, device=GPUDevice())
    result = _run(benchmark, engine, taxi.head(n), neighborhoods, "accurate")
    cpu = _cpu_seconds_per_point(taxi, neighborhoods) * n
    _table().add_row("accurate-raster", n, result.stats.query_s,
                     cpu / result.stats.query_s)


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("n", SIZES)
def test_fig8_index_join(benchmark, taxi, neighborhoods, n):
    engine = IndexJoin(mode="gpu", grid_resolution=1024, device=GPUDevice())
    result = _run(benchmark, engine, taxi.head(n), neighborhoods, "index")
    cpu = _cpu_seconds_per_point(taxi, neighborhoods) * n
    _table().add_row("index-join-gpu", n, result.stats.query_s,
                     cpu / result.stats.query_s)


@pytest.mark.benchmark(group="fig8")
@pytest.mark.parametrize("n", [50_000, 100_000])
def test_fig8_cpu_baselines(benchmark, taxi, neighborhoods, n):
    """Measured CPU anchors (larger sizes are linear extrapolations —
    the per-point cost is constant, which this test verifies)."""
    points = taxi.head(n)
    single = IndexJoin(mode="cpu", grid_resolution=1024)
    multi = IndexJoin(mode="multicore", grid_resolution=1024, workers=2)

    result = benchmark.pedantic(
        lambda: single.execute(points, neighborhoods), rounds=1, iterations=1
    )
    single_s = result.stats.query_s
    multi_s = multi.execute(points, neighborhoods).stats.query_s
    _table().add_row("index-join-cpu x1", n, single_s, 1.0)
    _table().add_row("index-join-cpu multicore", n, multi_s,
                     single_s / max(multi_s, 1e-12))

    per_point = single_s / n
    anchor = _cpu_seconds_per_point(taxi, neighborhoods)
    assert 0.3 < per_point / anchor < 3.0, (
        "single-CPU cost must stay linear in N for the extrapolated "
        "speedup axis to be meaningful"
    )
