"""Table 1: polygonal data sets and processing costs.

Paper columns: region, #polygons, triangulation time, index creation on
GPU / multi-CPU / single-CPU.  The paper reports milliseconds for the GPU
builds and seconds for the CPU builds; the expected *shape* is
GPU << multi-CPU < single-CPU, with the county set an order of magnitude
costlier than the neighborhoods.
"""

import time

import pytest

from benchmarks import harness
from repro.geometry.triangulate import triangulate_polygon

GRID_RESOLUTION = 1024


def _table():
    return harness.table(
        "table1",
        "Polygonal data sets and processing costs",
        [
            "region",
            "polygons",
            "vertices",
            "triangulation_s",
            "index_gpu_s",
            "index_multicpu_s",
            "index_singlecpu_s",
        ],
    )


def _measure(polygons, label, benchmark):
    def triangulate_all():
        return [triangulate_polygon(p) for p in polygons]

    benchmark.pedantic(triangulate_all, rounds=1, iterations=1)
    start = time.perf_counter()
    triangulate_all()
    tri_s = time.perf_counter() - start

    gpu_s = harness.build_grid_gpu(polygons, GRID_RESOLUTION)
    multi_s = harness.build_grid_multicore(polygons, GRID_RESOLUTION)
    single_s = harness.build_grid_python(polygons, GRID_RESOLUTION)
    _table().add_row(
        label, len(polygons), polygons.total_vertices,
        tri_s, gpu_s, multi_s, single_s,
    )
    benchmark.extra_info.update(
        triangulation_s=tri_s, index_gpu_s=gpu_s,
        index_multicpu_s=multi_s, index_singlecpu_s=single_s,
    )
    assert gpu_s < single_s, "vectorized build must beat the scalar build"


@pytest.mark.benchmark(group="table1")
def test_table1_neighborhoods(benchmark, neighborhoods):
    _measure(neighborhoods, "NYC-like neighborhoods", benchmark)


@pytest.mark.benchmark(group="table1")
def test_table1_counties(benchmark, counties):
    _measure(counties, "US-like counties", benchmark)
