"""Table 2: choice of GPU baseline.

The paper compares its fused Index Join against Zhang et al.'s
materializing join at three input sizes and finds the fused join 2-3x
faster "mainly due to avoiding the materialization of the join result".
The comparator here is :class:`repro.core.materializing.MaterializingJoin`
(point quadtree + MBR filter + materialized candidate pairs + separate
aggregation pass, 16-bit coordinate truncation), per DESIGN.md.
"""

import time

import pytest

from benchmarks import harness
from repro import IndexJoin, MaterializingJoin

#: Scaled from the paper's 57.7M / 111.7M / 168.4M points.
SIZES = [500_000, 1_000_000, 2_000_000]


def _table():
    return harness.table(
        "table2",
        "Choice of GPU baseline (fused Index Join vs Zhang-style)",
        ["points", "zhang_style_s", "index_join_s", "speedup"],
    )


@pytest.mark.benchmark(group="table2")
@pytest.mark.parametrize("n", SIZES)
def test_table2_baseline_choice(benchmark, taxi, neighborhoods, n):
    points = taxi.head(n)
    zhang = MaterializingJoin(truncate_bits=16)
    fused = IndexJoin(mode="gpu", grid_resolution=1024)

    start = time.perf_counter()
    zhang.execute(points, neighborhoods)
    zhang_s = time.perf_counter() - start

    result = benchmark.pedantic(
        lambda: fused.execute(points, neighborhoods), rounds=1, iterations=1
    )
    fused_s = result.stats.query_s

    _table().add_row(n, zhang_s, fused_s, zhang_s / max(fused_s, 1e-12))
    benchmark.extra_info.update(zhang_s=zhang_s, fused_s=fused_s)
    assert fused_s < zhang_s, (
        "the fused index join must beat the materializing comparator"
    )
