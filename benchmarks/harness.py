"""Shared benchmark harness: experiment tables and CPU-baseline helpers.

Every benchmark module registers the rows it measures into a global
:class:`ExperimentTable`; a terminal-summary hook in ``conftest.py`` prints
all tables after the run, reproducing the layout of the paper's tables and
figure series.  Raw rows are also dumped to ``benchmarks/results/*.tsv`` so
EXPERIMENTS.md can quote them.
"""

from __future__ import annotations

import time
from pathlib import Path

import numpy as np

from repro.geometry.polygon import PolygonSet
from repro.index.grid import GridIndex

RESULTS_DIR = Path(__file__).parent / "results"

#: Global registry: experiment id -> ExperimentTable.
_TABLES: dict[str, "ExperimentTable"] = {}


class ExperimentTable:
    """Rows of one paper artifact (a table or a figure's data series)."""

    def __init__(self, experiment_id: str, title: str, columns: list[str]) -> None:
        self.experiment_id = experiment_id
        self.title = title
        self.columns = columns
        self.rows: list[list] = []

    def add_row(self, *values) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"{self.experiment_id}: {len(values)} values for "
                f"{len(self.columns)} columns"
            )
        self.rows.append(list(values))

    # ------------------------------------------------------------------
    def _formatted(self) -> list[list[str]]:
        out = []
        for row in self.rows:
            formatted = []
            for value in row:
                if isinstance(value, float):
                    if value == 0:
                        formatted.append("0")
                    elif abs(value) >= 1000 or abs(value) < 0.001:
                        formatted.append(f"{value:.3g}")
                    else:
                        formatted.append(f"{value:.4f}".rstrip("0").rstrip("."))
                else:
                    formatted.append(str(value))
            out.append(formatted)
        return out

    def render(self) -> str:
        body = self._formatted()
        widths = [
            max(len(self.columns[i]), *(len(r[i]) for r in body), 3)
            if body
            else len(self.columns[i])
            for i in range(len(self.columns))
        ]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        lines.append(
            "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        )
        lines.append("  ".join("-" * w for w in widths))
        for row in body:
            lines.append("  ".join(v.ljust(w) for v, w in zip(row, widths)))
        return "\n".join(lines)

    def dump_tsv(self) -> Path:
        RESULTS_DIR.mkdir(exist_ok=True)
        path = RESULTS_DIR / f"{self.experiment_id}.tsv"
        with open(path, "w") as handle:
            handle.write("\t".join(self.columns) + "\n")
            for row in self._formatted():
                handle.write("\t".join(row) + "\n")
        return path


def table(experiment_id: str, title: str, columns: list[str]) -> ExperimentTable:
    """Get-or-create the table for an experiment id."""
    if experiment_id not in _TABLES:
        _TABLES[experiment_id] = ExperimentTable(experiment_id, title, columns)
    return _TABLES[experiment_id]


def all_tables() -> list[ExperimentTable]:
    return [_TABLES[k] for k in sorted(_TABLES)]


# ----------------------------------------------------------------------
# Metrics snapshots for the BENCH_*.json trajectory records
# ----------------------------------------------------------------------
def metrics_snapshot() -> dict:
    """A JSON-safe dump of the process-wide metrics registry.

    Benchmarks embed this in their ``BENCH_*.json`` records so a
    trajectory point carries not just the headline timings but the work
    the run actually did — cache hit/miss counts, store traffic,
    device-memory high-water marks (see ``docs/observability.md``).
    Call ``repro.obs.metrics.reset()`` at the start of a leg to scope
    the snapshot to that leg.
    """
    from repro.obs import metrics

    return metrics.snapshot()


# ----------------------------------------------------------------------
# CPU grid-index builds for Table 1 (the paper reports GPU / multi-CPU /
# single-CPU index-creation costs separately).
# ----------------------------------------------------------------------
def build_grid_python(polygons: PolygonSet, resolution: int,
                      extent=None) -> float:
    """Single-threaded pure-Python grid build (MBR assignment).

    The C++ single-CPU baseline of Table 1, transliterated: nested loops,
    one cell-list append at a time.  ``extent`` lets parallel callers pin
    the grid geometry while splitting the polygon list.
    """
    extent = extent if extent is not None else polygons.bbox
    cell_w = extent.width / resolution
    cell_h = extent.height / resolution
    start = time.perf_counter()
    # Sparse cell lists: preallocating resolution^2 Python lists would cost
    # more than the build itself and is an artifact of Python, not of the
    # algorithm being measured.
    cells: dict[int, list[int]] = {}
    for pid, poly in enumerate(polygons):
        box = poly.bbox
        x0 = min(max(int((box.xmin - extent.xmin) / cell_w), 0), resolution - 1)
        x1 = min(max(int((box.xmax - extent.xmin) / cell_w), 0), resolution - 1)
        y0 = min(max(int((box.ymin - extent.ymin) / cell_h), 0), resolution - 1)
        y1 = min(max(int((box.ymax - extent.ymin) / cell_h), 0), resolution - 1)
        for gy in range(y0, y1 + 1):
            row = gy * resolution
            for gx in range(x0, x1 + 1):
                cells.setdefault(row + gx, []).append(pid)
    return time.perf_counter() - start


_MULTICORE_STATE: dict = {}


def _build_grid_chunk(args: tuple[int, int]) -> float:
    """Worker: scalar grid build over one slice of the polygon list.

    The polygons arrive via fork-inherited module state, not pickling —
    shipping geometry to workers would swamp the build time being measured.
    """
    lo, hi = args
    polys = _MULTICORE_STATE["polygons"]
    return build_grid_python(
        PolygonSet(polys[lo:hi]),
        _MULTICORE_STATE["resolution"],
        extent=_MULTICORE_STATE["extent"],
    )


def build_grid_multicore(polygons: PolygonSet, resolution: int,
                         workers: int = 2) -> float:
    """Multi-process grid build: polygons partitioned across workers
    (the paper parallelizes the build per polygon)."""
    import multiprocessing as mp

    polys = list(polygons)
    chunk = -(-len(polys) // workers)
    ranges = [
        (i, min(i + chunk, len(polys))) for i in range(0, len(polys), chunk)
    ]
    _MULTICORE_STATE.update(
        polygons=polys, resolution=resolution, extent=polygons.bbox
    )
    try:
        start = time.perf_counter()
        ctx = mp.get_context("fork")
        with ctx.Pool(processes=len(ranges)) as pool:
            pool.map(_build_grid_chunk, ranges)
        return time.perf_counter() - start
    finally:
        _MULTICORE_STATE.clear()


def build_grid_gpu(polygons: PolygonSet, resolution: int) -> float:
    """The vectorized two-pass build (the paper's on-the-fly GPU build)."""
    return GridIndex(polygons, resolution=resolution).build_seconds


# ----------------------------------------------------------------------
# CPU query-time anchor for speedup plots
# ----------------------------------------------------------------------
def single_cpu_seconds_per_point(points, polygons, sample: int = 20_000) -> float:
    """Measured single-CPU join cost per point (linear in N, so one sample
    anchors the whole speedup axis; EXPERIMENTS.md documents the
    extrapolation)."""
    from repro.core.index_join import IndexJoin

    subset = points.head(min(sample, len(points)))
    engine = IndexJoin(mode="cpu", grid_resolution=1024)
    result = engine.execute(subset, polygons)
    return result.stats.query_s / len(subset)
