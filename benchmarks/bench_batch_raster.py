"""Batched rasterization: the PR 6 acceptance benchmark.

The tentpole of PR 6 replaces the per-triangle / per-polygon raster
build loops with whole-set batched passes: one vectorized scanline
rasterization over every triangle of every polygon
(:func:`~repro.graphics.raster_batch.rasterize_triangles`) and one
flat-edge supercover pass over every ring of every polygon
(:func:`~repro.graphics.raster_line.outline_pixels_many`).  The batched
build must be a pure performance change — bit-identical outputs — so
this benchmark asserts both sides of that contract at the paper's
default 1024^2 canvas:

* cold raster prepare (outline + coverage for all polygons) is
  **>= 5x faster** batched than the seed's scalar loops, measured on a
  polygon-rich workload (2048 Voronoi zones, the census-tract scale the
  paper's polygon-scaling experiments target);
* every per-polygon outline and every per-triangle coverage piece is
  **bit-identical** to the scalar reference;
* the CSR grid ``splice`` path (satellite: in-place delta edits) is
  bit-identical to a full re-compose at a 4096^2 grid and faster than
  it.

Writes the machine-readable trajectory record ``BENCH_raster.json``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import Polygon
from repro.data import generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.raster_batch import coverage_pieces_by_polygon
from repro.graphics.raster_line import outline_pixels, outline_pixels_many
from repro.graphics.raster_triangle import covered_pixels
from repro.graphics.viewport import Viewport
from repro.index.grid import GridIndex

RESOLUTION = 1024
ZONES = 2048
SPEEDUP_GATE = 5.0
SPLICE_GRID_RESOLUTION = 4096
REPEATS = 3

RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_raster.json"


def _best_of(repeats, fn):
    best = float("inf")
    out = None
    for _ in range(repeats):
        start = time.perf_counter()
        out = fn()
        best = min(best, time.perf_counter() - start)
    return best, out


@pytest.mark.benchmark(group="batch-raster")
def test_batched_raster_prepare_speedup():
    zones = generate_voronoi_regions(ZONES, NYC_REGION_EXTENT, seed=7)
    viewport = Viewport(zones.bbox, RESOLUTION, RESOLUTION)
    triangles = {pid: triangulate_polygon(p) for pid, p in enumerate(zones)}
    rings = {pid: p.rings for pid, p in enumerate(zones)}
    table = harness.table(
        "batch_raster",
        f"cold raster prepare, {ZONES} polygons @ {RESOLUTION}^2: "
        "batched vs scalar loops",
        ["pass", "scalar_s", "batched_s", "speedup", "bit_identical"],
    )

    def scalar_build():
        outlines = {
            pid: outline_pixels(viewport, p.rings)
            for pid, p in enumerate(zones)
        }
        coverage = {}
        for pid, tris in triangles.items():
            pieces = []
            for tri in tris:
                xs, ys = covered_pixels(viewport, tri)
                if len(xs):
                    pieces.append((ys, xs))
            coverage[pid] = pieces
        return outlines, coverage

    def batched_build():
        return (
            outline_pixels_many(viewport, rings),
            coverage_pieces_by_polygon(viewport, triangles),
        )

    scalar_s, (s_out, s_cov) = _best_of(REPEATS, scalar_build)
    batched_s, (b_out, b_cov) = _best_of(REPEATS, batched_build)

    identical = True
    for pid in range(len(zones)):
        identical &= np.array_equal(b_out[pid][0], s_out[pid][0])
        identical &= np.array_equal(b_out[pid][1], s_out[pid][1])
        identical &= len(b_cov[pid]) == len(s_cov[pid])
        for (by, bx), (sy, sx) in zip(b_cov[pid], s_cov[pid]):
            identical &= np.array_equal(by, sy) and np.array_equal(bx, sx)
    speedup = scalar_s / batched_s
    table.add_row("outline+coverage", scalar_s, batched_s, speedup, identical)

    assert identical, "batched raster build diverged from scalar loops"
    assert speedup >= SPEEDUP_GATE, (
        f"batched cold prepare is {speedup:.2f}x the scalar build, "
        f"want >= {SPEEDUP_GATE}x"
    )

    # CSR splice micro-benchmark: one edited polygon at a high-resolution
    # candidate grid, spliced in place vs fully re-composed.
    polys = list(zones)
    base = GridIndex(polys, resolution=SPLICE_GRID_RESOLUTION,
                     assignment="mbr")
    ring = polys[10].exterior.copy()
    center = ring.mean(axis=0)
    ring[0] = ring[0] + (center - ring[0]) * 0.25
    edited = list(polys)
    edited[10] = Polygon(ring)
    old_cells = GridIndex.cells_for_polygon(
        polys[10], base.extent, SPLICE_GRID_RESOLUTION, "mbr"
    )
    new_cells = GridIndex.cells_for_polygon(
        edited[10], base.extent, SPLICE_GRID_RESOLUTION, "mbr"
    )
    splice_s, spliced = _best_of(
        REPEATS, lambda: base.splice(edited, {10: (old_cells, new_cells)})
    )
    all_cells = [
        GridIndex.cells_for_polygon(
            p, base.extent, SPLICE_GRID_RESOLUTION, "mbr"
        )
        for p in edited
    ]
    recompose_s, recomposed = _best_of(
        REPEATS,
        lambda: GridIndex.from_cells(
            edited, all_cells, SPLICE_GRID_RESOLUTION, "mbr", base.extent
        ),
    )
    splice_identical = bool(
        np.array_equal(spliced.cell_start, recomposed.cell_start)
        and np.array_equal(spliced.entries, recomposed.entries)
    )
    splice_speedup = recompose_s / splice_s
    table.add_row(
        f"grid-splice@{SPLICE_GRID_RESOLUTION}^2",
        recompose_s, splice_s, splice_speedup, splice_identical,
    )
    assert splice_identical, "spliced CSR arrays diverged from re-compose"
    assert splice_speedup > 1.0, (
        f"splice is {splice_speedup:.2f}x the re-compose; want faster"
    )

    RESULT_JSON.write_text(json.dumps({
        "benchmark": "batch_raster",
        "metrics": harness.metrics_snapshot(),
        "zones": ZONES,
        "resolution": RESOLUTION,
        "cells": {
            "raster_prepare": {
                "scalar_s": scalar_s,
                "batched_s": batched_s,
                "speedup": speedup,
                "gate": SPEEDUP_GATE,
                "bit_identical": identical,
            },
            "grid_splice": {
                "grid_resolution": SPLICE_GRID_RESOLUTION,
                "recompose_s": recompose_s,
                "splice_s": splice_s,
                "speedup": splice_speedup,
                "bit_identical": splice_identical,
            },
        },
    }, indent=2) + "\n")
