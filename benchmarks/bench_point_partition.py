"""Tile-local point partitioning: speedup and bit-equality vs full scan.

Without partitioning, a T-tile canvas scans the point input T times (every
tile task projects **all** points and discards the foreign ones); the
partition stage scans it once and hands each tile only its own points.
This benchmark builds a square canvas that splits into exactly 16
device-sized tiles (the regime the full scan wastes a factor of T in),
warms a :class:`QuerySession` so the per-query work is
the point pass itself, and compares partitioned vs full-scan execution
serial (1 worker) and parallel (4 workers).  It asserts

* every cell is **bit-identical** to the full-scan serial reference;
* at 4 workers the partitioned point pass is at least **2x** faster than
  the full-scan path (the acceptance bar of the partitioning PR) — the
  win is algorithmic (1 projection instead of 4), so it must hold even
  on single-core hosts;
* on a single-tile canvas partitioning cheaply no-ops: within timing
  noise of the full-scan path and reported as ``partition: off``;
* the second query on an engine reuses the persistent worker pool (no
  pool construction in its stats).

Results are also written to ``BENCH_partition.json`` at the repository
root so later PRs have a machine-readable perf trajectory to regress
against.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    EngineConfig,
    GPUDevice,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.data import generate_voronoi_regions
from repro.geometry.bbox import BBox

POINT_ROWS = 1_500_000
RESOLUTION = 1024
MAX_FBO = 256          # 1024^2 canvas over 256^2 FBOs -> 4x4 = 16 tiles
SINGLE_TILE_FBO = 2048  # same canvas in one tile: partitioning must no-op
WORKERS = 4
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)  # square extent => square canvas
REPEATS = 3
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_partition.json"


def _table():
    return harness.table(
        "point_partition",
        "Tile-local point partitioning (accurate engine, warm session)",
        ["cell", "tiles", "workers", "partition", "wall_s",
         "speedup_vs_fullscan", "bit_identical"],
    )


@pytest.fixture(scope="module")
def square_workload():
    rng = np.random.default_rng(7)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
        {"val": rng.normal(10.0, 3.0, POINT_ROWS)},
    )
    polygons = generate_voronoi_regions(16, EXTENT, seed=7)
    return points, polygons


def _engine(partition: bool, workers: int, max_fbo: int,
            session: QuerySession) -> AccurateRasterJoin:
    backend = "serial" if workers == 1 else "thread"
    return AccurateRasterJoin(
        resolution=RESOLUTION,
        device=GPUDevice(max_resolution=max_fbo),
        session=session,
        config=EngineConfig(
            backend=backend, workers=workers, partition_points=partition,
        ),
    )


def _timed_best(engine, points, polygons, aggregate):
    """Best-of-N wall time of a warm query (the point pass dominates)."""
    best = float("inf")
    last = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        last = engine.execute(points, polygons, aggregate=aggregate)
        best = min(best, time.perf_counter() - start)
        assert last.stats.prepared_hits == 1
    return best, last


def _assert_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@pytest.mark.benchmark(group="point-partition")
def test_point_partition_smoke(benchmark, square_workload):
    points, polygons = square_workload
    aggregate = Sum("val")
    table = _table()
    record = {
        "benchmark": "point_partition",
        "points": POINT_ROWS,
        "resolution": RESOLUTION,
        "max_fbo": MAX_FBO,
        "workers": WORKERS,
        "repeats": REPEATS,
        "cells": {},
    }

    # ------------------------------------------------------------------
    # 16-tile canvas: partitioned vs full scan, serial and parallel.
    # ------------------------------------------------------------------
    timings: dict[tuple[bool, int], float] = {}
    results: dict[tuple[bool, int], object] = {}
    pool_events: dict[tuple[bool, int], str] = {}
    for partition in (False, True):
        for workers in (1, WORKERS):
            session = QuerySession()
            engine = _engine(partition, workers, MAX_FBO, session)
            cold = engine.execute(points, polygons, aggregate=aggregate)
            assert cold.stats.extra["tiles"] == 16, cold.stats.extra
            assert cold.stats.extra["partition"] == (
                "on" if partition else "off"
            )
            wall, warm = _timed_best(engine, points, polygons, aggregate)
            timings[(partition, workers)] = wall
            results[(partition, workers)] = warm
            pool_events[(partition, workers)] = warm.stats.extra["pool"]
            engine.close()

    reference = results[(False, 1)]
    for (partition, workers), wall in sorted(timings.items()):
        result = results[(partition, workers)]
        _assert_identical(reference, result, (partition, workers))
        speedup = timings[(False, workers)] / wall
        cell = f"{'partitioned' if partition else 'full-scan'}@{workers}w"
        table.add_row(
            cell, 16, workers, "on" if partition else "off", wall, speedup,
            True,
        )
        record["cells"][cell] = {
            "tiles": 16,
            "workers": workers,
            "partition": partition,
            "wall_s": wall,
            "speedup_vs_fullscan_same_workers": speedup,
            "bit_identical": True,
            "pool": pool_events[(partition, workers)],
        }

    # The persistent pool really is reused: the warm parallel queries ran
    # on the pool the cold query spawned, with no construction in their
    # stats trace.
    assert pool_events[(True, WORKERS)] == "reused", pool_events

    # ------------------------------------------------------------------
    # Single-tile canvas: partitioning must cheaply no-op.
    # ------------------------------------------------------------------
    single_timings = {}
    single_results = {}
    for partition in (False, True):
        session = QuerySession()
        engine = _engine(partition, 1, SINGLE_TILE_FBO, session)
        cold = engine.execute(points, polygons, aggregate=aggregate)
        assert cold.stats.extra["tiles"] == 1
        # On one tile there is nothing to partition — the stage reports
        # itself off regardless of the config.
        assert cold.stats.extra["partition"] == "off"
        assert cold.stats.partition_s == 0.0
        wall, warm = _timed_best(engine, points, polygons, aggregate)
        single_timings[partition] = wall
        single_results[partition] = warm
        engine.close()
    _assert_identical(
        single_results[False], single_results[True], "single-tile"
    )
    single_ratio = single_timings[True] / single_timings[False]
    table.add_row(
        "partitioned@1-tile", 1, 1, "off(no-op)", single_timings[True],
        1.0 / single_ratio, True,
    )
    record["cells"]["partitioned@1-tile"] = {
        "tiles": 1,
        "workers": 1,
        "partition": True,
        "wall_s": single_timings[True],
        "ratio_vs_fullscan": single_ratio,
        "bit_identical": True,
    }

    benchmark.pedantic(
        lambda: _engine(True, WORKERS, MAX_FBO, QuerySession()).execute(
            points, polygons, aggregate=aggregate
        ),
        rounds=1, iterations=1,
    )

    # ------------------------------------------------------------------
    # Acceptance bars + the machine-readable trajectory record.
    # ------------------------------------------------------------------
    speedup_parallel = timings[(False, WORKERS)] / timings[(True, WORKERS)]
    speedup_serial = timings[(False, 1)] / timings[(True, 1)]
    record["speedup_at_4_workers"] = speedup_parallel
    record["speedup_at_1_worker"] = speedup_serial
    record["single_tile_overhead_ratio"] = single_ratio
    record["metrics"] = harness.metrics_snapshot()
    RESULT_JSON.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert speedup_parallel >= 2.0, (
        f"partitioned point pass is only {speedup_parallel:.2f}x faster "
        f"than full scan at {WORKERS} workers on a 16-tile canvas "
        f"(need >= 2x)"
    )
    # Serial partitioning must never lose either: it replaces 4 full
    # projections with one projection + bucketing.
    assert speedup_serial >= 1.0, (
        f"partitioned serial execution is {speedup_serial:.2f}x the "
        f"full-scan speed (must not be slower)"
    )
    # Single-tile no-op: within timing noise of the untouched path.
    assert single_ratio <= 1.25, (
        f"partitioning overhead on a single-tile canvas is "
        f"{single_ratio:.2f}x (must be a cheap no-op)"
    )
