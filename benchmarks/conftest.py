"""Shared fixtures for the benchmark suite.

All input data is generated once per session.  Sizes are scaled from the
paper's 868M-point / 2.29B-point workloads down to laptop-CI budgets; the
sweep *structures* match the paper (see EXPERIMENTS.md for the mapping).
"""

from __future__ import annotations

import pytest

from benchmarks import harness
from repro.data import (
    generate_counties,
    generate_neighborhoods,
    generate_taxi,
    generate_twitter,
)

#: Scaled dataset sizes (paper: taxi 868M, twitter 2.29B).
TAXI_ROWS = 4_000_000
TWITTER_ROWS = 1_500_000
#: Scaled county count (paper: 3945; generation cost bounds ours).
COUNTY_COUNT = 1_000


@pytest.fixture(scope="session")
def taxi():
    """Taxi-like points, time-ordered so prefixes emulate time slicing."""
    return generate_taxi(TAXI_ROWS, seed=0)


@pytest.fixture(scope="session")
def twitter():
    return generate_twitter(TWITTER_ROWS, seed=0)


@pytest.fixture(scope="session")
def neighborhoods():
    """260 NYC-neighborhood-like polygons (Table 1 row 1)."""
    return generate_neighborhoods(seed=0)


@pytest.fixture(scope="session")
def counties():
    """County-like polygons over a continental extent (Table 1 row 2,
    scaled from 3945 to 1000 regions)."""
    return generate_counties(seed=0, n=COUNTY_COUNT)


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    """Print every experiment table the run produced, paper-style."""
    tables = harness.all_tables()
    if not tables:
        return
    terminalreporter.write_sep("=", "reproduced paper tables & figures")
    for tbl in tables:
        terminalreporter.write_line("")
        terminalreporter.write_line(tbl.render())
        path = tbl.dump_tsv()
        terminalreporter.write_line(f"[rows saved to {path}]")
