"""Figure 9: scaling with points when data does NOT fit in device memory.

Paper panels: (left) speedup over single-CPU, (right) breakdown of the
execution time into transfer and processing.  Expected shape: the GPU
approaches keep an order-of-magnitude-plus lead over the CPU, scaling stays
linear (extra passes do not bend the curve), and for the bounded variant
the CPU→GPU transfer dominates the total time.
"""

import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice, IndexJoin

SIZES = [500_000, 1_000_000, 2_000_000, 4_000_000]
EPSILON_M = 10.0

#: Capacity chosen so the ε = 10 m framebuffer (~144 MB) stays resident —
#: as the paper's 1 GB max FBO does inside its 3 GB cap — while the larger
#: sweep points still need several batches.
DEVICE_BYTES = 192_000_000

_cpu_anchor: dict = {}


def _table():
    return harness.table(
        "fig9",
        "Out-of-core scaling, Taxi ⋈ Neighborhoods (ε = 10 m)",
        [
            "engine",
            "points",
            "batches",
            "query_s",
            "transfer_s",
            "processing_s",
            "speedup_vs_single_cpu",
        ],
    )


def _cpu_seconds_per_point(taxi, neighborhoods) -> float:
    if "sec_per_point" not in _cpu_anchor:
        _cpu_anchor["sec_per_point"] = harness.single_cpu_seconds_per_point(
            taxi, neighborhoods
        )
    return _cpu_anchor["sec_per_point"]


def _record(label, n, result, cpu_s):
    stats = result.stats
    _table().add_row(
        label, n, stats.batches, stats.query_s, stats.transfer_s,
        stats.processing_s, cpu_s / max(stats.query_s, 1e-12),
    )


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("n", SIZES)
def test_fig9_bounded(benchmark, taxi, neighborhoods, n):
    points = taxi.head(n)
    engine = BoundedRasterJoin(
        epsilon=EPSILON_M, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _record("bounded-raster", n, result,
            _cpu_seconds_per_point(taxi, neighborhoods) * n)
    if n == SIZES[-1]:
        assert result.stats.batches > 1, "largest size must be out-of-core"


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("n", SIZES)
def test_fig9_accurate(benchmark, taxi, neighborhoods, n):
    points = taxi.head(n)
    engine = AccurateRasterJoin(
        resolution=1024, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _record("accurate-raster", n, result,
            _cpu_seconds_per_point(taxi, neighborhoods) * n)


@pytest.mark.benchmark(group="fig9")
@pytest.mark.parametrize("n", SIZES)
def test_fig9_index_join(benchmark, taxi, neighborhoods, n):
    points = taxi.head(n)
    engine = IndexJoin(
        mode="gpu", grid_resolution=1024,
        device=GPUDevice(capacity_bytes=DEVICE_BYTES),
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _record("index-join-gpu", n, result,
            _cpu_seconds_per_point(taxi, neighborhoods) * n)


@pytest.mark.benchmark(group="fig9")
def test_fig9_transfer_share_of_bounded(benchmark, taxi, neighborhoods):
    """The paper's observation: for the bounded join, memory transfer has
    a significant share of out-of-core execution (it dominates on real
    PCIe; the simulated copy keeps it a visible fraction)."""
    points = taxi.head(SIZES[-1])
    engine = BoundedRasterJoin(
        epsilon=EPSILON_M, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    share = result.stats.transfer_s / max(result.stats.query_s, 1e-12)
    _table().add_row(
        "bounded transfer share", SIZES[-1], result.stats.batches,
        result.stats.query_s, result.stats.transfer_s,
        result.stats.processing_s, share,
    )
    assert result.stats.transfer_s > 0
