"""Concurrent serving layer under a 16-client dashboard workload.

The scenario the serving layer targets: many dashboard clients fire
overlapping warm statements at one planner at the same time.  Most of
the work is redundant — clients repeat each other's statements
(coalescing collapses those onto one in-flight execution) and the
distinct statements still share the point source and canvas (shared-scan
fusion folds them into one point pass feeding N accumulators).

This benchmark replays the same 64-statement script two ways:

* **serialized** — one statement at a time through
  ``QueryPlanner.execute`` (the pre-serving baseline; warm session);
* **served** — 16 client threads, each firing its whole script through
  ``Server.submit`` and then collecting the results (a dashboard
  rendering all its widgets at once).

and asserts

* every served result is **bit-identical** to its solo reference;
* the server coalesced and fused (counters observable, and fused
  statements report ``stats.extra["fused_queries"]``);
* served aggregate QPS is at least **3x** the serialized baseline.

Writes the machine-readable trajectory record ``BENCH_serve.json``.
"""

import json
import threading
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import PointDataset
from repro.data import generate_voronoi_regions
from repro.geometry.bbox import BBox
from repro.geometry.polygon import PolygonSet, rectangle
from repro.obs import metrics
from repro.serve import ServeConfig, Server
from repro.sql.planner import QueryPlanner

POINT_ROWS = 400_000
CLIENTS = 16
ROUNDS = 4
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

#: The statement pool: all fusable (accurate engine, shared frame), two
#: region tables, mixed aggregates and filters — a dashboard's widgets.
STATEMENTS = [
    "SELECT COUNT(*) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id",
    "SELECT SUM(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id",
    "SELECT AVG(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "AND hour >= 12 GROUP BY hoods.id",
    "SELECT COUNT(*) FROM taxi, zones WHERE taxi.loc INSIDE zones.geometry "
    "GROUP BY zones.id",
    "SELECT SUM(fare) FROM taxi, zones WHERE taxi.loc INSIDE zones.geometry "
    "AND fare < 25 GROUP BY zones.id",
    "SELECT MAX(fare) FROM taxi, zones WHERE taxi.loc INSIDE zones.geometry "
    "GROUP BY zones.id",
]


def _table():
    return harness.table(
        "serving_concurrent",
        "Concurrent serving vs serialized execution (16 clients)",
        ["mode", "statements", "wall_s", "qps", "speedup",
         "executions", "bit_identical"],
    )


def _regions(count: int, seed: int) -> PolygonSet:
    regions = list(generate_voronoi_regions(count, EXTENT, seed=seed))
    # Anchor rectangles pin the union bbox so both tables derive the
    # same canvas — the fusable configuration.
    regions.append(rectangle(0.0, 0.0, 2.0, 2.0))
    regions.append(rectangle(998.0, 998.0, 1000.0, 1000.0))
    return PolygonSet(regions)


@pytest.fixture(scope="module")
def dashboard():
    rng = np.random.default_rng(17)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
        {
            "fare": rng.integers(1, 100, POINT_ROWS).astype(np.float64),
            "hour": rng.integers(0, 24, POINT_ROWS).astype(np.float64),
        },
    )
    planner = QueryPlanner()
    planner.register_points("taxi", points)
    planner.register_regions("hoods", _regions(16, seed=101))
    planner.register_regions("zones", _regions(12, seed=202))
    yield planner
    planner.close()


def _script() -> list[list[str]]:
    """Per-client statement scripts: heavy overlap, deterministic."""
    return [
        [STATEMENTS[(client + r) % len(STATEMENTS)] for r in range(ROUNDS)]
        for client in range(CLIENTS)
    ]


@pytest.mark.benchmark(group="serving")
def test_serving_concurrent_smoke(benchmark, dashboard):
    planner = dashboard
    table = _table()
    scripts = _script()
    total = CLIENTS * ROUNDS

    # Solo references (and session warmup — both legs below run warm).
    solo = {q: planner.execute(q) for q in STATEMENTS}

    # ------------------------------------------------------------------
    # Serialized baseline: the pre-serving behavior, one at a time.
    # ------------------------------------------------------------------
    start = time.perf_counter()
    for script in scripts:
        for statement in script:
            result = planner.execute(statement)
            assert np.array_equal(result.values, solo[statement].values,
                                  equal_nan=True)
    serialized_s = time.perf_counter() - start
    serialized_qps = total / serialized_s

    # ------------------------------------------------------------------
    # Served: 16 concurrent clients through the serving layer.
    # ------------------------------------------------------------------
    metrics.reset()
    server = Server(planner, ServeConfig(
        max_workers=4, max_queue=2 * total, batch_window_s=0.01,
    ))
    errors: list[BaseException] = []
    mismatches: list[str] = []
    fused_seen = [0]
    fused_lock = threading.Lock()
    barrier = threading.Barrier(CLIENTS + 1)

    def client(script: list[str]) -> None:
        # A dashboard client renders all its widgets at once: fire the
        # whole script, then collect — the server sees every statement
        # in flight together and coalesces/fuses across the board.
        try:
            barrier.wait(30.0)
            futures = [server.submit(statement) for statement in script]
            for statement, future in zip(script, futures):
                result = future.result(300.0)
                if not np.array_equal(result.values, solo[statement].values,
                                      equal_nan=True):
                    mismatches.append(statement)
                if result.stats.extra.get("fused_queries", 0) > 1:
                    with fused_lock:
                        fused_seen[0] += 1
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=client, args=(script,)) for script in scripts
    ]
    for thread in threads:
        thread.start()
    barrier.wait(30.0)
    start = time.perf_counter()
    for thread in threads:
        thread.join(600.0)
    served_s = time.perf_counter() - start
    counters = server.counters()
    server.close()

    assert not errors, errors
    assert not mismatches, mismatches
    served_qps = total / served_s
    speedup = served_qps / serialized_qps

    # The concurrency machinery actually engaged: duplicates coalesced
    # and at least one shared scan served multiple statements.
    assert counters["coalesced"] > 0, counters
    assert counters["fused_scans"] > 0, counters
    assert counters["rejected"] == 0, counters
    executions = counters["admitted"]
    assert executions < total

    table.add_row("serialized", total, serialized_s, serialized_qps,
                  1.0, total, True)
    table.add_row("served", total, served_s, served_qps, speedup,
                  executions, True)

    record = {
        "benchmark": "serving_concurrent",
        "points": POINT_ROWS,
        "clients": CLIENTS,
        "rounds": ROUNDS,
        "statements": total,
        "distinct_statements": len(STATEMENTS),
        "serialized_s": serialized_s,
        "serialized_qps": serialized_qps,
        "served_s": served_s,
        "served_qps": served_qps,
        "speedup": speedup,
        "bit_identical": True,
        "fused_results_observed": fused_seen[0],
        "server": counters,
        "metrics": harness.metrics_snapshot(),
    }
    RESULT_JSON.write_text(json.dumps(record, indent=2) + "\n")

    benchmark.pedantic(
        lambda: planner.execute(STATEMENTS[0]), rounds=1, iterations=1,
    )

    assert speedup >= 3.0, (
        f"served {served_qps:.1f} qps not 3x serialized "
        f"{serialized_qps:.1f} qps (speedup {speedup:.2f}x)"
    )
