"""Parallel tile execution: speedup and bit-equality across backends.

The raster join's per-tile stages are independent, so a multi-tile
canvas scales across cores.  This benchmark builds a square canvas that
splits into exactly 4 device-sized tiles and runs the accurate engine
under every backend with 4 workers, cold (boundary masks and coverage
built inside the tile tasks) and warm (a :class:`QuerySession` replays
them, leaving the NumPy-bound point pass as the tile work).  It asserts

* every backend x warmth cell produces **bit-identical** grids to the
  serial run of the same warmth;
* on a multi-core host, the best parallel cell is at least 1.5x faster
  than its serial counterpart (the acceptance bar of the
  parallel-backend PR).

On single-core machines the speedup assertion is skipped — there is
nothing to parallelize onto — but the bit-equality half always runs.
"""

import os
import time

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    EngineConfig,
    GPUDevice,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.data import generate_voronoi_regions
from repro.geometry.bbox import BBox

POINT_ROWS = 1_000_000
RESOLUTION = 1024
MAX_FBO = 512          # 1024^2 canvas over 512^2 FBOs -> 2x2 = 4 tiles
WORKERS = 4
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)  # square extent => square canvas
BACKENDS = ("serial", "thread", "process")


def _table():
    return harness.table(
        "parallel_tiles",
        "Parallel tile execution (accurate engine, 4 tiles, 4 workers)",
        ["backend", "state", "workers", "tiles", "wall_s",
         "speedup_vs_serial", "bit_identical"],
    )


def _usable_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


@pytest.fixture(scope="module")
def square_workload():
    rng = np.random.default_rng(42)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
        {"val": rng.normal(10.0, 3.0, POINT_ROWS)},
    )
    polygons = generate_voronoi_regions(24, EXTENT, seed=42)
    return points, polygons


def _engine(backend: str, session: QuerySession | None) -> AccurateRasterJoin:
    return AccurateRasterJoin(
        resolution=RESOLUTION,
        device=GPUDevice(max_resolution=MAX_FBO),
        session=session,
        config=EngineConfig(backend=backend, workers=WORKERS),
    )


def _assert_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@pytest.mark.benchmark(group="parallel-tiles")
def test_parallel_tiles_smoke(benchmark, square_workload):
    points, polygons = square_workload
    aggregate = Sum("val")
    table = _table()

    results: dict[tuple[str, str], object] = {}
    timings: dict[tuple[str, str], float] = {}
    for backend in BACKENDS:
        session = QuerySession()
        engine = _engine(backend, session)

        start = time.perf_counter()
        cold = engine.execute(points, polygons, aggregate=aggregate)
        timings[(backend, "cold")] = time.perf_counter() - start
        results[(backend, "cold")] = cold
        assert cold.stats.extra["tiles"] == 4, cold.stats.extra
        assert cold.stats.extra["workers"] == (
            1 if backend == "serial" else WORKERS
        )

        warm_times = []
        for _ in range(2):
            start = time.perf_counter()
            warm = engine.execute(points, polygons, aggregate=aggregate)
            warm_times.append(time.perf_counter() - start)
            assert warm.stats.prepared_hits == 1
        timings[(backend, "warm")] = min(warm_times)
        results[(backend, "warm")] = warm

    for state in ("cold", "warm"):
        serial = results[("serial", state)]
        for backend in BACKENDS:
            result = results[(backend, state)]
            _assert_identical(serial, result, (backend, state))
            table.add_row(
                backend, state,
                result.stats.extra["workers"],
                result.stats.extra["tiles"],
                timings[(backend, state)],
                timings[("serial", state)] / timings[(backend, state)],
                True,
            )

    benchmark.pedantic(
        lambda: _engine("thread", None).execute(points, polygons,
                                                aggregate=aggregate),
        rounds=1, iterations=1,
    )

    cores = _usable_cores()
    if cores < 2:
        pytest.skip(
            f"speedup needs >= 2 cores (host has {cores}); "
            "bit-equality across all backend x warmth cells verified above"
        )
    best_speedup = max(
        timings[("serial", state)] / timings[(backend, state)]
        for backend in ("thread", "process")
        for state in ("cold", "warm")
    )
    assert best_speedup >= 1.5, (
        f"best parallel cell is only {best_speedup:.2f}x faster than "
        f"serial on {cores} cores (need >= 1.5x)"
    )
