"""Figure 12: accuracy analysis on the taxi workload.

Three panels, all reproduced here:

(a) accuracy-time trade-off — bounded query time vs ε, with the accurate
    variant as the horizontal reference line; as ε shrinks the bounded
    time grows (quadratically more pixels / rendering passes) and
    eventually crosses the accurate line;
(b) accuracy-ε trade-off — the distribution (quartiles/whiskers) of the
    per-polygon percent error for each ε, converging toward zero;
(c) accurate-vs-approximate scatter at the coarsest bound (ε = 20 m for
    NYC) with the expected result intervals; the paper reports a median
    error around 0.15% at ε = 10 m and intervals that stay tight.
"""

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice

POINT_COUNT = 1_000_000
EPSILONS_M = [160.0, 80.0, 40.0, 20.0, 10.0, 5.0, 2.5]
#: Must hold one device-limit tile's FBO (8192^2 float32 ≈ 268 MB) — the
#: ε = 2.5 m canvas splits into 9 such tiles, driving the time-vs-ε curve.
DEVICE_BYTES = 330_000_000

_exact_cache: dict = {}


def _exact(taxi, neighborhoods):
    if "values" not in _exact_cache:
        result = AccurateRasterJoin(resolution=1024).execute(
            taxi.head(POINT_COUNT), neighborhoods
        )
        _exact_cache["values"] = result.values
        _exact_cache["seconds"] = result.stats.query_s
    return _exact_cache["values"], _exact_cache["seconds"]


def _time_table():
    return harness.table(
        "fig12a",
        "Accuracy-time trade-off (taxi, 1M points)",
        ["epsilon_m", "engine", "query_s", "tiles"],
    )


def _error_table():
    return harness.table(
        "fig12b",
        "Percent-error distribution vs ε (taxi)",
        ["epsilon_m", "median_pct", "q1_pct", "q3_pct",
         "whisker_lo_pct", "whisker_hi_pct"],
    )


def _scatter_table():
    return harness.table(
        "fig12c",
        "Accurate vs approximate at coarsest ε (taxi)",
        ["metric", "value"],
    )


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("epsilon", EPSILONS_M)
def test_fig12a_time_tradeoff(benchmark, taxi, neighborhoods, epsilon):
    points = taxi.head(POINT_COUNT)
    engine = BoundedRasterJoin(
        epsilon=epsilon, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    _time_table().add_row(
        epsilon, "bounded", result.stats.query_s, result.stats.extra["tiles"]
    )
    if epsilon == EPSILONS_M[-1]:
        _, accurate_s = _exact(taxi, neighborhoods)
        _time_table().add_row("any", "accurate (reference)", accurate_s, 1)


@pytest.mark.benchmark(group="fig12")
@pytest.mark.parametrize("epsilon", EPSILONS_M)
def test_fig12b_error_distribution(benchmark, taxi, neighborhoods, epsilon):
    points = taxi.head(POINT_COUNT)
    exact, _ = _exact(taxi, neighborhoods)
    engine = BoundedRasterJoin(epsilon=epsilon, device=GPUDevice())
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    nonzero = exact > 0
    errors = 100.0 * np.abs(result.values[nonzero] - exact[nonzero]) / exact[nonzero]
    q1, med, q3 = np.percentile(errors, [25, 50, 75])
    iqr = q3 - q1
    lo = float(errors[errors >= q1 - 1.5 * iqr].min())
    hi = float(errors[errors <= q3 + 1.5 * iqr].max())
    _error_table().add_row(epsilon, float(med), float(q1), float(q3), lo, hi)
    benchmark.extra_info["median_pct_error"] = float(med)


def test_fig12b_error_decays_with_epsilon(taxi, neighborhoods):
    """Medians must be non-increasing as ε shrinks (checked coarse→fine
    on a 4x ladder to stay fast)."""
    points = taxi.head(POINT_COUNT)
    exact, _ = _exact(taxi, neighborhoods)
    nonzero = exact > 0
    medians = []
    for epsilon in (160.0, 40.0, 10.0):
        values = BoundedRasterJoin(epsilon=epsilon).execute(
            points, neighborhoods
        ).values
        errors = (
            np.abs(values[nonzero] - exact[nonzero]) / exact[nonzero]
        )
        medians.append(float(np.median(errors)))
    assert medians[0] >= medians[1] >= medians[2]


@pytest.mark.benchmark(group="fig12")
def test_fig12c_scatter_and_intervals(benchmark, taxi, neighborhoods):
    points = taxi.head(POINT_COUNT)
    exact, _ = _exact(taxi, neighborhoods)
    engine = BoundedRasterJoin(
        epsilon=20.0, compute_bounds=True, device=GPUDevice()
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods), rounds=1, iterations=1
    )
    approx = result.values
    iv = result.intervals

    corr = float(np.corrcoef(exact, approx)[0, 1])
    nonzero = exact > 0
    max_rel = float(
        (np.abs(approx[nonzero] - exact[nonzero]) / exact[nonzero]).max()
    )
    loose_cover = float(iv.contains(exact).mean())
    expected_width = float(np.mean(iv.expected_hi - iv.expected_lo))
    value_scale = float(np.mean(exact[nonzero]))

    _scatter_table().add_row("pearson r (accurate vs approx)", corr)
    _scatter_table().add_row("max relative error", max_rel)
    _scatter_table().add_row("loose interval coverage", loose_cover)
    _scatter_table().add_row("mean expected-interval width", expected_width)
    _scatter_table().add_row("mean region value", value_scale)

    # The paper's qualitative claims at the coarsest bound:
    assert corr > 0.999, "scatter must hug the diagonal"
    assert loose_cover == 1.0, "loose intervals are 100%-confidence"
    assert expected_width < 0.05 * value_scale, "intervals stay tight"
