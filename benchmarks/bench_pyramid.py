"""Aggregate-pyramid cache under an overlapping pan/zoom workload.

The interactive loop the pyramid targets: an analyst aggregates over a
viewport choropleth, pans, zooms, re-aggregates.  Every frame is a new
polygon set (so prepared-state reuse alone does not help the *point*
pass), but all frames query the same point source over the same grid
frame — two fixed anchor rectangles at the extent corners pin the union
bbox, so one :class:`~repro.cache.pyramid.AggregatePyramid` serves the
whole stroke.  Polygon interiors are answered from cached block
partials; only boundary-cell points reach the exact PIP fallback.

This benchmark builds the pyramid once (``engine.build_pyramid``), then
replays six overlapping pan/zoom frames and asserts

* every pyramid-warm frame reports ``pyramid: hit`` and touches only a
  small fallback fraction of the points;
* Count and Sum (integer-valued fares) are **bit-identical** to the
  exact warm path, frame for frame;
* summed over the stroke, the pyramid-warm point pass is at least
  **3x** faster than the exact warm point pass at the paper's default
  1024^2 canvas.

Writes the machine-readable trajectory record ``BENCH_pyramid.json``.
"""

import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    Count,
    EngineConfig,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.data import generate_voronoi_regions
from repro.geometry.bbox import BBox
from repro.geometry.polygon import PolygonSet, rectangle

POINT_ROWS = 1_500_000
RESOLUTION = 1024
GRID_RESOLUTION = 256
REGIONS_PER_FRAME = 24
REPEATS = 3
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)
#: The pan/zoom stroke: overlapping viewport windows, full extent first.
FRAMES = [
    BBox(0.0, 0.0, 1000.0, 1000.0),
    BBox(100.0, 100.0, 900.0, 900.0),
    BBox(250.0, 200.0, 750.0, 700.0),
    BBox(300.0, 250.0, 800.0, 750.0),
    BBox(400.0, 350.0, 650.0, 600.0),
    BBox(420.0, 380.0, 680.0, 640.0),
]
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_pyramid.json"


def _table():
    return harness.table(
        "pyramid_pan_zoom",
        "Aggregate-pyramid cache over a pan/zoom stroke (accurate engine)",
        ["frame", "regions", "exact_warm_s", "pyramid_warm_s", "speedup",
         "fallback_points", "bit_identical"],
    )


@pytest.fixture(scope="module")
def pan_zoom_workload():
    rng = np.random.default_rng(11)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
        # Integer-valued fares: float64 additions are exact, so Sum is
        # bit-identical between the block and scatter paths.
        {"fare": rng.integers(1, 100, POINT_ROWS).astype(np.float64)},
    )
    frames = []
    for fid, window in enumerate(FRAMES):
        regions = list(generate_voronoi_regions(
            REGIONS_PER_FRAME, window, seed=100 + fid
        ))
        # Anchor rectangles at the extent corners pin the union bbox —
        # and with it the pyramid's grid frame — across every frame.
        regions.append(rectangle(0.0, 0.0, 2.0, 2.0))
        regions.append(rectangle(998.0, 998.0, 1000.0, 1000.0))
        frames.append(PolygonSet(regions))
    return points, frames


def _engine(pyramid: bool) -> AccurateRasterJoin:
    return AccurateRasterJoin(
        resolution=RESOLUTION,
        grid_resolution=GRID_RESOLUTION,
        session=QuerySession(),
        config=EngineConfig(pyramid=pyramid),
    )


def _timed_warm(engine, points, polygons, aggregate):
    """Best-of-N warm wall time (the first run paid all preparation)."""
    best = float("inf")
    last = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        last = engine.execute(points, polygons, aggregate=aggregate)
        best = min(best, time.perf_counter() - start)
    return best, last


def _assert_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@pytest.mark.benchmark(group="pyramid")
def test_pyramid_pan_zoom_smoke(benchmark, pan_zoom_workload):
    points, frames = pan_zoom_workload
    table = _table()
    record = {
        "benchmark": "pyramid_pan_zoom",
        "points": POINT_ROWS,
        "resolution": RESOLUTION,
        "grid_resolution": GRID_RESOLUTION,
        "frames": len(frames),
        "regions_per_frame": REGIONS_PER_FRAME + 2,
        "repeats": REPEATS,
        "per_frame": [],
    }

    exact = _engine(pyramid=False)
    warm = _engine(pyramid=True)
    # The one-off O(points) investment the stroke amortizes: sort the
    # point source into grid cells and register the pyramid artifact.
    build_start = time.perf_counter()
    warm.build_pyramid(points, frames[0])
    record["pyramid_build_s"] = time.perf_counter() - build_start

    exact_total = 0.0
    pyramid_total = 0.0
    for fid, regions in enumerate(frames):
        # Cold runs pay preparation (triangulation, grid, masks — and on
        # the pyramid engine the per-frame cell classification) so the
        # warm timings below isolate the per-query point pass.
        exact_cold = exact.execute(points, regions, aggregate=Sum("fare"))
        warm_cold = warm.execute(points, regions, aggregate=Sum("fare"))
        assert warm_cold.stats.extra.get("pyramid") == "hit", (
            fid, warm_cold.stats.extra
        )

        exact_s, exact_sum = _timed_warm(exact, points, regions, Sum("fare"))
        pyramid_s, warm_sum = _timed_warm(warm, points, regions, Sum("fare"))
        assert warm_sum.stats.extra.get("pyramid") == "hit"
        fallback = warm_sum.stats.extra["pyramid_fallback_points"]
        # Interiors came from block partials: the fallback PIP pass saw
        # only a fraction of the point source.
        assert fallback < POINT_ROWS // 2, (fid, fallback)

        # Count and Sum are bit-identical between the paths.
        _assert_identical(exact_sum, warm_sum, ("sum", fid))
        exact_count = exact.execute(points, regions, aggregate=Count())
        warm_count = warm.execute(points, regions, aggregate=Count())
        _assert_identical(exact_count, warm_count, ("count", fid))

        exact_total += exact_s
        pyramid_total += pyramid_s
        speedup = exact_s / pyramid_s
        table.add_row(
            f"frame-{fid}", len(regions), exact_s, pyramid_s, speedup,
            fallback, True,
        )
        record["per_frame"].append({
            "frame": fid,
            "regions": len(regions),
            "exact_warm_s": exact_s,
            "pyramid_warm_s": pyramid_s,
            "speedup": speedup,
            "pyramid_cells": warm_sum.stats.extra["pyramid_cells"],
            "fallback_points": fallback,
        })

    benchmark.pedantic(
        lambda: warm.execute(points, frames[-1], aggregate=Sum("fare")),
        rounds=1, iterations=1,
    )
    exact.close()
    warm.close()

    # ------------------------------------------------------------------
    # Acceptance bar + the machine-readable trajectory record.
    # ------------------------------------------------------------------
    stroke_speedup = exact_total / pyramid_total
    record["exact_warm_total_s"] = exact_total
    record["pyramid_warm_total_s"] = pyramid_total
    record["stroke_speedup"] = stroke_speedup
    table.add_row(
        "stroke-total", sum(len(f) for f in frames), exact_total,
        pyramid_total, stroke_speedup, "-", True,
    )
    record["metrics"] = harness.metrics_snapshot()
    RESULT_JSON.write_text(json.dumps(record, indent=2) + "\n")
    assert pyramid_total * 3.0 <= exact_total, (
        f"pyramid-warm stroke {pyramid_total:.3f}s not 3x faster than "
        f"exact warm {exact_total:.3f}s"
    )
