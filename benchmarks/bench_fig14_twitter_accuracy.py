"""Figure 14: accuracy trade-offs on the Twitter/counties workload.

The county polygons span the whole USA, so the paper sweeps kilometre-
scale ε values (default 1 km) and shows the same two trade-offs as
Figure 12: time grows as ε shrinks, errors shrink toward zero, and the
accurate-vs-approximate scatter hugs the diagonal.
"""

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice

POINT_COUNT = 1_000_000
EPSILONS_M = [8_000.0, 4_000.0, 2_000.0, 1_000.0, 500.0]
DEVICE_BYTES = 330_000_000  # one 8192^2 tile FBO + point batches

_exact_cache: dict = {}


def _exact(twitter, counties):
    if "values" not in _exact_cache:
        result = AccurateRasterJoin(resolution=1024).execute(
            twitter.head(POINT_COUNT), counties
        )
        _exact_cache["values"] = result.values
        _exact_cache["seconds"] = result.stats.query_s
    return _exact_cache["values"], _exact_cache["seconds"]


def _table():
    return harness.table(
        "fig14",
        "Accuracy trade-offs, Twitter ⋈ Counties",
        ["epsilon_m", "query_s", "median_pct_error", "q3_pct_error"],
    )


@pytest.mark.benchmark(group="fig14")
@pytest.mark.parametrize("epsilon", EPSILONS_M)
def test_fig14_accuracy_sweep(benchmark, twitter, counties, epsilon):
    points = twitter.head(POINT_COUNT)
    exact, _ = _exact(twitter, counties)
    engine = BoundedRasterJoin(
        epsilon=epsilon, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, counties), rounds=1, iterations=1
    )
    # Percent errors over populated counties (sparse ones make percent
    # errors meaningless, matching the paper's box-plot preprocessing).
    populated = exact >= 10
    errors = (
        100.0
        * np.abs(result.values[populated] - exact[populated])
        / exact[populated]
    )
    med, q3 = np.percentile(errors, [50, 75])
    _table().add_row(epsilon, result.stats.query_s, float(med), float(q3))
    benchmark.extra_info["median_pct_error"] = float(med)


@pytest.mark.benchmark(group="fig14")
def test_fig14_scatter_close_to_diagonal(benchmark, twitter, counties):
    """The paper: 'the scatter plot ... is similar to the taxi
    experiments, with the points falling close to the diagonal'."""
    points = twitter.head(POINT_COUNT)
    exact, accurate_s = _exact(twitter, counties)
    engine = BoundedRasterJoin(epsilon=1_000.0)
    result = benchmark.pedantic(
        lambda: engine.execute(points, counties), rounds=1, iterations=1
    )
    corr = float(np.corrcoef(exact, result.values)[0, 1])
    _table().add_row("scatter r @1km", result.stats.query_s, corr, 0.0)
    _table().add_row("accurate reference", accurate_s, 0.0, 0.0)
    assert corr > 0.999


def test_fig14_error_decays(twitter, counties):
    points = twitter.head(POINT_COUNT)
    exact, _ = _exact(twitter, counties)
    populated = exact >= 10
    medians = []
    for epsilon in (8_000.0, 2_000.0, 500.0):
        values = BoundedRasterJoin(epsilon=epsilon).execute(
            points, counties
        ).values
        errors = (
            np.abs(values[populated] - exact[populated]) / exact[populated]
        )
        medians.append(float(np.median(errors)))
    assert medians[0] >= medians[-1]
