"""Repeated-query workloads: the QuerySession prepared-state cache.

The paper's motivating loop is interactive: an analyst redraws zones,
re-runs the aggregation, inspects, repeats.  Every artifact that depends
only on the polygon set — triangulations, the grid index, the canvas
layout, per-tile boundary masks, and per-polygon pixel coverage — is
reusable across those runs.  This benchmark measures the cold (first)
versus warm (second and later) execution of the *same* polygon set with a
:class:`~repro.cache.session.QuerySession` attached, and asserts

* warm runs report prepared-state hits in ``ExecutionStats`` and rebuild
  neither triangulations nor the grid index;
* warm runs are at least 2x faster than the cold run on the accurate
  engine at the paper's default 1024^2 canvas;
* cached and uncached results are bit-identical.
"""

import time

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    QuerySession,
    Sum,
)

POINT_ROWS = 500_000
RESOLUTION = 1024
WARM_ROUNDS = 4


def _table():
    return harness.table(
        "repeated_queries",
        "Repeated identical-polygon-set queries (QuerySession cache)",
        ["engine", "round", "state", "wall_s", "prepared_hits",
         "speedup_vs_cold"],
    )


def _timed_execute(engine, points, polygons, aggregate):
    start = time.perf_counter()
    result = engine.execute(points, polygons, aggregate=aggregate)
    return result, time.perf_counter() - start


@pytest.mark.benchmark(group="repeated-queries")
def test_repeated_accurate_smoke(benchmark, taxi, neighborhoods):
    """The acceptance scenario: accurate engine, 1024^2, same zoning."""
    points = taxi.head(POINT_ROWS)
    session = QuerySession()
    engine = AccurateRasterJoin(resolution=RESOLUTION, session=session)
    aggregate = Sum("fare")

    cold, cold_s = _timed_execute(engine, points, neighborhoods, aggregate)
    assert cold.stats.prepared_misses == 1 and cold.stats.prepared_hits == 0
    _table().add_row("accurate-raster", 1, "cold", cold_s,
                     cold.stats.prepared_hits, 1.0)

    warm_times = []
    for round_id in range(2, WARM_ROUNDS + 2):
        warm, warm_s = _timed_execute(engine, points, neighborhoods, aggregate)
        warm_times.append(warm_s)
        # Prepared-state hit: nothing polygon-side was rebuilt.
        assert warm.stats.prepared_hits == 1
        assert warm.stats.triangulation_s == 0.0
        assert warm.stats.index_build_s == 0.0
        # Warm results are bit-identical with the cold ones.
        assert np.array_equal(warm.values, cold.values)
        _table().add_row("accurate-raster", round_id, "warm", warm_s,
                         warm.stats.prepared_hits, cold_s / warm_s)

    # The headline claim: repeat queries run at least 2x faster.
    best_warm = min(warm_times)
    assert best_warm * 2.0 <= cold_s, (
        f"warm run {best_warm:.3f}s not 2x faster than cold {cold_s:.3f}s"
    )

    # Cached results are bit-identical with a session-less engine.
    uncached = AccurateRasterJoin(resolution=RESOLUTION).execute(
        points, neighborhoods, aggregate=aggregate
    )
    assert np.array_equal(cold.values, uncached.values)
    for name in uncached.channels:
        assert np.array_equal(cold.channels[name], uncached.channels[name])

    benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods, aggregate=aggregate),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="repeated-queries")
def test_repeated_bounded(benchmark, taxi, neighborhoods):
    """The bounded engine reuses canvas, triangulations, and coverage."""
    points = taxi.head(POINT_ROWS)
    session = QuerySession()
    engine = BoundedRasterJoin(resolution=RESOLUTION, session=session)

    cold, cold_s = _timed_execute(engine, points, neighborhoods, Sum("fare"))
    _table().add_row("bounded-raster", 1, "cold", cold_s,
                     cold.stats.prepared_hits, 1.0)
    warm, warm_s = _timed_execute(engine, points, neighborhoods, Sum("fare"))
    assert warm.stats.prepared_hits == 1
    assert warm.stats.triangulation_s == 0.0
    assert np.array_equal(warm.values, cold.values)
    uncached = BoundedRasterJoin(resolution=RESOLUTION).execute(
        points, neighborhoods, aggregate=Sum("fare")
    )
    assert np.array_equal(warm.values, uncached.values)
    _table().add_row("bounded-raster", 2, "warm", warm_s,
                     warm.stats.prepared_hits, cold_s / warm_s)

    benchmark.pedantic(
        lambda: engine.execute(points, neighborhoods, aggregate=Sum("fare")),
        rounds=1, iterations=1,
    )


@pytest.mark.benchmark(group="repeated-queries")
def test_rezoning_alternation(benchmark, taxi, neighborhoods):
    """A redo/undo loop alternating between two zonings stays warm for
    both (the session holds several artifacts, LRU-bounded)."""
    from repro.data import generate_voronoi_regions
    from repro.data.regions import NYC_REGION_EXTENT

    points = taxi.head(POINT_ROWS // 2)
    proposal_a = neighborhoods
    proposal_b = generate_voronoi_regions(64, NYC_REGION_EXTENT, seed=77)
    session = QuerySession()
    engine = AccurateRasterJoin(resolution=RESOLUTION, session=session)

    def loop():
        hits = 0
        for zones in (proposal_a, proposal_b, proposal_a, proposal_b):
            hits += engine.execute(points, zones).stats.prepared_hits
        return hits

    hits = benchmark.pedantic(loop, rounds=1, iterations=1)
    # First visit of each proposal is a miss; every revisit is a hit.
    assert hits == 2
    assert session.hits >= 2 and session.misses == 2
    _table().add_row("accurate-raster", 4, "alternating", 0.0, hits, 0.0)
