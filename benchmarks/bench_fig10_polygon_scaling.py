"""Figure 10: scaling with the number of polygons.

Paper panels: (left) polygon processing costs (triangulation + grid index
build) as the synthetic polygon count grows, (middle) total out-of-core
query time, (right) GPU processing time.  Expected shape: triangulation
grows with polygon count; the bounded variant's query time is almost flat
(its point pass is independent of the polygon count and its polygon pass
touches each canvas pixel about once, since the regions partition the
extent); the accurate variant degrades toward the index-join baseline as
outlines cover more pixels.

Polygons come from the paper's own §7.4 generator (Voronoi cells merged
into concave shapes); counts are scaled from the paper's 2^6..2^16 sweep.
"""

import time

import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice, IndexJoin
from repro.data import generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from repro.geometry.triangulate import triangulate_polygon

POLYGON_COUNTS = [64, 256, 1024]
POINT_COUNT = 1_000_000
EPSILON_M = 10.0
DEVICE_BYTES = 192_000_000  # holds the ε = 10 m FBO plus point batches

_cache: dict = {}


def _regions(n):
    if n not in _cache:
        _cache[n] = generate_voronoi_regions(n, NYC_REGION_EXTENT, seed=5)
    return _cache[n]


def _costs_table():
    return harness.table(
        "fig10a",
        "Polygon processing costs vs polygon count",
        ["polygons", "triangulation_s", "grid_index_s"],
    )


def _time_table():
    return harness.table(
        "fig10bc",
        "Query time vs polygon count (1M points, out-of-core)",
        ["engine", "polygons", "query_s", "processing_s"],
    )


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
def test_fig10_processing_costs(benchmark, n_polys):
    regions = _regions(n_polys)

    def preprocess():
        tris = [triangulate_polygon(p) for p in regions]
        index_s = harness.build_grid_gpu(regions, 1024)
        return tris, index_s

    start = time.perf_counter()
    _, index_s = preprocess()
    tri_s = time.perf_counter() - start - index_s
    benchmark.pedantic(preprocess, rounds=1, iterations=1)
    _costs_table().add_row(n_polys, tri_s, index_s)


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
def test_fig10_bounded(benchmark, taxi, n_polys):
    regions = _regions(n_polys)
    points = taxi.head(POINT_COUNT)
    engine = BoundedRasterJoin(
        epsilon=EPSILON_M, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, regions), rounds=1, iterations=1
    )
    _time_table().add_row("bounded-raster", n_polys, result.stats.query_s,
                          result.stats.processing_s)


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
def test_fig10_accurate(benchmark, taxi, n_polys):
    regions = _regions(n_polys)
    points = taxi.head(POINT_COUNT)
    engine = AccurateRasterJoin(
        resolution=1024, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, regions), rounds=1, iterations=1
    )
    _time_table().add_row("accurate-raster", n_polys, result.stats.query_s,
                          result.stats.processing_s)


@pytest.mark.benchmark(group="fig10")
@pytest.mark.parametrize("n_polys", POLYGON_COUNTS)
def test_fig10_index_join(benchmark, taxi, n_polys):
    regions = _regions(n_polys)
    points = taxi.head(POINT_COUNT)
    engine = IndexJoin(
        mode="gpu", grid_resolution=1024,
        device=GPUDevice(capacity_bytes=DEVICE_BYTES),
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, regions), rounds=1, iterations=1
    )
    _time_table().add_row("index-join-gpu", n_polys, result.stats.query_s,
                          result.stats.processing_s)


@pytest.mark.benchmark(group="fig10")
def test_fig10_bounded_flatness(benchmark, taxi):
    """The paper's claim: increasing the polygon count has almost no
    effect on the bounded variant (processing of points and polygons is
    decoupled).  Verify the largest/smallest processing ratio stays small
    compared to the 16x polygon growth."""
    points = taxi.head(POINT_COUNT)

    def run(n_polys):
        engine = BoundedRasterJoin(epsilon=EPSILON_M, device=GPUDevice())
        return engine.execute(points, _regions(n_polys)).stats.processing_s

    small = run(POLYGON_COUNTS[0])
    big = benchmark.pedantic(
        lambda: run(POLYGON_COUNTS[-1]), rounds=1, iterations=1
    )
    growth = POLYGON_COUNTS[-1] / POLYGON_COUNTS[0]
    _time_table().add_row("bounded growth ratio", POLYGON_COUNTS[-1],
                          big / max(small, 1e-12), growth)
    assert big / max(small, 1e-12) < growth / 2
