"""Figure 11: scaling with the number of attribute constraints.

The paper incrementally applies 0-5 constraints on taxi attributes at two
input sizes — one fitting device memory, one not — and breaks the
out-of-core time into transfer and processing.  Expected shape: transfer
time grows with each constraint (the filtered attribute columns join the
vertex payload), while processing time can even shrink because discarded
points skip the rest of the pipeline.
"""

import pytest

from benchmarks import harness
from repro import BoundedRasterJoin, Filter, GPUDevice

#: The paper uses 85M (in-memory) and 226M (out-of-core) points; scaled so
#: SMALL fits the device with all five attribute columns while LARGE needs
#: batching at every constraint count.  ε = 20 m keeps the full-resolution
#: FBO (~36 MB) resident alongside the point batches.
SMALL = 500_000
LARGE = 3_000_000
DEVICE_BYTES = 60_000_000
EPSILON_M = 20.0

#: Conjunctive constraints added one at a time, like the paper's sweep.
CONSTRAINTS = [
    Filter("hour", ">=", 6),
    Filter("passengers", "<=", 4),
    Filter("distance", ">", 0.5),
    Filter("fare", "<", 60.0),
    Filter("tip", ">=", 0.0),
]


def _table():
    return harness.table(
        "fig11",
        "Scaling with number of attribute constraints (ε = 20 m)",
        [
            "points",
            "constraints",
            "query_s",
            "transfer_s",
            "processing_s",
            "bytes_transferred",
            "points_filtered_out",
        ],
    )


def _run(benchmark, taxi, n, k):
    points = taxi.head(n)
    filters = CONSTRAINTS[:k]
    engine = BoundedRasterJoin(
        epsilon=EPSILON_M, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
    )
    result = benchmark.pedantic(
        lambda: engine.execute(points, _hoods, filters=filters),
        rounds=1, iterations=1,
    )
    stats = result.stats
    _table().add_row(
        n, k, stats.query_s, stats.transfer_s, stats.processing_s,
        stats.bytes_transferred, stats.points_filtered_out,
    )
    return stats


_hoods = None


@pytest.fixture(autouse=True)
def _bind_hoods(neighborhoods):
    global _hoods
    _hoods = neighborhoods


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("k", list(range(6)))
def test_fig11_inmemory(benchmark, taxi, k):
    _run(benchmark, taxi, SMALL, k)


@pytest.mark.benchmark(group="fig11")
@pytest.mark.parametrize("k", list(range(6)))
def test_fig11_outofcore(benchmark, taxi, k):
    stats = _run(benchmark, taxi, LARGE, k)
    if k > 0:
        assert stats.points_filtered_out > 0


@pytest.mark.benchmark(group="fig11")
def test_fig11_transfer_grows_with_constraints(benchmark, taxi):
    """More constrained columns -> strictly more bytes moved (the paper's
    core observation for this figure)."""
    points = taxi.head(LARGE)

    def run(k):
        engine = BoundedRasterJoin(
            epsilon=EPSILON_M, device=GPUDevice(capacity_bytes=DEVICE_BYTES)
        )
        return engine.execute(
            points, _hoods, filters=CONSTRAINTS[:k]
        ).stats.bytes_transferred

    none = run(0)
    five = benchmark.pedantic(lambda: run(5), rounds=1, iterations=1)
    assert five > none
