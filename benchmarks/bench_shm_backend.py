"""Shared-memory data plane: resident spawn pool vs fork-per-dispatch.

The closure-mode :class:`~repro.exec.backend.ProcessBackend` pays a pool
fork on every dispatch (its tasks are unpicklable closures) plus a
pickle of every worker product on the way home.  The shm data plane
removes both: partition sub-chunks live in named shared-memory segments
exported once, tile tasks become tiny picklable descriptors served by a
persistent pool of spawned workers, and accumulators return through a
shared result buffer.  This benchmark runs the same warm 16-tile query
through both modes and asserts

* every cell is **bit-identical** to the serial reference — worker
  count, dispatch mode, and the shm tier never change a single bit;
* the resident pool answers warm repeated queries at least **2x**
  faster than fork-per-dispatch (the acceptance bar of the shm PR);
* the warm resident queries really did reuse the pool
  (``pool: resident-reused`` — no respawn, no re-export);
* teardown leaves **zero** live shared-memory segments.

Results are written to ``BENCH_shm.json`` at the repository root so
later PRs have a machine-readable perf trajectory to regress against.
"""

import gc
import glob
import json
import time
from pathlib import Path

import numpy as np
import pytest

from benchmarks import harness
from repro import (
    AccurateRasterJoin,
    EngineConfig,
    GPUDevice,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.data import generate_voronoi_regions
from repro.exec import shm
from repro.geometry.bbox import BBox

POINT_ROWS = 200_000
RESOLUTION = 1024
MAX_FBO = 256          # 1024^2 canvas over 256^2 FBOs -> 4x4 = 16 tiles
WORKERS = 4
EXTENT = BBox(0.0, 0.0, 1000.0, 1000.0)
REPEATS = 5
RESULT_JSON = Path(__file__).resolve().parent.parent / "BENCH_shm.json"


def _table():
    return harness.table(
        "shm_backend",
        "Resident shm workers vs fork-per-dispatch (warm 16-tile query)",
        ["cell", "workers", "wall_s", "speedup_vs_fork", "pool",
         "bit_identical"],
    )


@pytest.fixture(scope="module")
def workload():
    rng = np.random.default_rng(7)
    points = PointDataset(
        rng.uniform(EXTENT.xmin, EXTENT.xmax, POINT_ROWS),
        rng.uniform(EXTENT.ymin, EXTENT.ymax, POINT_ROWS),
        {"val": rng.normal(10.0, 3.0, POINT_ROWS)},
    )
    polygons = generate_voronoi_regions(16, EXTENT, seed=7)
    return points, polygons


def _engine(backend: str, workers: int, use_shm: bool,
            session: QuerySession) -> AccurateRasterJoin:
    return AccurateRasterJoin(
        resolution=RESOLUTION,
        device=GPUDevice(max_resolution=MAX_FBO),
        session=session,
        config=EngineConfig(
            backend=backend, workers=workers, shm=use_shm,
        ),
    )


def _timed_best(engine, points, polygons, aggregate):
    """Best-of-N wall time of a warm query."""
    best = float("inf")
    last = None
    for _ in range(REPEATS):
        start = time.perf_counter()
        last = engine.execute(points, polygons, aggregate=aggregate)
        best = min(best, time.perf_counter() - start)
        assert last.stats.prepared_hits == 1
    return best, last


def _assert_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@pytest.mark.benchmark(group="shm-backend")
def test_shm_resident_pool_smoke(benchmark, workload):
    points, polygons = workload
    aggregate = Sum("val")
    table = _table()
    record = {
        "benchmark": "shm_backend",
        "points": POINT_ROWS,
        "resolution": RESOLUTION,
        "max_fbo": MAX_FBO,
        "workers": WORKERS,
        "repeats": REPEATS,
        "cells": {},
    }

    # Serial reference: the bits every other cell must reproduce.
    session = QuerySession()
    serial = _engine("serial", 1, False, session)
    reference = serial.execute(points, polygons, aggregate=aggregate)
    assert reference.stats.extra["tiles"] == 16, reference.stats.extra
    serial.close()
    session.invalidate()

    cells = {
        "fork@4w": dict(backend="process", shm=False),
        "resident@4w": dict(backend="process", shm=True),
    }
    timings: dict[str, float] = {}
    results: dict[str, object] = {}
    pool_events: dict[str, str] = {}
    for cell, spec in cells.items():
        session = QuerySession(shm=spec["shm"])
        engine = _engine(spec["backend"], WORKERS, spec["shm"], session)
        cold = engine.execute(points, polygons, aggregate=aggregate)
        assert cold.stats.extra["partition"] == "on", cold.stats.extra
        if spec["shm"]:
            assert shm.REGISTRY.live_segments() > 0, (
                "shm tier produced no segments"
            )
        wall, warm = _timed_best(engine, points, polygons, aggregate)
        timings[cell] = wall
        results[cell] = warm
        pool_events[cell] = warm.stats.extra["pool"]
        engine.backend.close()
        engine.close()
        session.invalidate()

    for cell, wall in timings.items():
        _assert_identical(reference, results[cell], cell)
        speedup = timings["fork@4w"] / wall
        table.add_row(cell, WORKERS, wall, speedup, pool_events[cell], True)
        record["cells"][cell] = {
            "workers": WORKERS,
            "wall_s": wall,
            "speedup_vs_fork": speedup,
            "pool": pool_events[cell],
            "bit_identical": True,
        }

    # The persistent spawn pool really served the warm queries.
    assert pool_events["resident@4w"] == "resident-reused", pool_events
    assert pool_events["fork@4w"] == "forked", pool_events

    benchmark.pedantic(lambda: None, rounds=1, iterations=1)

    # ------------------------------------------------------------------
    # Acceptance bars + the machine-readable trajectory record.
    # ------------------------------------------------------------------
    speedup = timings["fork@4w"] / timings["resident@4w"]
    record["speedup_resident_vs_fork"] = speedup
    gc.collect()
    leftovers = glob.glob(f"/dev/shm/{shm.SHM_PREFIX}-*")
    record["live_segments_after_teardown"] = shm.REGISTRY.live_segments()
    record["dev_shm_leftovers"] = leftovers
    record["metrics"] = harness.metrics_snapshot()
    RESULT_JSON.write_text(json.dumps(record, indent=2, sort_keys=True))

    assert speedup >= 2.0, (
        f"resident pool answers warm queries only {speedup:.2f}x faster "
        f"than fork-per-dispatch at {WORKERS} workers (need >= 2x)"
    )
    assert shm.REGISTRY.live_segments() == 0, (
        "registry still holds segments after teardown"
    )
    assert not leftovers, f"stray /dev/shm segments: {leftovers}"
