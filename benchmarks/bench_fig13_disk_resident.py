"""Figure 13: performance on disk-resident data (Twitter ⋈ Counties).

The paper streams the 2.29B-tweet dataset from SSD because it exceeds main
memory; query time becomes disk-bound while pure processing time stays
consistent with the in-memory runs.  We reproduce the pipeline with the
on-disk column store: chunked scans feed each engine, I/O seconds are
accounted separately from processing, and the table reports both — the
(left)/(right) panels of the figure.
"""

import numpy as np
import pytest

from benchmarks import harness
from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice, IndexJoin
from repro.data import ColumnStore

SIZES = [500_000, 1_000_000, 1_500_000]
EPSILON_M = 1_000.0  # the paper's ε for the continental county extent
CHUNK_ROWS = 250_000


def _table():
    return harness.table(
        "fig13",
        "Disk-resident scaling, Twitter ⋈ Counties (ε = 1 km)",
        ["engine", "points", "total_s", "io_s", "processing_s"],
    )


@pytest.fixture(scope="module")
def store(tmp_path_factory, twitter):
    root = tmp_path_factory.mktemp("twitter_store")
    return ColumnStore.write(root / "twitter", twitter)


def _scan_join(store, engine, polygons, limit):
    """Streamed scan-join; returns (values, io_s, processing_s).

    Uses the engines' streaming mode: point chunks accumulate into shared
    framebuffers and the polygon pass runs once (per tile), matching how
    the paper's implementation "reads data from disk as and when required
    to transfer to the GPU".
    """
    io_total = [0.0]

    def chunks():
        for chunk, read_s in store.scan(
            rows_per_chunk=CHUNK_ROWS, columns=("x", "y"), limit=limit
        ):
            io_total[0] += read_s
            yield chunk

    result = engine.execute_stream(chunks, polygons)
    return result.values, io_total[0], result.stats.query_s


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("n", SIZES)
def test_fig13_bounded(benchmark, store, counties, n):
    engine = BoundedRasterJoin(epsilon=EPSILON_M, device=GPUDevice())
    values, io_s, proc_s = benchmark.pedantic(
        lambda: _scan_join(store, engine, counties, n), rounds=1, iterations=1
    )
    _table().add_row("bounded-raster", n, io_s + proc_s, io_s, proc_s)
    assert values.sum() > 0


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("n", SIZES)
def test_fig13_accurate(benchmark, store, counties, n):
    engine = AccurateRasterJoin(resolution=1024, device=GPUDevice())
    values, io_s, proc_s = benchmark.pedantic(
        lambda: _scan_join(store, engine, counties, n), rounds=1, iterations=1
    )
    _table().add_row("accurate-raster", n, io_s + proc_s, io_s, proc_s)


@pytest.mark.benchmark(group="fig13")
@pytest.mark.parametrize("n", SIZES)
def test_fig13_index_join(benchmark, store, counties, n):
    engine = IndexJoin(mode="gpu", grid_resolution=1024, device=GPUDevice())
    values, io_s, proc_s = benchmark.pedantic(
        lambda: _scan_join(store, engine, counties, n), rounds=1, iterations=1
    )
    _table().add_row("index-join-gpu", n, io_s + proc_s, io_s, proc_s)


@pytest.mark.benchmark(group="fig13")
def test_fig13_disk_equals_memory_results(benchmark, store, twitter, counties):
    """Scanning from disk must not change answers — only add I/O time."""
    limit = SIZES[0]
    engine = BoundedRasterJoin(epsilon=EPSILON_M)
    disk_values, _, _ = benchmark.pedantic(
        lambda: _scan_join(store, engine, counties, limit),
        rounds=1, iterations=1,
    )
    memory_values = engine.execute(twitter.head(limit), counties).values
    assert np.array_equal(disk_values, memory_values)
