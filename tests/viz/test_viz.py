"""Unit tests for colormaps, choropleths, JND analysis, and PPM output."""

import numpy as np
import pytest

from repro.errors import RasterJoinError
from repro.geometry.polygon import PolygonSet, rectangle
from repro.viz.colormap import VIRIDIS_LIKE, YLORRD_LIKE, SequentialColormap
from repro.viz.heatmap import choropleth_raster, normalize_values, render_choropleth
from repro.viz.jnd import JND_THRESHOLD, jnd_report, max_normalized_difference
from repro.viz.ppm import write_pgm, write_ppm


class TestColormap:
    def test_endpoints(self):
        rgb = VIRIDIS_LIKE(np.asarray([0.0, 1.0]))
        assert np.allclose(rgb[0], (0.267, 0.005, 0.329), atol=1e-9)
        assert np.allclose(rgb[1], (0.993, 0.906, 0.144), atol=1e-9)

    def test_clipping(self):
        rgb = VIRIDIS_LIKE(np.asarray([-1.0, 2.0]))
        assert np.allclose(rgb[0], VIRIDIS_LIKE(np.asarray([0.0]))[0])

    def test_nan_is_gray(self):
        rgb = YLORRD_LIKE(np.asarray([np.nan]))
        assert np.allclose(rgb[0], (0.85, 0.85, 0.85))

    def test_monotone_in_luminance_order(self):
        """Interpolation stays within stop range and varies smoothly."""
        vals = np.linspace(0, 1, 100)
        rgb = VIRIDIS_LIKE(vals)
        assert rgb.min() >= 0.0 and rgb.max() <= 1.0

    def test_to_bytes(self):
        out = VIRIDIS_LIKE.to_bytes(np.asarray([0.5]))
        assert out.dtype == np.uint8

    def test_invalid_stops(self):
        with pytest.raises(RasterJoinError):
            SequentialColormap("bad", [(0, 0, 0)])
        with pytest.raises(RasterJoinError):
            SequentialColormap("bad", [(0, 0, 0), (2, 0, 0)])


class TestNormalize:
    def test_min_max(self):
        out = normalize_values(np.asarray([2.0, 4.0, 6.0]))
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_constant_maps_to_half(self):
        out = normalize_values(np.asarray([3.0, 3.0]))
        assert out.tolist() == [0.5, 0.5]

    def test_nan_passthrough(self):
        out = normalize_values(np.asarray([1.0, np.nan, 3.0]))
        assert np.isnan(out[1]) and out[0] == 0.0


class TestChoropleth:
    @pytest.fixture
    def two_squares(self):
        return PolygonSet([rectangle(0, 0, 10, 10), rectangle(10, 0, 20, 10)])

    def test_regions_painted_with_their_values(self, two_squares):
        raster = choropleth_raster(two_squares, np.asarray([1.0, 3.0]), 64)
        left = raster[raster.shape[0] // 2, 5]
        right = raster[raster.shape[0] // 2, 40]
        assert left == 0.0 and right == 1.0  # normalized values

    def test_background_nan(self, two_squares):
        raster = choropleth_raster(two_squares, np.asarray([1.0, 3.0]), 64)
        assert np.isnan(raster).sum() >= 0  # squares tile fully, may be 0

    def test_value_count_mismatch(self, two_squares):
        with pytest.raises(RasterJoinError):
            choropleth_raster(two_squares, np.asarray([1.0]), 64)

    def test_render_rgb_shape(self, two_squares):
        img = render_choropleth(two_squares, np.asarray([1.0, 2.0]), 32)
        assert img.ndim == 3 and img.shape[2] == 3 and img.dtype == np.uint8


class TestJnd:
    def test_identical_results(self):
        vals = np.asarray([1.0, 5.0, 9.0])
        report = jnd_report(vals, vals)
        assert report.max_difference == 0.0
        assert report.indistinguishable

    def test_small_error_indistinguishable(self):
        accurate = np.asarray([100.0, 500.0, 900.0])
        approx = accurate + np.asarray([0.5, -0.7, 0.2])
        report = jnd_report(approx, accurate)
        assert report.indistinguishable
        assert report.perceivable_regions == 0

    def test_large_error_perceivable(self):
        accurate = np.asarray([100.0, 500.0, 900.0])
        approx = np.asarray([100.0, 900.0, 900.0])
        report = jnd_report(approx, accurate)
        assert not report.indistinguishable
        assert report.perceivable_regions >= 1

    def test_threshold_is_one_ninth(self):
        assert abs(JND_THRESHOLD - 1 / 9) < 1e-15

    def test_max_normalized_difference(self):
        accurate = np.asarray([0.0, 10.0])
        approx = np.asarray([1.0, 10.0])
        assert abs(max_normalized_difference(approx, accurate) - 0.1) < 1e-12

    def test_str_verdict(self):
        report = jnd_report(np.asarray([1.0]), np.asarray([1.0]))
        assert "indistinguishable" in str(report)


class TestPpm:
    def test_ppm_round_trip_header(self, tmp_path):
        img = np.zeros((4, 6, 3), dtype=np.uint8)
        img[0, 0] = (255, 0, 0)
        path = write_ppm(tmp_path / "x.ppm", img)
        blob = path.read_bytes()
        assert blob.startswith(b"P6\n6 4\n255\n")
        assert blob[11:14] == b"\xff\x00\x00"

    def test_pgm(self, tmp_path):
        img = np.full((2, 3), 128, dtype=np.uint8)
        path = write_pgm(tmp_path / "x.pgm", img)
        assert path.read_bytes().startswith(b"P5\n3 2\n255\n")

    def test_type_validation(self, tmp_path):
        with pytest.raises(RasterJoinError):
            write_ppm(tmp_path / "x.ppm", np.zeros((4, 6, 3), dtype=np.float32))
        with pytest.raises(RasterJoinError):
            write_pgm(tmp_path / "x.pgm", np.zeros((4, 6, 3), dtype=np.uint8))
