"""Integration tests: tiered sessions over a shared artifact store.

Covers the warm-restart path (fresh session, populated store), the
byte-budget demotion tiers, concurrent store sharing, and the env /
EngineConfig wiring.
"""

import threading

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    EngineConfig,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.store import STORE_DIR_ENV_VAR
from tests.cache.test_query_session import shifted_regions
from tests.conftest import brute_force_counts


def run_accurate(points, regions, session, resolution=128):
    engine = AccurateRasterJoin(
        resolution=resolution, grid_resolution=64, session=session
    )
    return engine.execute(points, regions, aggregate=Sum("fare"))


class TestWarmRestart:
    def test_fresh_session_is_disk_warm(self, uniform_points, three_regions,
                                        tmp_path):
        store_dir = tmp_path / "store"
        cold = run_accurate(
            uniform_points, three_regions, QuerySession(store=ArtifactStore(store_dir))
        )
        assert cold.stats.prepared_misses == 1
        assert cold.stats.prepared_store_hits == 0

        # "Restart": a brand-new session (new process equivalent; the
        # benchmark exercises a literally fresh interpreter) over the
        # same directory.
        warm = run_accurate(
            uniform_points, three_regions, QuerySession(store=ArtifactStore(store_dir))
        )
        assert warm.stats.prepared_store_hits == 1
        assert warm.stats.prepared_misses == 1  # memory cache was empty
        assert warm.stats.prepared_hits == 0
        assert warm.stats.triangulation_s == 0.0
        assert warm.stats.index_build_s == 0.0
        assert warm.stats.extra["prepared"] == "store-hit"
        assert np.array_equal(warm.values, cold.values)

    def test_disk_warm_results_stay_exact(self, uniform_points, three_regions,
                                          tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_accurate(uniform_points, three_regions, QuerySession(store=store))
        warm = run_accurate(
            uniform_points, three_regions, QuerySession(store=store),
        )
        # Sum over counts-compatible check: count query against brute force.
        count = AccurateRasterJoin(
            resolution=128, grid_resolution=64,
            session=QuerySession(store=store),
        ).execute(uniform_points, three_regions)
        assert np.array_equal(
            count.values, brute_force_counts(uniform_points, three_regions)
        )
        assert warm.stats.prepared_store_hits == 1

    def test_changed_geometry_never_disk_hits(self, uniform_points,
                                              three_regions, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        run_accurate(uniform_points, three_regions, QuerySession(store=store))
        moved = shifted_regions(three_regions, 3.0)
        result = run_accurate(uniform_points, moved, QuerySession(store=store))
        assert result.stats.prepared_store_hits == 0
        assert np.array_equal(
            AccurateRasterJoin(resolution=128, grid_resolution=64)
            .execute(uniform_points, moved, aggregate=Sum("fare")).values,
            result.values,
        )

    def test_unchanged_artifact_not_rewritten(self, uniform_points,
                                              three_regions, tmp_path):
        """Write-through is change-driven: warm runs save nothing."""
        store = ArtifactStore(tmp_path / "store")
        session = QuerySession(store=store)
        run_accurate(uniform_points, three_regions, session)
        saves = store.saves
        run_accurate(uniform_points, three_regions, session)
        run_accurate(uniform_points, three_regions, session)
        assert store.saves == saves


class TestByteBudgetTiers:
    def test_partial_demotion_keeps_triangles_drops_coverage(
        self, uniform_points, three_regions, tmp_path
    ):
        store = ArtifactStore(tmp_path / "store")
        probe = QuerySession(store=False)
        run_accurate(uniform_points, three_regions, probe)
        artifact = next(iter(probe._entries.values()))
        full_bytes = artifact.nbytes
        partial_bytes = full_bytes - (
            sum(m.nbytes for m in artifact.boundary_masks.values())
            + sum(
                iy.nbytes + ix.nbytes
                for entries in artifact.coverage.values()
                for _, pieces in entries
                for iy, ix in pieces
            )
        )
        budget = (full_bytes + partial_bytes) // 2  # partial fits, full not

        session = QuerySession(byte_budget=budget, store=store)
        cold = run_accurate(uniform_points, three_regions, session)
        assert session.partial_demotions >= 1
        assert session.demotions == 0
        entry = next(iter(session._entries.values()))
        assert entry.triangles is not None and entry.grid is not None
        assert not entry.boundary_masks and not entry.coverage
        assert session.nbytes <= budget
        # The store kept the *full* artifact (coverage included).
        key = next(iter(session._entries))
        loaded = store.load(key, three_regions)
        assert loaded.coverage and loaded.boundary_masks

        # A warm query re-derives the dropped pieces bit-identically.
        warm = run_accurate(uniform_points, three_regions, session)
        assert warm.stats.prepared_hits == 1
        assert warm.stats.triangulation_s == 0.0
        assert np.array_equal(warm.values, cold.values)

    def test_partial_demotion_without_store(self, uniform_points,
                                            three_regions):
        """The byte budget works with no disk tier at all: coverage is
        simply dropped and re-derived."""
        session = QuerySession(byte_budget=1, store=False)
        cold = run_accurate(uniform_points, three_regions, session)
        warm = run_accurate(uniform_points, three_regions, session)
        assert session.partial_demotions >= 1
        assert np.array_equal(warm.values, cold.values)

    def test_full_demotion_spills_to_store(self, uniform_points,
                                           three_regions, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        session = QuerySession(byte_budget=1, store=store)
        cold = run_accurate(uniform_points, three_regions, session)
        # Tiny budget: even the partial artifact is over, so the entry
        # leaves memory entirely...
        assert session.demotions >= 1
        assert len(session) == 0
        # ...but lives on disk, so the repeat query is a store hit, not
        # a rebuild.
        warm = run_accurate(uniform_points, three_regions, session)
        assert warm.stats.prepared_store_hits == 1
        assert warm.stats.triangulation_s == 0.0
        assert np.array_equal(warm.values, cold.values)

    def test_capacity_eviction_demotes_not_drops(self, uniform_points,
                                                 three_regions, tmp_path):
        store = ArtifactStore(tmp_path / "store")
        session = QuerySession(capacity=1, store=store)
        other = shifted_regions(three_regions, 2.0)
        run_accurate(uniform_points, three_regions, session)
        run_accurate(uniform_points, other, session)
        assert len(session) == 1
        assert session.demotions == 1
        revisit = run_accurate(uniform_points, three_regions, session)
        assert revisit.stats.prepared_store_hits == 1
        assert revisit.stats.triangulation_s == 0.0

    def test_resident_partial_entry_grades_partial(self, uniform_points,
                                                   three_regions, tmp_path):
        """A stripped in-memory entry is what lookups will serve, so it
        grades "partial" even though the disk copy is full — the
        optimizer must not be promised a coverage replay that won't
        happen."""
        store = ArtifactStore(tmp_path / "s")
        probe = QuerySession(store=False)
        run_accurate(uniform_points, three_regions, probe)
        artifact = next(iter(probe._entries.values()))
        stripped = artifact.nbytes - artifact.strip_derived()

        session = QuerySession(byte_budget=stripped + 1024, store=store)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions)
        entry = next(iter(session._entries.values()))
        assert not entry.coverage  # budget stripped it
        spec = engine.prepared_spec()
        assert "coverage" in store.describe(
            next(iter(session._entries))
        )  # disk copy is full
        assert session.warmth(three_regions, spec) == "partial"
        # A session without the partial resident entry sees the disk
        # copy and grades full.
        assert QuerySession(store=store).warmth(three_regions, spec) == "full"

    def test_unserializable_spec_degrades_to_memory_only(
        self, three_regions, tmp_path
    ):
        """Spec values JSON can't address (possible through the public
        session API) must not crash lookups or checkpoints when a store
        is attached — the key just never touches disk."""
        session = QuerySession(store=ArtifactStore(tmp_path / "s"))
        spec = ("custom", object())
        entry, source = session.prepared_for(three_regions, spec)
        assert source == ""
        entry.ensure_triangles(three_regions)
        session.checkpoint()  # must not raise
        assert len(session.store) == 0
        assert session.contains(three_regions, spec)  # memory tier works
        assert session.warmth(three_regions, spec) == "partial"
        _, source = session.prepared_for(three_regions, spec)
        assert source == "memory"

    def test_bookkeeping_bounded_by_residency(self, uniform_points,
                                              three_regions, tmp_path):
        """A long-lived serving session (fresh fingerprint per rezoning
        stroke) must not accumulate side-map entries forever: markers
        live only as long as their key is resident."""
        session = QuerySession(
            capacity=1, store=ArtifactStore(tmp_path / "s")
        )
        for dx in range(5):
            run_accurate(
                uniform_points, shifted_regions(three_regions, float(dx)),
                session,
            )
        assert len(session) == 1
        assert len(session._persisted) <= 1
        assert len(session._sizes) <= 1
        assert len(session._unstorable) == 0

    def test_budget_pressure_never_rewrites_unchanged_artifacts(
        self, uniform_points, three_regions, tmp_path
    ):
        """Strip + lazy re-derivation must read as clean: the disk copy
        already holds the full artifact, so repeated budget-pressured
        queries save exactly once."""
        probe = QuerySession(store=False)
        run_accurate(uniform_points, three_regions, probe)
        full_bytes = probe.nbytes
        session = QuerySession(
            byte_budget=full_bytes - 1, store=ArtifactStore(tmp_path / "s")
        )
        for _ in range(3):
            run_accurate(uniform_points, three_regions, session)
        assert session.partial_demotions >= 2  # pressure every round
        assert session.store.saves == 1

    def test_byte_budget_parses_size_strings(self):
        assert QuerySession(byte_budget="2M").byte_budget == 2 << 20

    def test_externally_evicted_pair_is_resaved(self, uniform_points,
                                                three_regions, tmp_path):
        """store.clear() (or another process's disk-budget eviction)
        must not permanently disable write-through for a key the session
        still believes is persisted."""
        store = ArtifactStore(tmp_path / "s")
        session = QuerySession(store=store)
        run_accurate(uniform_points, three_regions, session)
        assert len(store) == 1
        store.clear()
        run_accurate(uniform_points, three_regions, session)  # memory-warm
        assert len(store) == 1  # checkpoint noticed and re-saved
        warm = run_accurate(
            uniform_points, three_regions, QuerySession(store=store)
        )
        assert warm.stats.prepared_store_hits == 1

    def test_plain_session_skips_size_accounting(self, monkeypatch,
                                                 three_regions):
        """No store + no byte budget = PR 1 behavior: lookups never walk
        artifact bytes."""
        from repro.cache import prepared as prepared_module

        session = QuerySession(store=False)
        session.prepared_for(three_regions, ("spec",))

        def boom(self):
            raise AssertionError("nbytes walked on a plain-session lookup")

        monkeypatch.setattr(
            prepared_module.PreparedPolygons, "nbytes", property(boom)
        )
        _, hit = session.prepared_for(three_regions, ("spec",))
        assert hit == "memory"

    def test_warm_checkpoints_skip_byte_walk(self, uniform_points,
                                             three_regions, tmp_path,
                                             monkeypatch):
        """Unchanged entries are recognized by their O(1) content
        signature: a warm query's checkpoint re-measures nothing."""
        from repro.cache import prepared as prepared_module

        session = QuerySession(store=ArtifactStore(tmp_path / "s"))
        run_accurate(uniform_points, three_regions, session)

        def boom(self):
            raise AssertionError("byte walk on an unchanged artifact")

        monkeypatch.setattr(
            prepared_module.PreparedPolygons, "nbytes", property(boom)
        )
        warm = run_accurate(uniform_points, three_regions, session)
        assert warm.stats.prepared_hits == 1

    def test_path_store_honors_env_budget(self, tmp_path, monkeypatch):
        from repro.store import STORE_BUDGET_ENV_VAR

        monkeypatch.setenv(STORE_BUDGET_ENV_VAR, "3M")
        session = QuerySession(store=str(tmp_path / "p"))
        assert session.store.disk_budget == 3 << 20


class TestSharedStoreConcurrency:
    def test_two_sessions_share_one_directory(self, uniform_points,
                                              three_regions, tmp_path):
        store_dir = tmp_path / "shared"
        a = QuerySession(store=ArtifactStore(store_dir))
        b = QuerySession(store=ArtifactStore(store_dir))
        cold = run_accurate(uniform_points, three_regions, a)
        warm = run_accurate(uniform_points, three_regions, b)
        assert warm.stats.prepared_store_hits == 1
        assert np.array_equal(warm.values, cold.values)

    def test_no_torn_reads_under_concurrent_writers(self, uniform_points,
                                                    three_regions, tmp_path):
        """Writers repeatedly replacing a pair never expose a torn state:
        every concurrent load returns either None or a fully validated,
        bit-identical artifact."""
        store_dir = tmp_path / "hammered"
        seed_session = QuerySession(store=ArtifactStore(store_dir))
        expected = run_accurate(uniform_points, three_regions, seed_session)
        key = next(iter(seed_session._entries))
        artifact = seed_session._entries[key]

        stop = threading.Event()
        failures: list[str] = []

        def writer():
            writer_store = ArtifactStore(store_dir)
            while not stop.is_set():
                writer_store.save(key, artifact)

        def reader():
            reader_store = ArtifactStore(store_dir)
            session = QuerySession(store=reader_store)
            for _ in range(8):
                loaded = reader_store.load(key, three_regions)
                if loaded is None:
                    continue  # a miss is acceptable; a wrong result is not
                result = AccurateRasterJoin(
                    resolution=128, grid_resolution=64, session=session
                ).execute(uniform_points, three_regions, aggregate=Sum("fare"))
                if not np.array_equal(result.values, expected.values):
                    failures.append("diverged")
                session.invalidate()

        threads = [threading.Thread(target=writer) for _ in range(2)] + [
            threading.Thread(target=reader) for _ in range(2)
        ]
        for t in threads:
            t.start()
        try:
            for t in threads[2:]:
                t.join()
        finally:
            stop.set()
            for t in threads[:2]:
                t.join()
        assert not failures


class TestWiring:
    def test_env_var_enables_store(self, uniform_points, three_regions,
                                   tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV_VAR, str(tmp_path / "env-store"))
        cold = run_accurate(uniform_points, three_regions, QuerySession())
        warm = run_accurate(uniform_points, three_regions, QuerySession())
        assert cold.stats.prepared_store_hits == 0
        assert warm.stats.prepared_store_hits == 1
        assert np.array_equal(warm.values, cold.values)

    def test_store_false_disables_env(self, uniform_points, three_regions,
                                      tmp_path, monkeypatch):
        monkeypatch.setenv(STORE_DIR_ENV_VAR, str(tmp_path / "env-store"))
        session = QuerySession(store=False)
        assert session.store is None
        run_accurate(uniform_points, three_regions, session)
        assert not (tmp_path / "env-store").exists() or not any(
            (tmp_path / "env-store").iterdir()
        )

    def test_engine_config_store_dir_creates_private_session(
        self, uniform_points, three_regions, tmp_path
    ):
        config = EngineConfig(store_dir=str(tmp_path / "cfg-store"))
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, config=config
        )
        assert engine.session is not None
        assert engine.session.store is not None
        cold = engine.execute(uniform_points, three_regions)
        fresh = AccurateRasterJoin(
            resolution=128, grid_resolution=64, config=config
        )
        warm = fresh.execute(uniform_points, three_regions)
        assert warm.stats.prepared_store_hits == 1
        assert np.array_equal(warm.values, cold.values)

    def test_planner_uses_config_store(self, uniform_points, three_regions,
                                       tmp_path):
        from repro.sql.planner import QueryPlanner

        sql = (
            "SELECT COUNT(*) FROM trips, zones "
            "WHERE trips.location INSIDE zones.geometry GROUP BY zones.id"
        )
        config = EngineConfig(store_dir=str(tmp_path / "sql-store"))

        def serve(statement):
            """One planner per statement = one server process."""
            planner = QueryPlanner(config=config)
            planner.register_points("trips", uniform_points)
            planner.register_regions("zones", three_regions)
            return planner.execute(statement)

        first = serve(sql)
        second = serve(sql)  # restarted server, same store
        assert second.stats.prepared_store_hits == 1
        assert np.array_equal(first.values, second.values)

    def test_env_budget_applies_to_config_store(self, tmp_path, monkeypatch):
        from repro.store import STORE_BUDGET_ENV_VAR

        monkeypatch.setenv(STORE_BUDGET_ENV_VAR, "2M")
        store = EngineConfig(store_dir=str(tmp_path / "s")).make_store()
        assert store.disk_budget == 2 << 20
        # An explicit budget wins over the environment.
        store = EngineConfig(
            store_dir=str(tmp_path / "s"), store_budget="1M"
        ).make_store()
        assert store.disk_budget == 1 << 20

    def test_save_failure_degrades_not_crashes(self, uniform_points,
                                               three_regions, tmp_path,
                                               monkeypatch):
        """A dead disk at persistence time must not fail the query whose
        result is already computed — warmth is forfeited, nothing else."""
        store = ArtifactStore(tmp_path / "dead")
        session = QuerySession(store=store)

        def broken_save(key, prepared):
            raise OSError("disk full")

        monkeypatch.setattr(store, "save", broken_save)
        result = run_accurate(uniform_points, three_regions, session)
        assert np.array_equal(
            result.values,
            AccurateRasterJoin(resolution=128, grid_resolution=64)
            .execute(uniform_points, three_regions, aggregate=Sum("fare"))
            .values,
        )
        assert store.save_failures >= 1
        assert len(store) == 0
        # The entry stayed dirty: a recovered disk persists on the next
        # checkpoint.
        monkeypatch.undo()
        run_accurate(uniform_points, three_regions, session)
        assert len(store) == 1

    def test_optimizer_config_store_keeps_memory_tier(self, tmp_path):
        from repro import RasterJoinOptimizer

        config = EngineConfig(store_dir=str(tmp_path / "opt-store"))
        opt = RasterJoinOptimizer(config=config)
        assert opt.session is not None and opt.session.store is not None
        bounded, accurate = opt._candidates(epsilon=5.0)
        assert bounded.session is opt.session
        assert accurate.session is opt.session

    def test_streamed_execution_checkpoints(self, uniform_points,
                                            three_regions, tmp_path):
        store = ArtifactStore(tmp_path / "stream-store")
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        whole = engine.execute_stream(
            lambda: uniform_points.batches(4_000), three_regions
        )
        assert store.saves >= 1
        warm = AccurateRasterJoin(
            resolution=128, grid_resolution=64,
            session=QuerySession(store=ArtifactStore(tmp_path / "stream-store")),
        ).execute(uniform_points, three_regions)
        assert warm.stats.prepared_store_hits == 1
        assert np.array_equal(warm.values, whole.values)
