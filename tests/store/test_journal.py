"""Unit tests for the store's patch journal: records, refs, replay,
compaction, and the crash-debris checksum guard."""

import json

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.cache import polygon_fingerprint
from repro.store import key_id


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def edited_regions(regions: PolygonSet, shrink: float = 0.25) -> PolygonSet:
    """Move one vertex of the (frame-interior) third polygon inward."""
    polys = list(regions)
    ring = polys[2].exterior.copy()
    center = ring.mean(axis=0)
    ring[0] = ring[0] + (center - ring[0]) * shrink
    polys[2] = Polygon(ring, holes=polys[2].holes)
    out = PolygonSet(polys)
    assert out.bbox.xmin == regions.bbox.xmin  # frame unchanged
    assert out.bbox.ymax == regions.bbox.ymax
    return out


def warm_engine(store, resolution=128):
    session = QuerySession(store=store)
    return session, AccurateRasterJoin(
        resolution=resolution, grid_resolution=64, session=session
    )


def run_edit_lineage(uniform_points, three_regions, store, edits=1):
    """Execute the base set plus ``edits`` successive edits; returns the
    per-step polygon sets and results."""
    session, engine = warm_engine(store)
    sets = [three_regions]
    results = [engine.execute(uniform_points, sets[0], aggregate=Sum("fare"))]
    for k in range(edits):
        sets.append(edited_regions(sets[-1], shrink=0.2 + 0.1 * k))
        results.append(
            engine.execute(uniform_points, sets[-1], aggregate=Sum("fare"))
        )
    return session, sets, results


class TestPatchSave:
    def test_edit_appends_record_and_ref_not_a_second_pair(
        self, uniform_points, three_regions, store
    ):
        session, sets, results = run_edit_lineage(
            uniform_points, three_regions, store
        )
        assert results[1].stats.extra["prepared"] == "delta"
        assert store.patch_saves == 1
        files = sorted(p.suffix for p in store.root.iterdir())
        assert files == [".journal", ".json", ".npz", ".ref"]
        root_kid = key_id(
            (polygon_fingerprint(sets[0]),)
            + tuple(
                AccurateRasterJoin(
                    resolution=128, grid_resolution=64
                ).prepared_spec()
            )
        )
        assert (store.root / f"{root_kid}.journal").exists()

    def test_patch_is_much_smaller_than_a_full_pair(
        self, uniform_points, three_regions, store
    ):
        run_edit_lineage(uniform_points, three_regions, store)
        journal = next(store.root.glob("*.journal"))
        base = next(store.root.glob("*.npz"))
        assert journal.stat().st_size < base.stat().st_size

    def test_chained_edits_share_one_journal(
        self, uniform_points, three_regions, store
    ):
        session, sets, results = run_edit_lineage(
            uniform_points, three_regions, store, edits=3
        )
        assert store.patch_saves == 3
        assert len(list(store.root.glob("*.journal"))) == 1
        assert len(list(store.root.glob("*.ref"))) == 3
        assert len(list(store.root.glob("*.npz"))) == 1


class TestReplay:
    def test_replay_is_bit_identical_after_restart(
        self, uniform_points, three_regions, store
    ):
        _, sets, results = run_edit_lineage(
            uniform_points, three_regions, store, edits=2
        )
        for polygons, live in zip(sets, results):
            fresh_session, fresh_engine = warm_engine(store)
            replayed = fresh_engine.execute(
                uniform_points, polygons, aggregate=Sum("fare")
            )
            assert replayed.stats.prepared_store_hits == 1
            assert replayed.stats.triangulation_s == 0.0
            assert replayed.stats.index_build_s == 0.0
            assert np.array_equal(replayed.values, live.values)
        assert store.patch_loads >= 2

    def test_describe_answers_from_the_ref(
        self, uniform_points, three_regions, store
    ):
        _, sets, _ = run_edit_lineage(uniform_points, three_regions, store)
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[1]),) + tuple(spec)
        fields = store.describe(key)
        assert fields is not None and "coverage" in fields
        assert store.contains(key)

    def test_ref_with_evicted_base_loads_as_miss(
        self, uniform_points, three_regions, store
    ):
        _, sets, _ = run_edit_lineage(uniform_points, three_regions, store)
        for pair in (*store.root.glob("*.npz"), *store.root.glob("*.json")):
            pair.unlink()
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[1]),) + tuple(spec)
        assert store.describe(key) is None
        assert store.load(key, sets[1]) is None  # degrade, never wrong
        # ...and the orphaned ref is NOT containment: dirty tracking
        # must not treat the entry as durable, or a demotion would drop
        # the only surviving copy.
        assert not store.contains(key)

    def test_orphaned_ref_never_loses_data_on_demotion(
        self, uniform_points, three_regions, store
    ):
        """The data-loss path: root evicted, ref orphaned, entry demoted
        — the session must re-save (full pair), not drop the only copy."""
        session, sets, results = run_edit_lineage(
            uniform_points, three_regions, store
        )
        for pair in (*store.root.glob("*.npz"), *store.root.glob("*.json"),
                     *store.root.glob("*.journal")):
            pair.unlink()
        session.invalidate(sets[0])  # keep only the edited entry resident
        session.checkpoint()  # dirty again (orphaned ref != durable)
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[1]),) + tuple(spec)
        assert store.load(key, sets[1]) is not None  # healed as a pair
        fresh_session, fresh_engine = warm_engine(store)
        replayed = fresh_engine.execute(
            uniform_points, sets[1], aggregate=Sum("fare")
        )
        assert replayed.stats.prepared_store_hits == 1
        assert np.array_equal(replayed.values, results[1].values)


class TestCrashDebris:
    """Satellite: a truncated trailing patch record must be detected by
    checksum and dropped, falling back to the last consistent state."""

    def test_truncated_trailing_record_is_dropped(
        self, uniform_points, three_regions, store
    ):
        _, sets, results = run_edit_lineage(
            uniform_points, three_regions, store, edits=2
        )
        journal = next(store.root.glob("*.journal"))
        blob = journal.read_bytes()
        journal.write_bytes(blob[:-37])  # tear the tail mid-record
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        # The second edit's record was torn: its key fails to load...
        key2 = (polygon_fingerprint(sets[2]),) + tuple(spec)
        assert store.load(key2, sets[2]) is None
        assert store.dropped_records >= 1
        # ...while the first edit (the last consistent state) and the
        # base both still replay bit-identically.
        key1 = (polygon_fingerprint(sets[1]),) + tuple(spec)
        loaded = store.load(key1, sets[1])
        assert loaded is not None
        fresh_session, fresh_engine = warm_engine(store)
        replayed = fresh_engine.execute(
            uniform_points, sets[1], aggregate=Sum("fare")
        )
        assert np.array_equal(replayed.values, results[1].values)

    def test_edit_after_debris_persists_as_a_full_pair(
        self, uniform_points, three_regions, store
    ):
        """A new edit persisted after a torn tail must stay loadable:
        appending past debris would commit an unreachable record (and
        truncating it would race concurrent appenders), so the save
        falls back to a full pair that re-roots the lineage."""
        session, sets, _ = run_edit_lineage(
            uniform_points, three_regions, store
        )
        journal = next(store.root.glob("*.journal"))
        with open(journal, "ab") as fh:
            fh.write(b"torn-partial-frame")
        sets.append(edited_regions(sets[-1], shrink=0.4))
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        live = engine.execute(uniform_points, sets[2], aggregate=Sum("fare"))
        assert live.stats.extra["prepared"] == "delta"
        assert store.patch_saves == 1  # only the pre-debris edit
        assert store.patch_fallbacks >= 1
        spec = engine.prepared_spec()
        key = (polygon_fingerprint(sets[2]),) + tuple(spec)
        loaded = store.load(key, sets[2])
        assert loaded is not None  # loadable as a full pair
        fresh_session, fresh_engine = warm_engine(store)
        replayed = fresh_engine.execute(
            uniform_points, sets[2], aggregate=Sum("fare")
        )
        assert replayed.stats.prepared_store_hits == 1
        assert np.array_equal(replayed.values, live.values)

    def test_corrupt_mid_journal_record_blocks_later_appends(
        self, uniform_points, three_regions, store
    ):
        """In-place corruption of an *interior* record (bit rot whose
        magic/length survive) must divert later edits to full pairs —
        a record appended past it would never be readable."""
        session, sets, _ = run_edit_lineage(
            uniform_points, three_regions, store
        )
        journal = next(store.root.glob("*.journal"))
        blob = bytearray(journal.read_bytes())
        blob[-10] ^= 0xFF  # corrupt the (only) record's payload
        journal.write_bytes(bytes(blob))
        sets.append(edited_regions(sets[-1], shrink=0.4))
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        live = engine.execute(uniform_points, sets[2], aggregate=Sum("fare"))
        assert store.patch_saves == 1  # no append landed after the rot
        assert store.patch_fallbacks >= 1
        spec = engine.prepared_spec()
        key = (polygon_fingerprint(sets[2]),) + tuple(spec)
        loaded = store.load(key, sets[2])
        assert loaded is not None
        fresh_session, fresh_engine = warm_engine(store)
        replayed = fresh_engine.execute(
            uniform_points, sets[2], aggregate=Sum("fare")
        )
        assert np.array_equal(replayed.values, live.values)

    def test_corrupt_record_checksum_is_dropped(
        self, uniform_points, three_regions, store
    ):
        _, sets, _ = run_edit_lineage(uniform_points, three_regions, store)
        journal = next(store.root.glob("*.journal"))
        blob = bytearray(journal.read_bytes())
        blob[-10] ^= 0xFF  # flip a payload byte: checksum must catch it
        journal.write_bytes(bytes(blob))
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[1]),) + tuple(spec)
        assert store.load(key, sets[1]) is None
        assert store.dropped_records >= 1

    def test_garbage_journal_never_raises(
        self, uniform_points, three_regions, store
    ):
        _, sets, _ = run_edit_lineage(uniform_points, three_regions, store)
        journal = next(store.root.glob("*.journal"))
        journal.write_bytes(b"not a journal at all")
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[1]),) + tuple(spec)
        assert store.load(key, sets[1]) is None
        # A rebuild-and-save heals the key with a full pair.
        session, engine = warm_engine(store)
        result = engine.execute(uniform_points, sets[1], aggregate=Sum("fare"))
        assert result.stats.prepared_store_hits == 0
        assert store.contains(key)


class TestCompaction:
    def test_record_cap_compacts_to_a_full_pair(
        self, uniform_points, three_regions, store, monkeypatch
    ):
        monkeypatch.setattr(ArtifactStore, "JOURNAL_MAX_RECORDS", 2)
        session, sets, _ = run_edit_lineage(
            uniform_points, three_regions, store, edits=3
        )
        assert store.patch_saves == 2
        assert store.patch_fallbacks >= 1
        # The compacted edit owns a real pair and loads without a replay.
        spec = AccurateRasterJoin(
            resolution=128, grid_resolution=64
        ).prepared_spec()
        key = (polygon_fingerprint(sets[3]),) + tuple(spec)
        before = store.patch_loads
        assert store.load(key, sets[3]) is not None
        assert store.patch_loads == before

    def test_size_factor_compacts_oversized_journals(
        self, uniform_points, three_regions, store, monkeypatch
    ):
        monkeypatch.setattr(ArtifactStore, "JOURNAL_SIZE_FACTOR", 0.0)
        run_edit_lineage(uniform_points, three_regions, store)
        # With a zero size allowance every patch falls back to full.
        assert store.patch_saves == 0
        assert store.patch_fallbacks == 1
        assert len(list(store.root.glob("*.npz"))) == 2

    def test_unpatchable_parent_falls_back_to_full_save(
        self, uniform_points, three_regions, store
    ):
        """A patch whose parent has no stored state writes a full pair
        instead of a dangling journal record."""
        session = QuerySession(store=False)  # base is never saved
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        result = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        assert result.stats.extra["prepared"] == "delta"
        key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        entry = session._entries[key]
        store.save_patch(key, entry)  # parent absent on this store
        assert store.patch_saves == 0
        assert store.patch_fallbacks == 1
        assert len(list(store.root.glob("*.ref"))) == 0
        assert store.load(key, after) is not None  # full pair instead

    def test_stripped_parent_falls_back_to_full_save(
        self, uniform_points, three_regions, store
    ):
        """A patch against a parent persisted *partial* (stripped of
        coverage) would silently lose coverage on replay — it must fall
        back to a full pair."""
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        base_key = (
            polygon_fingerprint(three_regions),
        ) + tuple(engine.prepared_spec())
        base = session._entries[base_key]
        base.strip_derived()
        store.save(base_key, base)  # partial parent on disk
        after = edited_regions(three_regions)
        result = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        store.save_patch(key, session._entries[key])
        assert store.patch_saves == 0
        assert store.patch_fallbacks == 1
        loaded = store.load(key, after)
        assert loaded is not None and loaded.coverage


class TestFullSaveOfDerivedEntries:
    def test_compacted_full_save_keeps_untouched_tiles(
        self, uniform_points, three_regions, store, monkeypatch
    ):
        """A delta-derived entry on a multi-tile canvas carries composed
        views for untouched tiles; when compaction forces it into a
        *full* pair, those tiles' coverage must be persisted too (the
        dirty polygon's contribution there is empty, not unknown)."""
        from repro import GPUDevice

        monkeypatch.setattr(ArtifactStore, "JOURNAL_MAX_RECORDS", 0)
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session,
            device=GPUDevice(max_resolution=48),
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        live = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        assert live.stats.extra["prepared"] == "delta"
        assert store.patch_fallbacks >= 1  # compacted to a full pair
        spec = engine.prepared_spec()
        key = (polygon_fingerprint(after),) + tuple(spec)
        fields = store.describe(key)
        assert fields is not None and "coverage" in fields
        loaded = store.load(key, after)
        base_key = (polygon_fingerprint(three_regions),) + tuple(spec)
        base = session._entries[base_key]
        # Every tile the base covers is present in the compacted pair.
        assert set(loaded.coverage) == set(base.coverage)
        fresh_engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64,
            session=QuerySession(store=store),
            device=GPUDevice(max_resolution=48),
        )
        replayed = fresh_engine.execute(
            uniform_points, after, aggregate=Sum("fare")
        )
        assert replayed.stats.prepared_store_hits == 1
        assert np.array_equal(replayed.values, live.values)


class TestBudgetGrouping:
    def test_journal_evicts_with_its_root_pair(
        self, uniform_points, three_regions, store
    ):
        run_edit_lineage(uniform_points, three_regions, store)
        entries = dict(
            (group, paths)
            for group, (_, _, paths) in store._scan().items()
        )
        journal = next(store.root.glob("*.journal"))
        root_group = journal.stem
        suffixes = sorted(p.suffix for p in entries[root_group])
        assert suffixes == [".journal", ".json", ".npz"]

    def test_clear_sweeps_journals_and_refs(
        self, uniform_points, three_regions, store
    ):
        run_edit_lineage(uniform_points, three_regions, store)
        store.clear()
        assert list(store.root.iterdir()) == []
