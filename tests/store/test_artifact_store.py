"""Unit tests for the on-disk artifact store: format, durability, budget."""

import json

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    BoundedRasterJoin,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.cache import polygon_fingerprint
from repro.errors import QueryError
from repro.store import FORMAT_VERSION, key_id, parse_bytes
from repro.store import format as artifact_format


@pytest.fixture
def store(tmp_path):
    return ArtifactStore(tmp_path / "artifacts")


def populated_session(points, regions, store, resolution=128):
    """A store-backed session warmed by one accurate execution."""
    session = QuerySession(store=store)
    engine = AccurateRasterJoin(
        resolution=resolution, grid_resolution=64, session=session
    )
    result = engine.execute(points, regions, aggregate=Sum("fare"))
    return session, engine, result


class TestKeying:
    def test_key_id_depends_on_spec_and_fingerprint(self, three_regions):
        fp = polygon_fingerprint(three_regions)
        assert key_id((fp, "accurate", 256)) != key_id((fp, "accurate", 512))
        assert key_id((fp, "accurate", 256)) != key_id(("other", "accurate", 256))
        assert key_id((fp, "accurate", 256)) == key_id((fp, "accurate", 256))

    def test_key_id_covers_format_version_and_dtype(self, three_regions,
                                                    monkeypatch):
        """A format bump addresses different file names, so stale files
        are invalidated without any migration code."""
        fp = polygon_fingerprint(three_regions)
        before = key_id((fp, "accurate", 256))
        monkeypatch.setattr(artifact_format, "FORMAT_VERSION",
                            FORMAT_VERSION + 1)
        assert key_id((fp, "accurate", 256)) != before
        monkeypatch.setattr(artifact_format, "FORMAT_VERSION", FORMAT_VERSION)
        monkeypatch.setattr(artifact_format, "COORD_DTYPE", ">f8")
        assert key_id((fp, "accurate", 256)) != before

    def test_fingerprint_is_explicitly_little_endian(self, three_regions):
        """The fingerprint hashes canonical little-endian buffers, so a
        big-endian clone of the coordinates hashes identically."""
        from repro.geometry.polygon import Polygon, PolygonSet

        swapped = PolygonSet(
            [
                Polygon(
                    p.exterior.astype(">f8"),
                    holes=[h.astype(">f8") for h in p.holes],
                )
                for p in three_regions
            ]
        )
        assert polygon_fingerprint(swapped) == polygon_fingerprint(
            three_regions
        )


class TestRoundTrip:
    def test_full_artifact_round_trips(self, uniform_points, three_regions,
                                       store):
        session, _, expected = populated_session(
            uniform_points, three_regions, store
        )
        key = next(iter(session._entries))
        artifact = session._entries[key]
        loaded = store.load(key, three_regions)
        assert loaded is not None
        assert loaded.canvas.width == artifact.canvas.width
        assert loaded.canvas.height == artifact.canvas.height
        assert loaded.canvas.extent.as_tuple() == artifact.canvas.extent.as_tuple()
        assert len(loaded.tiles) == len(artifact.tiles)
        assert len(loaded.triangles) == len(artifact.triangles)
        for mine, theirs in zip(artifact.triangles, loaded.triangles):
            assert len(mine) == len(theirs)
            for a, b in zip(mine, theirs):
                assert np.array_equal(a, b)
        assert np.array_equal(loaded.grid.cell_start, artifact.grid.cell_start)
        assert np.array_equal(loaded.grid.entries, artifact.grid.entries)
        assert set(loaded.boundary_masks) == set(artifact.boundary_masks)
        for idx, mask in artifact.boundary_masks.items():
            assert np.array_equal(loaded.boundary_masks[idx], mask)
        assert set(loaded.coverage) == set(artifact.coverage)
        for idx, entries in artifact.coverage.items():
            assert len(loaded.coverage[idx]) == len(entries)
            for (pid_a, pieces_a), (pid_b, pieces_b) in zip(
                entries, loaded.coverage[idx]
            ):
                assert pid_a == pid_b and len(pieces_a) == len(pieces_b)
                for (iy_a, ix_a), (iy_b, ix_b) in zip(pieces_a, pieces_b):
                    assert np.array_equal(iy_a, iy_b)
                    assert np.array_equal(ix_a, ix_b)
        # A session seeded only from disk replays bit-identically.
        other = QuerySession(store=store)
        replay = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=other
        ).execute(uniform_points, three_regions, aggregate=Sum("fare"))
        assert replay.stats.prepared_store_hits == 1
        assert replay.stats.triangulation_s == 0.0
        assert replay.stats.index_build_s == 0.0
        assert np.array_equal(replay.values, expected.values)

    def test_partial_artifact_round_trips_as_partial(
        self, uniform_points, three_regions, store
    ):
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        artifact = session._entries[key]
        artifact.strip_derived()
        store.save(key, artifact)
        loaded = store.load(key, three_regions)
        assert loaded.triangles is not None and loaded.grid is not None
        assert not loaded.boundary_masks and not loaded.coverage

    def test_mbr_arrays_round_trip(self, three_regions, store):
        from repro.cache.prepared import PreparedPolygons

        key = (polygon_fingerprint(three_regions), "mbr-arrays")
        artifact = PreparedPolygons(key)
        artifact.ensure_mbr_arrays(three_regions)
        store.save(key, artifact)
        loaded = store.load(key, three_regions)
        for a, b in zip(artifact.mbr_arrays, loaded.mbr_arrays):
            assert np.array_equal(a, b)

    def test_bounded_scanline_coverage_round_trips(
        self, uniform_points, three_regions, store
    ):
        session = QuerySession(store=store)
        engine = BoundedRasterJoin(
            resolution=128, use_scanline=True, session=session
        )
        expected = engine.execute(uniform_points, three_regions)
        other = QuerySession(store=store)
        replay = BoundedRasterJoin(
            resolution=128, use_scanline=True, session=other
        ).execute(uniform_points, three_regions)
        assert replay.stats.prepared_store_hits == 1
        assert np.array_equal(replay.values, expected.values)


class TestCorruptionTolerance:
    def _single_pair(self, store):
        (manifest_path,) = store.root.glob("*.json")
        return manifest_path.with_suffix(".npz"), manifest_path

    def test_missing_key_loads_none(self, three_regions, store):
        assert store.load(("nope", "spec"), three_regions) is None
        assert store.load_failures == 0  # absence is not corruption

    def test_truncated_npz_triggers_rebuild_not_crash(
        self, uniform_points, three_regions, store
    ):
        session, _, expected = populated_session(
            uniform_points, three_regions, store
        )
        key = next(iter(session._entries))
        npz_path, _ = self._single_pair(store)
        npz_path.write_bytes(npz_path.read_bytes()[: 100])
        assert store.load(key, three_regions) is None
        assert store.load_failures == 1
        # A fresh session rebuilds through the normal miss path...
        rebuilt = QuerySession(store=store)
        result = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=rebuilt
        ).execute(uniform_points, three_regions, aggregate=Sum("fare"))
        assert result.stats.prepared_store_hits == 0
        assert result.stats.prepared_misses == 1
        assert np.array_equal(result.values, expected.values)
        # ...and its write-through save repaired the pair on disk.
        assert store.load(key, three_regions) is not None

    def test_garbage_manifest_triggers_rebuild(self, uniform_points,
                                               three_regions, store):
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        _, manifest_path = self._single_pair(store)
        manifest_path.write_bytes(b"{not json at all")
        assert store.load(key, three_regions) is None
        assert store.load_failures == 1

    def test_checksum_mismatch_rejected(self, uniform_points, three_regions,
                                        store):
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        npz_path, _ = self._single_pair(store)
        payload = bytearray(npz_path.read_bytes())
        payload[len(payload) // 2] ^= 0xFF
        npz_path.write_bytes(bytes(payload))
        assert store.load(key, three_regions) is None
        assert store.load_failures == 1

    def test_version_mismatch_rejected(self, uniform_points, three_regions,
                                       store):
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        _, manifest_path = self._single_pair(store)
        manifest = json.loads(manifest_path.read_bytes())
        manifest["version"] = FORMAT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(key, three_regions) is None
        assert store.load_failures == 1

    def test_wrong_key_manifest_rejected(self, uniform_points, three_regions,
                                         store):
        """A manifest describing another key (e.g. a hash collision or a
        mis-copied file) never loads as this key's artifact."""
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        _, manifest_path = self._single_pair(store)
        manifest = json.loads(manifest_path.read_bytes())
        manifest["spec"] = ["accurate", 999, 64, 8192]
        manifest_path.write_text(json.dumps(manifest))
        assert store.load(key, three_regions) is None


class TestDiskBudget:
    def test_parse_bytes(self):
        assert parse_bytes(None) is None
        assert parse_bytes("") is None
        assert parse_bytes(123) == 123
        assert parse_bytes("123") == 123
        assert parse_bytes("2k") == 2048
        assert parse_bytes("1.5M") == int(1.5 * (1 << 20))
        assert parse_bytes("1G") == 1 << 30
        with pytest.raises(QueryError):
            parse_bytes("wat")
        with pytest.raises(QueryError):
            parse_bytes(0)

    def test_disk_cap_evicts_oldest(self, tmp_path, uniform_points,
                                    three_regions):
        import os
        import time

        from tests.cache.test_query_session import shifted_regions

        store = ArtifactStore(tmp_path / "capped")
        zonings = [
            three_regions,
            shifted_regions(three_regions, 1.0),
            shifted_regions(three_regions, 2.0),
        ]
        keys = []
        for i, zones in enumerate(zonings):
            session = QuerySession(store=store)
            AccurateRasterJoin(
                resolution=128, grid_resolution=64, session=session
            ).execute(uniform_points, zones)
            key = next(iter(session._entries))
            keys.append(key)
            # Deterministic recency order regardless of clock resolution.
            kid = key_id(key)
            stamp = time.time() - 100 + i
            for suffix in (".npz", ".json"):
                os.utime(store.root / f"{kid}{suffix}", (stamp, stamp))
        total = store.disk_bytes
        per_artifact = total // len(zonings)
        store.disk_budget = total - per_artifact // 2  # forces one eviction
        evicted = store.enforce_disk_budget()
        assert evicted == 1
        assert store.evictions == 1
        assert not store.contains(keys[0])  # oldest gone
        assert store.contains(keys[1]) and store.contains(keys[2])

    def test_oversized_artifact_rejected_not_admitted(
        self, tmp_path, uniform_points, three_regions
    ):
        """An artifact bigger than the whole disk budget is refused up
        front (admitting it would force the budget to wipe every other
        pair); the query still succeeds, memory-only, and checkpoints
        don't re-serialize the rejected artifact query after query."""
        import numpy as np

        store = ArtifactStore(tmp_path / "tiny", disk_budget=1)
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        first = engine.execute(uniform_points, three_regions)
        assert len(store) == 0
        assert store.rejected_saves == 1
        for _ in range(2):
            warm = engine.execute(uniform_points, three_regions)
        assert warm.stats.prepared_hits == 1
        assert np.array_equal(warm.values, first.values)
        assert store.rejected_saves == 1  # remembered, not retried

    def test_tuple_in_spec_round_trips(self, three_regions, store):
        """Specs containing sequences must validate after the JSON round
        trip (tuples come back as lists) — save and load must agree."""
        from repro.cache.prepared import PreparedPolygons

        key = (polygon_fingerprint(three_regions), "engine", (1, 2))
        artifact = PreparedPolygons(key)
        artifact.ensure_triangles(three_regions)
        store.save(key, artifact)
        loaded = store.load(key, three_regions)
        assert loaded is not None and store.load_failures == 0
        assert store.describe(key) == ["triangles"]

    def test_shrunk_artifact_is_retried_after_rejection(
        self, tmp_path, uniform_points, three_regions
    ):
        """An artifact rejected as oversized but later stripped below
        the cap must be saved on the next checkpoint — a partial pair on
        disk beats nothing after a restart."""
        probe = QuerySession(store=False)
        engine_probe = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=probe
        )
        engine_probe.execute(uniform_points, three_regions)
        key = next(iter(probe._entries))
        full = probe._entries[key]
        import io

        import numpy as np

        from repro.store import format as artifact_format

        def pair_bytes(artifact):
            arrays, _ = artifact_format.encode(artifact, key)
            buf = io.BytesIO()
            np.savez(buf, **arrays)
            return len(buf.getvalue())

        full_pair = pair_bytes(full)
        # Budget fits the partial pair but not the full one.
        store = ArtifactStore(
            tmp_path / "between", disk_budget=full_pair - 1
        )
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions)
        assert store.rejected_saves == 1 and len(store) == 0
        # Byte-budget pressure strips the entry; the smaller pair fits
        # and the next checkpoint persists it.
        session.byte_budget = 1
        engine.execute(uniform_points, three_regions)
        assert len(store) == 1
        assert "triangles" in store.describe(key)
        assert "coverage" not in store.describe(key)

    def test_oversized_save_never_evicts_other_artifacts(
        self, tmp_path, uniform_points, three_regions
    ):
        """The wipe scenario: a small-budget store holding real pairs
        must survive an attempted save of an artifact that exceeds the
        whole budget."""
        from tests.cache.test_query_session import shifted_regions

        store = ArtifactStore(tmp_path / "capped2")
        session = QuerySession(store=store)
        AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        ).execute(uniform_points, three_regions)
        key = next(iter(session._entries))
        resident = store.disk_bytes
        store.disk_budget = resident + 1024  # existing pair fits, barely
        big = QuerySession(store=store)
        AccurateRasterJoin(
            resolution=256, grid_resolution=64, session=big
        ).execute(uniform_points, shifted_regions(three_regions, 1.0))
        assert store.rejected_saves >= 1
        assert store.contains(key)  # the resident artifact survived


class TestHousekeeping:
    def test_contains_delete_clear(self, uniform_points, three_regions, store):
        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        assert store.contains(key)
        assert len(store) == 1
        assert store.delete(key)
        assert not store.contains(key)
        assert not store.delete(key)
        populated_session(uniform_points, three_regions, store)
        assert store.clear() == 1
        assert len(store) == 0

    def test_load_touches_mtime_for_lru(self, uniform_points, three_regions,
                                        store):
        import os

        session, _, _ = populated_session(uniform_points, three_regions, store)
        key = next(iter(session._entries))
        kid = key_id(key)
        npz_path = store.root / f"{kid}.npz"
        past = npz_path.stat().st_mtime - 3600
        for suffix in (".npz", ".json"):
            os.utime(store.root / f"{kid}{suffix}", (past, past))
        store.load(key, three_regions)
        assert npz_path.stat().st_mtime > past + 1800

    def test_orphan_payload_is_accounted_and_evictable(
        self, uniform_points, three_regions, store
    ):
        """A crash between the payload and manifest commits leaves an
        orphan .npz; it must show up in disk accounting, be evictable by
        the budget, and be swept by clear()."""
        session, _, _ = populated_session(uniform_points, three_regions, store)
        complete = store.disk_bytes
        orphan = store.root / ("f" * 32 + ".npz")
        orphan.write_bytes(b"x" * 4096)
        assert store.disk_bytes == complete + 4096
        import os
        import time

        past = time.time() - 3600
        os.utime(orphan, (past, past))  # oldest entry in the store
        store.disk_budget = complete + 1
        assert store.enforce_disk_budget() == 1
        assert not orphan.exists()
        key = next(iter(session._entries))
        assert store.contains(key)  # the real artifact survived
        orphan.write_bytes(b"x")
        store.clear()
        assert not any(store.root.iterdir())

    def test_numpy_scalar_spec_values_round_trip(self, uniform_points,
                                                 three_regions, store):
        """Engine parameters often come off NumPy sweeps; numpy-integer
        spec values must key and persist like their Python twins."""
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=np.int64(128), grid_resolution=np.int64(64),
            session=session,
        )
        cold = engine.execute(uniform_points, three_regions)
        assert len(store) == 1
        warm = AccurateRasterJoin(
            resolution=128, grid_resolution=64,
            session=QuerySession(store=store),
        ).execute(uniform_points, three_regions)
        # int64 and int spell the same key: the plain-int engine is warm.
        assert warm.stats.prepared_store_hits == 1
        assert np.array_equal(warm.values, cold.values)

    def test_aged_tmp_debris_is_accounted_and_evictable(
        self, uniform_points, three_regions, store
    ):
        import os
        import time

        populated_session(uniform_points, three_regions, store)
        complete = store.disk_bytes
        debris = store.root / ("a" * 32 + ".npz.tmp-123-456-deadbeef")
        debris.write_bytes(b"x" * 2048)
        fresh = store.root / ("b" * 32 + ".npz.tmp-123-456-cafecafe")
        fresh.write_bytes(b"y" * 2048)
        past = time.time() - 2 * store.TMP_GRACE_SECONDS
        os.utime(debris, (past, past))
        # Aged debris is visible; a live writer's fresh tmp is not.
        assert store.disk_bytes == complete + 2048
        store.disk_budget = complete + 1
        assert store.enforce_disk_budget() == 1
        assert not debris.exists()
        assert fresh.exists()

    def test_describe_rejects_truncated_payload(self, uniform_points,
                                                three_regions, store):
        """Warmth grading must not credit a pair whose payload is torn —
        execution would cold-rebuild, not replay."""
        session, engine, _ = populated_session(
            uniform_points, three_regions, store
        )
        key = next(iter(session._entries))
        assert store.describe(key) is not None
        npz_path = store.root / (key_id(key) + ".npz")
        npz_path.write_bytes(npz_path.read_bytes()[:100])
        assert store.describe(key) is None
        fresh = QuerySession(store=store)
        assert fresh.warmth(three_regions, engine.prepared_spec()) is None

    def test_empty_artifact_save_and_load(self, three_regions, store):
        """Even a field-less artifact round-trips (nothing crashes on a
        manifest with no arrays)."""
        from repro.cache.prepared import PreparedPolygons

        key = (polygon_fingerprint(three_regions), "empty")
        store.save(key, PreparedPolygons(key))
        loaded = store.load(key, three_regions)
        assert loaded is not None
        assert loaded.nbytes == 0
