"""Unit tests for the shared-memory data plane (repro.exec.shm).

The contract under test: segments are refcounted leases owned by the
creating process and unlinked exactly once (no ``/dev/shm`` leaks, no
double-unlink), descriptors rehydrate zero-copy in any process, chunks
pickle as descriptors only, and the partition cache's byte accounting
counts each shared segment once however many chunks alias it.
"""

import glob
import pickle

import numpy as np
import pytest

from repro.data.dataset import PointDataset
from repro.exec import shm
from repro.exec.shm import (
    SHM_PREFIX,
    SegmentCache,
    ShmArray,
    ShmChunk,
    export_chunk,
)


def _segment_file(name: str) -> bool:
    return bool(glob.glob(f"/dev/shm/{name}"))


@pytest.fixture(autouse=True)
def no_segment_leaks():
    """Every test starts and ends with an empty registry."""
    before = shm.REGISTRY.live_segments()
    yield
    assert shm.REGISTRY.live_segments() == before, (
        "test leaked shared-memory segments"
    )


class TestShmArray:
    def test_nbytes(self):
        ref = ShmArray("seg", "<f8", (4, 3), 64)
        assert ref.nbytes == 4 * 3 * 8

    def test_descriptor_is_picklable(self):
        ref = ShmArray("seg", "<i4", (7,), 0)
        assert pickle.loads(pickle.dumps(ref)) == ref


class TestRegistry:
    def test_create_names_carry_prefix_and_unlink_on_release(self):
        name, _ = shm.REGISTRY.create(128)
        assert name.startswith(SHM_PREFIX)
        assert _segment_file(name)
        shm.REGISTRY.release(name)
        assert not _segment_file(name)

    def test_refcounted_release(self):
        name, _ = shm.REGISTRY.create(64)
        shm.REGISTRY.retain(name)
        shm.REGISTRY.release(name)
        assert _segment_file(name), "segment unlinked with a lease live"
        shm.REGISTRY.release(name)
        assert not _segment_file(name)

    def test_release_of_unknown_name_is_a_noop(self):
        shm.REGISTRY.release("repro-shm-never-created")

    def test_export_array_roundtrip(self):
        data = np.arange(20, dtype=np.float64).reshape(4, 5)
        ref = shm.REGISTRY.export_array(data)
        out = shm.view(ref)
        np.testing.assert_array_equal(out, data)
        assert not out.flags.writeable
        with pytest.raises(ValueError):
            out[0, 0] = 1.0
        shm.REGISTRY.release(ref.segment)

    def test_writable_view_is_shared(self):
        ref = shm.REGISTRY.export_array(np.zeros(8))
        shm.view(ref, writable=True)[:] = 7.0
        np.testing.assert_array_equal(shm.view(ref), np.full(8, 7.0))
        shm.REGISTRY.release(ref.segment)

    def test_export_bytes_roundtrip(self):
        blob = b"prepared-state-blob"
        ref = shm.REGISTRY.export_bytes(blob)
        assert bytes(memoryview(shm.view(ref))) == blob
        shm.REGISTRY.release(ref.segment)

    def test_export_columns_packs_one_aligned_segment(self):
        cols = {
            "x": np.arange(11, dtype=np.float64),
            "flag": np.arange(11, dtype=np.int8),
            "y": np.arange(11, dtype=np.float64) * 2,
        }
        refs = shm.REGISTRY.export_columns(cols)
        segments = {ref.segment for ref in refs.values()}
        assert len(segments) == 1, "columns must share one segment"
        for ref in refs.values():
            assert ref.offset % 64 == 0
        for name, arr in cols.items():
            np.testing.assert_array_equal(shm.view(refs[name]), arr)
        shm.REGISTRY.release(segments.pop())

    def test_live_bytes_tracks_segments(self):
        assert shm.REGISTRY.live_bytes() == 0
        ref = shm.REGISTRY.export_array(np.zeros(1024))
        assert shm.REGISTRY.live_bytes() >= 8192
        shm.REGISTRY.release(ref.segment)
        assert shm.REGISTRY.live_bytes() == 0


class TestShmChunk:
    @pytest.fixture
    def points(self, rng):
        n = 500
        return PointDataset(
            rng.uniform(0, 100, n), rng.uniform(0, 100, n),
            {"val": rng.uniform(0, 1, n)},
        )

    def test_export_chunk_roundtrip(self, points):
        chunk = export_chunk(points)
        assert len(chunk) == len(points)
        assert chunk.column_names == ("x", "y", "val")
        assert len(chunk.segments) == 1
        for col in ("x", "y", "val"):
            np.testing.assert_array_equal(
                chunk.column(col), points.column(col)
            )
        chunk.release()

    def test_chunk_pickles_as_descriptors_only(self, points):
        chunk = export_chunk(points)
        clone = pickle.loads(pickle.dumps(chunk))
        # The clone resolves the same segments (owner-side here), but
        # holds no lease: releasing it must not unlink anything.
        np.testing.assert_array_equal(clone.column("x"), points.xs)
        clone.release()
        assert _segment_file(chunk.segments[0])
        np.testing.assert_array_equal(chunk.column("y"), points.ys)
        chunk.release()

    def test_release_is_idempotent(self, points):
        chunk = export_chunk(points)
        chunk.release()
        chunk.release()

    def test_gc_releases_the_lease(self, points):
        import gc

        chunk = export_chunk(points)
        name = chunk.segments[0]
        del chunk
        gc.collect()
        assert not _segment_file(name), "dropped chunk leaked its segment"

    def test_column_subset_export(self, points):
        chunk = export_chunk(points, columns=("x", "y"))
        assert chunk.column_names == ("x", "y")
        assert chunk.nbytes == points.xs.nbytes + points.ys.nbytes
        chunk.release()


class TestSegmentCache:
    def test_attach_once_then_reuse(self):
        ref = shm.REGISTRY.export_array(np.arange(16, dtype=np.int64))
        cache = SegmentCache()
        a = cache.buffer(ref.segment)
        b = cache.buffer(ref.segment)
        assert a.obj is b.obj, "second lookup must reuse the mapping"
        np.testing.assert_array_equal(
            np.frombuffer(a, dtype=np.int64), np.arange(16)
        )
        cache.close()
        shm.REGISTRY.release(ref.segment)

    def test_byte_bounded_lru_keeps_most_recent(self):
        refs = [
            shm.REGISTRY.export_array(np.zeros(1024)) for _ in range(3)
        ]
        cache = SegmentCache(byte_cap=2 * 8192)
        for ref in refs:
            cache.buffer(ref.segment)
        assert refs[0].segment not in cache._segments, "LRU did not evict"
        assert refs[2].segment in cache._segments
        cache.close()
        for ref in refs:
            shm.REGISTRY.release(ref.segment)

    def test_cap_never_evicts_the_only_mapping(self):
        ref = shm.REGISTRY.export_array(np.zeros(4096))
        cache = SegmentCache(byte_cap=16)  # far below the segment size
        cache.buffer(ref.segment)
        assert ref.segment in cache._segments
        cache.close()
        shm.REGISTRY.release(ref.segment)


class TestPartitionByteAccounting:
    """Satellite: the cache budget counts each shm segment once."""

    def test_shared_segment_counted_once(self, rng):
        from repro.cache.session import _partition_bytes

        points = PointDataset(
            rng.uniform(0, 10, 300), rng.uniform(0, 10, 300)
        )
        chunk = export_chunk(points, columns=("x", "y"))
        # The same chunk listed under two tiles (duplication across tile
        # borders) must not double-charge the budget.
        assert _partition_bytes([[chunk], [chunk]]) == chunk.nbytes
        chunk.release()

    def test_mixed_host_and_shm_chunks(self, rng):
        from repro.cache.session import _partition_bytes, _source_bytes

        points = PointDataset(
            rng.uniform(0, 10, 200), rng.uniform(0, 10, 200)
        )
        chunk = export_chunk(points, columns=("x", "y"))
        host = PointDataset(np.arange(50.0), np.arange(50.0))
        total = _partition_bytes([[chunk, host], [chunk]])
        assert total == chunk.nbytes + _source_bytes(host)
        chunk.release()
