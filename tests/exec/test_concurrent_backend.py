"""Backend + device behavior when several queries run at once.

The serving layer pins one backend instance into every engine, so its
worker pool is shared across concurrent queries: the pool size must
bound *total* tile concurrency, per-dispatch ``parallelism`` caps must
hold inside the shared pool, and the device's memory accounting must see
the overlap (the ``device="all"`` aggregate gauge added for serving).
"""

from __future__ import annotations

import threading
import time

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    EngineConfig,
    GPUDevice,
    QuerySession,
    ThreadBackend,
)
from repro.device import memory as device_memory
from repro.obs import metrics


class _ConcurrencyProbe:
    """Tracks the high-water mark of simultaneously running tasks."""

    def __init__(self) -> None:
        self.lock = threading.Lock()
        self.running = 0
        self.peak = 0

    def task(self):
        with self.lock:
            self.running += 1
            self.peak = max(self.peak, self.running)
        time.sleep(0.01)
        with self.lock:
            self.running -= 1
        return 1


class TestSharedPoolConcurrency:
    def test_pool_bounds_cross_query_tile_fanout(self):
        """Two queries fanning out through one backend share its cap."""
        backend = ThreadBackend(workers=2, persistent=True)
        probe = _ConcurrencyProbe()
        errors: list[BaseException] = []

        def dispatch() -> None:
            try:
                results = backend.run_tasks([probe.task] * 6)
                assert results == [1] * 6
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [threading.Thread(target=dispatch) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        backend.close()
        assert not errors, errors
        # The persistent pool holds `workers` threads total, so even two
        # concurrent dispatches cannot exceed it.
        assert probe.peak <= 2

    def test_parallelism_cap_holds_in_shared_pool(self):
        backend = ThreadBackend(workers=4, persistent=True)
        probe = _ConcurrencyProbe()
        results = backend.run_tasks([probe.task] * 8, parallelism=2)
        backend.close()
        assert results == [1] * 8
        assert probe.peak <= 2


class TestDeviceAccounting:
    def test_aggregate_peak_sees_cross_device_overlap(self):
        """Two queries' live allocations sum in the ``all`` gauge.

        The per-device ``device_peak_bytes`` gauge assumes one query at
        a time; with two devices (or two queries) holding memory
        simultaneously, only the module aggregate reflects the true
        footprint.
        """
        metrics.reset()
        # Size each allocation past the current aggregate peak so the
        # overlap is guaranteed to set a new high-water mark (and emit
        # the gauge) no matter what earlier tests allocated.
        nbytes = max(1 << 20, device_memory.aggregate_peak_bytes())
        device_a = GPUDevice(capacity_bytes=4 * nbytes, name="gpu-a")
        device_b = GPUDevice(capacity_bytes=4 * nbytes, name="gpu-b")
        barrier = threading.Barrier(2)
        overlap: list[int] = []
        errors: list[BaseException] = []

        def hold(device: GPUDevice) -> None:
            try:
                device._reserve(nbytes)
                barrier.wait(10.0)  # both allocations live right now
                overlap.append(device_memory.aggregate_allocated_bytes())
                barrier.wait(10.0)
                device._release(nbytes)
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hold, args=(d,))
            for d in (device_a, device_b)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(30.0)
        assert not errors, errors
        assert max(overlap) >= 2 * nbytes
        assert device_memory.aggregate_peak_bytes() >= 2 * nbytes
        # Each device-local peak saw only its own share.
        assert device_a.peak_allocated_bytes == nbytes
        assert device_b.peak_allocated_bytes == nbytes
        gauges = metrics.snapshot()["gauges"]
        assert gauges['device_peak_bytes{device="all"}'] >= 2 * nbytes

    def test_release_never_double_counts(self):
        device = GPUDevice(name="gpu-c")
        before = device_memory.aggregate_allocated_bytes()
        device._reserve(1024)
        device._release(1024)
        device._release(1024)  # over-release clamps, aggregate included
        assert device.allocated_bytes == 0
        assert device_memory.aggregate_allocated_bytes() == before


class TestConcurrentExecution:
    def test_concurrent_queries_through_shared_backend_bit_identical(
        self, uniform_points, three_regions
    ):
        """Thread-backend engines racing through one pool agree with serial."""
        session = QuerySession()
        reference = AccurateRasterJoin(
            resolution=128, session=session
        ).execute(uniform_points, three_regions)
        config = EngineConfig(backend="thread", workers=4).with_pinned_backend()
        results: dict[int, np.ndarray] = {}
        errors: list[BaseException] = []
        barrier = threading.Barrier(4)

        def run(worker: int) -> None:
            try:
                barrier.wait(10.0)
                engine = AccurateRasterJoin(
                    resolution=128, session=session, config=config
                )
                results[worker] = engine.execute(
                    uniform_points, three_regions
                ).values
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=run, args=(i,)) for i in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(60.0)
        config.backend.close()
        assert not errors, errors
        for values in results.values():
            assert np.array_equal(values, reference.values)
