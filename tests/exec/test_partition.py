"""Unit tests for tile-local point partitioning.

The partition stage must (1) conservatively cover every point each
tile's own transform maps inside it, (2) preserve original row order
within a tile, (3) split sub-chunks on the tile's batch-plan
boundaries, and (4) no-op cheaply on single-tile canvases.  Engine-level
bit-equality is pinned by ``tests/property/test_prop_partition.py`` and
the integration matrix; these tests pin the mechanism.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    EngineConfig,
    GPUDevice,
    PointDataset,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.device.memory import ResidentPointSet
from repro.errors import ExecutionBackendError
from repro.exec.config import PARTITION_ENV_VAR, EngineConfig as _Config
from repro.exec.partition import ResidentSubset, partition_chunk
from repro.geometry.bbox import BBox
from repro.geometry.polygon import rectangle
from repro.graphics.viewport import Canvas

EXTENT = BBox(0.0, 0.0, 100.0, 100.0)


def _canvas_and_tiles(resolution=96, max_res=48):
    canvas = Canvas.for_resolution(EXTENT, resolution)
    tiles = list(canvas.tiles(max_res))
    return canvas, tiles, max_res


def _partition(chunk, canvas, tiles, max_res, columns=("x", "y"),
               device=None, fbo_bytes=None):
    if fbo_bytes is None:
        fbo_bytes = [0] * len(tiles)
    return partition_chunk(
        chunk, canvas, tiles, max_res, columns, device, fbo_bytes
    )


class TestConservativeCoverage:
    def test_every_tile_inside_set_is_covered_in_order(self, rng):
        """Each tile's sub-chunks contain (at least) exactly the rows its
        own ``pixel_of`` maps inside, in original row order."""
        canvas, tiles, max_res = _canvas_and_tiles()
        n = 5_000
        chunk = PointDataset(
            rng.uniform(-5.0, 105.0, n), rng.uniform(-5.0, 105.0, n)
        )
        per_tile, _ = _partition(chunk, canvas, tiles, max_res)
        for tile, subs in zip(tiles, per_tile):
            got = np.concatenate(
                [sub.column("x") for sub in subs]
            ) if subs else np.array([])
            got_y = np.concatenate(
                [sub.column("y") for sub in subs]
            ) if subs else np.array([])
            _, _, inside = tile.pixel_of(chunk.xs, chunk.ys)
            want_idx = np.flatnonzero(inside)
            # Superset check with order: the wanted rows appear as a
            # subsequence... in fact candidate selection keeps original
            # order, so filtering the sub-chunks by the tile's own
            # inside-test must reproduce the wanted rows exactly.
            _, _, sub_inside = tile.pixel_of(got, got_y)
            np.testing.assert_array_equal(got[sub_inside], chunk.xs[want_idx])
            np.testing.assert_array_equal(got_y[sub_inside], chunk.ys[want_idx])

    def test_seam_points_reach_both_neighbors(self):
        """Points exactly on a tile seam are duplicated to the adjacent
        tile so whichever transform claims them still sees them."""
        canvas, tiles, max_res = _canvas_and_tiles()
        # World x of the seam between tile column 0 and 1.
        seam_x = tiles[1].bbox.xmin
        ys = np.linspace(5.0, 95.0, 7)
        chunk = PointDataset(np.full_like(ys, seam_x), ys)
        per_tile, duplicates = _partition(chunk, canvas, tiles, max_res)
        assert duplicates >= len(ys)
        covered = [
            idx for idx, subs in enumerate(per_tile)
            for _ in (1,) if subs
        ]
        # Both tile columns adjacent to the seam received the points.
        cols = {idx % 2 for idx in covered}
        assert cols == {0, 1}

    def test_far_outside_points_are_dropped(self):
        canvas, tiles, max_res = _canvas_and_tiles()
        chunk = PointDataset(
            np.array([-1e6, 1e6, 50.0]), np.array([50.0, 50.0, 1e6])
        )
        per_tile, _ = _partition(chunk, canvas, tiles, max_res)
        assert all(not subs for subs in per_tile)

    def test_empty_chunk(self):
        canvas, tiles, max_res = _canvas_and_tiles()
        chunk = PointDataset(np.array([]), np.array([]))
        per_tile, dupes = _partition(chunk, canvas, tiles, max_res)
        assert dupes == 0
        assert all(not subs for subs in per_tile)


class TestBatchAlignment:
    def test_sub_chunks_split_on_tile_plan_boundaries(self, rng):
        """With a device, each tile's sub-chunks break exactly where the
        tile's own batch plan over the original chunk breaks."""
        from repro.device.batching import plan_batches

        canvas, tiles, max_res = _canvas_and_tiles()
        n = 4_000
        chunk = PointDataset(rng.uniform(0, 100, n), rng.uniform(0, 100, n))
        device = GPUDevice(capacity_bytes=24_000)
        fbo_bytes = [4_000] * len(tiles)
        per_tile, _ = _partition(
            chunk, canvas, tiles, max_res, device=device, fbo_bytes=fbo_bytes
        )
        rows = plan_batches(chunk, ("x", "y"), device, 4_000).rows_per_batch
        assert rows < n  # the plan really is multi-batch
        for subs in per_tile:
            for sub in subs:
                # A sub-chunk never spans a plan boundary: all its rows'
                # original indices fall in one [k*rows, (k+1)*rows) range.
                # Recover original indices by matching coordinates.
                xs = sub.column("x")
                idx = np.searchsorted(np.sort(chunk.xs), xs)
                assert len(xs) <= rows

    def test_host_chunks_are_trimmed_to_query_columns(self, rng):
        canvas, tiles, max_res = _canvas_and_tiles()
        chunk = PointDataset(
            rng.uniform(0, 100, 100), rng.uniform(0, 100, 100),
            {"val": rng.normal(size=100), "unused": rng.normal(size=100)},
        )
        per_tile, _ = _partition(
            chunk, canvas, tiles, max_res, columns=("x", "y", "val")
        )
        for subs in per_tile:
            for sub in subs:
                assert set(sub.attributes) == {"val"}


class TestResidentInputs:
    def test_resident_chunks_stay_resident(self, rng):
        device = GPUDevice()
        canvas, tiles, max_res = _canvas_and_tiles()
        buffers, _ = device.upload_columns(
            {"x": rng.uniform(0, 100, 500), "y": rng.uniform(0, 100, 500)}
        )
        resident = ResidentPointSet(device, buffers)
        per_tile, _ = _partition(
            resident, canvas, tiles, max_res, device=device
        )
        seen = 0
        for subs in per_tile:
            # One zero-transfer batch per tile, never plan-split.
            assert len(subs) <= 1
            for sub in subs:
                assert isinstance(sub, ResidentSubset)
                assert sub.column_names == ("x", "y")
                seen += len(sub)
        assert seen >= 500  # every point covered (plus seam duplicates)


class TestEngineNoOp:
    def test_single_tile_canvas_skips_partitioning(self, rng):
        points = PointDataset(
            rng.uniform(0, 100, 1000), rng.uniform(0, 100, 1000)
        )
        polygons = PolygonSet([rectangle(10, 10, 90, 90)])
        engine = AccurateRasterJoin(resolution=64)
        result = engine.execute(points, polygons)
        assert result.stats.extra["tiles"] == 1
        assert result.stats.extra["partition"] == "off"
        assert result.stats.partition_s == 0.0

    def test_multi_tile_canvas_partitions_by_default(self, rng):
        points = PointDataset(
            rng.uniform(0, 100, 1000), rng.uniform(0, 100, 1000)
        )
        polygons = PolygonSet([rectangle(10, 10, 90, 90)])
        engine = AccurateRasterJoin(
            resolution=96, device=GPUDevice(max_resolution=48)
        )
        result = engine.execute(points, polygons)
        assert result.stats.extra["tiles"] > 1
        assert result.stats.extra["partition"] == "on"

    def test_config_and_env_can_disable(self, rng, monkeypatch):
        points = PointDataset(
            rng.uniform(0, 100, 500), rng.uniform(0, 100, 500)
        )
        polygons = PolygonSet([rectangle(10, 10, 90, 90)])

        def run(config):
            return AccurateRasterJoin(
                resolution=96, device=GPUDevice(max_resolution=48),
                config=config,
            ).execute(points, polygons)

        assert run(
            EngineConfig(partition_points=False)
        ).stats.extra["partition"] == "off"
        monkeypatch.setenv(PARTITION_ENV_VAR, "off")
        assert run(EngineConfig()).stats.extra["partition"] == "off"
        monkeypatch.setenv(PARTITION_ENV_VAR, "on")
        assert run(EngineConfig()).stats.extra["partition"] == "on"
        # Explicit config wins over the environment.
        monkeypatch.setenv(PARTITION_ENV_VAR, "off")
        assert run(
            EngineConfig(partition_points=True)
        ).stats.extra["partition"] == "on"

    def test_bad_env_flag_rejected(self, monkeypatch):
        monkeypatch.setenv(PARTITION_ENV_VAR, "maybe")
        with pytest.raises(ExecutionBackendError):
            _Config().partition_enabled()


class TestStreamedPartition:
    def test_streamed_source_iterated_once(self, rng):
        """The tentpole's streamed contract: a partitioned execution
        invokes the chunk source exactly once, not once per tile."""
        points = PointDataset(
            rng.uniform(0, 100, 2_000), rng.uniform(0, 100, 2_000),
            {"val": rng.normal(size=2_000)},
        )
        polygons = PolygonSet([rectangle(10, 10, 90, 90)])
        calls = {"n": 0}

        def chunk_source():
            calls["n"] += 1
            step = 500
            for s in range(0, len(points), step):
                yield PointDataset(
                    points.xs[s:s + step], points.ys[s:s + step],
                    {"val": points.column("val")[s:s + step]},
                )

        device = GPUDevice(max_resolution=48)
        engine = AccurateRasterJoin(resolution=96, device=device)
        result = engine.execute_stream(chunk_source, polygons, Sum("val"))
        assert result.stats.extra["tiles"] > 1
        assert result.stats.extra["partition"] == "on"
        assert calls["n"] == 1

        calls["n"] = 0
        full = AccurateRasterJoin(
            resolution=96, device=GPUDevice(max_resolution=48),
            config=EngineConfig(partition_points=False),
        )
        reference = full.execute_stream(chunk_source, polygons, Sum("val"))
        assert calls["n"] == reference.stats.extra["tiles"]
        np.testing.assert_array_equal(result.values, reference.values)

    def test_empty_chunks_still_count_as_seen(self, rng):
        """A source yielding only empty chunks must not raise 'no chunks'
        under partitioning (parity with the full-scan path)."""
        polygons = PolygonSet([rectangle(10, 10, 90, 90)])

        def empty_chunks():
            yield PointDataset(np.array([]), np.array([]))

        engine = AccurateRasterJoin(
            resolution=96, device=GPUDevice(max_resolution=48)
        )
        result = engine.execute_stream(empty_chunks, polygons)
        assert np.array_equal(result.values, np.zeros(1))


class TestWarmPartitionedSession:
    def test_partitioned_warm_query_bit_identical(self, rng):
        points = PointDataset(
            rng.uniform(0, 100, 3_000), rng.uniform(0, 100, 3_000),
            {"val": rng.normal(size=3_000)},
        )
        polygons = PolygonSet(
            [rectangle(5, 5, 45, 45), rectangle(55, 55, 95, 95)]
        )
        session = QuerySession()
        engine = AccurateRasterJoin(
            resolution=96, device=GPUDevice(max_resolution=48),
            session=session,
        )
        cold = engine.execute(points, polygons, aggregate=Sum("val"))
        warm = engine.execute(points, polygons, aggregate=Sum("val"))
        assert warm.stats.prepared_hits == 1
        np.testing.assert_array_equal(cold.values, warm.values)
