"""Resident-worker dispatch tests: bit-identity, caching, failure paths.

Covers the spawn-pool half of the shm data plane: engine results under
resident dispatch are bit-identical to serial, the parent/worker state
caches key by content generation, task failures leave the pool usable,
a dead worker breaks-and-respawns, and worker-side metrics increments
make it back into the parent registry under every process mode.
"""

import numpy as np
import pytest

from repro.cache.session import QuerySession
from repro.core.accurate import AccurateRasterJoin
from repro.core.aggregates import Count, Sum
from repro.data.dataset import PointDataset
from repro.device.memory import GPUDevice
from repro.errors import ExecutionBackendError
from repro.exec import shm
from repro.exec.backend import ProcessBackend
from repro.exec.config import EngineConfig
from repro.exec.resident import ResidentWorkerPool, TileTaskSpec
from repro.geometry.polygon import Polygon, PolygonSet
from repro.obs import metrics

RESOLUTION = 512
MAX_FBO = 256  # 2x2 = 4 tiles


@pytest.fixture
def points(rng):
    n = 8_000
    return PointDataset(
        rng.uniform(0, 100, n), rng.uniform(0, 100, n),
        {"val": rng.uniform(0, 10, n)},
    )


@pytest.fixture
def polygons():
    return PolygonSet([
        Polygon([(12 * i + 1, 1), (12 * i + 11, 1),
                 (12 * i + 11, 95), (12 * i + 1, 95)])
        for i in range(6)
    ])


def serial_reference(points, polygons, aggregate):
    engine = AccurateRasterJoin(
        resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
        config=EngineConfig(backend="serial"),
    )
    return engine.execute(points, polygons, aggregate)


@pytest.fixture
def resident_engine():
    session = QuerySession(shm=True)
    engine = AccurateRasterJoin(
        resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
        session=session,
        config=EngineConfig(backend="process", workers=2, shm=True),
    )
    yield engine
    engine.backend.close()
    session.invalidate()


class TestResidentBitIdentity:
    def test_cold_and_warm_match_serial(
        self, points, polygons, resident_engine
    ):
        ref = serial_reference(points, polygons, Sum("val"))
        assert ref.stats.extra["tiles"] == 4
        cold = resident_engine.execute(points, polygons, Sum("val"))
        warm = resident_engine.execute(points, polygons, Sum("val"))
        for res in (cold, warm):
            np.testing.assert_array_equal(res.values, ref.values)
            for name, channel in ref.channels.items():
                np.testing.assert_array_equal(res.channels[name], channel)
        assert cold.stats.extra["pool"] == "resident-created"
        assert warm.stats.extra["pool"] == "resident-reused"

    def test_aggregate_switch_reuses_pool_and_state(
        self, points, polygons, resident_engine
    ):
        # Two warm-up queries: the first builds prepared artifacts in
        # the workers (installing them parent-side bumps the content
        # generation), the second dispatches against the now-stable
        # generation and exports its blob.
        resident_engine.execute(points, polygons, Sum("val"))
        resident_engine.execute(points, polygons, Sum("val"))
        before = metrics.snapshot()["counters"].get(
            'resident_state_blobs{event="reused"}', 0
        )
        res = resident_engine.execute(points, polygons, Count())
        ref = serial_reference(points, polygons, Count())
        np.testing.assert_array_equal(res.values, ref.values)
        after = metrics.snapshot()["counters"].get(
            'resident_state_blobs{event="reused"}', 0
        )
        # Same prepared artifacts + polygons -> same state blob: the
        # aggregate travels on the spec, not in the state.
        assert after > before

    def test_no_segments_leak_after_teardown(self, points, polygons):
        import gc

        session = QuerySession(shm=True)
        engine = AccurateRasterJoin(
            resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
            session=session,
            config=EngineConfig(backend="process", workers=2, shm=True),
        )
        engine.execute(points, polygons, Count())
        assert shm.REGISTRY.live_segments() > 0
        engine.backend.close()
        session.invalidate()
        del engine, session
        gc.collect()
        assert shm.REGISTRY.live_segments() == 0


def _bad_spec(index: int, state_ref, result_ref) -> TileTaskSpec:
    """A spec whose state segment does not exist: the worker's load
    fails with a picklable FileNotFoundError."""
    return TileTaskSpec(
        index=index, state_key=("missing", index),
        state_ref=state_ref, tile_idx=0, aggregate=None, filters=None,
        columns=(), chunks=(), units_mode=False, retain=False,
        tracing=False, result_ref=result_ref, slot=0, channel_names=(),
    )


class TestPoolFailurePaths:
    def test_task_failure_surfaces_and_pool_survives(self):
        pool = ResidentWorkerPool(workers=2)
        missing = shm.ShmArray("repro-shm-0-0-deadbeef", "|u1", (1,), 0)
        try:
            with pytest.raises(FileNotFoundError):
                pool.dispatch([_bad_spec(i, missing, missing)
                               for i in range(4)])
            assert not pool.broken, "a task failure must not break the pool"
            assert pool.dispatch([]) == []
        finally:
            pool.close()

    def test_dead_worker_marks_pool_broken(self):
        pool = ResidentWorkerPool(workers=2)
        missing = shm.ShmArray("repro-shm-0-0-deadbeef", "|u1", (1,), 0)
        try:
            for proc in pool._procs:
                proc.terminate()
                proc.join(timeout=5)
            with pytest.raises(ExecutionBackendError, match="died"):
                pool.dispatch([_bad_spec(0, missing, missing)])
            assert pool.broken
            with pytest.raises(ExecutionBackendError, match="broken"):
                pool.dispatch([_bad_spec(0, missing, missing)])
        finally:
            pool.close()

    def test_backend_respawns_after_broken_pool(
        self, points, polygons, resident_engine
    ):
        ref = serial_reference(points, polygons, Count())
        resident_engine.execute(points, polygons, Count())
        backend = resident_engine.backend
        for proc in backend._resident_pool._procs:
            proc.terminate()
            proc.join(timeout=5)
        with pytest.raises(ExecutionBackendError):
            resident_engine.execute(points, polygons, Count())
        # The broken pool was torn down; the next query respawns fresh.
        res = resident_engine.execute(points, polygons, Count())
        np.testing.assert_array_equal(res.values, ref.values)
        assert res.stats.extra["pool"] == "resident-created"


class TestWorkerMetricsDeltas:
    """Satellite: worker-side counters merge into the parent registry."""

    def _tile_task_count(self) -> float:
        return metrics.snapshot()["counters"].get(
            'engine_tile_tasks{engine="accurate-raster"}', 0
        )

    def test_forked_workers_ship_deltas_home(self, points, polygons):
        engine = AccurateRasterJoin(
            resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
            config=EngineConfig(backend="process", workers=2, shm=False),
        )
        before = self._tile_task_count()
        res = engine.execute(points, polygons, Count())
        tiles = res.stats.extra["tiles"]
        assert tiles == 4
        assert self._tile_task_count() == before + tiles, (
            "per-tile counters incremented in forked children must reach "
            "the parent registry"
        )

    def test_resident_workers_ship_deltas_home(
        self, points, polygons, resident_engine
    ):
        resident_engine.execute(points, polygons, Count())  # warm the pool
        before = self._tile_task_count()
        res = resident_engine.execute(points, polygons, Count())
        assert res.stats.extra["pool"] == "resident-reused"
        assert self._tile_task_count() == before + res.stats.extra["tiles"]

    def test_serial_backend_counts_inline(self, points, polygons):
        engine = AccurateRasterJoin(
            resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
            config=EngineConfig(backend="serial"),
        )
        before = self._tile_task_count()
        res = engine.execute(points, polygons, Count())
        # Inline execution increments directly — no delta is attached, so
        # nothing is double-counted by the merge.
        assert self._tile_task_count() == before + res.stats.extra["tiles"]


class TestSessionShmTier:
    def test_partition_store_exports_chunks(self, points, polygons):
        session = QuerySession(shm=True)
        engine = AccurateRasterJoin(
            resolution=RESOLUTION, device=GPUDevice(max_resolution=MAX_FBO),
            session=session,
            config=EngineConfig(backend="serial", shm=False),
        )
        try:
            res = engine.execute(points, polygons, Count())
            assert res.stats.extra["partition"] == "on"
            assert shm.REGISTRY.live_segments() > 0
            # The stored partition holds ShmChunks, not host datasets.
            key = next(iter(session._partitions))
            per_tile = session._partitions[key][2]
            kinds = {
                type(chunk).__name__
                for chunks in per_tile for chunk in chunks
            }
            assert kinds <= {"ShmChunk"}
        finally:
            session.invalidate()

    def test_shm_pin_memoizes_by_content(self, points):
        session = QuerySession(shm=True)
        try:
            first = session.shm_pin(points)
            again = session.shm_pin(points)
            assert first is again
            np.testing.assert_array_equal(first.column("x"), points.xs)
            # Editing the source in place rolls the guard and re-exports.
            points.xs += 1.0
            fresh = session.shm_pin(points)
            assert fresh is not first
            np.testing.assert_array_equal(fresh.column("x"), points.xs)
        finally:
            session.invalidate()
        assert shm.REGISTRY.live_segments() == 0

    def test_shm_pin_off_by_default(self, points, monkeypatch):
        monkeypatch.delenv(shm.SHM_ENV_VAR, raising=False)
        session = QuerySession()
        assert session.shm_pin(points) is None
        # An explicit opt-out wins over any environment setting.
        assert QuerySession(shm=False).shm_pin(points) is None


class TestResidentSubsetZeroCopy:
    """Satellite: tile gathers of resident sets stay zero-copy views."""

    def test_columns_are_returned_by_reference(self):
        from repro.exec.partition import ResidentSubset

        xs = np.arange(10.0)
        subset = ResidentSubset({"x": xs})
        assert subset.column("x") is xs, (
            "ResidentSubset must hand back the gathered array itself, "
            "not a copy"
        )
        assert len(subset) == 10

    def test_take_from_resident_set_shares_no_host_copy(self):
        from repro.exec.partition import ResidentSubset, _take

        device = GPUDevice()
        resident = device.make_resident(
            {"x": np.arange(100.0), "y": np.arange(100.0)}
        )
        try:
            index = np.arange(0, 100, 2)
            sub = _take(resident, index, ("x", "y"))
            assert isinstance(sub, ResidentSubset)
            inner = sub.column("x")
            # A second column() call must not re-gather.
            assert sub.column("x") is inner
        finally:
            resident.free()
