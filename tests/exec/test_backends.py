"""Unit tests for the execution-backend subsystem.

The contract every backend must honor: results come back in task order
(whatever order tasks complete in), exceptions propagate, worker counts
and parallelism caps are respected, and configuration resolves from
names, instances, and the environment.
"""

import threading
import time

import pytest

from repro.errors import ExecutionBackendError
from repro.exec import (
    EngineConfig,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_workers,
    resolve_backend,
)
from repro.exec.backend import (
    BACKEND_ENV_VAR,
    PERSISTENT_ENV_VAR,
    WORKERS_ENV_VAR,
)

ALL_BACKENDS = [
    SerialBackend(),
    ThreadBackend(workers=4),
    ProcessBackend(workers=2),
]


def _ids(backend):
    return backend.name


class TestTaskOrder:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_results_in_task_order(self, backend):
        tasks = [lambda i=i: i * i for i in range(10)]
        assert backend.run_tasks(tasks) == [i * i for i in range(10)]

    def test_thread_order_survives_out_of_order_completion(self):
        """Early tasks sleeping longest must not reorder the results."""
        def make(i):
            def task():
                time.sleep(0.05 * (4 - i))
                return i
            return task

        backend = ThreadBackend(workers=4)
        assert backend.run_tasks([make(i) for i in range(4)]) == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_empty_task_list(self, backend):
        assert backend.run_tasks([]) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_exceptions_propagate(self, backend):
        def boom():
            raise ValueError("tile exploded")

        with pytest.raises(ValueError, match="tile exploded"):
            backend.run_tasks([lambda: 1, boom, lambda: 3])


class TestWorkerLimits:
    def test_serial_backend_is_single_worker(self):
        # Even an explicit worker count cannot make serial parallel.
        assert SerialBackend(workers=8).workers == 1

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ExecutionBackendError):
            ThreadBackend(workers=0)

    def test_parallelism_caps_inflight_tasks(self):
        """The memory-budget cap truly bounds concurrent execution."""
        lock = threading.Lock()
        state = {"running": 0, "peak": 0}

        def task():
            with lock:
                state["running"] += 1
                state["peak"] = max(state["peak"], state["running"])
            time.sleep(0.02)
            with lock:
                state["running"] -= 1
            return True

        backend = ThreadBackend(workers=8)
        results = backend.run_tasks([task] * 12, parallelism=2)
        assert all(results)
        assert state["peak"] <= 2

    def test_process_backend_nested_runs_inline(self):
        """A process backend used from inside a forked worker must not
        fork again — it falls back to inline execution."""
        outer = ProcessBackend(workers=2)

        def nested():
            return ProcessBackend(workers=2).run_tasks(
                [lambda: 1, lambda: 2]
            )

        assert outer.run_tasks([nested, nested]) == [[1, 2], [1, 2]]


class TestPersistentPools:
    def test_thread_pool_created_then_reused(self):
        backend = ThreadBackend(workers=2, persistent=True)
        try:
            tasks = [lambda i=i: i for i in range(4)]
            assert backend.run_tasks(tasks) == list(range(4))
            assert backend.last_pool_event == "created"
            assert backend.run_tasks(tasks) == list(range(4))
            assert backend.last_pool_event == "reused"
        finally:
            backend.close()

    def test_close_releases_and_respawns_lazily(self):
        backend = ThreadBackend(workers=2, persistent=True)
        tasks = [lambda: 1, lambda: 2]
        backend.run_tasks(tasks)
        backend.close()
        backend.close()  # idempotent
        assert backend.run_tasks(tasks) == [1, 2]
        assert backend.last_pool_event == "created"
        backend.close()

    def test_single_task_dispatch_never_spawns_a_pool(self):
        """A 1-tile canvas (or parallelism cap of 1) must stay pool-free
        — the cheap no-op the partitioning acceptance bar requires."""
        backend = ThreadBackend(workers=4, persistent=True)
        assert backend.run_tasks([lambda: 7]) == [7]
        assert backend.last_pool_event == "inline"
        assert backend._pool is None
        assert backend.run_tasks([lambda: 1, lambda: 2], parallelism=1) == [1, 2]
        assert backend.last_pool_event == "inline"
        assert backend._pool is None

    def test_non_persistent_pool_is_ephemeral(self):
        backend = ThreadBackend(workers=2, persistent=False)
        assert backend.run_tasks([lambda: 1, lambda: 2]) == [1, 2]
        assert backend.last_pool_event == "ephemeral"
        assert backend._pool is None

    def test_persistence_resolves_from_environment(self, monkeypatch):
        monkeypatch.setenv(PERSISTENT_ENV_VAR, "off")
        assert ThreadBackend(workers=2).persistent is False
        monkeypatch.setenv(PERSISTENT_ENV_VAR, "1")
        assert ThreadBackend(workers=2).persistent is True
        monkeypatch.delenv(PERSISTENT_ENV_VAR)
        assert ThreadBackend(workers=2).persistent is True  # default on
        monkeypatch.setenv(PERSISTENT_ENV_VAR, "sometimes")
        with pytest.raises(ExecutionBackendError):
            ThreadBackend(workers=2)

    def test_engine_config_threads_persistence(self, monkeypatch):
        monkeypatch.delenv(PERSISTENT_ENV_VAR, raising=False)
        backend = EngineConfig(
            backend="thread", workers=2, persistent_pool=False
        ).make_backend()
        assert backend.persistent is False

    def test_parallelism_cap_respected_by_persistent_pool(self):
        """The semaphore that replaces per-call pool sizing truly bounds
        in-flight tasks below the resident pool's width."""
        lock = threading.Lock()
        state = {"running": 0, "peak": 0}

        def task():
            with lock:
                state["running"] += 1
                state["peak"] = max(state["peak"], state["running"])
            time.sleep(0.02)
            with lock:
                state["running"] -= 1
            return True

        backend = ThreadBackend(workers=8, persistent=True)
        try:
            backend.run_tasks([task] * 12)  # warm the pool to 8 threads
            state["peak"] = 0
            assert all(backend.run_tasks([task] * 12, parallelism=2))
            assert backend.last_pool_event == "reused"
            assert state["peak"] <= 2
        finally:
            backend.close()

    def test_nested_dispatch_on_same_backend_runs_inline(self):
        """A task that fans out on its own backend must not deadlock
        waiting for pool slots it is occupying."""
        backend = ThreadBackend(workers=2, persistent=True)

        def nested():
            return backend.run_tasks([lambda: 1, lambda: 2])

        try:
            assert backend.run_tasks([nested, nested]) == [[1, 2], [1, 2]]
        finally:
            backend.close()

    def test_concurrent_process_fanouts_overlap(self):
        """The fork lock guards only task publication: two threads can
        fan out on separate ProcessBackends at the same time and both
        complete correctly (the old design serialized them wholesale)."""
        results = {}

        def fan_out(key):
            backend = ProcessBackend(workers=2)
            results[key] = backend.run_tasks(
                [lambda i=i, key=key: (key, i * i) for i in range(4)]
            )

        threads = [
            threading.Thread(target=fan_out, args=(k,)) for k in ("a", "b")
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        for key in ("a", "b"):
            assert results[key] == [(key, i * i) for i in range(4)]

    def test_serial_close_is_noop_and_inline(self):
        backend = SerialBackend()
        assert backend.run_tasks([lambda: 5]) == [5]
        assert backend.last_pool_event == "inline"
        backend.close()

    def test_close_racing_dispatches_never_fails(self):
        """close() from one thread while another dispatches must never
        error: the dispatch either respawns the pool or its already
        submitted futures are allowed to finish."""
        backend = ThreadBackend(workers=4, persistent=True)
        stop = threading.Event()
        errors = []

        def dispatcher():
            try:
                while not stop.is_set():
                    assert backend.run_tasks([lambda: 1] * 4) == [1] * 4
            except Exception as exc:  # pragma: no cover - the failure
                errors.append(exc)

        thread = threading.Thread(target=dispatcher)
        thread.start()
        try:
            for _ in range(20):
                backend.close()
                time.sleep(0.005)
        finally:
            stop.set()
            thread.join()
            backend.close()
        assert not errors

    def test_failed_pool_spawn_prunes_fork_registry(self, monkeypatch):
        """A fork failure (e.g. ENOMEM) must not leak the published
        task list for the life of the process."""
        from repro.exec import backend as backend_mod

        class BoomContext:
            def Pool(self, processes):
                raise OSError("fork failed")

        monkeypatch.setattr(
            backend_mod.mp, "get_context", lambda kind: BoomContext()
        )
        backend = ProcessBackend(workers=2)
        with pytest.raises(OSError, match="fork failed"):
            backend.run_tasks([lambda: 1, lambda: 2])
        assert not backend_mod._FORK_REGISTRY

    def test_task_failure_mid_fanout_prunes_fork_registry(self):
        """A task raising inside a forked worker aborts the map — the
        published task list must still be pruned on that exit path, and
        a concurrent dispatch's entry must survive untouched."""
        from repro.exec import backend as backend_mod

        backend = ProcessBackend(workers=2)

        def boom():
            raise RuntimeError("tile exploded mid-fan-out")

        before = dict(backend_mod._FORK_REGISTRY)
        with pytest.raises(RuntimeError, match="mid-fan-out"):
            backend.run_tasks([lambda: 1, boom, lambda: 3, lambda: 4])
        assert backend_mod._FORK_REGISTRY == before, (
            "failed fan-out leaked its fork-registry token"
        )

    def test_pool_events_are_per_thread(self):
        """Backends are shared across engines (optimizer, planner), so a
        dispatch must read its own event, not a concurrent dispatch's."""
        backend = ThreadBackend(workers=4, persistent=True)
        barrier = threading.Barrier(2)
        events = {}

        def dispatch(key, n):
            def task():
                barrier.wait(timeout=5)
                return n
            assert backend.run_tasks([task, task]) == [n, n]
            events[key] = backend.last_pool_event

        try:
            backend.run_tasks([lambda: 0, lambda: 0])  # pool: created
            threads = [
                threading.Thread(target=dispatch, args=(k, i))
                for i, k in enumerate(("a", "b"))
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
            # Both overlapping dispatches ran on the live pool and each
            # thread sees "reused" — never a neighbor's event; the main
            # thread still sees its own "created" from the warm-up.
            assert events == {"a": "reused", "b": "reused"}
            assert backend.last_pool_event == "created"
        finally:
            backend.close()

    def test_fork_task_list_stays_published_for_pool_lifetime(self):
        """The task registry entry must outlive the fork window: the
        pool re-forks replacement workers mid-map (after a worker
        crash), and a replacement inherits whatever is published at
        *its* fork time — so the entry is held until the map finishes,
        then cleaned up."""
        from repro.exec import backend as backend_mod

        backend = ProcessBackend(workers=2)
        done = {}

        def fan_out():
            done["result"] = backend.run_tasks(
                [lambda: time.sleep(0.4) or 1] * 2
            )

        thread = threading.Thread(target=fan_out)
        thread.start()
        time.sleep(0.2)
        assert backend_mod._FORK_REGISTRY, (
            "task list unpublished while the pool is still mapping"
        )
        thread.join()
        assert not backend_mod._FORK_REGISTRY, "registry entry leaked"
        assert done["result"] == [1, 1]


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(workers=3)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutionBackendError, match="unknown"):
            resolve_backend("gpu-warp")

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        backend = resolve_backend(None)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 3

    def test_environment_worker_count_validated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
        with pytest.raises(ExecutionBackendError):
            default_workers()
        monkeypatch.setenv(WORKERS_ENV_VAR, "-2")
        with pytest.raises(ExecutionBackendError):
            default_workers()

    def test_engine_config_builds_backend(self):
        backend = EngineConfig(backend="thread", workers=2).make_backend()
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 2

    def test_engine_config_default_honors_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert isinstance(EngineConfig().make_backend(), ProcessBackend)

    def test_explicit_instance_in_config(self):
        backend = SerialBackend()
        assert EngineConfig(backend=backend).make_backend() is backend
