"""Unit tests for the execution-backend subsystem.

The contract every backend must honor: results come back in task order
(whatever order tasks complete in), exceptions propagate, worker counts
and parallelism caps are respected, and configuration resolves from
names, instances, and the environment.
"""

import threading
import time

import pytest

from repro.errors import ExecutionBackendError
from repro.exec import (
    EngineConfig,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    default_workers,
    resolve_backend,
)
from repro.exec.backend import BACKEND_ENV_VAR, WORKERS_ENV_VAR

ALL_BACKENDS = [
    SerialBackend(),
    ThreadBackend(workers=4),
    ProcessBackend(workers=2),
]


def _ids(backend):
    return backend.name


class TestTaskOrder:
    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_results_in_task_order(self, backend):
        tasks = [lambda i=i: i * i for i in range(10)]
        assert backend.run_tasks(tasks) == [i * i for i in range(10)]

    def test_thread_order_survives_out_of_order_completion(self):
        """Early tasks sleeping longest must not reorder the results."""
        def make(i):
            def task():
                time.sleep(0.05 * (4 - i))
                return i
            return task

        backend = ThreadBackend(workers=4)
        assert backend.run_tasks([make(i) for i in range(4)]) == [0, 1, 2, 3]

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_empty_task_list(self, backend):
        assert backend.run_tasks([]) == []

    @pytest.mark.parametrize("backend", ALL_BACKENDS, ids=_ids)
    def test_exceptions_propagate(self, backend):
        def boom():
            raise ValueError("tile exploded")

        with pytest.raises(ValueError, match="tile exploded"):
            backend.run_tasks([lambda: 1, boom, lambda: 3])


class TestWorkerLimits:
    def test_serial_backend_is_single_worker(self):
        # Even an explicit worker count cannot make serial parallel.
        assert SerialBackend(workers=8).workers == 1

    def test_worker_count_must_be_positive(self):
        with pytest.raises(ExecutionBackendError):
            ThreadBackend(workers=0)

    def test_parallelism_caps_inflight_tasks(self):
        """The memory-budget cap truly bounds concurrent execution."""
        lock = threading.Lock()
        state = {"running": 0, "peak": 0}

        def task():
            with lock:
                state["running"] += 1
                state["peak"] = max(state["peak"], state["running"])
            time.sleep(0.02)
            with lock:
                state["running"] -= 1
            return True

        backend = ThreadBackend(workers=8)
        results = backend.run_tasks([task] * 12, parallelism=2)
        assert all(results)
        assert state["peak"] <= 2

    def test_process_backend_nested_runs_inline(self):
        """A process backend used from inside a forked worker must not
        fork again — it falls back to inline execution."""
        outer = ProcessBackend(workers=2)

        def nested():
            return ProcessBackend(workers=2).run_tasks(
                [lambda: 1, lambda: 2]
            )

        assert outer.run_tasks([nested, nested]) == [[1, 2], [1, 2]]


class TestResolution:
    def test_names_resolve(self):
        assert isinstance(resolve_backend("serial"), SerialBackend)
        assert isinstance(resolve_backend("thread"), ThreadBackend)
        assert isinstance(resolve_backend("process"), ProcessBackend)

    def test_instance_passthrough(self):
        backend = ThreadBackend(workers=3)
        assert resolve_backend(backend) is backend

    def test_unknown_name_rejected(self):
        with pytest.raises(ExecutionBackendError, match="unknown"):
            resolve_backend("gpu-warp")

    def test_default_is_serial(self, monkeypatch):
        monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
        assert isinstance(resolve_backend(None), SerialBackend)

    def test_environment_selects_backend(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "thread")
        monkeypatch.setenv(WORKERS_ENV_VAR, "3")
        backend = resolve_backend(None)
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 3

    def test_environment_worker_count_validated(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV_VAR, "zero")
        with pytest.raises(ExecutionBackendError):
            default_workers()
        monkeypatch.setenv(WORKERS_ENV_VAR, "-2")
        with pytest.raises(ExecutionBackendError):
            default_workers()

    def test_engine_config_builds_backend(self):
        backend = EngineConfig(backend="thread", workers=2).make_backend()
        assert isinstance(backend, ThreadBackend)
        assert backend.workers == 2

    def test_engine_config_default_honors_environment(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "process")
        assert isinstance(EngineConfig().make_backend(), ProcessBackend)

    def test_explicit_instance_in_config(self):
        backend = SerialBackend()
        assert EngineConfig(backend=backend).make_backend() is backend
