"""Unit tests for point rasterization (the DrawPoints pass)."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_point import point_fragment_indices, rasterize_points
from repro.graphics.viewport import Viewport

VP = Viewport(BBox(0, 0, 10, 10), 10, 10)


class TestRasterizePoints:
    def test_counts_accumulate(self):
        fbo = FrameBuffer.for_viewport(VP)
        xs = np.asarray([0.5, 0.7, 0.9, 5.5])
        ys = np.asarray([0.5, 0.7, 0.9, 5.5])
        kept = rasterize_points(VP, fbo, xs, ys)
        assert kept == 4
        assert fbo.channel("count")[0, 0] == 3
        assert fbo.channel("count")[5, 5] == 1

    def test_clipping(self):
        fbo = FrameBuffer.for_viewport(VP)
        xs = np.asarray([-1.0, 5.0, 11.0])
        ys = np.asarray([5.0, 5.0, 5.0])
        kept = rasterize_points(VP, fbo, xs, ys)
        assert kept == 1
        assert fbo.total("count") == 1

    def test_attribute_channels(self):
        fbo = FrameBuffer(10, 10, channels=("count", "sum"))
        xs = np.asarray([2.5, 2.5])
        ys = np.asarray([3.5, 3.5])
        rasterize_points(VP, fbo, xs, ys, {"count": 1.0, "sum": np.asarray([4.0, 6.0])})
        assert fbo.channel("count")[3, 2] == 2
        assert fbo.channel("sum")[3, 2] == 10.0

    def test_values_clipped_with_points(self):
        fbo = FrameBuffer(10, 10, channels=("sum",))
        xs = np.asarray([-5.0, 1.5])
        ys = np.asarray([1.5, 1.5])
        rasterize_points(VP, fbo, xs, ys, {"sum": np.asarray([100.0, 7.0])})
        assert fbo.total("sum") == 7.0

    def test_empty_input(self):
        fbo = FrameBuffer.for_viewport(VP)
        assert rasterize_points(VP, fbo, np.zeros(0), np.zeros(0)) == 0

    def test_total_preserved(self, rng):
        """Every in-window point lands in exactly one pixel."""
        fbo = FrameBuffer.for_viewport(VP)
        xs = rng.uniform(0, 10, 10_000)
        ys = rng.uniform(0, 10, 10_000)
        kept = rasterize_points(VP, fbo, xs, ys)
        assert kept == 10_000
        assert fbo.total("count") == 10_000


class TestFragmentIndices:
    def test_matches_viewport_mapping(self, rng):
        xs = rng.uniform(-2, 12, 500)
        ys = rng.uniform(-2, 12, 500)
        ix, iy, inside = point_fragment_indices(VP, xs, ys)
        jx, jy, jin = VP.pixel_of(xs, ys)
        assert np.array_equal(ix, jx) and np.array_equal(inside, jin)
