"""Unit tests for supercover line rasterization and outlines."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon
from repro.graphics.raster_line import outline_pixels, supercover_line
from repro.graphics.viewport import Viewport

VP = Viewport(BBox(0, 0, 16, 16), 16, 16)


def line_set(ax, ay, bx, by, w=16, h=16):
    xs, ys = supercover_line(ax, ay, bx, by, w, h)
    return set(zip(xs.tolist(), ys.tolist()))


class TestSupercoverLine:
    def test_horizontal(self):
        got = line_set(0.5, 3.5, 7.5, 3.5)
        assert got == {(i, 3) for i in range(8)}

    def test_vertical(self):
        got = line_set(2.5, 0.5, 2.5, 5.5)
        assert got == {(2, j) for j in range(6)}

    def test_diagonal_supercover_includes_corner_neighbors(self):
        """A lattice-corner-crossing diagonal reports all touched pixels."""
        got = line_set(0.0, 0.0, 4.0, 4.0)
        # Passes exactly through corners (1,1), (2,2), (3,3): supercover
        # must include both diagonals' pixels around each corner.
        for k in range(4):
            assert (k, k) in got

    def test_point_segment(self):
        got = line_set(3.5, 3.5, 3.5, 3.5)
        assert got == {(3, 3)}

    def test_clipped_to_grid(self):
        got = line_set(-5.0, 8.5, 25.0, 8.5)
        assert got == {(i, 8) for i in range(16)}

    def test_fully_outside(self):
        assert line_set(-5, -5, -1, -1) == set()

    def test_conservative_contains_all_crossed_pixels(self, rng):
        """Every pixel whose interior the segment passes through is found.

        Verified by dense parametric sampling as an independent oracle.
        """
        for _ in range(50):
            a = rng.uniform(0, 16, 2)
            b = rng.uniform(0, 16, 2)
            got = line_set(*a, *b)
            ts = np.linspace(0, 1, 2000)
            pts = a[None, :] + ts[:, None] * (b - a)[None, :]
            sampled = set(
                zip(
                    np.floor(pts[:, 0]).astype(int).tolist(),
                    np.floor(pts[:, 1]).astype(int).tolist(),
                )
            )
            sampled = {
                (x, y) for x, y in sampled if 0 <= x < 16 and 0 <= y < 16
            }
            assert sampled <= got


class TestOutlinePixels:
    def test_square_outline_ring(self):
        square = Polygon([(2, 2), (10, 2), (10, 10), (2, 10)])
        xs, ys = outline_pixels(VP, square.rings)
        got = set(zip(xs.tolist(), ys.tolist()))
        # Outline must include the 4 corner pixels and no interior pixel.
        for corner in [(2, 2), (9, 2), (9, 9), (2, 9)]:
            assert corner in got
        assert (5, 5) not in got

    def test_holes_outlined_too(self, holed_polygon):
        vp = Viewport(BBox(0, 0, 20, 20), 20, 20)
        xs, ys = outline_pixels(vp, holed_polygon.rings)
        got = set(zip(xs.tolist(), ys.tolist()))
        assert (5, 5) in got  # hole corner
        assert (10, 10) not in got  # deep inside the hole

    def test_deduplicated(self):
        square = Polygon([(2, 2), (4, 2), (4, 4), (2, 4)])
        xs, ys = outline_pixels(VP, square.rings)
        flat = xs * 16 + ys
        assert len(np.unique(flat)) == len(flat)

    def test_covers_error_pixels_of_rasterization(self, rng):
        """Outline pixels ⊇ pixels where coverage disagrees with PIP.

        This is the invariant the accurate join's exactness rests on.
        """
        from repro.geometry.triangulate import triangulate_polygon
        from repro.graphics.raster_triangle import covered_pixels
        from tests.conftest import random_star_polygon

        for _ in range(20):
            poly = random_star_polygon(
                rng, center=(8, 8), radius_range=(2, 7),
                vertices=int(rng.integers(5, 12)),
            )
            covered = np.zeros((16, 16), dtype=bool)
            for tri in triangulate_polygon(poly):
                xs, ys = covered_pixels(VP, tri)
                covered[ys, xs] = True
            ox, oy = outline_pixels(VP, poly.rings)
            boundary = np.zeros((16, 16), dtype=bool)
            boundary[oy, ox] = True
            cx, cy = np.meshgrid(np.arange(16) + 0.5, np.arange(16) + 0.5)
            inside = poly.contains_points(cx.ravel(), cy.ravel()).reshape(16, 16)
            mismatch = covered != inside
            assert not np.any(mismatch & ~boundary)
