"""Unit tests for the framebuffer object."""

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.geometry.bbox import BBox
from repro.graphics.fbo import FrameBuffer
from repro.graphics.viewport import Viewport


class TestConstruction:
    def test_channels_allocated(self):
        fbo = FrameBuffer(8, 4, channels=("count", "sum"))
        assert fbo.channel("count").shape == (4, 8)
        assert fbo.channel_names == ("count", "sum")

    def test_default_dtype_float32(self):
        """32-bit channels match the GL color channels of the paper."""
        fbo = FrameBuffer(4, 4)
        assert fbo.channel("count").dtype == np.float32

    def test_invalid_size(self):
        with pytest.raises(ResolutionError):
            FrameBuffer(0, 4)

    def test_for_viewport(self):
        vp = Viewport(BBox(0, 0, 1, 1), 13, 7)
        fbo = FrameBuffer.for_viewport(vp)
        assert fbo.width == 13 and fbo.height == 7

    def test_add_channel_idempotent(self):
        fbo = FrameBuffer(2, 2)
        fbo.add_channel("extra")
        fbo.channel("extra")[0, 0] = 5
        fbo.add_channel("extra")  # must not reset
        assert fbo.channel("extra")[0, 0] == 5


class TestBlending:
    def test_accumulate_counts_duplicates(self):
        """np.add.at semantics: repeated fragments at one pixel all land."""
        fbo = FrameBuffer(4, 4)
        ix = np.asarray([1, 1, 1, 2])
        iy = np.asarray([2, 2, 2, 3])
        fbo.accumulate(ix, iy)
        assert fbo.channel("count")[2, 1] == 3
        assert fbo.channel("count")[3, 2] == 1

    def test_accumulate_values(self):
        fbo = FrameBuffer(4, 4, channels=("count", "sum"))
        ix = np.asarray([0, 0])
        iy = np.asarray([0, 0])
        fbo.accumulate(ix, iy, {"count": 1.0, "sum": np.asarray([2.5, 3.5])})
        assert fbo.channel("count")[0, 0] == 2
        assert fbo.channel("sum")[0, 0] == 6.0

    def test_clear(self):
        fbo = FrameBuffer(4, 4)
        fbo.accumulate(np.asarray([1]), np.asarray([1]))
        fbo.clear()
        assert fbo.total("count") == 0.0

    def test_write_overwrites(self):
        fbo = FrameBuffer(4, 4, channels=("mask",))
        fbo.write(np.asarray([1, 2]), np.asarray([1, 2]), "mask", 7.0)
        fbo.write(np.asarray([1]), np.asarray([1]), "mask", 9.0)
        assert fbo.channel("mask")[1, 1] == 9.0


class TestReads:
    def test_gather_float64(self):
        fbo = FrameBuffer(4, 4)
        fbo.accumulate(np.asarray([3]), np.asarray([0]))
        out = fbo.gather(np.asarray([3, 0]), np.asarray([0, 0]), "count")
        assert out.dtype == np.float64
        assert out.tolist() == [1.0, 0.0]

    def test_total_reduces_in_float64(self):
        """Summing many float32 ones must not saturate."""
        fbo = FrameBuffer(256, 256)
        fbo.channel("count")[:] = 1.0
        assert fbo.total("count") == 256 * 256

    def test_nbytes(self):
        fbo = FrameBuffer(16, 16, channels=("a", "b"))
        assert fbo.nbytes == 2 * 16 * 16 * 4
