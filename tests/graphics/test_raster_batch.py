"""Unit tests for the batched rasterization layer.

Every batched primitive must be *bit-identical* to its scalar
per-triangle reference — same snap, same fill-rule tie-break, same
fragment order, same float64 reduction.  These tests pin that contract
triangle by triangle.
"""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.raster_batch import (
    DEFAULT_FRAGMENT_BUDGET,
    accumulate_triangle_sums_batch,
    bin_polygons_to_tile,
    coverage_pieces_by_polygon,
    flatten_triangles,
    rasterize_triangles,
)
from repro.graphics.raster_line import outline_pixels, outline_pixels_many
from repro.graphics.raster_triangle import (
    accumulate_triangle_sums,
    covered_pixels,
)
from repro.graphics.viewport import Viewport
from tests.conftest import random_star_polygon

VP = Viewport(BBox(0, 0, 100, 100), 128, 96)


def _random_scene(seed: int, num: int = 16):
    rng = np.random.default_rng(seed)
    polys = [
        random_star_polygon(
            rng,
            center=(rng.uniform(10, 90), rng.uniform(10, 90)),
            radius_range=(2, 20),
            vertices=int(rng.integers(3, 12)),
        )
        for _ in range(num)
    ]
    return polys, {pid: triangulate_polygon(p) for pid, p in enumerate(polys)}


class TestFlatten:
    def test_soup_order_and_owner_map(self):
        _, tris = _random_scene(1)
        soup = flatten_triangles(tris)
        assert soup.num_triangles == sum(len(t) for t in tris.values())
        t = 0
        for pid in sorted(tris):
            for tri in tris[pid]:
                assert np.array_equal(soup.verts[t], np.asarray(tri))
                assert soup.tri_pid[t] == pid
                t += 1

    def test_empty_soup(self):
        soup = flatten_triangles({})
        assert soup.num_triangles == 0
        frags = rasterize_triangles(VP, soup.verts)
        assert frags.counts.shape == (0,)
        assert len(frags.ix) == 0


class TestFragmentEquality:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_per_triangle_bit_equality(self, seed):
        """Batched fragments match covered_pixels triangle by triangle,
        in the exact same (row-major) order."""
        _, tris = _random_scene(seed)
        soup = flatten_triangles(tris)
        frags = rasterize_triangles(VP, soup.verts)
        per_iy = np.split(frags.iy, np.cumsum(frags.counts)[:-1])
        per_ix = np.split(frags.ix, np.cumsum(frags.counts)[:-1])
        t = 0
        for pid in sorted(tris):
            for tri in tris[pid]:
                xs, ys = covered_pixels(VP, tri)
                assert np.array_equal(per_ix[t], xs)
                assert np.array_equal(per_iy[t], ys)
                t += 1

    def test_chunking_never_changes_output(self):
        """The fragment budget is a memory knob, not a semantic one."""
        _, tris = _random_scene(4)
        soup = flatten_triangles(tris)
        ref = rasterize_triangles(VP, soup.verts)
        for budget in (1, 7, 100, DEFAULT_FRAGMENT_BUDGET):
            got = rasterize_triangles(VP, soup.verts, budget=budget)
            assert np.array_equal(got.tri, ref.tri)
            assert np.array_equal(got.ix, ref.ix)
            assert np.array_equal(got.iy, ref.iy)
            assert np.array_equal(got.counts, ref.counts)

    def test_degenerate_and_offscreen_triangles(self):
        """Zero-area and fully clipped triangles yield zero fragments,
        matching the scalar reference."""
        tris = [
            np.array([(10.0, 10.0), (20.0, 10.0), (30.0, 10.0)]),  # collinear
            np.array([(5.0, 5.0), (5.0, 5.0), (5.0, 5.0)]),  # point
            np.array([(-50.0, -50.0), (-40.0, -50.0), (-45.0, -40.0)]),
            np.array([(10.0, 10.0), (40.0, 12.0), (25.0, 30.0)]),  # live
        ]
        verts = np.stack(tris)
        frags = rasterize_triangles(VP, verts)
        for t, tri in enumerate(tris):
            xs, ys = covered_pixels(VP, tri)
            assert frags.counts[t] == len(xs)
        assert frags.counts[0] == 0
        assert frags.counts[1] == 0
        assert frags.counts[2] == 0
        assert frags.counts[3] > 0


class TestCoveragePieces:
    def test_pieces_match_scalar_units(self):
        _, tris = _random_scene(5)
        pieces = coverage_pieces_by_polygon(VP, tris)
        assert set(pieces) == set(tris)
        for pid in tris:
            ref = []
            for tri in tris[pid]:
                xs, ys = covered_pixels(VP, tri)
                if len(xs):
                    ref.append((ys, xs))
            assert len(pieces[pid]) == len(ref)
            for (gy, gx), (ry, rx) in zip(pieces[pid], ref):
                assert np.array_equal(gy, ry)
                assert np.array_equal(gx, rx)

    def test_every_requested_pid_present(self):
        """A polygon whose triangles are all off-screen still gets an
        (empty) entry — unit builders rely on complete keys."""
        off = np.array([(-50.0, -50.0), (-40.0, -50.0), (-45.0, -40.0)])
        pieces = coverage_pieces_by_polygon(VP, {3: [off], 7: []})
        assert pieces[3] == []
        assert pieces[7] == []


class TestAccumulateSums:
    def test_bit_equal_reduction(self):
        """The batched fragment-shader sum keeps the scalar reduction's
        float64 ``where=mask`` semantics exactly — dtype, masking, and
        pairwise-summation order all pinned (regression: a 1-D gathered
        sum re-associates the additions and drifts in the last ulp)."""
        rng = np.random.default_rng(6)
        _, tris = _random_scene(6)
        channel = rng.uniform(-1e9, 1e9, (VP.height, VP.width))
        flat = [t for pid in sorted(tris) for t in tris[pid]]
        batch = accumulate_triangle_sums_batch(VP, channel, flat)
        assert batch.dtype == np.float64
        for i, tri in enumerate(flat):
            ref = accumulate_triangle_sums(VP, channel, tri)
            assert batch[i] == ref  # bitwise, not allclose

    def test_degenerate_sum_is_zero(self):
        channel = np.ones((VP.height, VP.width))
        tri = np.array([(10.0, 10.0), (20.0, 10.0), (30.0, 10.0)])
        batch = accumulate_triangle_sums_batch(VP, channel, [tri])
        assert batch[0] == accumulate_triangle_sums(VP, channel, tri) == 0.0


class TestOutlineMany:
    def test_matches_single_polygon_outline(self):
        polys, _ = _random_scene(7)
        rings = {pid: p.rings for pid, p in enumerate(polys)}
        many = outline_pixels_many(VP, rings)
        assert set(many) == set(rings)
        for pid, p in enumerate(polys):
            ox, oy = outline_pixels(VP, p.rings)
            assert np.array_equal(many[pid][0], ox)
            assert np.array_equal(many[pid][1], oy)

    def test_requested_but_empty(self):
        many = outline_pixels_many(VP, {5: []})
        assert len(many[5][0]) == 0
        assert many[5][0].dtype == np.int64

    def test_holed_polygon(self, holed_polygon):
        many = outline_pixels_many(VP, {0: holed_polygon.rings})
        ox, oy = outline_pixels(VP, holed_polygon.rings)
        assert np.array_equal(many[0][0], ox)
        assert np.array_equal(many[0][1], oy)


class TestTileBinning:
    def test_matches_bbox_intersects(self):
        polys, _ = _random_scene(8, num=32)
        xmin = np.array([p.bbox.xmin for p in polys])
        ymin = np.array([p.bbox.ymin for p in polys])
        xmax = np.array([p.bbox.xmax for p in polys])
        ymax = np.array([p.bbox.ymax for p in polys])
        canvas_tiles = [
            Viewport(BBox(0, 0, 50, 50), 64, 48),
            Viewport(BBox(50, 0, 100, 50), 64, 48),
            Viewport(BBox(25, 25, 75, 75), 64, 48),
            Viewport(BBox(200, 200, 300, 300), 64, 48),  # empty
        ]
        for tile in canvas_tiles:
            hit = bin_polygons_to_tile(tile, (xmin, xmax, ymin, ymax))
            for pid, p in enumerate(polys):
                assert hit[pid] == tile.bbox.intersects(p.bbox)
