"""Unit tests for the scanline polygon fast path."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.raster_polygon import (
    accumulate_polygon_sum,
    scanline_polygon_pixels,
)
from repro.graphics.raster_triangle import covered_pixels
from repro.graphics.viewport import Viewport
from tests.conftest import random_star_polygon

VP = Viewport(BBox(0, 0, 32, 32), 32, 32)


def scan_set(viewport, poly):
    xs, ys = scanline_polygon_pixels(viewport, poly.rings)
    return set(zip(xs.tolist(), ys.tolist()))


def triangle_union_set(viewport, poly):
    out: set = set()
    for tri in triangulate_polygon(poly):
        xs, ys = covered_pixels(viewport, tri)
        out |= set(zip(xs.tolist(), ys.tolist()))
    return out


class TestBasics:
    def test_axis_aligned_square(self):
        square = Polygon([(2, 2), (10, 2), (10, 10), (2, 10)])
        assert scan_set(VP, square) == {
            (i, j) for i in range(2, 10) for j in range(2, 10)
        }

    def test_hole_excluded(self, holed_polygon):
        # Exterior [0,20]^2 covers centers i+0.5 in (0,20): 20x20 pixels;
        # the hole [5,15]^2 removes centers in (5,15): 10x10 pixels.
        got = scan_set(VP, holed_polygon)
        assert (2, 2) in got
        assert (10, 10) not in got
        assert len(got) == 20 * 20 - 10 * 10

    def test_offscreen_polygon(self):
        poly = Polygon([(100, 100), (110, 100), (105, 110)])
        assert scan_set(VP, poly) == set()

    def test_subpixel_polygon(self):
        poly = Polygon([(5.1, 5.1), (5.3, 5.1), (5.2, 5.3)])
        assert len(scan_set(VP, poly)) <= 1


class TestAgreementWithTrianglePath:
    """The central equivalence: scanline == union of triangle coverage."""

    def test_random_stars(self, rng):
        for _ in range(60):
            poly = random_star_polygon(
                rng, center=(16, 16), radius_range=(3, 14),
                vertices=int(rng.integers(5, 16)),
            )
            assert scan_set(VP, poly) == triangle_union_set(VP, poly)

    def test_grid_aligned_squares(self):
        for offset in (0.0, 0.25, 0.5, 0.75):
            square = Polygon(
                [
                    (4 + offset, 4 + offset),
                    (12 + offset, 4 + offset),
                    (12 + offset, 12 + offset),
                    (4 + offset, 12 + offset),
                ]
            )
            assert scan_set(VP, square) == triangle_union_set(VP, square)

    def test_holed_polygon(self, holed_polygon):
        assert scan_set(VP, holed_polygon) == triangle_union_set(VP, holed_polygon)

    def test_thin_sliver(self):
        sliver = Polygon([(1, 1), (30, 1.2), (30, 1.4), (1, 1.6)])
        assert scan_set(VP, sliver) == triangle_union_set(VP, sliver)


class TestAccumulate:
    def test_sum_matches_pixel_count(self):
        channel = np.ones((32, 32), dtype=np.float32)
        square = Polygon([(2, 2), (10, 2), (10, 10), (2, 10)])
        assert accumulate_polygon_sum(VP, channel, square.rings) == 64.0

    def test_empty(self):
        channel = np.ones((32, 32), dtype=np.float32)
        poly = Polygon([(100, 100), (110, 100), (105, 110)])
        assert accumulate_polygon_sum(VP, channel, poly.rings) == 0.0


class TestEndpointFixup:
    """Regression for the span-endpoint fix-up rewrite.

    The old fix-up iterated ``(i_start - 1, i_start)`` with a guard that
    made the second element unreachable, and stopped after one pixel —
    an endpoint misplaced by two or more pixels stayed wrong.  The walk
    version must agree with the exact per-pixel-center oracle (and hence
    the triangle path) on every adversarial shape below.
    """

    @staticmethod
    def oracle_set(viewport, poly):
        """Ground truth: exact even-odd test of every pixel center."""
        from repro.graphics.raster_polygon import (
            _HALF,
            _center_inside_exact,
            _snap_rings,
        )
        from repro.graphics.raster_triangle import SUBPIXEL_SCALE

        snapped = _snap_rings(viewport, poly.rings)
        out = set()
        for j in range(viewport.height):
            cy = j * SUBPIXEL_SCALE + _HALF
            for i in range(viewport.width):
                if _center_inside_exact(i * SUBPIXEL_SCALE + _HALF, cy, snapped):
                    out.add((i, j))
        return out

    def assert_all_paths_agree(self, poly):
        expected = self.oracle_set(VP, poly)
        assert scan_set(VP, poly) == expected
        assert triangle_union_set(VP, poly) == expected

    def test_near_horizontal_slivers(self):
        # Long, nearly flat slivers whose crossings sit a hair off row
        # centers — the worst case for float span endpoints.
        for dy in (1e-7, 1e-4, 0.01):
            sliver = Polygon(
                [(0.3, 4.5 - dy), (31.7, 4.5 + dy), (31.7, 4.5 + 3 * dy),
                 (0.3, 4.5 + dy)]
            )
            self.assert_all_paths_agree(sliver)

    def test_vertices_exactly_on_row_centers(self):
        # Vertices snapped precisely onto pixel-center scanlines exercise
        # the half-open crossing rule and coincident-crossing pairing.
        poly = Polygon([(2.5, 2.5), (28.5, 2.5), (28.5, 9.5), (2.5, 9.5)])
        self.assert_all_paths_agree(poly)
        needle = Polygon([(1.5, 6.5), (30.5, 6.5), (16.5, 7.5)])
        self.assert_all_paths_agree(needle)

    def test_needle_apex_on_row_center(self):
        # A skinny triangle whose apex sits exactly on a row center.
        needle = Polygon([(16.5, 8.5), (31.5, 8.4), (31.5, 8.6)])
        self.assert_all_paths_agree(needle)

    def test_random_adversarial_slivers(self, rng):
        for _ in range(40):
            x0 = float(rng.uniform(0, 8))
            x1 = float(rng.uniform(24, 32))
            y = float(rng.integers(1, 30)) + 0.5 + float(
                rng.choice([0.0, 1e-9, -1e-9, 1e-6])
            )
            thickness = float(rng.uniform(1e-6, 0.4))
            sliver = Polygon(
                [(x0, y), (x1, y + thickness / 3), (x1, y + thickness),
                 (x0, y + thickness / 2)]
            )
            self.assert_all_paths_agree(sliver)

    def test_sliver_spanning_viewport_edges(self):
        # Spans that extend beyond the window clamp cleanly.
        sliver = Polygon([(-10, 3.5), (45, 3.5002), (45, 3.9), (-10, 3.8)])
        expected = self.oracle_set(VP, sliver)
        assert scan_set(VP, sliver) == expected
