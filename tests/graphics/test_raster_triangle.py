"""Unit tests for watertight triangle rasterization.

These properties are the foundation of the whole reproduction: pixel-center
coverage and exact partitioning of shared edges.
"""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.raster_triangle import (
    accumulate_triangle_sums,
    covered_pixels,
    triangle_coverage_mask,
)
from repro.graphics.viewport import Viewport
from tests.conftest import random_star_polygon

VP = Viewport(BBox(0, 0, 32, 32), 32, 32)


def cover_set(viewport, tri):
    xs, ys = covered_pixels(viewport, tri)
    return set(zip(xs.tolist(), ys.tolist()))


class TestBasicCoverage:
    def test_center_rule_large_triangle(self):
        tri = np.asarray([(0, 0), (32, 0), (0, 32)], float)
        xs, ys = covered_pixels(VP, tri)
        # Pixel (i, j) covered iff center (i+.5, j+.5) is inside x+y<32
        # (hypotenuse centers lie exactly on the edge -> fill rule decides).
        expected = {(i, j) for i in range(32) for j in range(32)
                    if (i + 0.5) + (j + 0.5) < 32}
        got = cover_set(VP, tri)
        boundary = {(i, j) for i in range(32) for j in range(32)
                    if (i + 0.5) + (j + 0.5) == 32}
        assert expected <= got <= expected | boundary

    def test_degenerate_triangle_empty(self):
        tri = np.asarray([(1, 1), (5, 5), (9, 9)], float)
        assert cover_set(VP, tri) == set()

    def test_subpixel_triangle(self):
        """A triangle smaller than a pixel covers at most one pixel."""
        tri = np.asarray([(3.1, 3.1), (3.4, 3.2), (3.2, 3.4)], float)
        assert len(cover_set(VP, tri)) <= 1

    def test_triangle_covering_center_exactly_one_pixel(self):
        tri = np.asarray([(3.4, 3.4), (3.7, 3.4), (3.5, 3.7)], float)
        assert cover_set(VP, tri) == {(3, 3)}

    def test_offscreen_clipped(self):
        tri = np.asarray([(-20, -20), (-1, -20), (-10, -1)], float)
        assert cover_set(VP, tri) == set()

    def test_partially_offscreen(self):
        tri = np.asarray([(-16, -16), (24, -16), (-16, 24)], float)
        got = cover_set(VP, tri)
        assert got  # the hypotenuse x + y = 8 leaves on-screen pixels
        assert all(0 <= x < 32 and 0 <= y < 32 for x, y in got)

    def test_winding_independent(self):
        ccw = np.asarray([(2, 2), (20, 3), (8, 25)], float)
        cw = ccw[::-1].copy()
        assert cover_set(VP, ccw) == cover_set(VP, cw)


class TestWatertightness:
    def test_shared_edge_partition_axis_aligned(self):
        """Two triangles of a split square: every center exactly once."""
        a = np.asarray([(0, 0), (8, 0), (8, 8)], float)
        b = np.asarray([(0, 0), (8, 8), (0, 8)], float)
        ca, cb = cover_set(VP, a), cover_set(VP, b)
        assert not (ca & cb)
        assert ca | cb == {(i, j) for i in range(8) for j in range(8)}

    def test_shared_edge_partition_through_centers(self):
        """Diagonal passing exactly through pixel centers still partitions."""
        a = np.asarray([(0.5, 0.5), (10.5, 0.5), (10.5, 10.5)], float)
        b = np.asarray([(0.5, 0.5), (10.5, 10.5), (0.5, 10.5)], float)
        ca, cb = cover_set(VP, a), cover_set(VP, b)
        assert not (ca & cb)

    def test_fan_partition_random(self, rng):
        """Triangulations of random polygons never double-count a pixel."""
        for _ in range(30):
            poly = random_star_polygon(
                rng, center=(16, 16), radius_range=(3, 14),
                vertices=int(rng.integers(5, 16)),
            )
            seen: set = set()
            for tri in triangulate_polygon(poly):
                pix = cover_set(VP, tri)
                assert not (seen & pix), "double-counted pixel on shared edge"
                seen |= pix

    def test_quad_grid_partition(self):
        """A lattice of unit squares (each 2 triangles) tiles the screen."""
        seen = np.zeros((16, 16), dtype=int)
        for i in range(0, 16, 4):
            for j in range(0, 16, 4):
                square = Polygon([(i, j), (i + 4, j), (i + 4, j + 4), (i, j + 4)])
                for tri in triangulate_polygon(square):
                    xs, ys = covered_pixels(VP, tri)
                    np.add.at(seen, (ys, xs), 1)
        assert np.all(seen[:16, :16] == 1)


class TestCoverageVsPIP:
    def test_coverage_matches_center_pip_generic(self, rng):
        """Away from boundaries, coverage == PIP test of the pixel center."""
        for _ in range(20):
            poly = random_star_polygon(
                rng, center=(16, 16), radius_range=(4, 14), vertices=8
            )
            covered = np.zeros((32, 32), dtype=bool)
            for tri in triangulate_polygon(poly):
                xs, ys = covered_pixels(VP, tri)
                covered[ys, xs] = True
            cx, cy = np.meshgrid(np.arange(32) + 0.5, np.arange(32) + 0.5)
            inside = poly.contains_points(cx.ravel(), cy.ravel()).reshape(32, 32)
            # Allow disagreement only within snapping distance of an edge:
            # find mismatches and check they are boundary-adjacent.
            mismatch = covered != inside
            if mismatch.any():
                ys, xs = np.nonzero(mismatch)
                for x, y in zip(xs, ys):
                    assert poly.on_boundary(x + 0.5, y + 0.5, tol=1e-2), (
                        f"non-boundary mismatch at pixel ({x}, {y})"
                    )


class TestAccumulate:
    def test_sum_over_covered_pixels(self):
        channel = np.ones((32, 32), dtype=np.float32)
        tri = np.asarray([(0, 0), (8, 0), (8, 8)], float)
        total = accumulate_triangle_sums(VP, channel, tri)
        assert total == len(cover_set(VP, tri))

    def test_empty_triangle_zero(self):
        channel = np.ones((32, 32), dtype=np.float32)
        tri = np.asarray([(100, 100), (101, 100), (100, 101)], float)
        assert accumulate_triangle_sums(VP, channel, tri) == 0.0

    def test_float64_reduction(self):
        """Large channel values reduce without float32 saturation."""
        channel = np.full((32, 32), 2.0**24, dtype=np.float32)
        tri = np.asarray([(0, 0), (32, 0), (0, 32)], float)
        total = accumulate_triangle_sums(VP, channel, tri)
        assert total == 2.0**24 * len(cover_set(VP, tri))
