"""Unit tests for conservative rasterization."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.conservative import (
    conservative_polygon_pixels,
    conservative_triangle_pixels,
)
from repro.graphics.raster_triangle import covered_pixels
from repro.graphics.viewport import Viewport
from tests.conftest import random_star_polygon

VP = Viewport(BBox(0, 0, 16, 16), 16, 16)


def conservative_set(tri):
    x0, y0, mask = conservative_triangle_pixels(VP, tri)
    if mask.size == 0:
        return set()
    ys, xs = np.nonzero(mask)
    return set(zip((xs + x0).tolist(), (ys + y0).tolist()))


def regular_set(tri):
    xs, ys = covered_pixels(VP, tri)
    return set(zip(xs.tolist(), ys.tolist()))


class TestConservativeTriangle:
    def test_superset_of_regular(self, rng):
        """Conservative coverage ⊇ center-rule coverage, always."""
        for _ in range(50):
            pts = rng.uniform(1, 15, (3, 2))
            tri = np.asarray(pts, float)
            assert regular_set(tri) <= conservative_set(tri)

    def test_touched_pixels_included(self):
        """A triangle missing every center still reports its pixels."""
        tri = np.asarray([(3.6, 3.6), (3.9, 3.6), (3.75, 3.9)], float)
        assert regular_set(tri) == set()
        assert (3, 3) in conservative_set(tri)

    def test_corner_touch_counts(self):
        """Touching a pixel square's corner is an overlap (closed test)."""
        tri = np.asarray([(4.0, 4.0), (6.0, 4.0), (4.0, 6.0)], float)
        got = conservative_set(tri)
        assert (3, 3) in got  # corner touch at (4, 4)

    def test_degenerate_empty(self):
        tri = np.asarray([(1, 1), (3, 3), (5, 5)], float)
        assert conservative_set(tri) == set()

    def test_exact_overlap_via_sampling(self, rng):
        """SAT result matches a dense point-sampling oracle (one-sided).

        Pixels found by sampling must always be reported; conservative
        extras are allowed only when the triangle genuinely touches the
        pixel boundary (checked via a fine epsilon sweep).
        """
        from repro.geometry.predicates import point_in_triangle

        for _ in range(20):
            tri = rng.uniform(2, 14, (3, 2))
            got = conservative_set(tri)
            grid = np.linspace(0.001, 0.999, 12)
            for ix in range(16):
                for iy in range(16):
                    sampled = any(
                        point_in_triangle(ix + fx, iy + fy, *tri[0], *tri[1], *tri[2])
                        for fx in grid
                        for fy in grid
                    )
                    if sampled:
                        assert (ix, iy) in got


class TestConservativePolygon:
    def test_union_over_triangles(self, rng):
        poly = random_star_polygon(rng, center=(8, 8), radius_range=(2, 7))
        tris = triangulate_polygon(poly)
        xs, ys = conservative_polygon_pixels(VP, tris)
        got = set(zip(xs.tolist(), ys.tolist()))
        expected = set()
        for tri in tris:
            expected |= conservative_set(tri)
        assert got == expected

    def test_deduplicated(self, rng):
        poly = random_star_polygon(rng, center=(8, 8), radius_range=(2, 7))
        tris = triangulate_polygon(poly)
        xs, ys = conservative_polygon_pixels(VP, tris)
        flat = xs * 16 + ys
        assert len(np.unique(flat)) == len(flat)

    def test_empty_triangle_list(self):
        xs, ys = conservative_polygon_pixels(VP, [])
        assert len(xs) == 0 and len(ys) == 0
