"""Unit tests for canvases, viewports, and tiling."""

import numpy as np
import pytest

from repro.errors import ResolutionError
from repro.geometry.bbox import BBox
from repro.graphics.viewport import Canvas, Viewport, resolution_for_epsilon


class TestResolutionForEpsilon:
    def test_pixel_diagonal_within_epsilon(self):
        extent = BBox(0, 0, 1000, 700)
        for eps in (1.0, 5.0, 17.3, 100.0):
            w, h = resolution_for_epsilon(extent, eps)
            pw = extent.width / w
            ph = extent.height / h
            assert np.hypot(pw, ph) <= eps + 1e-12

    def test_invalid_epsilon(self):
        with pytest.raises(ResolutionError):
            resolution_for_epsilon(BBox(0, 0, 1, 1), 0.0)
        with pytest.raises(ResolutionError):
            resolution_for_epsilon(BBox(0, 0, 1, 1), -3.0)

    def test_tiny_extent_min_one_pixel(self):
        assert resolution_for_epsilon(BBox(0, 0, 0.001, 0.001), 100.0) == (1, 1)


class TestViewportTransform:
    def test_round_trip_pixel_centers(self):
        vp = Viewport(BBox(10, 20, 110, 220), 50, 100)
        ixs = np.arange(50)
        iys = np.arange(50)
        cx, cy = vp.pixel_centers(ixs, iys)
        jx, jy, inside = vp.pixel_of(cx, cy)
        assert inside.all()
        assert np.array_equal(jx, ixs) and np.array_equal(jy, iys)

    def test_clipping_flags(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        ix, iy, inside = vp.pixel_of(
            np.asarray([-0.1, 0.0, 9.99, 10.0]), np.asarray([5.0, 5.0, 5.0, 5.0])
        )
        assert inside.tolist() == [False, True, True, False]

    def test_orientation_preserved(self):
        vp = Viewport(BBox(0, 0, 10, 10), 100, 100)
        sx, sy = vp.to_screen(np.asarray([0.0, 10.0]), np.asarray([0.0, 10.0]))
        assert sx[1] > sx[0] and sy[1] > sy[0]

    def test_pixel_bbox(self):
        vp = Viewport(BBox(0, 0, 10, 10), 10, 10)
        box = vp.pixel_bbox(3, 7)
        assert box.as_tuple() == (3, 7, 4, 8)

    def test_invalid_viewport(self):
        with pytest.raises(ResolutionError):
            Viewport(BBox(0, 0, 1, 1), 0, 5)


class TestCanvas:
    def test_for_epsilon_diagonal_bound(self):
        canvas = Canvas.for_epsilon(BBox(0, 0, 1000, 400), 13.0)
        assert canvas.pixel_diagonal <= 13.0

    def test_for_resolution_aspect(self):
        canvas = Canvas.for_resolution(BBox(0, 0, 200, 100), 512)
        assert canvas.width == 512 and canvas.height == 256

    def test_for_resolution_tall_extent(self):
        canvas = Canvas.for_resolution(BBox(0, 0, 100, 200), 512)
        assert canvas.height == 512 and canvas.width == 256

    def test_num_tiles(self):
        canvas = Canvas(BBox(0, 0, 100, 100), 1000, 700)
        assert canvas.num_tiles(max_resolution=512) == 2 * 2

    def test_single_tile_is_full_viewport(self):
        canvas = Canvas(BBox(0, 0, 100, 100), 256, 256)
        tiles = list(canvas.tiles(max_resolution=512))
        assert len(tiles) == 1
        assert tiles[0].width == 256 and tiles[0].x_offset == 0


class TestTiling:
    def test_tiles_cover_all_pixels_once(self):
        canvas = Canvas(BBox(0, 0, 10, 10), 1000, 900)
        seen = np.zeros((900, 1000), dtype=int)
        for tile in canvas.tiles(max_resolution=256):
            seen[
                tile.y_offset:tile.y_offset + tile.height,
                tile.x_offset:tile.x_offset + tile.width,
            ] += 1
        assert np.all(seen == 1)

    def test_tile_pixel_grids_align_with_canvas(self):
        """A point maps to the same global pixel through any tile."""
        canvas = Canvas(BBox(0, 0, 100, 100), 640, 640)
        full = canvas.full_viewport()
        rng = np.random.default_rng(7)
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        gx, gy, g_in = full.pixel_of(xs, ys)
        assigned = np.zeros(len(xs), dtype=int)
        for tile in canvas.tiles(max_resolution=128):
            ix, iy, inside = tile.pixel_of(xs, ys)
            assigned += inside
            assert np.array_equal(ix[inside] + tile.x_offset, gx[inside])
            assert np.array_equal(iy[inside] + tile.y_offset, gy[inside])
        assert np.all(assigned == g_in.astype(int))

    def test_each_point_in_exactly_one_tile(self):
        canvas = Canvas(BBox(0, 0, 50, 50), 500, 500)
        rng = np.random.default_rng(11)
        xs = rng.uniform(0, 50, 2000)
        ys = rng.uniform(0, 50, 2000)
        count = np.zeros(len(xs), dtype=int)
        for tile in canvas.tiles(max_resolution=99):
            _, _, inside = tile.pixel_of(xs, ys)
            count += inside
        assert np.all(count == 1)

    def test_bad_max_resolution(self):
        canvas = Canvas(BBox(0, 0, 1, 1), 4, 4)
        with pytest.raises(ResolutionError):
            list(canvas.tiles(max_resolution=0))


class TestDegenerateExtent:
    """Regression: a zero-width/height extent (collinear points, a single
    vertex) must raise ResolutionError instead of dividing by zero."""

    def test_for_resolution_zero_width(self):
        with pytest.raises(ResolutionError):
            Canvas.for_resolution(BBox(5, 0, 5, 10), 256)

    def test_for_resolution_zero_height(self):
        with pytest.raises(ResolutionError):
            Canvas.for_resolution(BBox(0, 7, 10, 7), 256)

    def test_for_resolution_point_extent(self):
        with pytest.raises(ResolutionError):
            Canvas.for_resolution(BBox(3, 3, 3, 3), 256)

    def test_for_epsilon_degenerate(self):
        with pytest.raises(ResolutionError):
            Canvas.for_epsilon(BBox(5, 0, 5, 10), 1.0)

    def test_constructor_degenerate(self):
        with pytest.raises(ResolutionError):
            Canvas(BBox(0, 2, 0, 2), 16, 16)

    def test_non_finite_extent(self):
        with pytest.raises(ResolutionError):
            Canvas.for_resolution(BBox(0, 0, np.inf, 10), 256)

    def test_valid_extent_still_works(self):
        canvas = Canvas.for_resolution(BBox(0, 0, 10, 5), 128)
        assert (canvas.width, canvas.height) == (128, 64)
