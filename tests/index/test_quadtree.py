"""Unit tests for the point quadtree."""

import numpy as np
import pytest

from repro.index.quadtree import PointQuadtree


class TestBuild:
    def test_order_is_permutation(self, rng):
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        tree = PointQuadtree(xs, ys, leaf_capacity=64)
        assert sorted(tree.order.tolist()) == list(range(5000))

    def test_leaves_partition_points(self, rng):
        xs = rng.uniform(0, 100, 2000)
        ys = rng.uniform(0, 100, 2000)
        tree = PointQuadtree(xs, ys, leaf_capacity=100)
        seen = np.zeros(2000, dtype=int)
        for leaf in tree.leaves():
            ids = tree.leaf_point_ids(leaf)
            seen[ids] += 1
        assert np.all(seen == 1)

    def test_leaf_capacity_respected(self, rng):
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        tree = PointQuadtree(xs, ys, leaf_capacity=50, max_depth=20)
        for leaf in tree.leaves():
            assert leaf.count <= 50

    def test_points_inside_leaf_bbox(self, rng):
        xs = rng.uniform(0, 100, 1000)
        ys = rng.uniform(0, 100, 1000)
        tree = PointQuadtree(xs, ys, leaf_capacity=32)
        for leaf in tree.leaves():
            ids = tree.leaf_point_ids(leaf)
            box = leaf.bbox
            assert np.all(xs[ids] >= box.xmin - 1e-9)
            assert np.all(xs[ids] <= box.xmax + 1e-9)
            assert np.all(ys[ids] >= box.ymin - 1e-9)
            assert np.all(ys[ids] <= box.ymax + 1e-9)

    def test_max_depth_stops_splitting(self):
        # All points identical: splitting can never succeed; max_depth
        # must terminate the recursion.
        xs = np.full(500, 5.0)
        ys = np.full(500, 5.0)
        tree = PointQuadtree(xs, ys, leaf_capacity=10, max_depth=6)
        assert tree.num_leaves() >= 1

    def test_skewed_data_more_leaves_in_dense_area(self, rng):
        dense = rng.normal(20, 1, (5000, 2))
        sparse = rng.uniform(0, 100, (100, 2))
        pts = np.concatenate([dense, sparse])
        tree = PointQuadtree(pts[:, 0], pts[:, 1], leaf_capacity=128)
        dense_leaves = sum(
            1 for leaf in tree.leaves()
            if leaf.bbox.xmax < 50 and leaf.bbox.ymax < 50
        )
        assert dense_leaves > tree.num_leaves() / 2

    def test_empty_input(self):
        tree = PointQuadtree(np.zeros(0), np.zeros(0))
        assert tree.num_leaves() == 1
        assert tree.root.count == 0
