"""Unit tests for the STR-packed R-tree."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.polygon import PolygonSet, rectangle
from repro.index.strtree import STRTree


@pytest.fixture
def grid_of_boxes() -> PolygonSet:
    polys = [
        rectangle(10 * i, 10 * j, 10 * i + 8, 10 * j + 8)
        for i in range(10)
        for j in range(10)
    ]
    return PolygonSet(polys)


class TestBuild:
    def test_root_covers_everything(self, grid_of_boxes):
        tree = STRTree(grid_of_boxes)
        for poly in grid_of_boxes:
            assert tree.root.bbox.contains_bbox(poly.bbox)

    def test_depth_grows_with_size(self, grid_of_boxes):
        small = STRTree(PolygonSet(list(grid_of_boxes)[:4]), leaf_capacity=4)
        big = STRTree(grid_of_boxes, leaf_capacity=4, fanout=4)
        assert big.depth() > small.depth()

    def test_single_polygon(self):
        tree = STRTree(PolygonSet([rectangle(0, 0, 1, 1)]))
        assert tree.depth() == 1
        assert tree.candidates_of_point(0.5, 0.5).tolist() == [0]


class TestQueries:
    def test_point_query_matches_brute_force(self, grid_of_boxes, rng):
        tree = STRTree(grid_of_boxes, leaf_capacity=8)
        for _ in range(300):
            x, y = rng.uniform(0, 100, 2)
            got = set(tree.candidates_of_point(x, y).tolist())
            expected = {
                pid
                for pid, poly in enumerate(grid_of_boxes)
                if poly.bbox.xmin <= x <= poly.bbox.xmax
                and poly.bbox.ymin <= y <= poly.bbox.ymax
            }
            assert got == expected

    def test_bbox_query_matches_brute_force(self, grid_of_boxes, rng):
        tree = STRTree(grid_of_boxes, leaf_capacity=8)
        for _ in range(100):
            x0, y0 = rng.uniform(0, 80, 2)
            query = BBox(x0, y0, x0 + 15, y0 + 15)
            got = set(tree.query_bbox(query).tolist())
            expected = {
                pid
                for pid, poly in enumerate(grid_of_boxes)
                if poly.bbox.intersects(query)
            }
            assert got == expected

    def test_miss_returns_empty(self, grid_of_boxes):
        tree = STRTree(grid_of_boxes)
        assert len(tree.candidates_of_point(-5, -5)) == 0
