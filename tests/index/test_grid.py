"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet, rectangle
from repro.index.grid import GridIndex
from tests.conftest import random_star_polygon


@pytest.fixture
def small_set() -> PolygonSet:
    return PolygonSet(
        [
            rectangle(0, 0, 30, 30),
            rectangle(20, 20, 60, 60),
            Polygon([(70, 10), (95, 15), (85, 45)]),
        ]
    )


class TestBuild:
    def test_csr_structure_consistent(self, small_set):
        grid = GridIndex(small_set, resolution=16)
        assert grid.cell_start[0] == 0
        assert grid.cell_start[-1] == len(grid.entries)
        assert np.all(np.diff(grid.cell_start) >= 0)

    def test_invalid_args(self, small_set):
        with pytest.raises(GeometryError):
            GridIndex(small_set, resolution=0)
        with pytest.raises(GeometryError):
            GridIndex(small_set, assignment="fancy")

    def test_exact_assignment_subset_of_mbr(self, rng):
        """Exact cell lists are never larger than MBR cell lists."""
        polys = PolygonSet(
            [random_star_polygon(rng, center=(50, 50), radius_range=(10, 40))
             for _ in range(5)]
        )
        extent = BBox(0, 0, 100, 100)
        mbr = GridIndex(polys, resolution=32, assignment="mbr", extent=extent)
        exact = GridIndex(polys, resolution=32, assignment="exact", extent=extent)
        assert exact.num_entries <= mbr.num_entries
        # Per cell: exact candidates ⊆ mbr candidates.
        for cell in range(32 * 32):
            e = set(exact.candidates_of_cell(cell).tolist())
            m = set(mbr.candidates_of_cell(cell).tolist())
            assert e <= m

    def test_build_seconds_recorded(self, small_set):
        grid = GridIndex(small_set, resolution=8)
        assert grid.build_seconds >= 0.0


class TestProbe:
    def test_candidates_are_superset_of_truth(self, rng, small_set):
        """No containing polygon may ever be missed by the index."""
        grid = GridIndex(small_set, resolution=64)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        for x, y in zip(xs[:300], ys[:300]):
            candidates = set(grid.candidates_of_point(x, y).tolist())
            for pid, poly in enumerate(small_set):
                if poly.contains(x, y):
                    assert pid in candidates

    def test_point_outside_extent(self, small_set):
        grid = GridIndex(small_set, resolution=8)
        assert len(grid.candidates_of_point(-100, -100)) == 0
        cells = grid.cell_of_points(np.asarray([-100.0]), np.asarray([5.0]))
        assert cells[0] == -1

    def test_max_edge_points_have_cells(self, small_set):
        """Points exactly on the polygon-set max edges must map to a cell
        (the build pads the extent for this)."""
        grid = GridIndex(small_set, resolution=8)
        box = small_set.bbox
        cells = grid.cell_of_points(
            np.asarray([box.xmax]), np.asarray([box.ymax])
        )
        assert cells[0] >= 0

    def test_vectorized_cells_match_scalar(self, rng, small_set):
        grid = GridIndex(small_set, resolution=16)
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 100, 200)
        cells = grid.cell_of_points(xs, ys)
        for i in range(200):
            single = grid.cell_of_points(xs[i:i + 1], ys[i:i + 1])[0]
            assert cells[i] == single


class TestOccupancy:
    def test_occupancy_sums_to_entries(self, small_set):
        grid = GridIndex(small_set, resolution=16)
        assert grid.cell_occupancy().sum() == grid.num_entries

    def test_memory_bytes_positive(self, small_set):
        assert GridIndex(small_set, resolution=8).memory_bytes > 0

    def test_higher_resolution_mbr_entry_growth(self, small_set):
        low = GridIndex(small_set, resolution=8)
        high = GridIndex(small_set, resolution=64)
        assert high.num_entries > low.num_entries


class TestSplice:
    """In-place CSR splicing must be bit-identical to a full re-compose."""

    @staticmethod
    def _edit(rng, polys, dirty):
        out = list(polys)
        for pid in dirty:
            ring = out[pid].exterior.copy()
            c = ring.mean(axis=0)
            ring = c + (ring - c) * rng.uniform(0.3, 1.4) + rng.uniform(-3, 3, 2)
            out[pid] = Polygon(ring)
        return out

    @staticmethod
    def _changes(base, old_polys, new_polys, dirty):
        return {
            pid: (
                GridIndex.cells_for_polygon(
                    old_polys[pid], base.extent, base.resolution,
                    base.assignment,
                ),
                GridIndex.cells_for_polygon(
                    new_polys[pid], base.extent, base.resolution,
                    base.assignment,
                ),
            )
            for pid in dirty
        }

    @pytest.mark.parametrize("assignment", ["mbr", "exact"])
    @pytest.mark.parametrize("resolution", [16, 257, 1024])
    def test_bit_identical_to_from_cells(self, assignment, resolution):
        rng = np.random.default_rng(resolution)
        polys = [
            random_star_polygon(
                rng,
                center=(rng.uniform(15, 85), rng.uniform(15, 85)),
                radius_range=(2, 18),
                vertices=int(rng.integers(3, 9)),
            )
            for _ in range(40)
        ]
        base = GridIndex(polys, resolution=resolution, assignment=assignment)
        dirty = sorted(rng.choice(40, size=6, replace=False).tolist())
        new_polys = self._edit(rng, polys, dirty)
        spliced = base.splice(
            new_polys, self._changes(base, polys, new_polys, dirty)
        )
        rebuilt = GridIndex.from_cells(
            new_polys,
            [
                GridIndex.cells_for_polygon(
                    p, base.extent, resolution, assignment
                )
                for p in new_polys
            ],
            resolution,
            assignment,
            base.extent,
        )
        assert np.array_equal(spliced.cell_start, rebuilt.cell_start)
        assert np.array_equal(spliced.entries, rebuilt.entries)

    def test_adjacent_cell_tie_break(self):
        """Inserts at the end of cell c and the start of cell c+1 share a
        flat position; cell order must win over pid order there."""
        # pid 0 occupies cell 1 only; pid 2 occupies cell 2 only.  Move
        # pid 2 into cell 1 (insert at its end) and pid 0 into cell 2
        # (insert at its start): both inserts land at the same position.
        polys = [
            rectangle(10, 0, 19, 9),   # cell 1 at resolution 4 over 0..40
            rectangle(0, 30, 9, 39),   # out of the way
            rectangle(20, 0, 29, 9),   # cell 2
        ]
        extent = BBox(0, 0, 40, 40)
        cells = [
            GridIndex.cells_for_polygon(p, extent, 4, "mbr") for p in polys
        ]
        base = GridIndex.from_cells(polys, cells, 4, "mbr", extent)
        new_polys = [polys[2], polys[1], polys[0]]  # swap 0 and 2
        changes = {
            0: (cells[0], cells[2]),
            2: (cells[2], cells[0]),
        }
        spliced = base.splice(new_polys, changes)
        rebuilt = GridIndex.from_cells(
            new_polys, [cells[2], cells[1], cells[0]], 4, "mbr", extent
        )
        assert np.array_equal(spliced.cell_start, rebuilt.cell_start)
        assert np.array_equal(spliced.entries, rebuilt.entries)

    def test_empty_changes_is_identity(self, small_set):
        base = GridIndex(small_set, resolution=16)
        spliced = base.splice(small_set, {})
        assert np.array_equal(spliced.entries, base.entries)
        assert np.array_equal(spliced.cell_start, base.cell_start)

    def test_probe_equivalence_after_splice(self):
        rng = np.random.default_rng(3)
        polys = [
            random_star_polygon(
                rng,
                center=(rng.uniform(15, 85), rng.uniform(15, 85)),
                radius_range=(3, 15),
                vertices=6,
            )
            for _ in range(20)
        ]
        base = GridIndex(polys, resolution=64, assignment="exact")
        dirty = [4, 11]
        new_polys = self._edit(rng, polys, dirty)
        spliced = base.splice(
            new_polys, self._changes(base, polys, new_polys, dirty)
        )
        fresh = GridIndex(
            new_polys, resolution=64, assignment="exact", extent=base.extent
        )
        xs = rng.uniform(0, 100, 500)
        ys = rng.uniform(0, 100, 500)
        for x, y in zip(xs, ys):
            assert np.array_equal(
                spliced.candidates_of_point(x, y),
                fresh.candidates_of_point(x, y),
            )
