"""Unit tests for the uniform grid index."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet, rectangle
from repro.index.grid import GridIndex
from tests.conftest import random_star_polygon


@pytest.fixture
def small_set() -> PolygonSet:
    return PolygonSet(
        [
            rectangle(0, 0, 30, 30),
            rectangle(20, 20, 60, 60),
            Polygon([(70, 10), (95, 15), (85, 45)]),
        ]
    )


class TestBuild:
    def test_csr_structure_consistent(self, small_set):
        grid = GridIndex(small_set, resolution=16)
        assert grid.cell_start[0] == 0
        assert grid.cell_start[-1] == len(grid.entries)
        assert np.all(np.diff(grid.cell_start) >= 0)

    def test_invalid_args(self, small_set):
        with pytest.raises(GeometryError):
            GridIndex(small_set, resolution=0)
        with pytest.raises(GeometryError):
            GridIndex(small_set, assignment="fancy")

    def test_exact_assignment_subset_of_mbr(self, rng):
        """Exact cell lists are never larger than MBR cell lists."""
        polys = PolygonSet(
            [random_star_polygon(rng, center=(50, 50), radius_range=(10, 40))
             for _ in range(5)]
        )
        extent = BBox(0, 0, 100, 100)
        mbr = GridIndex(polys, resolution=32, assignment="mbr", extent=extent)
        exact = GridIndex(polys, resolution=32, assignment="exact", extent=extent)
        assert exact.num_entries <= mbr.num_entries
        # Per cell: exact candidates ⊆ mbr candidates.
        for cell in range(32 * 32):
            e = set(exact.candidates_of_cell(cell).tolist())
            m = set(mbr.candidates_of_cell(cell).tolist())
            assert e <= m

    def test_build_seconds_recorded(self, small_set):
        grid = GridIndex(small_set, resolution=8)
        assert grid.build_seconds >= 0.0


class TestProbe:
    def test_candidates_are_superset_of_truth(self, rng, small_set):
        """No containing polygon may ever be missed by the index."""
        grid = GridIndex(small_set, resolution=64)
        xs = rng.uniform(0, 100, 3000)
        ys = rng.uniform(0, 100, 3000)
        for x, y in zip(xs[:300], ys[:300]):
            candidates = set(grid.candidates_of_point(x, y).tolist())
            for pid, poly in enumerate(small_set):
                if poly.contains(x, y):
                    assert pid in candidates

    def test_point_outside_extent(self, small_set):
        grid = GridIndex(small_set, resolution=8)
        assert len(grid.candidates_of_point(-100, -100)) == 0
        cells = grid.cell_of_points(np.asarray([-100.0]), np.asarray([5.0]))
        assert cells[0] == -1

    def test_max_edge_points_have_cells(self, small_set):
        """Points exactly on the polygon-set max edges must map to a cell
        (the build pads the extent for this)."""
        grid = GridIndex(small_set, resolution=8)
        box = small_set.bbox
        cells = grid.cell_of_points(
            np.asarray([box.xmax]), np.asarray([box.ymax])
        )
        assert cells[0] >= 0

    def test_vectorized_cells_match_scalar(self, rng, small_set):
        grid = GridIndex(small_set, resolution=16)
        xs = rng.uniform(0, 100, 200)
        ys = rng.uniform(0, 100, 200)
        cells = grid.cell_of_points(xs, ys)
        for i in range(200):
            single = grid.cell_of_points(xs[i:i + 1], ys[i:i + 1])[0]
            assert cells[i] == single


class TestOccupancy:
    def test_occupancy_sums_to_entries(self, small_set):
        grid = GridIndex(small_set, resolution=16)
        assert grid.cell_occupancy().sum() == grid.num_entries

    def test_memory_bytes_positive(self, small_set):
        assert GridIndex(small_set, resolution=8).memory_bytes > 0

    def test_higher_resolution_mbr_entry_growth(self, small_set):
        low = GridIndex(small_set, resolution=8)
        high = GridIndex(small_set, resolution=64)
        assert high.num_entries > low.num_entries
