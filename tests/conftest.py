"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro import PointDataset, Polygon, PolygonSet


def random_star_polygon(
    rng: np.random.Generator,
    center: tuple[float, float] = (50.0, 50.0),
    radius_range: tuple[float, float] = (5.0, 40.0),
    vertices: int = 10,
) -> Polygon:
    """A guaranteed-simple random polygon (star-shaped about its center).

    Angle gaps are capped below pi so no edge can swing around the center;
    the construction is then always simple.
    """
    while True:
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, vertices))
        gaps = np.diff(np.concatenate([angles, [angles[0] + 2 * np.pi]]))
        if gaps.max() < 0.9 * np.pi:
            break
    radii = rng.uniform(*radius_range, vertices)
    ring = np.column_stack(
        [
            center[0] + radii * np.cos(angles),
            center[1] + radii * np.sin(angles),
        ]
    )
    return Polygon(ring)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def unit_square() -> Polygon:
    return Polygon([(0, 0), (10, 0), (10, 10), (0, 10)])


@pytest.fixture
def concave_polygon() -> Polygon:
    """An arrow-head shaped concave polygon."""
    return Polygon([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)])


@pytest.fixture
def holed_polygon() -> Polygon:
    return Polygon(
        [(0, 0), (20, 0), (20, 20), (0, 20)],
        holes=[[(5, 5), (15, 5), (15, 15), (5, 15)]],
    )


@pytest.fixture
def three_regions() -> PolygonSet:
    """A small mixed polygon set: convex, concave, holed."""
    return PolygonSet(
        [
            Polygon([(10, 10), (40, 12), (35, 40), (15, 35)]),
            Polygon([(50, 50), (90, 55), (80, 95), (45, 80), (60, 65)]),
            Polygon(
                [(20, 60), (40, 60), (40, 90), (20, 90)],
                holes=[[(25, 65), (35, 65), (35, 85), (25, 85)]],
            ),
        ]
    )


@pytest.fixture
def uniform_points(rng: np.random.Generator) -> PointDataset:
    """20k uniform points over [0, 100]^2 with two attributes."""
    n = 20_000
    return PointDataset(
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        {
            "fare": rng.uniform(1.0, 30.0, n),
            "hour": rng.integers(0, 24, n).astype(np.int32),
        },
    )


def brute_force_counts(points: PointDataset, polygons: PolygonSet) -> np.ndarray:
    """Reference join: exhaustive vectorized PIP per polygon."""
    return np.asarray(
        [
            float(np.count_nonzero(p.contains_points(points.xs, points.ys)))
            for p in polygons
        ]
    )


def brute_force_sums(
    points: PointDataset, polygons: PolygonSet, column: str
) -> np.ndarray:
    values = points.column(column)
    return np.asarray(
        [
            float(np.sum(values[p.contains_points(points.xs, points.ys)]))
            for p in polygons
        ]
    )
