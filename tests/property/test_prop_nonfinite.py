"""Property tests: Min/Max/Average with ±inf and NaN attribute values.

Pins the finalize semantics fixed alongside the aggregate pyramid: only
*identity* accumulator slots (regions that saw no value) finalize to
NaN — a legitimate ``-inf`` minimum (or ``+inf`` maximum) passes
through, and a NaN value poisons its region's result on every path
(raster scatter, boundary PIP, pyramid block partials).  The one
documented ambiguity: a region whose true minimum is exactly ``+inf``
is indistinguishable from an empty one and also finalizes to NaN
(mirrored by the reference below).

Checked across engines (accurate, index join), execution backends
(serial, threaded tiles), streamed vs monolithic input, and the
pyramid-warm vs exact accurate paths.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    Average,
    IndexJoin,
    Max,
    Min,
    PointDataset,
    PolygonSet,
    QuerySession,
)
from repro.exec.config import EngineConfig
from repro.geometry.polygon import rectangle
from tests.property.test_prop_geometry import star_polygons


@st.composite
def nonfinite_workloads(draw):
    """Random points whose attribute mixes finite values, ±inf, and NaN."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(50, 800))
    rng = np.random.default_rng(seed)
    values = rng.uniform(-100.0, 100.0, n_points)
    for special in (np.inf, -np.inf, np.nan):
        share = draw(st.floats(0.0, 0.3))
        values[rng.uniform(0.0, 1.0, n_points) < share] = special
    points = PointDataset(
        rng.uniform(0, 100, n_points),
        rng.uniform(0, 100, n_points),
        {"v": values},
    )
    polys = [draw(star_polygons(center=(35, 40), max_radius=30.0))]
    # An anchor rectangle pins the grid frame and guarantees a region
    # that contains every point (so specials are always exercised).
    polys.append(rectangle(-1, -1, 101, 101))
    return points, PolygonSet(polys)


def reference(points, polygons, kind):
    """Brute-force per-region values under the fixed finalize semantics."""
    vals = points.column("v")
    out = []
    for poly in polygons:
        inside = vals[poly.contains_points(points.xs, points.ys)]
        if kind == "avg":
            out.append(
                np.nan if len(inside) == 0
                else float(np.sum(inside)) / len(inside)
            )
            continue
        reduced = (
            float(np.min(inside)) if kind == "min" else float(np.max(inside))
        ) if len(inside) else None
        identity = np.inf if kind == "min" else -np.inf
        # Empty region, or a true extremum equal to the identity: NaN.
        out.append(
            np.nan if reduced is None or reduced == identity else reduced
        )
    return np.asarray(out)


AGGS = {"min": Min, "max": Max, "avg": Average}


def check(result, points, polygons, kind):
    expect = reference(points, polygons, kind)
    if kind == "avg":
        assert np.allclose(result.values, expect, equal_nan=True)
    else:
        # Min/Max are order-free: exact equality, NaN-for-NaN.
        assert np.array_equal(result.values, expect, equal_nan=True)


@given(nonfinite_workloads(), st.sampled_from(["min", "max", "avg"]))
@settings(max_examples=20, deadline=None)
def test_accurate_nonfinite_semantics(workload, kind):
    points, polygons = workload
    result = AccurateRasterJoin(resolution=128, grid_resolution=32).execute(
        points, polygons, AGGS[kind]("v")
    )
    check(result, points, polygons, kind)


@given(nonfinite_workloads(), st.sampled_from(["min", "max", "avg"]))
@settings(max_examples=10, deadline=None)
def test_threaded_backend_agrees(workload, kind):
    points, polygons = workload
    serial = AccurateRasterJoin(resolution=128, grid_resolution=32).execute(
        points, polygons, AGGS[kind]("v")
    )
    threaded = AccurateRasterJoin(
        resolution=128, grid_resolution=32,
        config=EngineConfig(backend="thread", workers=2),
    ).execute(points, polygons, AGGS[kind]("v"))
    assert np.array_equal(threaded.values, serial.values, equal_nan=True)
    check(threaded, points, polygons, kind)


@given(nonfinite_workloads(), st.sampled_from(["min", "max", "avg"]))
@settings(max_examples=10, deadline=None)
def test_streamed_matches_monolithic(workload, kind):
    points, polygons = workload
    mono = AccurateRasterJoin(resolution=128, grid_resolution=32).execute(
        points, polygons, AGGS[kind]("v")
    )
    half = len(points) // 2 or 1
    chunks = [
        PointDataset(
            points.xs[:half], points.ys[:half],
            {"v": points.column("v")[:half]},
        ),
        PointDataset(
            points.xs[half:], points.ys[half:],
            {"v": points.column("v")[half:]},
        ),
    ]
    streamed = AccurateRasterJoin(
        resolution=128, grid_resolution=32
    ).execute_stream(lambda: iter(chunks), polygons, AGGS[kind]("v"))
    assert np.array_equal(streamed.values, mono.values, equal_nan=True)


@given(nonfinite_workloads(), st.sampled_from(["min", "max", "avg"]))
@settings(max_examples=10, deadline=None)
def test_index_join_agrees(workload, kind):
    points, polygons = workload
    result = IndexJoin(mode="gpu", grid_resolution=32).execute(
        points, polygons, AGGS[kind]("v")
    )
    check(result, points, polygons, kind)


@given(nonfinite_workloads(), st.sampled_from(["min", "max", "avg"]))
@settings(max_examples=10, deadline=None)
def test_pyramid_warm_agrees_with_exact(workload, kind):
    points, polygons = workload
    exact = AccurateRasterJoin(
        resolution=128, grid_resolution=32,
        config=EngineConfig(pyramid=False),
    ).execute(points, polygons, AGGS[kind]("v"))
    eng = AccurateRasterJoin(
        resolution=128, grid_resolution=32, session=QuerySession(),
        config=EngineConfig(pyramid=True),
    )
    eng.build_pyramid(points, polygons)
    warm = eng.execute(points, polygons, AGGS[kind]("v"))
    assert warm.stats.extra.get("pyramid") == "hit"
    assert np.array_equal(warm.values, exact.values, equal_nan=True) or (
        kind == "avg" and np.allclose(warm.values, exact.values, equal_nan=True)
    )
    check(warm, points, polygons, kind)
