"""Hypothesis property tests for the concurrent serving layer.

The core serving invariant: any random mix of concurrent statements —
duplicates coalescing, fusable overlaps sharing a scan — returns results
bit-identical to executing each statement alone through the planner.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import PointDataset, Polygon, PolygonSet
from repro.serve import ServeConfig, Server
from repro.sql.planner import QueryPlanner
from tests.conftest import random_star_polygon

#: All fusable (accurate-engine, overlapping-canvas) statements; the
#: server is free to coalesce duplicates and fuse the rest.
STATEMENTS = [
    "SELECT COUNT(*) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id",
    "SELECT SUM(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id",
    "SELECT AVG(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "AND hour >= 12 GROUP BY hoods.id",
    "SELECT MAX(fare) FROM taxi, zones WHERE taxi.loc INSIDE zones.geometry "
    "GROUP BY zones.id",
    "SELECT COUNT(*) FROM taxi, zones WHERE taxi.loc INSIDE zones.geometry "
    "AND fare < 25 GROUP BY zones.id",
]

_STATE: dict = {}


def _planner() -> tuple[QueryPlanner, dict[str, object]]:
    """One warm planner + solo reference results, built lazily.

    hypothesis re-runs the test body per example, so the expensive
    catalog construction and reference executions happen once and every
    example reuses them (the solo references double as session warmup,
    which the serving layer shares).
    """
    if not _STATE:
        rng = np.random.default_rng(20260808)
        n = 20_000
        points = PointDataset(
            rng.uniform(0.0, 100.0, n),
            rng.uniform(0.0, 100.0, n),
            attributes={
                "fare": rng.uniform(2.0, 60.0, n),
                "hour": rng.integers(0, 24, n).astype(float),
            },
        )
        anchor = Polygon(
            [(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)]
        )
        hoods = PolygonSet([
            anchor,
            random_star_polygon(rng, center=(35.0, 40.0),
                                radius_range=(5.0, 20.0)),
            random_star_polygon(rng, center=(65.0, 60.0),
                                radius_range=(5.0, 20.0)),
        ])
        zones = PolygonSet([
            anchor,
            random_star_polygon(rng, center=(50.0, 30.0), vertices=14,
                                radius_range=(5.0, 20.0)),
        ])
        planner = QueryPlanner()
        planner.register_points("taxi", points)
        planner.register_regions("hoods", hoods)
        planner.register_regions("zones", zones)
        _STATE["planner"] = planner
        _STATE["solo"] = {q: planner.execute(q) for q in STATEMENTS}
    return _STATE["planner"], _STATE["solo"]


@settings(max_examples=10, deadline=None)
@given(data=st.data())
def test_random_concurrent_mix_matches_solo(data):
    planner, solo = _planner()
    picks = data.draw(
        st.lists(st.sampled_from(STATEMENTS), min_size=2, max_size=6),
        label="statements",
    )
    server = Server(planner, ServeConfig(
        max_workers=2, batch_window_s=60.0,
    ))
    try:
        futures = [server.submit(q) for q in picks]
        server.flush()
        seen: set[str] = set()
        for statement, future in zip(picks, futures):
            result = future.result(60.0)
            reference = solo[statement]
            assert np.array_equal(
                result.values, reference.values, equal_nan=True
            )
            for name, channel in reference.channels.items():
                assert np.array_equal(
                    result.channels[name], channel, equal_nan=True
                )
            if statement in seen:
                # Duplicates submitted while the first was in flight
                # coalesced onto it and say so.
                assert result.stats.extra["coalesced"] is True
            seen.add(statement)
        counters = server.counters()
        assert counters["admitted"] == len(set(picks))
        assert counters["coalesced"] == len(picks) - len(set(picks))
        assert counters["rejected"] == 0
    finally:
        server.close()
