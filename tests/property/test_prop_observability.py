"""Property tests for stats and trace invariants across the stack.

Three invariants, over random workloads x engines x backends x
streamed/monolithic execution:

* the §7.1 identity ``query_s == transfer_s + processing_s +
  partition_s + io_s`` (and every component non-negative);
* work counters are non-negative integers;
* in a recorded span tree, the children of any *sequential* span fit
  inside their parent's duration.  Spans flagged ``concurrent=True``
  (parallel tile dispatch, the multicore PIP join, the parallel PIP
  refinement) are exempt: their children overlap in wall time, so the
  child sum may legitimately exceed the parent.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    GPUDevice,
    IndexJoin,
    MaterializingJoin,
    PointDataset,
    PolygonSet,
)
from repro.exec.config import EngineConfig
from repro.obs import trace
from tests.conftest import random_star_polygon

#: Slack for float addition when comparing child sums to parents.
_EPS = 1e-6

ENGINES = (
    lambda cfg: AccurateRasterJoin(
        resolution=96, device=GPUDevice(max_resolution=48), config=cfg
    ),
    lambda cfg: BoundedRasterJoin(
        resolution=96, device=GPUDevice(max_resolution=48), config=cfg
    ),
    lambda cfg: IndexJoin(mode="gpu", config=cfg),
    lambda cfg: MaterializingJoin(config=cfg),
)


@st.composite
def workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(50, 1200))
    n_polys = draw(st.integers(1, 3))
    backend = draw(st.sampled_from(["serial", "thread", "process"]))
    engine_idx = draw(st.integers(0, len(ENGINES) - 1))
    streamed = draw(st.booleans())
    rng = np.random.default_rng(seed)
    points = PointDataset(
        rng.uniform(0.0, 100.0, n_points),
        rng.uniform(0.0, 100.0, n_points),
    )
    centers = [(30.0, 30.0), (70.0, 60.0), (40.0, 75.0)]
    polygons = PolygonSet(
        [
            random_star_polygon(rng, center=centers[k],
                                radius_range=(4.0, 22.0))
            for k in range(n_polys)
        ]
    )
    return points, polygons, backend, engine_idx, streamed


def _check_stats(stats):
    assert stats.query_s == (
        stats.transfer_s + stats.processing_s
        + stats.partition_s + stats.io_s
    )
    for name in ("transfer_s", "processing_s", "partition_s", "io_s",
                 "triangulation_s", "index_build_s", "polygon_pass_s"):
        assert getattr(stats, name) >= 0.0, name
    for name in ("pip_tests", "points_processed", "points_filtered_out",
                 "boundary_points", "passes", "batches",
                 "bytes_transferred", "prepared_hits", "prepared_misses",
                 "prepared_store_hits", "prepared_delta_hits"):
        assert getattr(stats, name) >= 0, name
    for key, value in stats.extra.items():
        if isinstance(value, (int, float)) and not isinstance(value, bool):
            assert value >= 0, key


def _check_span_containment(span):
    assert span.duration_s >= 0.0, span.name
    if not span.attrs.get("concurrent", False):
        child_sum = sum(c.duration_s for c in span.children)
        assert child_sum <= span.duration_s + _EPS, (
            span.name, child_sum, span.duration_s,
        )
    for child in span.children:
        _check_span_containment(child)


@given(workloads())
@settings(max_examples=12, deadline=None)
def test_stats_identity_and_span_containment(workload):
    points, polygons, backend, engine_idx, streamed = workload
    # An ambient tracer (the EXPLAIN ANALYZE entry path) traces the query
    # without touching the environment, keeping hypothesis examples pure.
    tracer = trace.Tracer("test")
    engine = ENGINES[engine_idx](EngineConfig(backend=backend, workers=2))
    try:
        with trace.use(tracer):
            if streamed:
                result = engine.execute_stream(
                    lambda: points.batches(max(1, len(points) // 3)),
                    polygons,
                )
            else:
                result = engine.execute(points, polygons)
    finally:
        engine.close()
    _check_stats(result.stats)
    assert result.trace is not None
    _check_span_containment(result.trace)
