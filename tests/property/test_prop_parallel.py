"""Hypothesis property tests for parallel tile execution.

The determinism guarantee of ``repro.exec``: for random workloads,
resolutions, worker counts, and backends, the accurate and bounded
engines produce **bit-identical** values and channel arrays to serial
execution, for every aggregate kind.  Multi-tile canvases are forced via
a small device framebuffer limit so the parallelism is real, not a
single-tile no-op.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Count,
    EngineConfig,
    GPUDevice,
    Max,
    Min,
    PointDataset,
    PolygonSet,
    Sum,
)
from tests.conftest import random_star_polygon

#: One instance of each aggregate kind per example — the bit-equality
#: claim covers additive, algebraic, and order-statistic blends alike.
AGGREGATE_KINDS = (
    lambda: Count(),
    lambda: Sum("val"),
    lambda: Average("val"),
    lambda: Min("val"),
    lambda: Max("val"),
)


@st.composite
def parallel_workloads(draw):
    """Random points + polygons + render/execution configuration."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(50, 1000))
    n_polys = draw(st.integers(1, 3))
    resolution = draw(st.sampled_from([96, 144]))
    workers = draw(st.integers(2, 4))
    backend = draw(st.sampled_from(["thread", "thread", "process"]))
    rng = np.random.default_rng(seed)
    points = PointDataset(
        rng.uniform(0.0, 100.0, n_points),
        rng.uniform(0.0, 100.0, n_points),
        # Signed values stress float summation-order sensitivity.
        {"val": rng.normal(0.0, 10.0, n_points)},
    )
    centers = [(30.0, 30.0), (70.0, 60.0), (40.0, 75.0)]
    polygons = PolygonSet(
        [
            random_star_polygon(
                rng, center=centers[k], radius_range=(4.0, 22.0),
                vertices=int(rng.integers(4, 9)),
            )
            for k in range(n_polys)
        ]
    )
    return points, polygons, resolution, workers, backend


def _device():
    # A tiny FBO limit forces the canvas into multiple tiles at these
    # resolutions, so the backends genuinely fan tile tasks out.
    return GPUDevice(max_resolution=48)


def _assert_bit_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values, equal_nan=True), label
    assert reference.channels.keys() == result.channels.keys(), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@given(parallel_workloads())
@settings(max_examples=6, deadline=None)
def test_accurate_parallel_bit_identical_to_serial(workload):
    points, polygons, resolution, workers, backend = workload
    for make_aggregate in AGGREGATE_KINDS:
        serial = AccurateRasterJoin(
            resolution=resolution, device=_device()
        ).execute(points, polygons, aggregate=make_aggregate())
        assert serial.stats.extra["tiles"] > 1
        parallel = AccurateRasterJoin(
            resolution=resolution, device=_device(),
            config=EngineConfig(backend=backend, workers=workers),
        ).execute(points, polygons, aggregate=make_aggregate())
        _assert_bit_identical(
            serial, parallel,
            (backend, workers, type(make_aggregate()).__name__),
        )


@given(parallel_workloads())
@settings(max_examples=6, deadline=None)
def test_bounded_parallel_bit_identical_to_serial(workload):
    points, polygons, resolution, workers, backend = workload
    for make_aggregate in AGGREGATE_KINDS:
        serial = BoundedRasterJoin(
            resolution=resolution, device=_device()
        ).execute(points, polygons, aggregate=make_aggregate())
        assert serial.stats.extra["tiles"] > 1
        parallel = BoundedRasterJoin(
            resolution=resolution, device=_device(),
            config=EngineConfig(backend=backend, workers=workers),
        ).execute(points, polygons, aggregate=make_aggregate())
        _assert_bit_identical(
            serial, parallel,
            (backend, workers, type(make_aggregate()).__name__),
        )


@given(parallel_workloads())
@settings(max_examples=4, deadline=None)
def test_streamed_parallel_bit_identical_to_serial(workload):
    """Chunked sources re-iterated per tile keep the guarantee."""
    points, polygons, resolution, workers, backend = workload

    def chunk_source():
        step = max(1, len(points) // 3)
        for start in range(0, len(points), step):
            yield PointDataset(
                points.xs[start:start + step],
                points.ys[start:start + step],
                {"val": points.column("val")[start:start + step]},
            )

    aggregate = Sum("val")
    serial = AccurateRasterJoin(
        resolution=resolution, device=_device()
    ).execute_stream(chunk_source, polygons, aggregate=aggregate)
    parallel = AccurateRasterJoin(
        resolution=resolution, device=_device(),
        config=EngineConfig(backend=backend, workers=workers),
    ).execute_stream(chunk_source, polygons, aggregate=aggregate)
    _assert_bit_identical(serial, parallel, (backend, workers, "stream"))
