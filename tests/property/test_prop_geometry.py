"""Hypothesis property tests for the geometry substrate."""

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.clip import (
    clip_polygon_to_rect,
    clip_segment_to_rect,
    pixel_coverage_fraction,
    ring_area,
)
from repro.geometry.polygon import Polygon
from repro.geometry.predicates import orientation, point_in_ring, points_in_ring
from repro.geometry.triangulate import triangulate_polygon


# ----------------------------------------------------------------------
# Strategies
# ----------------------------------------------------------------------
@st.composite
def star_polygons(draw, center=(50.0, 50.0), max_radius=40.0):
    """Random simple polygons: star-shaped with bounded angle gaps."""
    n = draw(st.integers(min_value=4, max_value=16))
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    rng = np.random.default_rng(seed)
    for _ in range(50):
        angles = np.sort(rng.uniform(0.0, 2.0 * np.pi, n))
        gaps = np.diff(np.concatenate([angles, [angles[0] + 2 * np.pi]]))
        if gaps.max() < 0.9 * np.pi:
            break
    else:
        assume(False)
    radii = rng.uniform(0.1 * max_radius, max_radius, n)
    ring = np.column_stack(
        [center[0] + radii * np.cos(angles), center[1] + radii * np.sin(angles)]
    )
    return Polygon(ring)


coords = st.floats(
    min_value=-100.0, max_value=200.0, allow_nan=False, allow_infinity=False
)


# ----------------------------------------------------------------------
# Triangulation properties
# ----------------------------------------------------------------------
@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_triangulation_preserves_area(poly):
    tris = triangulate_polygon(poly)
    total = sum(abs(orientation(t)) for t in tris)
    assert abs(total - poly.area) <= 1e-7 * max(poly.area, 1.0)


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_triangulation_interior_points_covered(poly):
    """Any point inside the polygon lies in >= 1 triangle; outside in none
    (sampled via the polygon's own PIP as the oracle)."""
    from repro.geometry.predicates import point_in_triangle

    tris = triangulate_polygon(poly)
    rng = np.random.default_rng(0)
    box = poly.bbox
    xs = rng.uniform(box.xmin, box.xmax, 64)
    ys = rng.uniform(box.ymin, box.ymax, 64)
    for x, y in zip(xs, ys):
        if poly.on_boundary(x, y, tol=1e-9):
            continue
        covered = sum(
            point_in_triangle(x, y, *t[0], *t[1], *t[2]) for t in tris
        )
        if poly.contains(x, y):
            assert covered >= 1
        else:
            assert covered == 0


# ----------------------------------------------------------------------
# PIP properties
# ----------------------------------------------------------------------
@given(star_polygons(), st.integers(0, 2**31 - 1))
@settings(max_examples=40, deadline=None)
def test_vectorized_pip_matches_scalar(poly, seed):
    rng = np.random.default_rng(seed)
    xs = rng.uniform(0, 100, 128)
    ys = rng.uniform(0, 100, 128)
    vec = points_in_ring(xs, ys, poly.exterior)
    scalar = np.asarray(
        [point_in_ring(x, y, poly.exterior) for x, y in zip(xs, ys)]
    )
    assert np.array_equal(vec, scalar)


@given(star_polygons())
@settings(max_examples=30, deadline=None)
def test_pip_translation_invariant(poly):
    ring = poly.exterior + np.asarray([1000.0, -500.0])
    shifted = Polygon(ring)
    rng = np.random.default_rng(1)
    xs = rng.uniform(0, 100, 64)
    ys = rng.uniform(0, 100, 64)
    a = poly.contains_points(xs, ys)
    b = shifted.contains_points(xs + 1000.0, ys - 500.0)
    assert np.array_equal(a, b)


# ----------------------------------------------------------------------
# Clipping properties
# ----------------------------------------------------------------------
@given(coords, coords, coords, coords)
@settings(max_examples=200, deadline=None)
def test_clipped_segment_stays_inside(ax, ay, bx, by):
    rect = BBox(0, 0, 100, 100)
    out = clip_segment_to_rect(ax, ay, bx, by, rect)
    if out is not None:
        cx0, cy0, cx1, cy1 = out
        eps = 1e-7
        for x, y in ((cx0, cy0), (cx1, cy1)):
            assert -eps <= x <= 100 + eps
            assert -eps <= y <= 100 + eps


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_clip_area_never_exceeds_originals(poly):
    rect = BBox(20, 20, 80, 80)
    clipped = clip_polygon_to_rect(poly.exterior, rect)
    area = abs(ring_area(clipped)) if len(clipped) >= 3 else 0.0
    assert area <= poly.area + 1e-7
    assert area <= rect.area + 1e-7


@given(star_polygons(), st.integers(0, 90), st.integers(0, 90))
@settings(max_examples=60, deadline=None)
def test_coverage_fraction_in_unit_interval(poly, i, j):
    tris = triangulate_polygon(poly)
    frac = pixel_coverage_fraction(tris, BBox(i, j, i + 10, j + 10))
    assert 0.0 <= frac <= 1.0
