"""Hypothesis property tests for tile-local point partitioning.

The partitioning guarantee of ``repro.exec.partition``: for random
workloads — including points sitting **exactly on tile seams** and on
interior pixel boundaries — executing with per-tile point partitioning
produces **bit-identical** values and channel arrays to the full-scan
path, for every engine, execution backend, worker count, aggregate
kind, and ingestion mode (monolithic and streamed).  Multi-tile
canvases are forced via a small device framebuffer limit so the
partition stage really buckets points instead of no-opping.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Count,
    EngineConfig,
    GPUDevice,
    Max,
    Min,
    PointDataset,
    PolygonSet,
    Sum,
)
from repro.types import ExecutionStats
from tests.conftest import random_star_polygon

#: One instance of each aggregate kind per example — bit-equality must
#: hold for additive, algebraic, and order-statistic blends alike.
AGGREGATE_KINDS = (
    lambda: Count(),
    lambda: Sum("val"),
    lambda: Average("val"),
    lambda: Min("val"),
    lambda: Max("val"),
)

MAX_FBO = 48


def _device():
    # A tiny FBO limit forces multi-tile canvases at these resolutions.
    return GPUDevice(max_resolution=MAX_FBO)


def _engine(kind, resolution, backend, workers, partition, session=None):
    cls = AccurateRasterJoin if kind == "accurate" else BoundedRasterJoin
    return cls(
        resolution=resolution, device=_device(), session=session,
        config=EngineConfig(
            backend=backend, workers=workers, partition_points=partition,
        ),
    )


def _with_seam_points(points, polygons, kind, resolution, rng):
    """Append points exactly on tile seams and pixel boundaries.

    The canvas layout is derived exactly as the engine will derive it,
    so the injected coordinates hit the seams of the *actual* tiling —
    the one place where the global projection and a tile's own
    transform could disagree, and therefore the case the conservative
    partitioner must prove it covers.
    """
    probe = _engine(kind, resolution, "serial", 1, False)
    prepared = probe._prepare(polygons, ExecutionStats())
    seam_xs: list[float] = []
    seam_ys: list[float] = []
    for tile in prepared.tiles:
        if tile.x_offset > 0:
            seam_xs.append(tile.bbox.xmin)
        if tile.y_offset > 0:
            seam_ys.append(tile.bbox.ymin)
    extent = prepared.canvas.extent
    xs, ys = [], []
    for sx in seam_xs[:3]:
        for frac in (0.25, 0.75):
            xs.append(sx)
            ys.append(extent.ymin + frac * extent.height)
    for sy in seam_ys[:3]:
        for frac in (0.25, 0.75):
            xs.append(extent.xmin + frac * extent.width)
            ys.append(sy)
    if seam_xs and seam_ys:  # the four-tile corner, the worst case
        xs.append(seam_xs[0])
        ys.append(seam_ys[0])
    # Interior pixel boundaries: exact multiples of the pixel size.
    pw, ph = prepared.canvas.pixel_width, prepared.canvas.pixel_height
    for k in (7, 19):
        xs.append(extent.xmin + k * pw)
        ys.append(extent.ymin + k * ph)
    if not xs:
        return points
    extra = PointDataset(
        np.asarray(xs), np.asarray(ys),
        {"val": rng.normal(0.0, 10.0, len(xs))},
    )
    return points.concat(extra)


@st.composite
def partition_workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(50, 600))
    n_polys = draw(st.integers(1, 3))
    resolution = draw(st.sampled_from([96, 144]))
    workers = draw(st.integers(2, 4))
    backend = draw(st.sampled_from(["serial", "thread", "process"]))
    streamed = draw(st.booleans())
    rng = np.random.default_rng(seed)
    points = PointDataset(
        rng.uniform(0.0, 100.0, n_points),
        rng.uniform(0.0, 100.0, n_points),
        # Signed values stress float summation-order sensitivity.
        {"val": rng.normal(0.0, 10.0, n_points)},
    )
    centers = [(30.0, 30.0), (70.0, 60.0), (40.0, 75.0)]
    polygons = PolygonSet(
        [
            random_star_polygon(
                rng, center=centers[k], radius_range=(4.0, 22.0),
                vertices=int(rng.integers(4, 9)),
            )
            for k in range(n_polys)
        ]
    )
    return points, polygons, resolution, workers, backend, streamed, rng


def _run(engine, points, polygons, aggregate, streamed):
    if not streamed:
        return engine.execute(points, polygons, aggregate=aggregate)

    def chunk_source():
        step = max(1, len(points) // 3)
        vals = points.column("val")
        for start in range(0, len(points), step):
            yield PointDataset(
                points.xs[start:start + step],
                points.ys[start:start + step],
                {"val": vals[start:start + step]},
            )

    return engine.execute_stream(chunk_source, polygons, aggregate=aggregate)


def _assert_bit_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values, equal_nan=True), label
    assert reference.channels.keys() == result.channels.keys(), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@given(partition_workloads())
@settings(max_examples=5, deadline=None)
def test_partitioned_bit_identical_to_full_scan(workload):
    points, polygons, resolution, workers, backend, streamed, rng = workload
    for kind in ("accurate", "bounded"):
        seamed = _with_seam_points(points, polygons, kind, resolution, rng)
        for make_aggregate in AGGREGATE_KINDS:
            reference = _run(
                _engine(kind, resolution, "serial", 1, False),
                seamed, polygons, make_aggregate(), streamed,
            )
            assert reference.stats.extra["tiles"] > 1
            assert reference.stats.extra["partition"] == "off"
            result = _run(
                _engine(kind, resolution, backend, workers, True),
                seamed, polygons, make_aggregate(), streamed,
            )
            assert result.stats.extra["partition"] == "on"
            _assert_bit_identical(
                reference, result,
                (kind, backend, workers, streamed,
                 type(make_aggregate()).__name__),
            )


@given(partition_workloads())
@settings(max_examples=3, deadline=None)
def test_partitioned_warm_session_bit_identical(workload):
    """Partitioning composes with prepared-state reuse: warm partitioned
    runs replay boundary masks and coverage yet stay bit-identical."""
    from repro import QuerySession

    points, polygons, resolution, workers, backend, streamed, rng = workload
    seamed = _with_seam_points(points, polygons, "accurate", resolution, rng)
    reference = _run(
        _engine("accurate", resolution, "serial", 1, False),
        seamed, polygons, Sum("val"), streamed,
    )
    session = QuerySession()
    engine = _engine("accurate", resolution, backend, workers, True,
                     session=session)
    _run(engine, seamed, polygons, Sum("val"), streamed)
    warm = _run(engine, seamed, polygons, Sum("val"), streamed)
    assert warm.stats.prepared_hits == 1
    _assert_bit_identical(reference, warm, (backend, workers, streamed))
