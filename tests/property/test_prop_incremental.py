"""Hypothesis property tests for incremental single-polygon edits.

The incremental-edit guarantee of ``repro.cache`` (PR 5): for random
polygon sets, editing k random polygons — replacing their geometry, and
sometimes adding or deleting one — and re-executing through a warm
:class:`QuerySession` takes the **delta derivation** path (only the
changed polygons' artifacts rebuild) yet produces **bit-identical**
values and channel arrays to a cold from-scratch build, for every
engine, execution backend, aggregate kind, and ingestion mode
(monolithic and streamed) — and equally through the store's patch
journal after a fresh-session "restart" over the same directory.

The polygon sets carry two fixed anchor rectangles pinning the overall
extent, so edits never change the frame (the realistic rezoning case:
interior boundaries move, the city does not).
"""

import tempfile

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    Average,
    BoundedRasterJoin,
    Count,
    EngineConfig,
    Max,
    Min,
    PointDataset,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.cache.prepared import fingerprint_details
from tests.conftest import random_star_polygon

AGGREGATE_KINDS = (
    lambda: Count(),
    lambda: Sum("val"),
    lambda: Average("val"),
    lambda: Min("val"),
    lambda: Max("val"),
)

#: Fixed extent anchors: never edited, so the set bbox (and with it the
#: canvas layout and grid extent) is identical before and after edits.
ANCHORS = (
    Polygon([(0.0, 0.0), (6.0, 0.0), (6.0, 6.0), (0.0, 6.0)]),
    Polygon([(94.0, 94.0), (100.0, 94.0), (100.0, 100.0), (94.0, 100.0)]),
)

CENTERS = ((30.0, 30.0), (70.0, 30.0), (30.0, 70.0), (70.0, 70.0), (50.0, 50.0))


def _interior_polygon(rng: np.random.Generator, slot: int) -> Polygon:
    return random_star_polygon(
        rng,
        center=CENTERS[slot % len(CENTERS)],
        radius_range=(4.0, 18.0),
        vertices=int(rng.integers(4, 9)),
    )


def _engine(kind, resolution, backend, session=None):
    cls = AccurateRasterJoin if kind == "accurate" else BoundedRasterJoin
    return cls(
        resolution=resolution, session=session,
        config=EngineConfig(backend=backend, workers=2),
    )


def _run(engine, points, polygons, aggregate, streamed):
    if not streamed:
        return engine.execute(points, polygons, aggregate=aggregate)

    def chunk_source():
        step = max(1, len(points) // 3)
        vals = points.column("val")
        for start in range(0, len(points), step):
            yield PointDataset(
                points.xs[start:start + step],
                points.ys[start:start + step],
                {"val": vals[start:start + step]},
            )

    return engine.execute_stream(chunk_source, polygons, aggregate=aggregate)


def _assert_bit_identical(reference, result, label):
    assert np.array_equal(reference.values, result.values, equal_nan=True), label
    assert reference.channels.keys() == result.channels.keys(), label
    for name in reference.channels:
        assert np.array_equal(
            reference.channels[name], result.channels[name]
        ), (label, name)


@st.composite
def edit_workloads(draw):
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(50, 400))
    n_interior = draw(st.integers(2, 4))
    k_edits = draw(st.integers(1, 2))
    structural = draw(st.sampled_from(["none", "add", "delete"]))
    resolution = draw(st.sampled_from([64, 128]))
    backend = draw(st.sampled_from(["serial", "thread", "process"]))
    streamed = draw(st.booleans())
    rng = np.random.default_rng(seed)
    points = PointDataset(
        rng.uniform(0.0, 100.0, n_points),
        rng.uniform(0.0, 100.0, n_points),
        {"val": rng.normal(0.0, 10.0, n_points)},
    )
    interior = [_interior_polygon(rng, i) for i in range(n_interior)]
    base = PolygonSet(list(ANCHORS) + interior)
    edited = list(interior)
    edit_slots = rng.choice(n_interior, size=min(k_edits, n_interior),
                            replace=False)
    for slot in edit_slots:
        edited[int(slot)] = _interior_polygon(rng, int(slot))
    if structural == "add" and len(edited) < len(CENTERS):
        edited.append(_interior_polygon(rng, len(edited)))
    elif structural == "delete" and len(edited) > 1:
        edited.pop(int(rng.integers(0, len(edited))))
    after = PolygonSet(list(ANCHORS) + edited)
    return points, base, after, resolution, backend, streamed


@given(edit_workloads())
@settings(max_examples=5, deadline=None)
def test_incremental_edit_bit_identical(workload):
    """Warm-session edits re-execute incrementally and bit-identically."""
    points, base, after, resolution, backend, streamed = workload
    assert base.bbox.xmin == after.bbox.xmin  # anchors pin the frame
    for kind in ("accurate", "bounded"):
        for make_aggregate in AGGREGATE_KINDS:
            reference = _run(
                _engine(kind, resolution, "serial"),
                points, after, make_aggregate(), streamed,
            )
            session = QuerySession(store=False)
            engine = _engine(kind, resolution, backend, session=session)
            _run(engine, points, base, make_aggregate(), streamed)
            result = _run(engine, points, after, make_aggregate(), streamed)
            assert result.stats.extra["prepared"] == "delta", (
                kind, backend, streamed,
            )
            assert result.stats.prepared_delta_hits == 1
            rebuilt = result.stats.extra["polygons_rebuilt"]
            base_fps = set(fingerprint_details(base)[1])
            expected = sum(
                1 for fp in fingerprint_details(after)[1]
                if fp not in base_fps
            )
            assert rebuilt == expected, (kind, backend, streamed)
            _assert_bit_identical(
                reference, result,
                (kind, backend, streamed, type(make_aggregate()).__name__),
            )


@given(edit_workloads())
@settings(max_examples=3, deadline=None)
def test_incremental_edit_replays_from_journal(workload):
    """The store's patch-journal replay path is bit-identical after a
    fresh-session restart: the edited key loads by replaying the journal
    over the base pair, nothing polygon-side rebuilds."""
    points, base, after, resolution, backend, streamed = workload
    reference = _run(
        _engine("accurate", resolution, "serial"),
        points, after, Sum("val"), streamed,
    )
    with tempfile.TemporaryDirectory(prefix="repro-journal-prop-") as root:
        session = QuerySession(store=ArtifactStore(root))
        engine = _engine("accurate", resolution, backend, session=session)
        _run(engine, points, base, Sum("val"), streamed)
        live = _run(engine, points, after, Sum("val"), streamed)
        assert live.stats.extra["prepared"] == "delta"
        _assert_bit_identical(reference, live, (backend, streamed, "live"))

        restarted = QuerySession(store=ArtifactStore(root))
        engine2 = _engine("accurate", resolution, backend,
                          session=restarted)
        replayed = _run(engine2, points, after, Sum("val"), streamed)
        assert replayed.stats.prepared_store_hits == 1
        assert replayed.stats.triangulation_s == 0.0
        assert replayed.stats.index_build_s == 0.0
        _assert_bit_identical(
            reference, replayed, (backend, streamed, "replayed")
        )
