"""Hypothesis property tests for the join engines.

Engine-level invariants on random workloads: the accurate engine equals
brute force, the bounded engine's loose intervals contain the truth, and
batching/tiling never change answers.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    GPUDevice,
    IndexJoin,
    PointDataset,
    PolygonSet,
)
from tests.property.test_prop_geometry import star_polygons


@st.composite
def workloads(draw):
    """A small random workload: points + 1-3 random simple polygons."""
    seed = draw(st.integers(0, 2**31 - 1))
    n_points = draw(st.integers(100, 3000))
    n_polys = draw(st.integers(1, 3))
    rng = np.random.default_rng(seed)
    points = PointDataset(
        rng.uniform(0, 100, n_points), rng.uniform(0, 100, n_points)
    )
    centers = [(30, 30), (70, 60), (40, 75)]
    polys = []
    for k in range(n_polys):
        polys.append(
            draw(star_polygons(center=centers[k], max_radius=25.0))
        )
    return points, PolygonSet(polys)


def brute(points, polygons):
    return np.asarray(
        [
            float(np.count_nonzero(p.contains_points(points.xs, points.ys)))
            for p in polygons
        ]
    )


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_accurate_equals_brute_force(workload):
    points, polygons = workload
    result = AccurateRasterJoin(resolution=128).execute(points, polygons)
    assert np.array_equal(result.values, brute(points, polygons))


@given(workloads())
@settings(max_examples=25, deadline=None)
def test_index_join_equals_brute_force(workload):
    points, polygons = workload
    result = IndexJoin(mode="gpu", grid_resolution=64).execute(points, polygons)
    assert np.array_equal(result.values, brute(points, polygons))


@given(workloads())
@settings(max_examples=20, deadline=None)
def test_bounded_loose_interval_contains_truth(workload):
    points, polygons = workload
    result = BoundedRasterJoin(resolution=96, compute_bounds=True).execute(
        points, polygons
    )
    assert result.intervals.contains(brute(points, polygons)).all()


@given(workloads(), st.integers(30_000, 200_000))
@settings(max_examples=15, deadline=None)
def test_batching_is_result_invariant(workload, capacity):
    points, polygons = workload
    reference = BoundedRasterJoin(resolution=64).execute(points, polygons)
    device = GPUDevice(capacity_bytes=capacity, max_resolution=64)
    batched = BoundedRasterJoin(resolution=64, device=device).execute(
        points, polygons
    )
    assert np.array_equal(batched.values, reference.values)


@given(workloads(), st.sampled_from([16, 32, 48]))
@settings(max_examples=15, deadline=None)
def test_tiling_is_result_invariant(workload, max_res):
    points, polygons = workload
    reference = BoundedRasterJoin(resolution=96).execute(points, polygons)
    tiled = BoundedRasterJoin(
        resolution=96, device=GPUDevice(max_resolution=max_res)
    ).execute(points, polygons)
    assert np.array_equal(tiled.values, reference.values)


@given(workloads())
@settings(max_examples=15, deadline=None)
def test_bounded_error_bounded_by_boundary_mass(workload):
    """Every bounded-join error is attributable to boundary pixels: the
    absolute error never exceeds the loose interval half-width."""
    points, polygons = workload
    result = BoundedRasterJoin(resolution=64, compute_bounds=True).execute(
        points, polygons
    )
    exact = brute(points, polygons)
    err = np.abs(result.values - exact)
    width_lo = result.values - result.intervals.loose_lo
    width_hi = result.intervals.loose_hi - result.values
    assert np.all(err <= np.maximum(width_lo, width_hi) + 1e-9)
