"""Hypothesis property tests for the rasterization pipeline.

These pin down the invariants the raster join's correctness rests on:
watertight triangle partitioning, scanline/triangle agreement, conservative
coverage being a superset, and outline pixels covering every coverage
error.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.conservative import conservative_triangle_pixels
from repro.graphics.raster_line import outline_pixels, supercover_line
from repro.graphics.raster_polygon import scanline_polygon_pixels
from repro.graphics.raster_triangle import covered_pixels
from repro.graphics.viewport import Viewport
from tests.property.test_prop_geometry import star_polygons

VP = Viewport(BBox(0, 0, 100, 100), 100, 100)


def tri_cover_set(viewport, tri):
    xs, ys = covered_pixels(viewport, tri)
    return set(zip(xs.tolist(), ys.tolist()))


@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_triangulation_rasterizes_without_overlap(poly):
    """No pixel is claimed by two triangles of one polygon's partition."""
    seen: set = set()
    for tri in triangulate_polygon(poly):
        pix = tri_cover_set(VP, tri)
        assert not (seen & pix)
        seen |= pix


@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_scanline_equals_triangle_union(poly):
    union: set = set()
    for tri in triangulate_polygon(poly):
        union |= tri_cover_set(VP, tri)
    xs, ys = scanline_polygon_pixels(VP, poly.rings)
    assert set(zip(xs.tolist(), ys.tolist())) == union


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_conservative_superset_of_regular(poly):
    for tri in triangulate_polygon(poly):
        regular = tri_cover_set(VP, tri)
        x0, y0, mask = conservative_triangle_pixels(VP, tri)
        if mask.size == 0:
            conservative = set()
        else:
            ys_, xs_ = np.nonzero(mask)
            conservative = set(zip((xs_ + x0).tolist(), (ys_ + y0).tolist()))
        assert regular <= conservative


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_outline_covers_all_coverage_errors(poly):
    """Coverage-vs-PIP mismatches happen only on outline pixels — the
    exactness precondition of the accurate raster join."""
    covered = np.zeros((100, 100), dtype=bool)
    for tri in triangulate_polygon(poly):
        xs, ys = covered_pixels(VP, tri)
        covered[ys, xs] = True
    ox, oy = outline_pixels(VP, poly.rings)
    boundary = np.zeros((100, 100), dtype=bool)
    boundary[oy, ox] = True
    cx, cy = np.meshgrid(np.arange(100) + 0.5, np.arange(100) + 0.5)
    inside = poly.contains_points(cx.ravel(), cy.ravel()).reshape(100, 100)
    mismatch = covered != inside
    assert not np.any(mismatch & ~boundary)


@given(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_supercover_contains_endpoints_and_is_connected(ax, ay, bx, by):
    xs, ys = supercover_line(ax, ay, bx, by, 100, 100)
    got = set(zip(xs.tolist(), ys.tolist()))
    # Endpoint pixels (clamped into the grid) are always covered.
    for x, y in ((ax, ay), (bx, by)):
        ix = min(int(np.floor(x)), 99)
        iy = min(int(np.floor(y)), 99)
        assert (ix, iy) in got
    # 8-connectivity: a supercover path has no gaps.
    if len(got) > 1:
        remaining = set(got)
        stack = [next(iter(got))]
        remaining.discard(stack[0])
        while stack:
            cx_, cy_ = stack.pop()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    nb = (cx_ + dx, cy_ + dy)
                    if nb in remaining:
                        remaining.discard(nb)
                        stack.append(nb)
        assert not remaining, "supercover pixels are disconnected"


@given(star_polygons(), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_tiled_coverage_equals_global(poly, nx, ny):
    """Rendering per tile visits exactly the global covered pixel set."""
    from repro.graphics.viewport import Canvas

    canvas = Canvas(BBox(0, 0, 100, 100), 100, 100)
    max_res = max(100 // max(nx, ny), 1)
    global_set: set = set()
    for tri in triangulate_polygon(poly):
        xs, ys = covered_pixels(VP, tri)
        global_set |= set(zip(xs.tolist(), ys.tolist()))
    tiled: set = set()
    for tile in canvas.tiles(max_resolution=max_res):
        for tri in triangulate_polygon(poly):
            xs, ys = covered_pixels(tile, tri)
            tiled |= set(
                zip((xs + tile.x_offset).tolist(), (ys + tile.y_offset).tolist())
            )
    assert tiled == global_set


# ----------------------------------------------------------------------
# Batched rasterizer: bit-equality with the scalar reference on
# adversarial inputs — shared interior edges, E == 0 pixel centers,
# degenerate triangles, tile seams.


def _batched_per_triangle(viewport, tris):
    from repro.graphics.raster_batch import rasterize_triangles

    if not len(tris):
        return []
    frags = rasterize_triangles(viewport, np.stack(tris))
    splits = np.cumsum(frags.counts)[:-1]
    return list(zip(np.split(frags.ix, splits), np.split(frags.iy, splits)))


@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_batched_equals_scalar_on_shared_edges(poly):
    """A triangulated polygon is all shared interior edges — the batched
    pass must land every fragment exactly where the scalar loop does, in
    the same order (watertightness depends on it)."""
    tris = triangulate_polygon(poly)
    for (bx, by), tri in zip(_batched_per_triangle(VP, tris), tris):
        xs, ys = covered_pixels(VP, tri)
        assert np.array_equal(bx, xs)
        assert np.array_equal(by, ys)


@given(
    st.integers(0, 20), st.integers(0, 20),
    st.integers(0, 20), st.integers(0, 20),
    st.integers(0, 20), st.integers(0, 20),
)
@settings(max_examples=150, deadline=None)
def test_batched_fill_rule_ties_on_lattice(ax, ay, bx, by, cx, cy):
    """Integer+half vertices put pixel centers exactly on edges
    (E == 0): the top-left fill-rule tie-break must agree bit-for-bit,
    including for degenerate (collinear/point) triangles."""
    tri = np.array(
        [(ax + 0.5, ay + 0.5), (bx + 0.5, by + 0.5), (cx + 0.5, cy + 0.5)]
    )
    vp = Viewport(BBox(0, 0, 25, 25), 25, 25)
    [(gx, gy)] = _batched_per_triangle(vp, [tri])
    xs, ys = covered_pixels(vp, tri)
    assert np.array_equal(gx, xs)
    assert np.array_equal(gy, ys)


@given(star_polygons(), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_batched_equals_scalar_across_tile_seams(poly, nx, ny):
    """Per-tile viewports clip triangle bboxes at seams; the batched
    clip must match the scalar clip on every tile."""
    from repro.graphics.viewport import Canvas

    canvas = Canvas(BBox(0, 0, 100, 100), 100, 100)
    max_res = max(100 // max(nx, ny), 1)
    tris = triangulate_polygon(poly)
    for tile in canvas.tiles(max_resolution=max_res):
        for (gx, gy), tri in zip(_batched_per_triangle(tile, tris), tris):
            xs, ys = covered_pixels(tile, tri)
            assert np.array_equal(gx, xs)
            assert np.array_equal(gy, ys)


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_vectorized_outline_equals_per_edge_supercover(poly):
    """outline_pixels (vectorized) is the unique union of the scalar
    per-edge supercover — same pixels, same sorted order."""
    ox, oy = outline_pixels(VP, poly.rings)
    cols, rows = [], []
    for ring in poly.rings:
        sx, sy = VP.to_screen(ring[:, 0], ring[:, 1])
        n = len(ring)
        for i in range(n):
            j = (i + 1) % n
            c, r = supercover_line(
                float(sx[i]), float(sy[i]), float(sx[j]), float(sy[j]),
                VP.width, VP.height,
            )
            cols.append(c)
            rows.append(r)
    flat = np.unique(np.concatenate(cols) * VP.height + np.concatenate(rows))
    assert np.array_equal(ox, flat // VP.height)
    assert np.array_equal(oy, flat % VP.height)


@given(star_polygons(), star_polygons(center=(30.0, 60.0), max_radius=25.0))
@settings(max_examples=30, deadline=None)
def test_batched_multi_polygon_scatter(poly_a, poly_b):
    """coverage_pieces_by_polygon routes each fragment back to its
    owning polygon id even when polygons overlap."""
    from repro.graphics.raster_batch import coverage_pieces_by_polygon

    tris = {0: triangulate_polygon(poly_a), 1: triangulate_polygon(poly_b)}
    pieces = coverage_pieces_by_polygon(VP, tris)
    for pid in (0, 1):
        ref = []
        for tri in tris[pid]:
            xs, ys = covered_pixels(VP, tri)
            if len(xs):
                ref.append((ys, xs))
        assert len(pieces[pid]) == len(ref)
        for (gy, gx), (ry, rx) in zip(pieces[pid], ref):
            assert np.array_equal(gy, ry)
            assert np.array_equal(gx, rx)
