"""Hypothesis property tests for the rasterization pipeline.

These pin down the invariants the raster join's correctness rests on:
watertight triangle partitioning, scanline/triangle agreement, conservative
coverage being a superset, and outline pixels covering every coverage
error.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.geometry.bbox import BBox
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.conservative import conservative_triangle_pixels
from repro.graphics.raster_line import outline_pixels, supercover_line
from repro.graphics.raster_polygon import scanline_polygon_pixels
from repro.graphics.raster_triangle import covered_pixels
from repro.graphics.viewport import Viewport
from tests.property.test_prop_geometry import star_polygons

VP = Viewport(BBox(0, 0, 100, 100), 100, 100)


def tri_cover_set(viewport, tri):
    xs, ys = covered_pixels(viewport, tri)
    return set(zip(xs.tolist(), ys.tolist()))


@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_triangulation_rasterizes_without_overlap(poly):
    """No pixel is claimed by two triangles of one polygon's partition."""
    seen: set = set()
    for tri in triangulate_polygon(poly):
        pix = tri_cover_set(VP, tri)
        assert not (seen & pix)
        seen |= pix


@given(star_polygons())
@settings(max_examples=60, deadline=None)
def test_scanline_equals_triangle_union(poly):
    union: set = set()
    for tri in triangulate_polygon(poly):
        union |= tri_cover_set(VP, tri)
    xs, ys = scanline_polygon_pixels(VP, poly.rings)
    assert set(zip(xs.tolist(), ys.tolist())) == union


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_conservative_superset_of_regular(poly):
    for tri in triangulate_polygon(poly):
        regular = tri_cover_set(VP, tri)
        x0, y0, mask = conservative_triangle_pixels(VP, tri)
        if mask.size == 0:
            conservative = set()
        else:
            ys_, xs_ = np.nonzero(mask)
            conservative = set(zip((xs_ + x0).tolist(), (ys_ + y0).tolist()))
        assert regular <= conservative


@given(star_polygons())
@settings(max_examples=40, deadline=None)
def test_outline_covers_all_coverage_errors(poly):
    """Coverage-vs-PIP mismatches happen only on outline pixels — the
    exactness precondition of the accurate raster join."""
    covered = np.zeros((100, 100), dtype=bool)
    for tri in triangulate_polygon(poly):
        xs, ys = covered_pixels(VP, tri)
        covered[ys, xs] = True
    ox, oy = outline_pixels(VP, poly.rings)
    boundary = np.zeros((100, 100), dtype=bool)
    boundary[oy, ox] = True
    cx, cy = np.meshgrid(np.arange(100) + 0.5, np.arange(100) + 0.5)
    inside = poly.contains_points(cx.ravel(), cy.ravel()).reshape(100, 100)
    mismatch = covered != inside
    assert not np.any(mismatch & ~boundary)


@given(
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
    st.floats(0, 100, allow_nan=False),
)
@settings(max_examples=150, deadline=None)
def test_supercover_contains_endpoints_and_is_connected(ax, ay, bx, by):
    xs, ys = supercover_line(ax, ay, bx, by, 100, 100)
    got = set(zip(xs.tolist(), ys.tolist()))
    # Endpoint pixels (clamped into the grid) are always covered.
    for x, y in ((ax, ay), (bx, by)):
        ix = min(int(np.floor(x)), 99)
        iy = min(int(np.floor(y)), 99)
        assert (ix, iy) in got
    # 8-connectivity: a supercover path has no gaps.
    if len(got) > 1:
        remaining = set(got)
        stack = [next(iter(got))]
        remaining.discard(stack[0])
        while stack:
            cx_, cy_ = stack.pop()
            for dx in (-1, 0, 1):
                for dy in (-1, 0, 1):
                    nb = (cx_ + dx, cy_ + dy)
                    if nb in remaining:
                        remaining.discard(nb)
                        stack.append(nb)
        assert not remaining, "supercover pixels are disconnected"


@given(star_polygons(), st.integers(1, 4), st.integers(1, 4))
@settings(max_examples=30, deadline=None)
def test_tiled_coverage_equals_global(poly, nx, ny):
    """Rendering per tile visits exactly the global covered pixel set."""
    from repro.graphics.viewport import Canvas

    canvas = Canvas(BBox(0, 0, 100, 100), 100, 100)
    max_res = max(100 // max(nx, ny), 1)
    global_set: set = set()
    for tri in triangulate_polygon(poly):
        xs, ys = covered_pixels(VP, tri)
        global_set |= set(zip(xs.tolist(), ys.tolist()))
    tiled: set = set()
    for tile in canvas.tiles(max_resolution=max_res):
        for tri in triangulate_polygon(poly):
            xs, ys = covered_pixels(tile, tri)
            tiled |= set(
                zip((xs + tile.x_offset).tolist(), (ys + tile.y_offset).tolist())
            )
    assert tiled == global_set
