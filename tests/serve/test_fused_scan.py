"""Shared-scan fusion: every member bit-identical to its solo run."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    Count,
    Filter,
    FilterSet,
    GPUDevice,
    Max,
    Min,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.serve import FusedQuery, execute_fused, fits_single_batch
from tests.conftest import random_star_polygon

ANCHOR = [(0.0, 0.0), (100.0, 0.0), (100.0, 100.0), (0.0, 100.0)]


@pytest.fixture
def region_sets(rng):
    """Two heterogeneous polygon sets sharing one bounding box.

    Both contain the anchor rectangle spanning the full extent, so the
    accurate engine derives the same canvas for either — the fusable
    configuration.
    """
    set_a = PolygonSet([
        Polygon(ANCHOR),
        random_star_polygon(rng, center=(35.0, 40.0),
                            radius_range=(5.0, 20.0)),
        random_star_polygon(rng, center=(65.0, 60.0),
                            radius_range=(5.0, 20.0)),
    ])
    set_b = PolygonSet([
        Polygon(ANCHOR),
        random_star_polygon(rng, center=(50.0, 30.0), vertices=14,
                            radius_range=(5.0, 20.0)),
    ])
    return set_a, set_b


def _solo(points, query, **engine_kwargs):
    engine = AccurateRasterJoin(session=QuerySession(), **engine_kwargs)
    return engine.execute(
        points, query.polygons, aggregate=query.aggregate,
        filters=query.filters,
    )


def _assert_members_match_solo(points, queries, results, **engine_kwargs):
    assert results is not None
    assert len(results) == len(queries)
    for query, result in zip(queries, results):
        solo = _solo(points, query, **engine_kwargs)
        assert np.array_equal(result.values, solo.values, equal_nan=True)
        for name, channel in solo.channels.items():
            assert np.array_equal(
                result.channels[name], channel, equal_nan=True
            )
        assert result.stats.extra["fused_queries"] == len(queries)


class TestFusedScan:
    def test_heterogeneous_members_match_solo(self, uniform_points,
                                              region_sets):
        set_a, set_b = region_sets
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Sum("fare"), FilterSet()),
            FusedQuery(set_a, Average("fare"),
                       FilterSet([Filter("hour", ">=", 12)])),
            FusedQuery(set_b, Min("fare"), FilterSet()),
            FusedQuery(set_a, Max("fare"),
                       FilterSet([Filter("hour", "<", 6)])),
        ]
        engine = AccurateRasterJoin(resolution=256, session=QuerySession())
        results = execute_fused(engine, uniform_points, queries)
        _assert_members_match_solo(
            uniform_points, queries, results, resolution=256
        )

    def test_shared_filter_group_matches_solo(self, uniform_points,
                                              region_sets):
        set_a, set_b = region_sets
        shared = FilterSet([Filter("hour", ">=", 12), Filter("fare", "<", 20)])
        queries = [
            FusedQuery(set_a, Count(), shared),
            FusedQuery(set_b, Sum("fare"), shared),
        ]
        engine = AccurateRasterJoin(resolution=128, session=QuerySession())
        results = execute_fused(engine, uniform_points, queries)
        _assert_members_match_solo(
            uniform_points, queries, results, resolution=128
        )

    def test_multi_tile_canvas_matches_solo(self, uniform_points,
                                            region_sets):
        set_a, set_b = region_sets
        device = GPUDevice(max_resolution=128)
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Sum("fare"), FilterSet()),
        ]
        engine = AccurateRasterJoin(
            resolution=256, device=device, session=QuerySession()
        )
        results = execute_fused(engine, uniform_points, queries)
        _assert_members_match_solo(
            uniform_points, queries, results,
            resolution=256, device=GPUDevice(max_resolution=128),
        )

    def test_warm_session_matches_solo(self, uniform_points, region_sets):
        set_a, set_b = region_sets
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Sum("fare"), FilterSet()),
        ]
        engine = AccurateRasterJoin(resolution=128, session=QuerySession())
        # Warm every artifact, then fuse: the cached-boundary branch of
        # _tile_boundary must produce the same routing as the built one.
        for query in queries:
            engine.execute(uniform_points, query.polygons,
                           aggregate=query.aggregate, filters=query.filters)
        results = execute_fused(engine, uniform_points, queries)
        _assert_members_match_solo(
            uniform_points, queries, results, resolution=128
        )

    def test_canvas_mismatch_falls_back(self, uniform_points, rng):
        # Different bounding boxes derive different canvases: the
        # runtime gate must refuse rather than mis-project.
        set_a = PolygonSet([Polygon(ANCHOR)])
        set_b = PolygonSet([
            Polygon([(10.0, 10.0), (60.0, 10.0), (60.0, 60.0), (10.0, 60.0)])
        ])
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Count(), FilterSet()),
        ]
        engine = AccurateRasterJoin(resolution=64, session=QuerySession())
        assert execute_fused(engine, uniform_points, queries) is None

    def test_multi_batch_input_falls_back(self, uniform_points, region_sets):
        set_a, set_b = region_sets
        # A device too small to hold the whole input in one batch: the
        # single-batch gate refuses (batch boundaries change float
        # groupings, so fusion could not mirror solo execution).
        device = GPUDevice(capacity_bytes=200_000, max_resolution=64)
        engine = AccurateRasterJoin(
            resolution=64, device=device, session=QuerySession()
        )
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Sum("fare"), FilterSet()),
        ]
        assert not fits_single_batch(
            engine, uniform_points, ("x", "y", "fare"), 0
        )
        assert execute_fused(engine, uniform_points, queries) is None

    def test_fused_stats_report_scan_shape(self, uniform_points,
                                           region_sets):
        set_a, set_b = region_sets
        queries = [
            FusedQuery(set_a, Count(), FilterSet()),
            FusedQuery(set_b, Count(), FilterSet()),
        ]
        engine = AccurateRasterJoin(resolution=128, session=QuerySession())
        results = execute_fused(engine, uniform_points, queries)
        for result in results:
            assert result.stats.extra["fused_queries"] == 2
            assert result.stats.points_processed == len(uniform_points.xs)
            assert result.stats.engine == "accurate-raster"
