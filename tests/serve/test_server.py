"""Serving-layer tests: admission, coalescing, fusion, timeouts.

Timing-free where it matters: fusion groups are held open by a long
batching window and released with ``Server.flush()``, and queued states
are pinned by blocker tasks occupying the worker pool — no sleeps on the
assertion paths.
"""

from __future__ import annotations

import asyncio
import threading

import numpy as np
import pytest

from repro.errors import (
    QueryTimeoutError,
    ServerClosedError,
    ServerOverloadedError,
)
from repro.serve import ServeConfig, Server
from repro.sql.planner import QueryPlanner

Q_COUNT = (
    "SELECT COUNT(*) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id"
)
Q_SUM = (
    "SELECT SUM(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "GROUP BY hoods.id"
)
Q_FILTERED = (
    "SELECT SUM(fare) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "AND hour >= 12 GROUP BY hoods.id"
)
#: WITHIN lowers onto the bounded engine, which the fusion gate rejects —
#: these run straight through the pool, handy for pinning queue states.
Q_BOUNDED = (
    "SELECT COUNT(*) FROM taxi, hoods WHERE taxi.loc INSIDE hoods.geometry "
    "WITHIN 2.0 GROUP BY hoods.id"
)


@pytest.fixture
def planner(uniform_points, three_regions):
    p = QueryPlanner()
    p.register_points("taxi", uniform_points)
    p.register_regions("hoods", three_regions)
    yield p
    p.close()


class _Blocker:
    """Occupies every pool worker until released."""

    def __init__(self, server: Server, workers: int) -> None:
        self.release = threading.Event()
        self.started = [threading.Event() for _ in range(workers)]
        self.futures = [
            server._pool.submit(self._hold, event) for event in self.started
        ]
        for event in self.started:
            assert event.wait(5.0)

    def _hold(self, event: threading.Event) -> None:
        event.set()
        self.release.wait(30.0)

    def done(self) -> None:
        self.release.set()
        for future in self.futures:
            future.result(5.0)


class TestServing:
    def test_serves_identical_result(self, planner):
        solo = planner.execute(Q_COUNT)
        with planner.server(ServeConfig(max_workers=2)) as server:
            served = server.execute(Q_COUNT, timeout=30.0)
        assert np.array_equal(served.values, solo.values)

    def test_async_facade(self, planner):
        solo = planner.execute(Q_SUM)
        served = asyncio.run(planner.execute_async(Q_SUM, timeout=30.0))
        assert np.array_equal(served.values, solo.values)
        planner.server().close()

    def test_coalescing_fans_one_execution_out(self, planner):
        solo = planner.execute(Q_COUNT)
        server = Server(planner, ServeConfig(
            max_workers=1, batch_window_s=60.0,
        ))
        with server:
            leader = server.submit(Q_COUNT)
            followers = [server.submit(Q_COUNT) for _ in range(3)]
            assert server.counters()["coalesced"] == 3
            assert server.counters()["admitted"] == 1
            server.flush()
            lead_result = leader.result(30.0)
            assert "coalesced" not in lead_result.stats.extra
            for follower in followers:
                result = follower.result(30.0)
                assert result.stats.extra["coalesced"] is True
                assert np.array_equal(result.values, solo.values)
        assert np.array_equal(lead_result.values, solo.values)

    def test_fusion_serves_group_bit_identically(self, planner):
        solos = {q: planner.execute(q) for q in (Q_COUNT, Q_SUM, Q_FILTERED)}
        server = Server(planner, ServeConfig(
            max_workers=2, batch_window_s=60.0,
        ))
        with server:
            futures = {
                q: server.submit(q) for q in (Q_COUNT, Q_SUM, Q_FILTERED)
            }
            server.flush()
            for q, future in futures.items():
                result = future.result(30.0)
                assert np.array_equal(result.values, solos[q].values)
                assert result.stats.extra["fused_queries"] == 3
            counters = server.counters()
        assert counters["fused_scans"] == 1
        assert counters["fused_queries"] == 3

    def test_max_fused_flushes_immediately(self, planner):
        server = Server(planner, ServeConfig(
            max_workers=2, batch_window_s=60.0, max_fused=2,
        ))
        with server:
            first = server.submit(Q_COUNT)
            second = server.submit(Q_SUM)
            # The group hit max_fused on the second submission and ran
            # without a flush() call.
            first.result(30.0)
            second.result(30.0)
            assert server.counters()["fused_scans"] == 1

    def test_bounded_engine_is_not_fused(self, planner):
        server = Server(planner, ServeConfig(max_workers=2))
        with server:
            result = server.execute(Q_BOUNDED, timeout=60.0)
            assert "fused_queries" not in result.stats.extra
            assert server.counters()["fused_scans"] == 0

    def test_overload_rejects_synchronously(self, planner):
        server = Server(planner, ServeConfig(
            max_workers=1, max_queue=2, batch_window_s=60.0,
        ))
        with server:
            first = server.submit(Q_COUNT)
            second = server.submit(Q_SUM)
            with pytest.raises(ServerOverloadedError):
                server.submit(Q_FILTERED)
            assert server.counters()["rejected"] == 1
            # Coalescing does not charge the queue: a duplicate of an
            # in-flight statement is still admitted.
            follower = server.submit(Q_COUNT)
            server.flush()
            first.result(30.0)
            second.result(30.0)
            follower.result(30.0)
            # Depth drained; a fresh distinct statement is admitted again.
            readmitted = server.submit(Q_FILTERED)
            server.flush()
            readmitted.result(30.0)

    def test_timeout_releases_waiter_not_execution(self, planner):
        server = Server(planner, ServeConfig(max_workers=1))
        with server:
            blocker = _Blocker(server, workers=1)
            leader = server.submit(Q_BOUNDED)
            with pytest.raises(QueryTimeoutError):
                # Coalesces onto the blocked leader, then gives up.
                server.execute(Q_BOUNDED, timeout=0.05)
            assert server.counters()["timeouts"] == 1
            blocker.done()
            # The leader was never interrupted by the follower's timeout.
            leader.result(60.0)

    def test_async_timeout(self, planner):
        server = Server(planner, ServeConfig(max_workers=1))
        with server:
            blocker = _Blocker(server, workers=1)
            with pytest.raises(QueryTimeoutError):
                asyncio.run(server.execute_async(Q_BOUNDED, timeout=0.05))
            blocker.done()

    def test_closed_server_rejects(self, planner):
        server = planner.server(ServeConfig(max_workers=1))
        server.close()
        with pytest.raises(ServerClosedError):
            server.submit(Q_COUNT)

    def test_close_drains_pending_groups(self, planner):
        server = Server(planner, ServeConfig(
            max_workers=2, batch_window_s=60.0,
        ))
        future = server.submit(Q_COUNT)
        server.close()
        result = future.result(5.0)
        solo = planner.execute(Q_COUNT)
        assert np.array_equal(result.values, solo.values)

    def test_planner_close_closes_server(self, planner):
        server = planner.server()
        planner.close()
        with pytest.raises(ServerClosedError):
            server.submit(Q_COUNT)
        # The planner rebuilds a fresh server lazily.
        assert planner.server() is not server
        planner.close()

    def test_explain_analyze_served_solo(self, planner):
        server = Server(planner, ServeConfig(max_workers=1))
        with server:
            explained = server.execute("EXPLAIN ANALYZE " + Q_COUNT,
                                       timeout=120.0)
            assert server.counters()["fused_scans"] == 0
        solo = planner.execute(Q_COUNT)
        assert np.array_equal(explained.result.values, solo.values)
