"""Unit tests for the JSONL / Chrome trace / Prometheus exporters."""

import json

from repro.obs import export
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Span


def _tree():
    root = Span("query", start_s=1.0, duration_s=0.5,
                attrs={"engine": "accurate-raster"})
    tiles = Span("tiles", start_s=1.1, duration_s=0.3,
                 attrs={"concurrent": True})
    tile0 = Span("tile", start_s=1.1, duration_s=0.2, attrs={"tile": 0})
    tile1 = Span("tile", start_s=1.15, duration_s=0.1, attrs={"tile": 1})
    pp = Span("point-pass", start_s=1.12, duration_s=0.05)
    tile0.children.append(pp)
    tiles.children.extend([tile0, tile1])
    root.children.append(tiles)
    return root


class TestJsonl:
    def test_append_jsonl_flattens_with_parent_links(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        export.append_jsonl(_tree(), str(path))
        rows = [json.loads(line) for line in path.read_text().splitlines()]
        assert [r["name"] for r in rows] == [
            "query", "tiles", "tile", "point-pass", "tile",
        ]
        by_id = {r["id"]: r for r in rows}
        assert rows[0]["parent"] is None
        for row in rows[1:]:
            assert by_id[row["parent"]]["name"] in ("query", "tiles", "tile")

    def test_append_is_append(self, tmp_path):
        path = tmp_path / "spans.jsonl"
        export.append_jsonl(_tree(), str(path))
        export.append_jsonl(_tree(), str(path))
        assert len(path.read_text().splitlines()) == 10


class TestChromeTrace:
    def test_complete_events_in_microseconds(self):
        doc = export.chrome_trace(_tree())
        events = doc["traceEvents"]
        assert all(e["ph"] == "X" for e in events)
        query = next(e for e in events if e["name"] == "query")
        assert query["ts"] == 1.0e6 and query["dur"] == 0.5e6

    def test_tile_subtrees_get_their_own_track(self):
        events = export.chrome_trace(_tree())["traceEvents"]
        tids = {e["name"]: e["tid"] for e in events if e["name"] != "tile"}
        assert tids["query"] == 0 and tids["tiles"] == 0
        # point-pass lives inside tile 0's subtree -> track tile+1 == 1.
        assert tids["point-pass"] == 1
        tile_tids = sorted(e["tid"] for e in events if e["name"] == "tile")
        assert tile_tids == [1, 2]

    def test_write_chrome_trace_roundtrips(self, tmp_path):
        path = tmp_path / "trace.json"
        export.write_chrome_trace(_tree(), str(path))
        doc = json.loads(path.read_text())
        assert doc["displayTimeUnit"] == "ms"
        assert len(doc["traceEvents"]) == 5


class TestPrometheusText:
    def test_counters_gauges_histograms_exposed(self):
        reg = MetricsRegistry()
        reg.counter("store_saves", 2, kind="prepared")
        reg.gauge_max("device_peak_bytes", 1024)
        reg.observe("store_save_seconds", 0.003, kind="prepared")
        text = export.prometheus_text(reg.snapshot())
        assert "# TYPE store_saves counter" in text
        assert 'store_saves{kind="prepared"} 2' in text
        assert "device_peak_bytes 1024" in text
        assert "# TYPE store_save_seconds histogram" in text
        assert 'store_save_seconds_count{kind="prepared"} 1' in text

    def test_histogram_buckets_are_cumulative(self):
        reg = MetricsRegistry()
        reg.observe("lat", 0.0005)
        reg.observe("lat", 0.002)
        text = export.prometheus_text(reg.snapshot())
        assert 'lat_bucket{le="0.001"} 1' in text
        assert 'lat_bucket{le="0.005"} 2' in text
        assert 'lat_bucket{le="+Inf"} 2' in text
