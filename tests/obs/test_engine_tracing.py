"""End-to-end tracing/metrics behaviour through the engines.

The acceptance-critical invariants: per-tile spans are parented under
the query's ``tiles`` span in tile-index order on the serial, thread,
AND process backends; tracing never changes results; and the session /
store / device call sites actually report to the metrics registry.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    GPUDevice,
    IndexJoin,
    PointDataset,
    Polygon,
    PolygonSet,
)
from repro.cache.session import QuerySession
from repro.exec.config import EngineConfig
from repro.obs import metrics, trace

BACKENDS = ("serial", "thread", "process")


def _run(backend, engine_cls=AccurateRasterJoin):
    rng = np.random.default_rng(3)
    points = PointDataset(rng.uniform(0, 100, 8000), rng.uniform(0, 100, 8000))
    polygons = PolygonSet(
        [
            Polygon(
                [(10 + dx, 10 + dy), (45 + dx, 12 + dy),
                 (40 + dx, 45 + dy), (12 + dx, 40 + dy)]
            )
            for dx, dy in ((0, 0), (45, 45))
        ]
    )
    engine = engine_cls(
        resolution=96, device=GPUDevice(max_resolution=48),
        config=EngineConfig(backend=backend, workers=2),
    )
    try:
        return engine.execute(points, polygons)
    finally:
        engine.close()


def _run_traced(monkeypatch, backend, engine_cls=AccurateRasterJoin):
    monkeypatch.setenv(trace.TRACE_ENV_VAR, "1")
    return _run(backend, engine_cls)


class TestTileSpanParenting:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_tile_spans_parented_in_tile_order(self, monkeypatch, backend):
        result = _run_traced(monkeypatch, backend)
        root = result.trace
        assert root is not None and root.name == "query"
        (tiles_span,) = root.find("tiles")
        tile_spans = [c for c in tiles_span.children if c.name == "tile"]
        assert len(tile_spans) == 4  # 96x96 canvas over 48-px tiles
        assert [s.attrs["tile"] for s in tile_spans] == [0, 1, 2, 3]
        for tile_span in tile_spans:
            names = {c.name for c in tile_span.children}
            assert "point-pass" in names
            assert "polygon-pass" in names

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_bounded_tiles_ship_spans_too(self, monkeypatch, backend):
        result = _run_traced(monkeypatch, backend, BoundedRasterJoin)
        (tiles_span,) = result.trace.find("tiles")
        tile_spans = [c for c in tiles_span.children if c.name == "tile"]
        assert [s.attrs["tile"] for s in tile_spans] == [0, 1, 2, 3]

    def test_concurrent_attr_reflects_worker_count(self, monkeypatch):
        result = _run_traced(monkeypatch, "thread")
        (tiles_span,) = result.trace.find("tiles")
        assert tiles_span.attrs["concurrent"] is True


class TestTracingIsInert:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_values_identical_with_and_without_tracing(
        self, monkeypatch, backend
    ):
        traced = _run_traced(monkeypatch, backend)
        monkeypatch.delenv(trace.TRACE_ENV_VAR, raising=False)
        plain = _run(backend)
        assert np.array_equal(traced.values, plain.values)
        assert plain.trace is None

    def test_query_root_carries_stats_attrs(self, monkeypatch):
        result = _run_traced(monkeypatch, "serial")
        attrs = result.trace.attrs
        assert attrs["engine"] == "accurate-raster"
        assert attrs["query_s"] == pytest.approx(result.stats.query_s)
        assert attrs["points_processed"] == result.stats.points_processed


class TestMetricsWiring:
    def test_session_lookups_and_device_peak_reported(self, uniform_points,
                                                      three_regions):
        metrics.reset()
        session = QuerySession()
        engine = AccurateRasterJoin(device=GPUDevice(), session=session)
        engine.execute(uniform_points, three_regions)
        engine.execute(uniform_points, three_regions)
        snap = metrics.snapshot()
        assert snap["counters"].get(
            'session_prepared_lookups{result="miss"}', 0) >= 1
        assert snap["counters"].get(
            'session_prepared_lookups{result="hit"}', 0) >= 1
        peaks = [v for k, v in snap["gauges"].items()
                 if k.startswith("device_peak_bytes")]
        assert peaks and peaks[0] > 0

    def test_index_join_runs_traced(self, monkeypatch, uniform_points,
                                    three_regions):
        monkeypatch.setenv(trace.TRACE_ENV_VAR, "1")
        engine = IndexJoin(mode="gpu")
        result = engine.execute(uniform_points, three_regions)
        assert result.trace.find("pip-join")
        assert result.trace.find("prepare")
