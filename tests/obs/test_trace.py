"""Unit tests for the hierarchical trace-span system."""

import json
import pickle

from repro.obs import trace


class TestSpanTree:
    def test_nested_spans_build_a_tree(self):
        tracer = trace.Tracer("root", engine="x")
        with trace.use(tracer):
            with trace.span("outer", tiles=2) as outer:
                with trace.span("inner") as inner:
                    pass
        root = tracer.close()
        assert root.children == [outer]
        assert outer.children == [inner]
        assert outer.attrs == {"tiles": 2}
        assert inner.duration_s <= outer.duration_s <= root.duration_s

    def test_walk_and_find(self):
        tracer = trace.Tracer("root")
        with trace.use(tracer):
            with trace.span("a"):
                with trace.span("b"):
                    pass
            with trace.span("b"):
                pass
        root = tracer.close()
        assert [s.name for s in root.walk()] == ["root", "a", "b", "b"]
        assert len(root.find("b")) == 2

    def test_spans_pickle_cleanly(self):
        tracer = trace.Tracer("tile", tile=3)
        with trace.use(tracer):
            with trace.span("point-pass"):
                pass
        root = tracer.close()
        clone = pickle.loads(pickle.dumps(root))
        assert clone.attrs == {"tile": 3}
        assert clone.children[0].name == "point-pass"


class TestOffFastPath:
    def test_span_without_tracer_is_shared_noop(self):
        scope_a = trace.span("anything", big=1)
        scope_b = trace.span("other")
        assert scope_a is scope_b  # the shared no-op scope, no allocation
        with scope_a as span:
            assert span is None

    def test_attach_without_tracer_is_noop(self):
        trace.attach(trace.Span("orphan"))  # must not raise

    def test_attach_none_is_noop(self):
        tracer = trace.Tracer("root")
        with trace.use(tracer):
            trace.attach(None)
        assert tracer.close().children == []

    def test_active_reflects_installation(self):
        assert trace.active() is None
        tracer = trace.Tracer("root")
        with trace.use(tracer):
            assert trace.active() is tracer
        assert trace.active() is None


class TestEnvConfig:
    def test_unset_and_false_flags_disable(self, monkeypatch):
        monkeypatch.delenv(trace.TRACE_ENV_VAR, raising=False)
        assert trace.env_config() == (False, None)
        for flag in ("0", "false", "No", "OFF", ""):
            monkeypatch.setenv(trace.TRACE_ENV_VAR, flag)
            assert trace.env_config() == (False, None)

    def test_true_flags_enable_without_sink(self, monkeypatch):
        for flag in ("1", "true", "YES", "on"):
            monkeypatch.setenv(trace.TRACE_ENV_VAR, flag)
            assert trace.env_config() == (True, None)

    def test_other_value_is_a_sink_path(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV_VAR, "/tmp/spans.jsonl")
        assert trace.env_config() == (True, "/tmp/spans.jsonl")


class TestQueryScope:
    def test_off_yields_none(self, monkeypatch):
        monkeypatch.delenv(trace.TRACE_ENV_VAR, raising=False)
        with trace.query_scope("engine-x") as root:
            assert root is None

    def test_env_enabled_creates_root(self, monkeypatch):
        monkeypatch.setenv(trace.TRACE_ENV_VAR, "1")
        with trace.query_scope("engine-x") as root:
            assert root.name == "query"
            assert root.attrs["engine"] == "engine-x"
            with trace.span("child"):
                pass
        assert trace.active() is None  # restored on exit
        assert [c.name for c in root.children] == ["child"]
        assert root.duration_s > 0.0

    def test_nested_under_ambient_tracer(self, monkeypatch):
        monkeypatch.delenv(trace.TRACE_ENV_VAR, raising=False)
        tracer = trace.Tracer("explain")
        with trace.use(tracer):
            with trace.query_scope("engine-x") as root:
                assert root.name == "query"
        assert tracer.close().children == [root]

    def test_sink_path_appends_jsonl(self, monkeypatch, tmp_path):
        sink = tmp_path / "spans.jsonl"
        monkeypatch.setenv(trace.TRACE_ENV_VAR, str(sink))
        with trace.query_scope("engine-x"):
            with trace.span("child"):
                pass
        rows = [json.loads(line) for line in sink.read_text().splitlines()]
        assert [r["name"] for r in rows] == ["query", "child"]
        assert rows[1]["parent"] == rows[0]["id"]

    def test_unwritable_sink_never_fails_the_query(self, monkeypatch, tmp_path):
        monkeypatch.setenv(
            trace.TRACE_ENV_VAR, str(tmp_path / "no" / "such" / "dir" / "f")
        )
        with trace.query_scope("engine-x") as root:
            assert root is not None  # swallowed OSError, query unharmed


class TestTileScope:
    def test_disabled_yields_none(self):
        with trace.tile_scope(False, tile=0) as span:
            assert span is None

    def test_enabled_records_into_own_tracer(self):
        ambient = trace.Tracer("query")
        with trace.use(ambient):
            with trace.tile_scope(True, tile=4) as tile_span:
                with trace.span("point-pass"):
                    pass
            # The tile's spans shadowed the ambient tracer...
            assert ambient.close().children == []
        # ...and landed on the shipped subtree instead.
        assert tile_span.attrs == {"tile": 4}
        assert [c.name for c in tile_span.children] == ["point-pass"]
