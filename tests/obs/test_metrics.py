"""Unit tests for the process-wide metrics registry."""

import threading

from repro.obs.metrics import DEFAULT_BUCKETS, MetricsRegistry


class TestCounters:
    def test_counter_accumulates(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        reg.counter("hits", 2)
        assert reg.snapshot()["counters"] == {"hits": 3}

    def test_labels_sorted_into_prometheus_keys(self):
        reg = MetricsRegistry()
        reg.counter("lookups", result="hit", tier="memory")
        reg.counter("lookups", tier="memory", result="hit")
        snap = reg.snapshot()["counters"]
        assert snap == {'lookups{result="hit",tier="memory"}': 2}

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("lookups", result="hit")
        reg.counter("lookups", result="miss")
        assert len(reg.snapshot()["counters"]) == 2


class TestGauges:
    def test_gauge_set_overwrites(self):
        reg = MetricsRegistry()
        reg.gauge_set("depth", 3)
        reg.gauge_set("depth", 1)
        assert reg.snapshot()["gauges"]["depth"] == 1

    def test_gauge_max_keeps_high_water(self):
        reg = MetricsRegistry()
        reg.gauge_max("peak", 10)
        reg.gauge_max("peak", 4)
        reg.gauge_max("peak", 25)
        assert reg.snapshot()["gauges"]["peak"] == 25


class TestHistograms:
    def test_observe_tracks_count_sum_min_max(self):
        reg = MetricsRegistry()
        for v in (0.002, 0.05, 1.5):
            reg.observe("latency", v)
        hist = reg.snapshot()["histograms"]["latency"]
        assert hist["count"] == 3
        assert abs(hist["sum"] - 1.552) < 1e-12
        assert hist["min"] == 0.002
        assert hist["max"] == 1.5

    def test_bucket_assignment(self):
        reg = MetricsRegistry()
        reg.observe("latency", 0.0005)   # <= 0.001
        reg.observe("latency", 100.0)    # above every bound
        buckets = reg.snapshot()["histograms"]["latency"]["buckets"]
        assert buckets[f"le_{DEFAULT_BUCKETS[0]:g}"] == 1
        assert buckets["le_inf"] == 1


class TestRegistryBehavior:
    def test_snapshot_is_a_detached_copy(self):
        reg = MetricsRegistry()
        reg.counter("hits")
        snap = reg.snapshot()
        snap["counters"]["hits"] = 99
        assert reg.snapshot()["counters"]["hits"] == 1

    def test_reset_clears_everything(self):
        reg = MetricsRegistry()
        reg.counter("a")
        reg.gauge_set("b", 1)
        reg.observe("c", 0.1)
        reg.reset()
        assert reg.snapshot() == {
            "counters": {}, "gauges": {}, "histograms": {},
        }

    def test_concurrent_counting_is_lossless(self):
        reg = MetricsRegistry()

        def bump():
            for _ in range(1000):
                reg.counter("n")

        threads = [threading.Thread(target=bump) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert reg.snapshot()["counters"]["n"] == 8000

    def test_counters_never_negative_on_instrumented_paths(self):
        # The instrumented call sites only ever add positive amounts;
        # this pins the registry-side invariant the property suite
        # relies on.
        reg = MetricsRegistry()
        reg.counter("bytes", 123, kind="prepared")
        for value in reg.snapshot()["counters"].values():
            assert value >= 0


class TestCrossProcessDeltas:
    """baseline/delta_since/apply_delta — the TilePartial round trip."""

    def test_delta_captures_only_new_increments(self):
        reg = MetricsRegistry()
        reg.counter("warm", 5)
        base = reg.baseline()
        reg.counter("warm", 2)
        reg.counter("fresh", 3, kind="tile")
        delta = reg.delta_since(base)
        assert delta["counters"] == {"warm": 2, 'fresh{kind="tile"}': 3}

    def test_no_change_means_empty_delta(self):
        reg = MetricsRegistry()
        reg.counter("warm")
        reg.observe("lat", 0.5)
        base = reg.baseline()
        assert reg.delta_since(base) == {}

    def test_apply_delta_folds_counters(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        parent.counter("tiles", 4)
        base = worker.baseline()
        worker.counter("tiles", 2)
        parent.apply_delta(worker.delta_since(base))
        assert parent.snapshot()["counters"]["tiles"] == 6

    def test_apply_delta_merges_histograms(self):
        worker, parent = MetricsRegistry(), MetricsRegistry()
        parent.observe("lat", 1.0)
        base = worker.baseline()
        worker.observe("lat", 0.25)
        worker.observe("lat", 8.0)
        parent.apply_delta(worker.delta_since(base))
        hist = parent.snapshot()["histograms"]["lat"]
        assert hist["count"] == 3
        assert hist["sum"] == 9.25
        assert hist["min"] == 0.25
        assert hist["max"] == 8.0

    def test_gauges_never_travel(self):
        reg = MetricsRegistry()
        base = reg.baseline()
        reg.gauge_set("level", 42)
        assert reg.delta_since(base) == {}, (
            "gauges are process-local level facts, not increments"
        )

    def test_delta_round_trips_through_pickle(self):
        import pickle

        reg = MetricsRegistry()
        base = reg.baseline()
        reg.counter("n", 7)
        reg.observe("lat", 0.1)
        delta = pickle.loads(pickle.dumps(reg.delta_since(base)))
        parent = MetricsRegistry()
        parent.apply_delta(delta)
        assert parent.snapshot()["counters"]["n"] == 7
