"""Device memory under parallel tile execution.

Batch *plans* must never depend on the backend (identical batch
boundaries are part of the bit-equality guarantee); instead the engines
cap how many tile tasks may hold device batches concurrently so the sum
of per-worker budgets (one planned batch + FBO headroom each) stays
inside the global device budget.  These tests pin that arithmetic and
the thread-safety of the allocation accounting it relies on.
"""

import pickle
import threading

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    EngineConfig,
    GPUDevice,
    PointDataset,
    Polygon,
    PolygonSet,
    Sum,
)
from repro.device.batching import BatchPlan, plan_batches, tile_parallelism
from repro.errors import OutOfDeviceMemoryError


def _plan(num_points: int, rows_per_batch: int, row_bytes: int) -> BatchPlan:
    return BatchPlan(num_points, rows_per_batch, ("x", "y"), row_bytes)


class TestTileParallelism:
    def test_no_device_is_unbounded(self):
        assert tile_parallelism(None, 10**9, None, 7) == 7

    def test_unknown_plan_with_device_serializes(self):
        """Streamed sources (chunk sizes unknown up front) must not
        gamble with device memory: one tile at a time."""
        device = GPUDevice(capacity_bytes=1 << 20)
        assert tile_parallelism(device, 1024, None, 8) == 1

    def test_per_worker_budgets_fit_global_budget(self):
        """workers x (batch + FBO) never exceeds the device capacity."""
        device = GPUDevice(capacity_bytes=1_000_000)
        fbo_bytes = 100_000
        for rows, row_bytes, workers in [
            (10_000, 16, 8),
            (100_000, 16, 8),
            (1_000_000, 16, 4),
            (50, 16, 3),
        ]:
            plan = _plan(rows, min(rows, 40_000), row_bytes)
            allowed = tile_parallelism(device, fbo_bytes, plan, workers)
            batch_bytes = min(rows, plan.rows_per_batch) * row_bytes
            assert allowed >= 1
            assert allowed <= workers
            assert allowed * (fbo_bytes + batch_bytes) <= max(
                device.capacity_bytes, fbo_bytes + batch_bytes
            )

    def test_small_workload_allows_full_parallelism(self):
        device = GPUDevice(capacity_bytes=10_000_000)
        plan = _plan(1_000, 1_000, 16)
        assert tile_parallelism(device, 10_000, plan, 4) == 4

    def test_tight_memory_degrades_to_serial(self):
        device = GPUDevice(capacity_bytes=100_000)
        plan = _plan(100_000, 5_000, 16)  # one batch ~= the whole budget
        assert tile_parallelism(device, 15_000, plan, 8) == 1


class TestThreadSafeAccounting:
    def test_concurrent_uploads_balance_to_zero(self):
        """Racing reserve/release from many threads must neither corrupt
        the allocation counter nor overshoot capacity."""
        device = GPUDevice(capacity_bytes=64 * 1024 * 1024)
        array = np.zeros(1024, dtype=np.float64)  # 8 KiB per upload
        errors = []

        def worker():
            try:
                for _ in range(50):
                    buf, _ = device.upload("col", array)
                    buf.free()
            except Exception as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert device.allocated_bytes == 0
        assert device.total_bytes_transferred == 8 * 50 * array.nbytes

    def test_capacity_still_enforced(self):
        device = GPUDevice(capacity_bytes=1024)
        with pytest.raises(OutOfDeviceMemoryError):
            device.upload("col", np.zeros(1024, dtype=np.float64))

    def test_device_pickles_without_lock(self):
        """ProcessBackend forks carry device clones; the lock must be
        recreated on unpickle, not pickled."""
        device = GPUDevice(capacity_bytes=4096, max_resolution=64)
        clone = pickle.loads(pickle.dumps(device))
        assert clone.capacity_bytes == 4096
        assert clone.max_resolution == 64
        buf, _ = clone.upload("col", np.zeros(8, dtype=np.float64))
        buf.free()
        assert clone.allocated_bytes == 0


class TestEngineUnderMemoryPressure:
    """Multi-tile parallel runs on a capacity-limited device complete
    without tripping the allocator and stay bit-identical to serial."""

    @pytest.fixture
    def workload(self, rng):
        n = 20_000
        points = PointDataset(
            rng.uniform(0.0, 100.0, n),
            rng.uniform(0.0, 100.0, n),
            {"val": rng.normal(0.0, 5.0, n)},
        )
        polygons = PolygonSet(
            [
                Polygon([(10, 10), (45, 12), (40, 45), (12, 40)]),
                Polygon([(55, 55), (90, 58), (85, 92), (50, 85)]),
            ]
        )
        return points, polygons

    @pytest.mark.parametrize("engine_cls", [AccurateRasterJoin,
                                            BoundedRasterJoin])
    def test_out_of_core_parallel_matches_serial(self, engine_cls, workload):
        points, polygons = workload
        # ~480 KB of needed columns against a 160 KB device: several
        # batches per tile, concurrency throttled by the budget.
        def device():
            return GPUDevice(capacity_bytes=160 * 1024, max_resolution=48)

        serial = engine_cls(resolution=96, device=device()).execute(
            points, polygons, aggregate=Sum("val")
        )
        assert serial.stats.batches > serial.stats.extra["tiles"]
        parallel = engine_cls(
            resolution=96, device=device(),
            config=EngineConfig(backend="thread", workers=4),
        ).execute(points, polygons, aggregate=Sum("val"))
        assert np.array_equal(serial.values, parallel.values)
        for name in serial.channels:
            assert np.array_equal(serial.channels[name],
                                  parallel.channels[name])
