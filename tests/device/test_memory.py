"""Unit tests for the simulated GPU device."""

import numpy as np
import pytest

from repro.device.memory import GPUDevice, ResidentPointSet
from repro.errors import DeviceError, OutOfDeviceMemoryError


class TestAllocation:
    def test_capacity_enforced(self):
        dev = GPUDevice(capacity_bytes=1000)
        with pytest.raises(OutOfDeviceMemoryError):
            dev.upload("big", np.zeros(1000, dtype=np.float64))

    def test_free_releases(self):
        dev = GPUDevice(capacity_bytes=1000)
        buf, _ = dev.upload("a", np.zeros(100, dtype=np.float64))
        assert dev.allocated_bytes == 800
        buf.free()
        assert dev.allocated_bytes == 0

    def test_invalid_capacity(self):
        with pytest.raises(DeviceError):
            GPUDevice(capacity_bytes=0)

    def test_fits(self):
        dev = GPUDevice(capacity_bytes=1000)
        assert dev.fits(1000)
        assert not dev.fits(1001)


class TestTransfers:
    def test_upload_copies(self):
        """Device buffers are real copies — mutating the host later must
        not change the device-resident data (PCIe semantics)."""
        dev = GPUDevice(capacity_bytes=10_000)
        host = np.arange(10, dtype=np.float64)
        buf, seconds = dev.upload("col", host)
        host[0] = 999.0
        assert buf.array[0] == 0.0
        assert seconds >= 0.0

    def test_transfer_accounting(self):
        dev = GPUDevice(capacity_bytes=10_000)
        dev.upload("a", np.zeros(100, dtype=np.float64))
        dev.upload("b", np.zeros(50, dtype=np.float32))
        assert dev.total_bytes_transferred == 800 + 200

    def test_upload_columns(self):
        dev = GPUDevice(capacity_bytes=10_000)
        bufs, total = dev.upload_columns(
            {"x": np.zeros(10), "y": np.ones(10)}
        )
        assert set(bufs) == {"x", "y"}
        assert total >= 0.0


class TestResidentPointSet:
    def test_round_trip(self):
        dev = GPUDevice()
        resident = dev.make_resident(
            {"x": np.arange(5.0), "y": np.arange(5.0) * 2}
        )
        assert len(resident) == 5
        assert resident.column("y")[4] == 8.0

    def test_missing_column(self):
        dev = GPUDevice()
        resident = dev.make_resident({"x": np.arange(5.0), "y": np.arange(5.0)})
        with pytest.raises(DeviceError):
            resident.column("fare")

    def test_inconsistent_lengths_rejected(self):
        dev = GPUDevice()
        with pytest.raises(DeviceError):
            ResidentPointSet(
                dev,
                {
                    "x": dev.upload("x", np.arange(5.0))[0],
                    "y": dev.upload("y", np.arange(4.0))[0],
                },
            )

    def test_free_releases_device_memory(self):
        dev = GPUDevice(capacity_bytes=10_000)
        resident = dev.make_resident({"x": np.arange(100.0)})
        assert dev.allocated_bytes == 800
        resident.free()
        assert dev.allocated_bytes == 0
        assert len(resident) == 0
