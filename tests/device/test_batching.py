"""Unit tests for out-of-core batch planning."""

import numpy as np
import pytest

from repro.data.dataset import PointDataset
from repro.device.batching import plan_batches
from repro.device.memory import GPUDevice
from repro.errors import DeviceError


def make_points(n: int) -> PointDataset:
    return PointDataset(
        np.zeros(n), np.zeros(n), {"a": np.zeros(n, dtype=np.float32)}
    )


class TestPlanBatches:
    def test_no_device_single_batch(self):
        plan = plan_batches(make_points(1000), ("x", "y"), None)
        assert plan.num_batches == 1
        assert plan.fits_in_one_batch

    def test_row_bytes_counts_only_requested_columns(self):
        plan = plan_batches(make_points(10), ("x", "y", "a"), None)
        assert plan.row_bytes == 8 + 8 + 4
        plan2 = plan_batches(make_points(10), ("x", "y"), None)
        assert plan2.row_bytes == 16

    def test_capacity_splits(self):
        dev = GPUDevice(capacity_bytes=16 * 100)  # 100 rows of (x, y)
        plan = plan_batches(make_points(250), ("x", "y"), dev)
        assert plan.rows_per_batch == 100
        assert plan.num_batches == 3
        assert plan.ranges() == [(0, 100), (100, 200), (200, 250)]

    def test_reserved_bytes_shrink_batches(self):
        dev = GPUDevice(capacity_bytes=16 * 100)
        plan = plan_batches(make_points(250), ("x", "y"), dev,
                            reserved_bytes=16 * 50)
        assert plan.rows_per_batch == 50

    def test_reserved_exceeding_capacity_raises(self):
        dev = GPUDevice(capacity_bytes=1000)
        with pytest.raises(DeviceError):
            plan_batches(make_points(10), ("x", "y"), dev, reserved_bytes=1000)

    def test_ranges_cover_every_row_once(self):
        dev = GPUDevice(capacity_bytes=16 * 7)
        plan = plan_batches(make_points(23), ("x", "y"), dev)
        seen = np.zeros(23, dtype=int)
        for start, end in plan.ranges():
            seen[start:end] += 1
        assert np.all(seen == 1)

    def test_empty_dataset(self):
        plan = plan_batches(make_points(0), ("x", "y"), None)
        assert plan.num_batches == 0
        assert plan.ranges() == []

    def test_more_constraint_columns_mean_more_batches(self):
        """The Figure 11 driver: larger vertex payload -> smaller batches."""
        dev = GPUDevice(capacity_bytes=2_000)
        thin = plan_batches(make_points(500), ("x", "y"), dev)
        wide = plan_batches(make_points(500), ("x", "y", "a"), dev)
        assert wide.num_batches >= thin.num_batches
