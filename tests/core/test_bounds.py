"""Unit tests for result-range estimation (§5)."""

import numpy as np
import pytest

from repro import BoundedRasterJoin, PointDataset, Polygon, PolygonSet, Sum
from tests.conftest import brute_force_counts, random_star_polygon


class TestLooseBounds:
    def test_contain_exact_always(self, uniform_points, three_regions):
        """The 100%-confidence guarantee of the loose interval."""
        exact = brute_force_counts(uniform_points, three_regions)
        for res in (64, 128, 512):
            result = BoundedRasterJoin(
                resolution=res, compute_bounds=True
            ).execute(uniform_points, three_regions)
            assert result.intervals is not None
            assert result.intervals.contains(exact).all(), (
                f"loose interval violated at resolution {res}"
            )

    def test_interval_shrinks_with_resolution(
        self, uniform_points, three_regions
    ):
        widths = []
        for res in (64, 256, 1024):
            result = BoundedRasterJoin(
                resolution=res, compute_bounds=True
            ).execute(uniform_points, three_regions)
            iv = result.intervals
            widths.append(float(np.sum(iv.loose_hi - iv.loose_lo)))
        assert widths[0] > widths[1] > widths[2]

    def test_random_polygons(self, rng):
        points = PointDataset(rng.uniform(0, 100, 30_000),
                              rng.uniform(0, 100, 30_000))
        polys = PolygonSet(
            [random_star_polygon(rng, center=(30 + 20 * k, 50),
                                 radius_range=(5, 18), vertices=9)
             for k in range(3)]
        )
        exact = brute_force_counts(points, polys)
        result = BoundedRasterJoin(resolution=128, compute_bounds=True).execute(
            points, polys
        )
        assert result.intervals.contains(exact).all()


class TestExpectedBounds:
    def test_tighter_than_loose(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=128, compute_bounds=True).execute(
            uniform_points, three_regions
        )
        iv = result.intervals
        assert np.all(iv.expected_lo >= iv.loose_lo - 1e-9)
        assert np.all(iv.expected_hi <= iv.loose_hi + 1e-9)

    def test_expected_value_closer_on_uniform_data(
        self, uniform_points, three_regions
    ):
        """On uniform data the area-fraction correction is near-unbiased:
        the expected value beats the raw approximate value in aggregate."""
        exact = brute_force_counts(uniform_points, three_regions)
        result = BoundedRasterJoin(resolution=128, compute_bounds=True).execute(
            uniform_points, three_regions
        )
        raw_err = np.abs(result.values - exact).sum()
        corrected_err = np.abs(result.intervals.expected_value - exact).sum()
        assert corrected_err <= raw_err * 1.05

    def test_sum_aggregate_bounds(self, uniform_points, three_regions):
        from tests.conftest import brute_force_sums

        exact = brute_force_sums(uniform_points, three_regions, "fare")
        result = BoundedRasterJoin(resolution=128, compute_bounds=True).execute(
            uniform_points, three_regions, aggregate=Sum("fare")
        )
        assert result.intervals.contains(exact).all()


class TestDisabled:
    def test_no_intervals_by_default(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=128).execute(
            uniform_points, three_regions
        )
        assert result.intervals is None
