"""Unit tests for result and statistics types."""

import numpy as np
import pytest

from repro.types import AggregationResult, ExecutionStats, ResultIntervals


class TestExecutionStats:
    def test_query_time_excludes_preprocessing(self):
        stats = ExecutionStats(
            transfer_s=1.0, processing_s=2.0, io_s=0.5,
            triangulation_s=10.0, index_build_s=5.0,
        )
        assert stats.query_s == 3.5
        assert stats.total_s == 18.5

    def test_merge_accumulates(self):
        a = ExecutionStats(transfer_s=1.0, pip_tests=10, batches=2, passes=1)
        b = ExecutionStats(transfer_s=0.5, pip_tests=5, batches=3, passes=2)
        a.merge(b)
        assert a.transfer_s == 1.5
        assert a.pip_tests == 15
        assert a.batches == 5
        assert a.passes == 3

    def test_defaults_are_zero(self):
        stats = ExecutionStats(engine="x")
        assert stats.query_s == 0.0
        assert stats.extra == {}

    def test_merge_sums_numeric_extras(self):
        # Regression: merge() used to drop ``extra`` entirely, so
        # per-chunk work counters vanished from streamed runs.
        a = ExecutionStats(extra={"boundary_pixels": 10, "join_size": 2.5})
        b = ExecutionStats(extra={"boundary_pixels": 32, "join_size": 1.5,
                                  "materialized_pairs": 7})
        a.merge(b)
        assert a.extra["boundary_pixels"] == 42
        assert a.extra["join_size"] == 4.0
        assert a.extra["materialized_pairs"] == 7

    def test_merge_strings_and_bools_are_last_writer(self):
        a = ExecutionStats(extra={"partition": "off", "pool": "spawned",
                                  "warm": False})
        b = ExecutionStats(extra={"partition": "on", "pool": "reused",
                                  "warm": True})
        a.merge(b)
        assert a.extra == {"partition": "on", "pool": "reused", "warm": True}

    def test_merge_bool_never_sums_into_a_count(self):
        # bool is an int subclass: True+True must not become 2.
        a = ExecutionStats(extra={"flag": True})
        a.merge(ExecutionStats(extra={"flag": True}))
        assert a.extra["flag"] is True

    def test_merge_type_conflict_takes_last_writer(self):
        a = ExecutionStats(extra={"key": "text"})
        a.merge(ExecutionStats(extra={"key": 3}))
        assert a.extra["key"] == 3

    def test_summary_is_aligned_and_complete(self):
        stats = ExecutionStats(
            engine="accurate-raster", transfer_s=0.25, processing_s=1.0,
            pip_tests=7, boundary_points=3,
            extra={"tiles": 4, "partition": "on"},
        )
        text = stats.summary()
        lines = text.splitlines()
        assert all(len(line) == len(lines[0]) for line in lines)
        assert any(line.startswith("engine") and
                   line.endswith("accurate-raster") for line in lines)
        assert any("query_s" in line and "1.2500" in line for line in lines)
        assert any("extra.tiles" in line for line in lines)
        assert any("extra.partition" in line for line in lines)

    def test_summary_hides_zero_conditionals(self):
        text = ExecutionStats(engine="x").summary()
        assert "pip_tests" not in text
        assert "boundary_points" not in text
        assert "prepared_hits" not in text

    def test_as_span_attrs_round_trips_the_breakdown(self):
        stats = ExecutionStats(engine="e", transfer_s=0.5, processing_s=1.5,
                               extra={"tiles": 2})
        attrs = stats.as_span_attrs()
        assert attrs["engine"] == "e"
        assert attrs["query_s"] == stats.query_s
        assert attrs["extra.tiles"] == 2


class TestResultIntervals:
    def make(self):
        return ResultIntervals(
            loose_lo=np.asarray([0.0, 10.0]),
            loose_hi=np.asarray([5.0, 20.0]),
            expected_lo=np.asarray([1.0, 12.0]),
            expected_hi=np.asarray([4.0, 18.0]),
            expected_value=np.asarray([2.5, 15.0]),
        )

    def test_contains_inclusive(self):
        iv = self.make()
        assert iv.contains(np.asarray([0.0, 20.0])).all()
        assert iv.contains(np.asarray([5.0, 10.0])).all()

    def test_contains_rejects_outside(self):
        iv = self.make()
        out = iv.contains(np.asarray([6.0, 15.0]))
        assert not out[0] and out[1]


class TestAggregationResult:
    def make(self, values):
        return AggregationResult(
            values=np.asarray(values, dtype=float),
            channels={"count": np.asarray(values, dtype=float)},
            stats=ExecutionStats(engine="t"),
        )

    def test_len(self):
        assert len(self.make([1, 2, 3])) == 3

    def test_max_abs_error(self):
        a = self.make([10.0, 20.0])
        b = self.make([12.0, 19.0])
        assert a.max_abs_error(b) == 2.0

    def test_percent_errors(self):
        approx = self.make([110.0, 0.0, 5.0])
        exact = self.make([100.0, 0.0, 0.0])
        errors = approx.percent_errors(exact)
        assert errors[0] == pytest.approx(10.0)
        assert errors[1] == 0.0          # both zero: no error
        assert np.isinf(errors[2])       # phantom mass where truth is zero
