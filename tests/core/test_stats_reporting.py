"""Execution-environment stats are reported uniformly by every engine.

Before the parallel-backend PR only the raster engines set
``ExecutionStats.extra["tiles"]`` (and only on some paths); now every
engine reports tile count, backend name, and worker count on every
execution path, so dashboards and the optimizer can read one schema.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    EngineConfig,
    GPUDevice,
    IndexJoin,
    MaterializingJoin,
    PointDataset,
    Polygon,
    PolygonSet,
)

REQUIRED_KEYS = ("tiles", "backend", "workers")


@pytest.fixture
def workload(rng):
    n = 2_000
    points = PointDataset(
        rng.uniform(0.0, 100.0, n), rng.uniform(0.0, 100.0, n)
    )
    polygons = PolygonSet(
        [
            Polygon([(10, 10), (45, 12), (40, 45), (12, 40)]),
            Polygon([(55, 55), (90, 58), (85, 92), (50, 85)]),
        ]
    )
    return points, polygons


ENGINE_FACTORIES = {
    "accurate-raster": lambda config: AccurateRasterJoin(
        resolution=128, config=config
    ),
    "bounded-raster": lambda config: BoundedRasterJoin(
        resolution=128, config=config
    ),
    "index-join-gpu": lambda config: IndexJoin(
        mode="gpu", grid_resolution=64, config=config
    ),
    "index-join-cpu": lambda config: IndexJoin(
        mode="cpu", grid_resolution=64, config=config
    ),
    "materializing-join": lambda config: MaterializingJoin(
        truncate_bits=None, config=config
    ),
}


class TestExecutionEnvReporting:
    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_every_engine_reports_default_env(self, name, workload,
                                              monkeypatch):
        # Neutralize the CI matrix override: this test pins the
        # *built-in* default, which is serial.
        monkeypatch.delenv("REPRO_EXEC_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_EXEC_WORKERS", raising=False)
        points, polygons = workload
        stats = ENGINE_FACTORIES[name](None).execute(points, polygons).stats
        for key in REQUIRED_KEYS:
            assert key in stats.extra, (name, key)
        assert stats.extra["backend"] == "serial"
        assert stats.extra["workers"] == 1
        assert stats.extra["tiles"] >= 1

    @pytest.mark.parametrize("name", sorted(ENGINE_FACTORIES))
    def test_every_engine_reports_configured_backend(self, name, workload):
        points, polygons = workload
        config = EngineConfig(backend="thread", workers=2)
        stats = ENGINE_FACTORIES[name](config).execute(points, polygons).stats
        assert stats.extra["backend"] == "thread"
        assert stats.extra["workers"] == 2

    def test_multicore_index_join_reports_its_fork_pool(self, workload):
        """Multicore mode's own process pool is its execution vehicle,
        so the report must say so instead of echoing the tile backend."""
        points, polygons = workload
        engine = IndexJoin(mode="multicore", grid_resolution=64, workers=2)
        stats = engine.execute(points, polygons).stats
        assert stats.extra["backend"] == "process"
        assert stats.extra["workers"] == 2
        assert stats.extra["tiles"] == 1

    def test_raster_tile_count_matches_canvas(self, workload):
        points, polygons = workload
        device = GPUDevice(max_resolution=48)
        result = AccurateRasterJoin(resolution=128, device=device).execute(
            points, polygons
        )
        # 128-pixel longer side over 48-pixel FBOs: 3 tile columns, and
        # the reported count is exactly the prepared layout's.
        assert result.stats.extra["tiles"] >= 3

    def test_streamed_path_reports_env_too(self, workload):
        points, polygons = workload

        def chunks():
            yield points

        result = BoundedRasterJoin(resolution=128).execute_stream(
            chunks, polygons
        )
        for key in REQUIRED_KEYS:
            assert key in result.stats.extra

    def test_values_unchanged_by_reporting(self, workload):
        """Reporting is observability only — results stay identical."""
        points, polygons = workload
        serial = ENGINE_FACTORIES["accurate-raster"](None).execute(
            points, polygons
        )
        threaded = ENGINE_FACTORIES["accurate-raster"](
            EngineConfig(backend="thread", workers=2)
        ).execute(points, polygons)
        assert np.array_equal(serial.values, threaded.values)


class TestPoolReporting:
    """The persistent-pool acceptance bar: a second query on the same
    engine reuses the pool, and the stats trace proves it — no pool
    construction appears in the second execution's report."""

    def _multi_tile_engine(self, backend="thread"):
        return AccurateRasterJoin(
            resolution=128,
            device=GPUDevice(max_resolution=48),
            config=EngineConfig(backend=backend, workers=2),
        )

    def test_second_query_reuses_persistent_pool(self, workload):
        points, polygons = workload
        engine = self._multi_tile_engine()
        try:
            first = engine.execute(points, polygons)
            assert first.stats.extra["tiles"] > 1
            assert first.stats.extra["pool"] == "created"
            second = engine.execute(points, polygons)
            assert second.stats.extra["pool"] == "reused"
            assert np.array_equal(first.values, second.values)
        finally:
            engine.close()

    def test_close_is_reported_and_recoverable(self, workload):
        points, polygons = workload
        engine = self._multi_tile_engine()
        engine.execute(points, polygons)
        engine.close()
        reopened = engine.execute(points, polygons)
        assert reopened.stats.extra["pool"] == "created"
        engine.close()

    def test_serial_engine_reports_inline(self, workload):
        points, polygons = workload
        engine = self._multi_tile_engine(backend="serial")
        result = engine.execute(points, polygons)
        assert result.stats.extra["pool"] == "inline"

    def test_engine_context_manager_closes_pool(self, workload):
        points, polygons = workload
        with self._multi_tile_engine() as engine:
            engine.execute(points, polygons)
            assert engine.backend._pool is not None
        assert engine.backend._pool is None
