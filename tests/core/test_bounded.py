"""Unit tests for the bounded raster join."""

import numpy as np
import pytest

from repro import (
    Average,
    BoundedRasterJoin,
    Count,
    Filter,
    GPUDevice,
    Max,
    Min,
    PointDataset,
    Polygon,
    PolygonSet,
    Sum,
)
from repro.errors import QueryError
from tests.conftest import brute_force_counts, brute_force_sums


class TestConstruction:
    def test_epsilon_xor_resolution(self):
        with pytest.raises(QueryError):
            BoundedRasterJoin()
        with pytest.raises(QueryError):
            BoundedRasterJoin(epsilon=1.0, resolution=512)

    def test_engine_name(self):
        assert BoundedRasterJoin(epsilon=1.0).name == "bounded-raster"


class TestApproximationQuality:
    def test_error_shrinks_with_resolution(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        errors = []
        for res in (64, 256, 1024):
            approx = BoundedRasterJoin(resolution=res).execute(
                uniform_points, three_regions
            )
            errors.append(float(np.abs(approx.values - exact).max()))
        assert errors[0] >= errors[1] >= errors[2]

    def test_no_pip_tests_ever(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=256).execute(
            uniform_points, three_regions
        )
        assert result.stats.pip_tests == 0

    def test_converges_to_exact(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        approx = BoundedRasterJoin(resolution=4096).execute(
            uniform_points, three_regions
        )
        rel = np.abs(approx.values - exact) / exact
        assert rel.max() < 0.01

    def test_epsilon_controls_pixel_diagonal(self, uniform_points, three_regions):
        result = BoundedRasterJoin(epsilon=2.5).execute(
            uniform_points, three_regions
        )
        assert result.stats.extra["pixel_diagonal"] <= 2.5

    def test_total_mass_preserved_for_partition(self, rng):
        """Over a partition of the extent, no point is lost or duplicated:
        every pixel belongs to exactly one polygon, so the approximate
        counts must sum to the number of points inside the partition."""
        squares = [
            Polygon([(i * 25, j * 25), ((i + 1) * 25, j * 25),
                     ((i + 1) * 25, (j + 1) * 25), (i * 25, (j + 1) * 25)])
            for i in range(4)
            for j in range(4)
        ]
        regions = PolygonSet(squares)
        # Keep points away from the partition hull: the outermost pixel ring
        # can legitimately lose points (paper-expected false negatives at
        # the canvas border), interior shared edges never can.
        points = PointDataset(rng.uniform(2, 98, 30_000),
                              rng.uniform(2, 98, 30_000))
        result = BoundedRasterJoin(resolution=128).execute(points, regions)
        assert float(result.values.sum()) == 30_000.0


class TestAggregates:
    def test_sum(self, uniform_points, three_regions):
        exact = brute_force_sums(uniform_points, three_regions, "fare")
        approx = BoundedRasterJoin(resolution=2048).execute(
            uniform_points, three_regions, aggregate=Sum("fare")
        )
        rel = np.abs(approx.values - exact) / exact
        assert rel.max() < 0.02

    def test_average_algebraic(self, uniform_points, three_regions):
        counts = brute_force_counts(uniform_points, three_regions)
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        approx = BoundedRasterJoin(resolution=2048).execute(
            uniform_points, three_regions, aggregate=Average("fare")
        )
        assert np.abs(approx.values - sums / counts).max() < 0.1

    def test_min_max_conservative(self, uniform_points, three_regions):
        """Bounded min/max may only pull values from boundary-adjacent
        points, so min(approx) <= min over interior points."""
        approx_min = BoundedRasterJoin(resolution=1024).execute(
            uniform_points, three_regions, aggregate=Min("fare")
        )
        approx_max = BoundedRasterJoin(resolution=1024).execute(
            uniform_points, three_regions, aggregate=Max("fare")
        )
        fare = uniform_points.column("fare")
        for pid, poly in enumerate(three_regions):
            inside = poly.contains_points(uniform_points.xs, uniform_points.ys)
            assert approx_min.values[pid] <= fare[inside].min() + 1e-5
            assert approx_max.values[pid] >= fare[inside].max() - 1e-5


class TestFilters:
    def test_filtered_counts(self, uniform_points, three_regions):
        filters = [Filter("hour", ">=", 12)]
        mask = uniform_points.column("hour") >= 12
        subset = uniform_points.take(np.flatnonzero(mask))
        exact = brute_force_counts(subset, three_regions)
        approx = BoundedRasterJoin(resolution=2048).execute(
            uniform_points, three_regions, filters=filters
        )
        rel = np.abs(approx.values - exact) / exact
        assert rel.max() < 0.02

    def test_filter_stats(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=128).execute(
            uniform_points, three_regions, filters=[Filter("hour", "<", 0)]
        )
        assert result.stats.points_filtered_out == len(uniform_points)
        assert result.values.sum() == 0


class TestTilingAndDevice:
    def test_tiled_equals_single_canvas(self, uniform_points, three_regions):
        single = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions
        )
        tiled = BoundedRasterJoin(
            resolution=512, device=GPUDevice(max_resolution=120)
        ).execute(uniform_points, three_regions)
        assert tiled.stats.extra["tiles"] > 1
        assert np.array_equal(tiled.values, single.values)

    def test_out_of_core_equals_in_memory(self, uniform_points, three_regions):
        reference = BoundedRasterJoin(resolution=256).execute(
            uniform_points, three_regions
        )
        device = GPUDevice(capacity_bytes=300_000, max_resolution=256)
        batched = BoundedRasterJoin(resolution=256, device=device).execute(
            uniform_points, three_regions
        )
        assert batched.stats.batches > 1
        assert batched.stats.transfer_s > 0
        assert np.array_equal(batched.values, reference.values)

    def test_resident_points_zero_transfer(self, uniform_points, three_regions):
        device = GPUDevice()
        resident = device.make_resident(
            {"x": uniform_points.xs, "y": uniform_points.ys}
        )
        result = BoundedRasterJoin(resolution=256, device=device).execute(
            resident, three_regions
        )
        assert result.stats.transfer_s == 0.0
        assert result.stats.bytes_transferred == 0

    def test_resident_missing_column_rejected(self, uniform_points, three_regions):
        device = GPUDevice()
        resident = device.make_resident(
            {"x": uniform_points.xs, "y": uniform_points.ys}
        )
        with pytest.raises(QueryError):
            BoundedRasterJoin(resolution=128, device=device).execute(
                resident, three_regions, aggregate=Sum("fare")
            )


class TestScanlinePath:
    def test_identical_to_triangle_path(self, uniform_points, three_regions):
        tri = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions
        )
        scan = BoundedRasterJoin(resolution=512, use_scanline=True).execute(
            uniform_points, three_regions
        )
        assert np.array_equal(tri.values, scan.values)
