"""Unit tests for the Zhang-style materializing comparator."""

import numpy as np
import pytest

from repro import MaterializingJoin, Sum
from tests.conftest import brute_force_counts, brute_force_sums


class TestCorrectness:
    def test_exact_without_truncation(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = MaterializingJoin(truncate_bits=None).execute(
            uniform_points, three_regions
        )
        assert np.array_equal(result.values, exact)

    def test_sum_without_truncation(self, uniform_points, three_regions):
        exact = brute_force_sums(uniform_points, three_regions, "fare")
        result = MaterializingJoin(truncate_bits=None).execute(
            uniform_points, three_regions, aggregate=Sum("fare")
        )
        assert np.allclose(result.values, exact, rtol=1e-9)

    def test_truncation_is_approximate_but_close(
        self, uniform_points, three_regions
    ):
        """16-bit coordinate snapping (the comparator's compression)
        introduces small errors, as the paper notes of Zhang et al."""
        exact = brute_force_counts(uniform_points, three_regions)
        result = MaterializingJoin(truncate_bits=16).execute(
            uniform_points, three_regions
        )
        rel = np.abs(result.values - exact) / exact
        assert rel.max() < 0.01

    def test_coarser_truncation_worse(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        fine = MaterializingJoin(truncate_bits=16).execute(
            uniform_points, three_regions
        )
        coarse = MaterializingJoin(truncate_bits=8).execute(
            uniform_points, three_regions
        )
        fine_err = np.abs(fine.values - exact).sum()
        coarse_err = np.abs(coarse.values - exact).sum()
        assert coarse_err >= fine_err


class TestMaterializationCost:
    def test_pairs_materialized(self, uniform_points, three_regions):
        """The defining inefficiency: candidate pairs are written out."""
        result = MaterializingJoin(truncate_bits=None).execute(
            uniform_points, three_regions
        )
        pairs = result.stats.extra["materialized_pairs"]
        join_size = result.stats.extra["join_size"]
        assert pairs >= join_size > 0

    def test_join_size_equals_matches(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = MaterializingJoin(truncate_bits=None).execute(
            uniform_points, three_regions
        )
        assert result.stats.extra["join_size"] == exact.sum()

    def test_quadtree_built_per_batch(self, uniform_points, three_regions):
        result = MaterializingJoin(truncate_bits=None).execute(
            uniform_points, three_regions
        )
        assert result.stats.index_build_s > 0
