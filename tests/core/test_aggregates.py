"""Unit tests for aggregate functions."""

import numpy as np
import pytest

from repro.core.aggregates import Average, Count, Max, Min, Sum
from repro.errors import QueryError


class TestCount:
    def test_channels(self):
        agg = Count()
        assert agg.channels == {"count": None}
        assert agg.columns == ()

    def test_finalize_passthrough(self):
        out = Count().finalize({"count": np.asarray([1, 2, 3])})
        assert out.tolist() == [1.0, 2.0, 3.0]

    def test_blend_into(self):
        acc = np.zeros(3)
        Count().blend_into(acc, np.asarray([0, 0, 2]), 1.0)
        assert acc.tolist() == [2.0, 0.0, 1.0]

    def test_reduce_pixels(self):
        assert Count().reduce_pixels(np.asarray([1.0, 2.0, 3.0])) == 6.0
        assert Count().reduce_pixels(np.zeros(0)) == 0.0


class TestSum:
    def test_requires_column(self):
        with pytest.raises(QueryError):
            Sum("")

    def test_columns(self):
        assert Sum("fare").columns == ("fare",)

    def test_combine_adds(self):
        agg = Sum("fare")
        out = agg.combine(np.asarray([1.0, 2.0]), np.asarray([3.0, 4.0]))
        assert out.tolist() == [4.0, 6.0]


class TestAverage:
    def test_two_channels(self):
        agg = Average("fare")
        assert set(agg.channels) == {"sum", "count"}

    def test_finalize_divides(self):
        out = Average("fare").finalize(
            {"sum": np.asarray([10.0, 0.0]), "count": np.asarray([4.0, 0.0])}
        )
        assert out[0] == 2.5
        assert np.isnan(out[1])  # empty region -> NaN, not a crash


class TestMinMax:
    def test_identity(self):
        assert Min("a").identity() == np.inf
        assert Max("a").identity() == -np.inf

    def test_blend_into_order_statistics(self):
        acc = np.full(2, np.inf)
        Min("a").blend_into(acc, np.asarray([0, 0, 1]), np.asarray([5.0, 3.0, 7.0]))
        assert acc.tolist() == [3.0, 7.0]

    def test_reduce_pixels(self):
        assert Min("a").reduce_pixels(np.asarray([4.0, 2.0])) == 2.0
        assert Max("a").reduce_pixels(np.asarray([4.0, 2.0])) == 4.0
        assert Min("a").reduce_pixels(np.zeros(0)) == np.inf

    def test_combine(self):
        out = Min("a").combine(np.asarray([1.0, 5.0]), np.asarray([2.0, 4.0]))
        assert out.tolist() == [1.0, 4.0]

    def test_finalize_maps_empty_to_nan(self):
        out = Min("a").finalize({"min": np.asarray([np.inf, 2.0])})
        assert np.isnan(out[0]) and out[1] == 2.0
