"""Unit tests for the index-join baselines."""

import numpy as np
import pytest

from repro import Average, Count, Filter, GPUDevice, IndexJoin, Sum
from repro.errors import QueryError
from tests.conftest import brute_force_counts, brute_force_sums


class TestGpuMode:
    def test_exact_counts(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = IndexJoin(mode="gpu", grid_resolution=128).execute(
            uniform_points, three_regions
        )
        assert np.array_equal(result.values, exact)

    def test_exact_sum_and_avg(self, uniform_points, three_regions):
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        result = IndexJoin(mode="gpu").execute(
            uniform_points, three_regions, aggregate=Sum("fare")
        )
        assert np.allclose(result.values, sums, rtol=1e-9)

    def test_pip_test_count_reasonable(self, uniform_points, three_regions):
        """One PIP test per point/candidate pair — bounded by points x polys
        and at least the number of join matches."""
        exact = brute_force_counts(uniform_points, three_regions)
        result = IndexJoin(mode="gpu", grid_resolution=256).execute(
            uniform_points, three_regions
        )
        assert result.stats.pip_tests >= exact.sum()
        assert result.stats.pip_tests <= len(uniform_points) * len(three_regions)

    def test_finer_grid_fewer_pip_tests(self, uniform_points, three_regions):
        coarse = IndexJoin(mode="gpu", grid_resolution=8).execute(
            uniform_points, three_regions
        )
        fine = IndexJoin(mode="gpu", grid_resolution=256).execute(
            uniform_points, three_regions
        )
        assert fine.stats.pip_tests < coarse.stats.pip_tests

    def test_filters(self, uniform_points, three_regions):
        filters = [Filter("hour", "<", 6)]
        mask = uniform_points.column("hour") < 6
        subset = uniform_points.take(np.flatnonzero(mask))
        exact = brute_force_counts(subset, three_regions)
        result = IndexJoin(mode="gpu").execute(
            uniform_points, three_regions, filters=filters
        )
        assert np.array_equal(result.values, exact)

    def test_exact_assignment_grid(self, uniform_points, three_regions):
        mbr = IndexJoin(mode="gpu", grid_assignment="mbr").execute(
            uniform_points, three_regions
        )
        exact_mode = IndexJoin(mode="gpu", grid_assignment="exact").execute(
            uniform_points, three_regions
        )
        assert np.array_equal(mbr.values, exact_mode.values)
        assert exact_mode.stats.pip_tests <= mbr.stats.pip_tests


class TestCpuModes:
    def test_scalar_matches_gpu(self, uniform_points, three_regions):
        small = uniform_points.head(2000)
        gpu = IndexJoin(mode="gpu", grid_resolution=64).execute(
            small, three_regions
        )
        cpu = IndexJoin(mode="cpu", grid_resolution=64).execute(
            small, three_regions
        )
        assert np.array_equal(gpu.values, cpu.values)

    def test_multicore_matches_scalar(self, uniform_points, three_regions):
        small = uniform_points.head(2000)
        cpu = IndexJoin(mode="cpu", grid_resolution=64).execute(
            small, three_regions
        )
        multi = IndexJoin(mode="multicore", grid_resolution=64, workers=2).execute(
            small, three_regions
        )
        assert np.array_equal(cpu.values, multi.values)
        assert multi.stats.pip_tests == cpu.stats.pip_tests

    def test_multicore_sum(self, uniform_points, three_regions):
        small = uniform_points.head(2000)
        exact = brute_force_sums(small, three_regions, "fare")
        multi = IndexJoin(mode="multicore", grid_resolution=64, workers=2).execute(
            small, three_regions, aggregate=Sum("fare")
        )
        assert np.allclose(multi.values, exact, rtol=1e-9)

    def test_multicore_avg_falls_back(self, uniform_points, three_regions):
        """Multi-channel aggregates run the scalar path but stay exact."""
        small = uniform_points.head(1000)
        counts = brute_force_counts(small, three_regions)
        sums = brute_force_sums(small, three_regions, "fare")
        multi = IndexJoin(mode="multicore", grid_resolution=64, workers=2).execute(
            small, three_regions, aggregate=Average("fare")
        )
        assert np.allclose(multi.values, sums / counts, rtol=1e-9)

    def test_unknown_mode(self):
        with pytest.raises(QueryError):
            IndexJoin(mode="quantum")


class TestDevice:
    def test_out_of_core_exact(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        device = GPUDevice(capacity_bytes=200_000)
        result = IndexJoin(mode="gpu", device=device).execute(
            uniform_points, three_regions
        )
        assert result.stats.batches > 1
        assert np.array_equal(result.values, exact)
