"""Unit tests for the multiple-aggregates-per-query extension (§8)."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Count,
    IndexJoin,
    Min,
    Sum,
)
from repro.core.multi import MultiAggregate
from repro.errors import QueryError
from tests.conftest import brute_force_counts, brute_force_sums


class TestConstruction:
    def test_channel_dedup(self):
        multi = MultiAggregate([Count(), Average("fare"), Sum("fare")])
        # count is shared; Average and Sum share sum:fare.
        assert set(multi.channels) == {"count", "sum:fare"}

    def test_distinct_columns_get_distinct_channels(self):
        multi = MultiAggregate([Sum("fare"), Sum("tip")])
        assert set(multi.channels) == {"sum:fare", "sum:tip"}

    def test_output_names(self):
        multi = MultiAggregate([Count(), Average("fare")])
        assert multi.output_names == ("count", "avg(fare)")

    def test_min_max_rejected(self):
        with pytest.raises(QueryError):
            MultiAggregate([Count(), Min("fare")])

    def test_empty_rejected(self):
        with pytest.raises(QueryError):
            MultiAggregate([])

    def test_nesting_rejected(self):
        with pytest.raises(QueryError):
            MultiAggregate([MultiAggregate([Count()])])


class TestSinglePassResults:
    @pytest.fixture
    def multi(self):
        return MultiAggregate([Count(), Sum("fare"), Average("fare")])

    def test_accurate_engine_all_exact(self, uniform_points, three_regions, multi):
        counts = brute_force_counts(uniform_points, three_regions)
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=multi
        )
        all_values = multi.finalize_all(result.channels)
        assert np.array_equal(all_values["count"], counts)
        assert np.allclose(all_values["sum(fare)"], sums, rtol=1e-9)
        assert np.allclose(all_values["avg(fare)"], sums / counts, rtol=1e-9)

    def test_primary_value_is_first_aggregate(
        self, uniform_points, three_regions, multi
    ):
        counts = brute_force_counts(uniform_points, three_regions)
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=multi
        )
        assert np.array_equal(result.values, counts)

    def test_index_join_engine(self, uniform_points, three_regions, multi):
        counts = brute_force_counts(uniform_points, three_regions)
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        result = IndexJoin(mode="gpu").execute(
            uniform_points, three_regions, aggregate=multi
        )
        all_values = multi.finalize_all(result.channels)
        assert np.array_equal(all_values["count"], counts)
        assert np.allclose(all_values["sum(fare)"], sums, rtol=1e-9)

    def test_single_pass_matches_separate_queries_bounded(
        self, uniform_points, three_regions, multi
    ):
        """One fused pass must equal three separate bounded queries —
        identical canvas, identical approximation."""
        fused = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions, aggregate=multi
        )
        all_values = multi.finalize_all(fused.channels)
        for agg, label in zip(multi.aggregates, multi.output_names):
            separate = BoundedRasterJoin(resolution=512).execute(
                uniform_points, three_regions, aggregate=agg
            )
            got = all_values[label]
            both = np.isfinite(separate.values) & np.isfinite(got)
            assert np.allclose(got[both], separate.values[both], rtol=1e-6)

    def test_transfer_payload_is_union_of_columns(
        self, uniform_points, three_regions
    ):
        """§8: multiple aggregates increase the vertex payload — but only
        by the distinct attribute columns."""
        from repro.core.engine import SpatialAggregationEngine
        from repro.core.filters import FilterSet

        multi = MultiAggregate([Count(), Average("fare"), Sum("fare")])
        columns = SpatialAggregationEngine.required_columns(multi, FilterSet())
        assert columns == ("x", "y", "fare")
