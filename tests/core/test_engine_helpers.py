"""Unit tests for the shared engine machinery."""

import numpy as np
import pytest

from repro import (
    Average,
    BoundedRasterJoin,
    Count,
    Filter,
    FilterSet,
    PointDataset,
    Sum,
)
from repro.core.engine import (
    SpatialAggregationEngine,
    grid_pip_aggregate,
    timed,
)
from repro.index.grid import GridIndex
from repro.types import ExecutionStats


class TestRequiredColumns:
    def test_locations_always_first(self):
        cols = SpatialAggregationEngine.required_columns(Count(), FilterSet())
        assert cols == ("x", "y")

    def test_filter_and_aggregate_columns_deduped(self):
        filters = FilterSet([Filter("fare", ">", 1), Filter("hour", "<", 9)])
        cols = SpatialAggregationEngine.required_columns(
            Average("fare"), filters
        )
        assert cols == ("x", "y", "fare", "hour")

    def test_order_is_deterministic(self):
        filters = FilterSet([Filter("b", ">", 0), Filter("a", ">", 0)])
        cols = SpatialAggregationEngine.required_columns(Sum("c"), filters)
        assert cols == ("x", "y", "a", "b", "c")


class TestTimed:
    def test_returns_result_and_elapsed(self):
        out, secs = timed(sum, [1, 2, 3])
        assert out == 6
        assert secs >= 0.0


class TestGridPipAggregate:
    @pytest.fixture
    def setup(self, three_regions, rng):
        grid = GridIndex(three_regions, resolution=64)
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        return grid, xs, ys

    def test_counts_match_brute_force(self, setup, three_regions):
        grid, xs, ys = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        grid_pip_aggregate(xs, ys, {}, grid, three_regions, Count(), acc, stats)
        expected = np.asarray(
            [p.contains_points(xs, ys).sum() for p in three_regions], float
        )
        assert np.array_equal(acc["count"], expected)
        assert stats.pip_tests > 0

    def test_empty_input_noop(self, setup, three_regions):
        grid, *_ = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        grid_pip_aggregate(
            np.zeros(0), np.zeros(0), {}, grid, three_regions, Count(),
            acc, stats,
        )
        assert acc["count"].sum() == 0
        assert stats.pip_tests == 0

    def test_points_outside_extent_skipped(self, setup, three_regions):
        grid, *_ = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        xs = np.asarray([-500.0, 1e6])
        ys = np.asarray([-500.0, 1e6])
        grid_pip_aggregate(xs, ys, {}, grid, three_regions, Count(), acc, stats)
        assert acc["count"].sum() == 0


class TestExecuteValidation:
    def test_missing_aggregate_column(self, uniform_points, three_regions):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            BoundedRasterJoin(resolution=64).execute(
                uniform_points, three_regions, aggregate=Sum("nonexistent")
            )

    def test_missing_filter_column(self, uniform_points, three_regions):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            BoundedRasterJoin(resolution=64).execute(
                uniform_points, three_regions,
                filters=[Filter("nope", ">", 1)],
            )

    def test_filters_accept_plain_sequence(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=64).execute(
            uniform_points, three_regions, filters=[Filter("hour", ">=", 0)]
        )
        assert result.stats.points_filtered_out == 0
