"""Unit tests for the shared engine machinery."""

import numpy as np
import pytest

from repro import (
    Average,
    BoundedRasterJoin,
    Count,
    Filter,
    FilterSet,
    PointDataset,
    Sum,
)
from repro.core.engine import (
    SpatialAggregationEngine,
    grid_pip_aggregate,
    timed,
)
from repro.index.grid import GridIndex
from repro.types import ExecutionStats


class TestRequiredColumns:
    def test_locations_always_first(self):
        cols = SpatialAggregationEngine.required_columns(Count(), FilterSet())
        assert cols == ("x", "y")

    def test_filter_and_aggregate_columns_deduped(self):
        filters = FilterSet([Filter("fare", ">", 1), Filter("hour", "<", 9)])
        cols = SpatialAggregationEngine.required_columns(
            Average("fare"), filters
        )
        assert cols == ("x", "y", "fare", "hour")

    def test_order_is_deterministic(self):
        filters = FilterSet([Filter("b", ">", 0), Filter("a", ">", 0)])
        cols = SpatialAggregationEngine.required_columns(Sum("c"), filters)
        assert cols == ("x", "y", "a", "b", "c")


class TestTimed:
    def test_returns_result_and_elapsed(self):
        out, secs = timed(sum, [1, 2, 3])
        assert out == 6
        assert secs >= 0.0


class TestGridPipAggregate:
    @pytest.fixture
    def setup(self, three_regions, rng):
        grid = GridIndex(three_regions, resolution=64)
        xs = rng.uniform(0, 100, 5000)
        ys = rng.uniform(0, 100, 5000)
        return grid, xs, ys

    def test_counts_match_brute_force(self, setup, three_regions):
        grid, xs, ys = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        grid_pip_aggregate(xs, ys, {}, grid, three_regions, Count(), acc, stats)
        expected = np.asarray(
            [p.contains_points(xs, ys).sum() for p in three_regions], float
        )
        assert np.array_equal(acc["count"], expected)
        assert stats.pip_tests > 0

    def test_empty_input_noop(self, setup, three_regions):
        grid, *_ = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        grid_pip_aggregate(
            np.zeros(0), np.zeros(0), {}, grid, three_regions, Count(),
            acc, stats,
        )
        assert acc["count"].sum() == 0
        assert stats.pip_tests == 0

    def test_points_outside_extent_skipped(self, setup, three_regions):
        grid, *_ = setup
        acc = {"count": np.zeros(3)}
        stats = ExecutionStats()
        xs = np.asarray([-500.0, 1e6])
        ys = np.asarray([-500.0, 1e6])
        grid_pip_aggregate(xs, ys, {}, grid, three_regions, Count(), acc, stats)
        assert acc["count"].sum() == 0


class TestExecuteValidation:
    def test_missing_aggregate_column(self, uniform_points, three_regions):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            BoundedRasterJoin(resolution=64).execute(
                uniform_points, three_regions, aggregate=Sum("nonexistent")
            )

    def test_missing_filter_column(self, uniform_points, three_regions):
        from repro.errors import SchemaError

        with pytest.raises(SchemaError):
            BoundedRasterJoin(resolution=64).execute(
                uniform_points, three_regions,
                filters=[Filter("nope", ">", 1)],
            )

    def test_filters_accept_plain_sequence(self, uniform_points, three_regions):
        result = BoundedRasterJoin(resolution=64).execute(
            uniform_points, three_regions, filters=[Filter("hour", ">=", 0)]
        )
        assert result.stats.points_filtered_out == 0


class ConstantPresence(Count):
    """COUNT-shaped aggregate with a non-add blend on a constant-1 channel.

    Models the degenerate-but-legal corner of the Aggregate contract: a
    channel with no attribute column whose blend equation is an order
    statistic.  Every matched point contributes a single 1.0, so a
    polygon's value is 1.0 iff at least one point matched (else the blend
    identity survives).
    """

    name = "presence"
    blend = "max"

    def finalize(self, reduced):
        return reduced["count"].astype(np.float64)


class TestGridPipAggregateNonAddConstantChannel:
    """Regression: the non-add/None-column branch must account one
    contribution per *matched point*, exactly like the scalar JoinPoint
    loop, not one per polygon group."""

    def test_matches_scalar_join(self, three_regions, rng):
        from repro import IndexJoin

        xs = rng.uniform(0, 100, 4000)
        ys = rng.uniform(0, 100, 4000)
        points = PointDataset(xs, ys)
        agg = ConstantPresence()
        gpu = IndexJoin(mode="gpu").execute(points, three_regions, agg)
        cpu = IndexJoin(mode="cpu").execute(points, three_regions, agg)
        assert np.array_equal(gpu.values, cpu.values)
        # Every region contains at least one of 4k uniform points.
        assert np.array_equal(gpu.values, np.ones(3))

    def test_unmatched_polygons_keep_identity(self, three_regions):
        # A single point inside region 0 only.
        points = PointDataset(np.asarray([20.0]), np.asarray([20.0]))
        agg = ConstantPresence()
        from repro import IndexJoin

        result = IndexJoin(mode="gpu").execute(points, three_regions, agg)
        assert result.values[0] == 1.0
        assert np.all(result.values[1:] == agg.identity())

    def test_direct_call_min_blend(self, three_regions, rng):
        """Direct kernel call with a min blend: matched groups become 1.0,
        untouched groups keep the +inf identity."""
        agg = ConstantPresence()
        agg.blend = "min"
        grid = GridIndex(three_regions, resolution=64)
        xs = rng.uniform(0, 100, 2000)
        ys = rng.uniform(0, 100, 2000)
        acc = {"count": np.full(3, agg.identity())}
        stats = ExecutionStats()
        grid_pip_aggregate(xs, ys, {}, grid, three_regions, agg, acc, stats)
        matched = np.asarray(
            [p.contains_points(xs, ys).any() for p in three_regions]
        )
        assert np.array_equal(acc["count"][matched],
                              np.ones(int(matched.sum())))
        assert np.all(np.isinf(acc["count"][~matched]))
