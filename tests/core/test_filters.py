"""Unit tests for filter constraints."""

import numpy as np
import pytest

from repro.core.filters import MAX_CONSTRAINT_COLUMNS, Filter, FilterSet
from repro.errors import FilterError


class TestFilter:
    def test_all_operators(self):
        vals = np.asarray([1.0, 2.0, 3.0])
        assert Filter("a", ">", 2).mask(vals).tolist() == [False, False, True]
        assert Filter("a", ">=", 2).mask(vals).tolist() == [False, True, True]
        assert Filter("a", "<", 2).mask(vals).tolist() == [True, False, False]
        assert Filter("a", "<=", 2).mask(vals).tolist() == [True, True, False]
        assert Filter("a", "=", 2).mask(vals).tolist() == [False, True, False]
        assert Filter("a", "!=", 2).mask(vals).tolist() == [True, False, True]

    def test_double_equals_alias(self):
        assert Filter("a", "==", 2).mask(np.asarray([2.0]))[0]

    def test_invalid_operator(self):
        with pytest.raises(FilterError):
            Filter("a", "~", 1)

    def test_empty_column(self):
        with pytest.raises(FilterError):
            Filter("", ">", 1)

    def test_str(self):
        assert str(Filter("hour", ">=", 7)) == "hour >= 7"


class TestFilterSet:
    def test_conjunction(self):
        fs = FilterSet([Filter("a", ">", 1), Filter("a", "<", 4)])
        cols = {"a": np.asarray([0.0, 2.0, 3.0, 5.0])}
        mask = fs.mask(cols.__getitem__, 4)
        assert mask.tolist() == [False, True, True, False]

    def test_multi_column(self):
        fs = FilterSet([Filter("a", ">", 0), Filter("b", "=", 1)])
        cols = {
            "a": np.asarray([1.0, 1.0]),
            "b": np.asarray([0.0, 1.0]),
        }
        assert fs.mask(cols.__getitem__, 2).tolist() == [False, True]

    def test_empty_passes_everything(self):
        fs = FilterSet()
        assert not fs
        assert fs.mask(dict().__getitem__, 3).all()

    def test_vertex_payload_limit(self):
        """At most 5 distinct constrained columns, like the paper's VBO."""
        ok = FilterSet([Filter(f"c{i}", ">", 0) for i in range(MAX_CONSTRAINT_COLUMNS)])
        assert len(ok.columns) == 5
        with pytest.raises(FilterError):
            FilterSet([Filter(f"c{i}", ">", 0) for i in range(6)])

    def test_repeated_column_counts_once(self):
        fs = FilterSet(
            [Filter("a", ">", 0), Filter("a", "<", 9)]
            + [Filter(f"c{i}", ">", 0) for i in range(4)]
        )
        assert len(fs.columns) == 5  # a + c0..c3

    def test_coerce(self):
        fs = FilterSet.coerce(None)
        assert len(fs) == 0
        fs2 = FilterSet.coerce([Filter("a", ">", 1)])
        assert len(fs2) == 1
        assert FilterSet.coerce(fs2) is fs2

    def test_str(self):
        assert str(FilterSet()) == "TRUE"
        assert "AND" in str(FilterSet([Filter("a", ">", 1), Filter("b", "<", 2)]))
