"""Unit tests for the bounded-vs-accurate cost optimizer."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    RasterJoinOptimizer,
)


@pytest.fixture(scope="module")
def optimizer() -> RasterJoinOptimizer:
    opt = RasterJoinOptimizer()
    opt.model  # force one calibration for the whole module
    return opt


class TestCostModel:
    def test_calibration_positive(self, optimizer):
        model = optimizer.model
        assert model.per_point_render > 0
        assert model.per_pixel_polygon_pass > 0
        assert model.per_boundary_point > 0

    def test_estimates_monotone_in_epsilon(
        self, optimizer, uniform_points, three_regions
    ):
        """Shrinking epsilon must never make the bounded estimate cheaper."""
        costs = [
            optimizer.estimate(uniform_points, three_regions, eps)["bounded"]
            for eps in (10.0, 1.0, 0.05, 0.005)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_accurate_estimate_independent_of_epsilon(
        self, optimizer, uniform_points, three_regions
    ):
        a = optimizer.estimate(uniform_points, three_regions, 10.0)["accurate"]
        b = optimizer.estimate(uniform_points, three_regions, 0.01)["accurate"]
        assert a == b


class TestChoice:
    def test_coarse_epsilon_prefers_bounded(
        self, optimizer, uniform_points, three_regions
    ):
        engine = optimizer.choose(uniform_points, three_regions, epsilon=5.0)
        assert isinstance(engine, BoundedRasterJoin)

    def test_tiny_epsilon_prefers_accurate(
        self, optimizer, uniform_points, three_regions
    ):
        """The Figure 12(a) crossover: many tiles make bounded lose."""
        engine = optimizer.choose(uniform_points, three_regions, epsilon=0.001)
        assert isinstance(engine, AccurateRasterJoin)

    def test_chosen_engine_runs(self, optimizer, uniform_points, three_regions):
        engine = optimizer.choose(uniform_points, three_regions, epsilon=2.0)
        result = engine.execute(uniform_points, three_regions)
        assert len(result.values) == len(three_regions)
