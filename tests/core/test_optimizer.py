"""Unit tests for the bounded-vs-accurate cost optimizer."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    BoundedRasterJoin,
    QuerySession,
    RasterJoinOptimizer,
)
from repro.core.optimizer import CostModel


def hand_tuned_model() -> CostModel:
    """A deterministic model where preparation + polygon pass dominate.

    Point traffic is priced at ~0 so the cache-aware terms (preparation,
    polygon pass) fully decide the comparison — choices become exact
    assertions instead of timing-dependent ones.
    """
    return CostModel(
        per_point_render=1e-12,
        per_pixel_polygon_pass=1e-6,
        per_pip_test=1e-12,
        per_boundary_point=1e-12,
        per_vertex_triangulate=1e-6,
        per_vertex_grid=1e-6,
    )


@pytest.fixture(scope="module")
def optimizer() -> RasterJoinOptimizer:
    opt = RasterJoinOptimizer()
    opt.model  # force one calibration for the whole module
    return opt


class TestCostModel:
    def test_calibration_positive(self, optimizer):
        model = optimizer.model
        assert model.per_point_render > 0
        assert model.per_pixel_polygon_pass > 0
        assert model.per_boundary_point > 0

    def test_estimates_monotone_in_epsilon(
        self, optimizer, uniform_points, three_regions
    ):
        """Shrinking epsilon must never make the bounded estimate cheaper."""
        costs = [
            optimizer.estimate(uniform_points, three_regions, eps)["bounded"]
            for eps in (10.0, 1.0, 0.05, 0.005)
        ]
        assert all(a <= b + 1e-12 for a, b in zip(costs, costs[1:]))

    def test_accurate_estimate_independent_of_epsilon(
        self, optimizer, uniform_points, three_regions
    ):
        a = optimizer.estimate(uniform_points, three_regions, 10.0)["accurate"]
        b = optimizer.estimate(uniform_points, three_regions, 0.01)["accurate"]
        assert a == b


class TestChoice:
    def test_coarse_epsilon_prefers_bounded(
        self, optimizer, uniform_points, three_regions
    ):
        engine = optimizer.choose(uniform_points, three_regions, epsilon=5.0)
        assert isinstance(engine, BoundedRasterJoin)

    def test_tiny_epsilon_prefers_accurate(
        self, optimizer, uniform_points, three_regions
    ):
        """The Figure 12(a) crossover: many tiles make bounded lose."""
        engine = optimizer.choose(uniform_points, three_regions, epsilon=0.001)
        assert isinstance(engine, AccurateRasterJoin)

    def test_chosen_engine_runs(self, optimizer, uniform_points, three_regions):
        engine = optimizer.choose(uniform_points, three_regions, epsilon=2.0)
        result = engine.execute(uniform_points, three_regions)
        assert len(result.values) == len(three_regions)


class TestCacheAwareCosting:
    """The ROADMAP item: a variant whose artifact the session already
    holds competes without its preparation and polygon-pass cost."""

    EPSILON = 5.0  # coarse: bounded wins this comfortably when both cold

    def _optimizer(self, session) -> RasterJoinOptimizer:
        opt = RasterJoinOptimizer(session=session)
        opt._model = hand_tuned_model()
        return opt

    def test_cold_baseline_prefers_bounded(self, uniform_points,
                                           three_regions):
        opt = self._optimizer(QuerySession(store=False))
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert not cost["bounded_warm"] and not cost["accurate_warm"]
        assert cost["bounded"] < cost["accurate"]
        assert isinstance(
            opt.choose(uniform_points, three_regions, self.EPSILON),
            BoundedRasterJoin,
        )

    def test_warm_accurate_beats_cold_bounded(self, uniform_points,
                                              three_regions):
        session = QuerySession(store=False)
        opt = self._optimizer(session)
        # Warm the accurate variant the way a real loop would: run it.
        accurate = AccurateRasterJoin(session=session)
        accurate.execute(uniform_points, three_regions)
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert cost["accurate_warm"] and not cost["bounded_warm"]
        assert cost["accurate"] < cost["bounded"]
        chosen = opt.choose(uniform_points, three_regions, self.EPSILON)
        assert isinstance(chosen, AccurateRasterJoin)
        # The chosen engine actually runs warm.
        result = chosen.execute(uniform_points, three_regions)
        assert result.stats.prepared_hits == 1

    def test_store_tier_counts_as_warm(self, uniform_points, three_regions,
                                       tmp_path):
        """An artifact that lives only on disk (previous process) still
        discounts the variant — the restarted optimizer prefers it."""
        store_dir = tmp_path / "store"
        warmup = QuerySession(store=ArtifactStore(store_dir))
        AccurateRasterJoin(session=warmup).execute(
            uniform_points, three_regions
        )
        # "Restart": fresh session, same store, empty memory tier.
        session = QuerySession(store=ArtifactStore(store_dir))
        opt = self._optimizer(session)
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert cost["accurate_warm"]
        assert isinstance(
            opt.choose(uniform_points, three_regions, self.EPSILON),
            AccurateRasterJoin,
        )

    def test_costing_never_mutates_cache_state(self, uniform_points,
                                               three_regions):
        session = QuerySession(store=False)
        accurate = AccurateRasterJoin(session=session)
        accurate.execute(uniform_points, three_regions)
        hits, misses = session.hits, session.misses
        opt = self._optimizer(session)
        opt.estimate(uniform_points, three_regions, self.EPSILON)
        opt.choose(uniform_points, three_regions, self.EPSILON)
        assert (session.hits, session.misses) == (hits, misses)

    def test_config_wired_store_counts_as_warm(self, uniform_points,
                                               three_regions, tmp_path):
        """With the store wired only through EngineConfig (no explicit
        session anywhere), the optimizer still sees disk warmth — it
        probes the candidate engines' own store-backed sessions."""
        from repro import EngineConfig

        config = EngineConfig(store_dir=str(tmp_path / "cfg-store"))
        AccurateRasterJoin(config=config).execute(
            uniform_points, three_regions
        )
        opt = RasterJoinOptimizer(config=config)
        opt._model = hand_tuned_model()
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert cost["accurate_warm"]
        assert isinstance(
            opt.choose(uniform_points, three_regions, self.EPSILON),
            AccurateRasterJoin,
        )

    def test_partial_artifact_discounts_only_preparation(
        self, uniform_points, three_regions, tmp_path
    ):
        """A partial pair on disk (triangles/grid, no coverage) must not
        receive the polygon-pass discount it cannot deliver."""
        store_dir = tmp_path / "store"
        warmup = QuerySession(store=ArtifactStore(store_dir))
        accurate = AccurateRasterJoin(session=warmup)
        accurate.execute(uniform_points, three_regions)
        # Rewrite the stored artifact as partial (the shape a failed
        # full save followed by a budget strip leaves behind).
        key = next(iter(warmup._entries))
        artifact = warmup._entries[key]
        artifact.strip_derived()
        warmup.store.save(key, artifact)

        session = QuerySession(store=ArtifactStore(store_dir))
        opt = self._optimizer(session)
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert cost["accurate_warm"] == "partial"
        cold = self._optimizer(QuerySession(store=False)).estimate(
            uniform_points, three_regions, self.EPSILON
        )
        # Cheaper than cold (preparation dropped) but nowhere near the
        # full-warm discount (polygon pass still paid).
        assert cost["accurate"] < cold["accurate"]
        model = hand_tuned_model()
        verts = sum(p.num_vertices for p in three_regions)
        prep = (model.per_vertex_triangulate + model.per_vertex_grid) * verts
        assert cost["accurate"] == pytest.approx(cold["accurate"] - prep)

    def test_warm_bounded_stays_preferred(self, uniform_points, three_regions):
        session = QuerySession(store=False)
        opt = self._optimizer(session)
        BoundedRasterJoin(epsilon=self.EPSILON, session=session).execute(
            uniform_points, three_regions
        )
        cost = opt.estimate(uniform_points, three_regions, self.EPSILON)
        assert cost["bounded_warm"]
        assert isinstance(
            opt.choose(uniform_points, three_regions, self.EPSILON),
            BoundedRasterJoin,
        )
