"""Unit tests for the accurate raster join — exactness above all."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    Count,
    Filter,
    GPUDevice,
    Max,
    Min,
    PointDataset,
    Polygon,
    PolygonSet,
    Sum,
)
from tests.conftest import brute_force_counts, brute_force_sums


class TestExactness:
    @pytest.mark.parametrize("resolution", [64, 256, 1024])
    def test_exact_at_any_resolution(self, uniform_points, three_regions, resolution):
        """Resolution only moves work between paths, never changes results."""
        exact = brute_force_counts(uniform_points, three_regions)
        result = AccurateRasterJoin(resolution=resolution).execute(
            uniform_points, three_regions
        )
        assert np.array_equal(result.values, exact)

    def test_exact_sum(self, uniform_points, three_regions):
        exact = brute_force_sums(uniform_points, three_regions, "fare")
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=Sum("fare")
        )
        assert np.allclose(result.values, exact, rtol=1e-9)

    def test_exact_average(self, uniform_points, three_regions):
        counts = brute_force_counts(uniform_points, three_regions)
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=Average("fare")
        )
        assert np.allclose(result.values, sums / counts, rtol=1e-9)

    def test_exact_min_max(self, uniform_points, three_regions):
        fare = uniform_points.column("fare")
        result_min = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=Min("fare")
        )
        result_max = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=Max("fare")
        )
        for pid, poly in enumerate(three_regions):
            inside = poly.contains_points(uniform_points.xs, uniform_points.ys)
            assert result_min.values[pid] == fare[inside].min()
            assert result_max.values[pid] == fare[inside].max()

    def test_exact_with_filters(self, uniform_points, three_regions):
        filters = [Filter("hour", ">=", 7), Filter("hour", "<=", 9)]
        mask = (uniform_points.column("hour") >= 7) & (
            uniform_points.column("hour") <= 9
        )
        subset = uniform_points.take(np.flatnonzero(mask))
        exact = brute_force_counts(subset, three_regions)
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, filters=filters
        )
        assert np.array_equal(result.values, exact)

    def test_overlapping_polygons(self, rng):
        """The white-point case of Figure 7: a point interior to one
        polygon but on the boundary pixels of another must count in both."""
        regions = PolygonSet(
            [
                Polygon([(0, 0), (60, 0), (60, 60), (0, 60)]),
                Polygon([(30, 30), (90, 30), (90, 90), (30, 90)]),
            ]
        )
        points = PointDataset(rng.uniform(0, 90, 40_000), rng.uniform(0, 90, 40_000))
        exact = brute_force_counts(points, regions)
        result = AccurateRasterJoin(resolution=128).execute(points, regions)
        assert np.array_equal(result.values, exact)

    def test_points_on_polygon_edges(self):
        """Grid-aligned points exactly on shared edges: counted once per
        containing polygon under the same convention as the PIP test."""
        regions = PolygonSet(
            [
                Polygon([(0, 0), (10, 0), (10, 10), (0, 10)]),
                Polygon([(10, 0), (20, 0), (20, 10), (10, 10)]),
            ]
        )
        xs = np.asarray([10.0, 5.0, 15.0, 10.0])
        ys = np.asarray([5.0, 5.0, 5.0, 0.0])
        points = PointDataset(xs, ys)
        exact = brute_force_counts(points, regions)
        result = AccurateRasterJoin(resolution=64).execute(points, regions)
        assert np.array_equal(result.values, exact)


class TestWorkDistribution:
    def test_pip_only_for_boundary_points(self, uniform_points, three_regions):
        result = AccurateRasterJoin(resolution=512).execute(
            uniform_points, three_regions
        )
        assert 0 < result.stats.boundary_points < len(uniform_points) * 0.5
        assert result.stats.pip_tests < len(uniform_points)

    def test_higher_resolution_fewer_boundary_points(
        self, uniform_points, three_regions
    ):
        low = AccurateRasterJoin(resolution=64).execute(
            uniform_points, three_regions
        )
        high = AccurateRasterJoin(resolution=1024).execute(
            uniform_points, three_regions
        )
        assert high.stats.boundary_points < low.stats.boundary_points

    def test_index_build_recorded(self, uniform_points, three_regions):
        result = AccurateRasterJoin(resolution=128).execute(
            uniform_points, three_regions
        )
        assert result.stats.index_build_s > 0
        assert result.stats.triangulation_s > 0


class TestDevice:
    def test_out_of_core_exact(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        # The float64 FBO needs ~500 KB; the remainder forces point batches.
        device = GPUDevice(capacity_bytes=600_000, max_resolution=256)
        result = AccurateRasterJoin(resolution=256, device=device).execute(
            uniform_points, three_regions
        )
        assert result.stats.batches > 1
        assert np.array_equal(result.values, exact)

    def test_tiled_exact(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = AccurateRasterJoin(
            resolution=512, device=GPUDevice(max_resolution=100)
        ).execute(uniform_points, three_regions)
        assert result.stats.extra["tiles"] > 1
        assert np.array_equal(result.values, exact)
