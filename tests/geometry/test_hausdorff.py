"""Unit tests for Hausdorff distances."""

import numpy as np
import pytest

from repro.geometry.hausdorff import (
    directed_hausdorff,
    hausdorff_distance,
    polyline_hausdorff,
    sample_polyline,
)


class TestDirected:
    def test_identical_sets(self):
        pts = np.asarray([(0, 0), (1, 1), (2, 0)], float)
        assert directed_hausdorff(pts, pts) == 0.0

    def test_known_offset(self):
        a = np.asarray([(0, 0)], float)
        b = np.asarray([(3, 4)], float)
        assert directed_hausdorff(a, b) == 5.0

    def test_asymmetry(self):
        a = np.asarray([(0, 0)], float)
        b = np.asarray([(0, 0), (10, 0)], float)
        assert directed_hausdorff(a, b) == 0.0
        assert directed_hausdorff(b, a) == 10.0

    def test_empty_a(self):
        assert directed_hausdorff(np.zeros((0, 2)), np.asarray([(1, 1)])) == 0.0

    def test_empty_b_infinite(self):
        assert directed_hausdorff(np.asarray([(1.0, 1.0)]), np.zeros((0, 2))) == np.inf

    def test_chunked_matches_direct(self, rng):
        a = rng.uniform(0, 10, (3000, 2))
        b = rng.uniform(0, 10, (50, 2))
        d = np.hypot(a[:, None, 0] - b[None, :, 0], a[:, None, 1] - b[None, :, 1])
        expected = d.min(axis=1).max()
        assert abs(directed_hausdorff(a, b) - expected) < 1e-12


class TestSymmetric:
    def test_max_of_directions(self):
        a = np.asarray([(0, 0)], float)
        b = np.asarray([(0, 0), (10, 0)], float)
        assert hausdorff_distance(a, b) == 10.0

    def test_translation_scales(self):
        a = np.asarray([(0, 0), (1, 0), (0, 1)], float)
        b = a + np.asarray([2.0, 0.0])
        assert abs(hausdorff_distance(a, b) - 2.0) < 1e-12


class TestSampling:
    def test_spacing_respected(self):
        square = np.asarray([(0, 0), (10, 0), (10, 10), (0, 10)], float)
        samples = sample_polyline(square, spacing=1.0)
        assert len(samples) >= 40
        # Consecutive samples along each edge are <= spacing apart.
        diffs = np.hypot(*np.diff(samples, axis=0).T)
        assert diffs.max() <= 1.0 + 1e-9

    def test_open_polyline(self):
        line = np.asarray([(0, 0), (10, 0)], float)
        samples = sample_polyline(line, spacing=2.5, closed=False)
        assert len(samples) == 4

    def test_polyline_hausdorff_pixelation_bound(self):
        """A ring snapped to a grid of side s stays within s*sqrt(2)/2-ish."""
        square = np.asarray([(0.3, 0.3), (9.7, 0.3), (9.7, 9.7), (0.3, 9.7)], float)
        snapped = np.round(square)  # snap vertices to integer lattice
        d = polyline_hausdorff(square, snapped, spacing=0.05)
        assert d <= np.hypot(0.3, 0.3) + 0.1
