"""Unit tests for clipping primitives."""

import numpy as np
import pytest

from repro.geometry.bbox import BBox
from repro.geometry.clip import (
    clip_polygon_to_rect,
    clip_segment_to_rect,
    pixel_coverage_fraction,
    ring_area,
)
from repro.geometry.triangulate import triangulate_polygon
from tests.conftest import random_star_polygon

RECT = BBox(0, 0, 10, 10)


class TestCohenSutherland:
    def test_fully_inside(self):
        assert clip_segment_to_rect(1, 1, 9, 9, RECT) == (1, 1, 9, 9)

    def test_fully_outside_same_side(self):
        assert clip_segment_to_rect(-5, 1, -1, 9, RECT) is None

    def test_crossing_one_edge(self):
        ax, ay, bx, by = clip_segment_to_rect(-5, 5, 5, 5, RECT)
        assert (ax, ay, bx, by) == (0, 5, 5, 5)

    def test_crossing_two_edges(self):
        ax, ay, bx, by = clip_segment_to_rect(-5, 5, 15, 5, RECT)
        assert (ax, ay) == (0, 5) and (bx, by) == (10, 5)

    def test_diagonal_corner_clip(self):
        out = clip_segment_to_rect(-2, -2, 12, 12, RECT)
        assert out is not None
        ax, ay, bx, by = out
        assert (ax, ay) == (0, 0) and (bx, by) == (10, 10)

    def test_outside_diagonal_miss(self):
        # Endpoints on different sides (LEFT and TOP outcodes) but the
        # segment passes outside the top-left corner.
        assert clip_segment_to_rect(-5, 8, 2, 15, RECT) is None

    def test_matches_brute_force_sampling(self, rng):
        """Clipped segment endpoints bracket exactly the inside samples."""
        for _ in range(200):
            a = rng.uniform(-15, 25, 2)
            b = rng.uniform(-15, 25, 2)
            out = clip_segment_to_rect(a[0], a[1], b[0], b[1], RECT)
            ts = np.linspace(0, 1, 101)
            pts = a[None, :] + ts[:, None] * (b - a)[None, :]
            inside = (
                (pts[:, 0] >= 0) & (pts[:, 0] <= 10)
                & (pts[:, 1] >= 0) & (pts[:, 1] <= 10)
            )
            if out is None:
                assert not inside.any()
            else:
                assert inside.any() or True  # tangent touches may sample empty


class TestSutherlandHodgman:
    def test_fully_inside_unchanged(self):
        ring = np.asarray([(1, 1), (5, 1), (3, 5)], float)
        out = clip_polygon_to_rect(ring, RECT)
        assert abs(ring_area(out) - ring_area(ring)) < 1e-12

    def test_fully_outside_empty(self):
        ring = np.asarray([(20, 20), (25, 20), (22, 25)], float)
        out = clip_polygon_to_rect(ring, RECT)
        assert abs(ring_area(out)) < 1e-12 if len(out) >= 3 else True

    def test_half_clipped_square(self):
        ring = np.asarray([(-5, 0), (5, 0), (5, 10), (-5, 10)], float)
        out = clip_polygon_to_rect(ring, RECT)
        assert abs(abs(ring_area(out)) - 50.0) < 1e-9

    def test_concave_ring_clip_area(self):
        # Concave arrow clipped to its right half.
        ring = np.asarray([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)], float)
        out = clip_polygon_to_rect(ring, BBox(5, 0, 10, 10))
        assert abs(abs(ring_area(out)) - (50.0 - 12.5)) < 1e-9

    def test_rect_covering_everything(self):
        ring = np.asarray([(1, 1), (2, 1), (2, 2), (1, 2)], float)
        out = clip_polygon_to_rect(ring, BBox(-100, -100, 100, 100))
        assert abs(ring_area(out) - 1.0) < 1e-12


class TestPixelCoverage:
    def test_full_pixel(self, unit_square):
        tris = triangulate_polygon(unit_square)
        assert pixel_coverage_fraction(tris, BBox(2, 2, 3, 3)) == 1.0

    def test_empty_pixel(self, unit_square):
        tris = triangulate_polygon(unit_square)
        assert pixel_coverage_fraction(tris, BBox(20, 20, 21, 21)) == 0.0

    def test_half_pixel(self):
        from repro.geometry.polygon import Polygon

        tri = Polygon([(0, 0), (1, 0), (0, 1)])
        tris = triangulate_polygon(tri)
        assert abs(pixel_coverage_fraction(tris, BBox(0, 0, 1, 1)) - 0.5) < 1e-12

    def test_hole_reduces_fraction(self, holed_polygon):
        tris = triangulate_polygon(holed_polygon)
        # Pixel entirely inside the hole.
        assert pixel_coverage_fraction(tris, BBox(9, 9, 11, 11)) == 0.0
        # Pixel straddling the hole edge.
        frac = pixel_coverage_fraction(tris, BBox(4, 9, 6, 11))
        assert abs(frac - 0.5) < 1e-9

    def test_total_coverage_equals_area(self, rng):
        """Summing fraction x pixel-area over a grid reproduces the area."""
        poly = random_star_polygon(rng, center=(8, 8), radius_range=(2, 6),
                                   vertices=9)
        tris = triangulate_polygon(poly)
        total = 0.0
        for i in range(16):
            for j in range(16):
                rect = BBox(i, j, i + 1, j + 1)
                total += pixel_coverage_fraction(tris, rect) * rect.area
        assert abs(total - poly.area) < 1e-6 * poly.area

    def test_degenerate_rect(self, unit_square):
        tris = triangulate_polygon(unit_square)
        assert pixel_coverage_fraction(tris, BBox(1, 1, 1, 1)) == 0.0
