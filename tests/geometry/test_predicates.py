"""Unit tests for repro.geometry.predicates."""

import numpy as np
import pytest

from repro.geometry.predicates import (
    orientation,
    point_in_polygon,
    point_in_ring,
    point_in_triangle,
    point_on_ring_boundary,
    point_on_segment,
    points_in_polygon,
    points_in_ring,
    segments_intersect,
)

SQUARE = np.asarray([(0, 0), (10, 0), (10, 10), (0, 10)], dtype=float)
CONCAVE = np.asarray([(0, 0), (10, 0), (10, 10), (5, 5), (0, 10)], dtype=float)


class TestOrientation:
    def test_ccw_positive(self):
        assert orientation(SQUARE) == 100.0

    def test_cw_negative(self):
        assert orientation(SQUARE[::-1]) == -100.0

    def test_collinear_zero(self):
        ring = np.asarray([(0, 0), (1, 1), (2, 2)], dtype=float)
        assert orientation(ring) == 0.0


class TestPointInRing:
    def test_interior(self):
        assert point_in_ring(5, 5, SQUARE)

    def test_exterior(self):
        assert not point_in_ring(15, 5, SQUARE)
        assert not point_in_ring(-1, 5, SQUARE)

    def test_concave_notch(self):
        assert not point_in_ring(5, 8, CONCAVE)  # inside the notch
        assert point_in_ring(5, 3, CONCAVE)
        assert point_in_ring(1, 8, CONCAVE)

    def test_vectorized_matches_scalar(self):
        rng = np.random.default_rng(3)
        xs = rng.uniform(-2, 12, 2000)
        ys = rng.uniform(-2, 12, 2000)
        vec = points_in_ring(xs, ys, CONCAVE)
        scalar = np.asarray([point_in_ring(x, y, CONCAVE) for x, y in zip(xs, ys)])
        assert np.array_equal(vec, scalar)

    def test_horizontal_edge_ray_rule(self):
        # Ring with a horizontal edge at y=5; points at that height must
        # resolve deterministically via the half-open rule.
        ring = np.asarray([(0, 0), (10, 0), (10, 5), (5, 5), (5, 10), (0, 10)], dtype=float)
        assert point_in_ring(2, 5, ring)
        assert not point_in_ring(7, 7, ring)


class TestPolygonWithHoles:
    def test_even_odd(self):
        rings = [
            np.asarray([(0, 0), (20, 0), (20, 20), (0, 20)], dtype=float),
            np.asarray([(5, 5), (15, 5), (15, 15), (5, 15)], dtype=float),
        ]
        assert point_in_polygon(2, 2, rings)
        assert not point_in_polygon(10, 10, rings)  # inside hole
        assert point_in_polygon(17, 17, rings)

    def test_vectorized(self):
        rings = [
            np.asarray([(0, 0), (20, 0), (20, 20), (0, 20)], dtype=float),
            np.asarray([(5, 5), (15, 5), (15, 15), (5, 15)], dtype=float),
        ]
        xs = np.asarray([2.0, 10.0, 17.0])
        ys = np.asarray([2.0, 10.0, 17.0])
        assert points_in_polygon(xs, ys, rings).tolist() == [True, False, True]


class TestSegmentPredicates:
    def test_point_on_segment(self):
        assert point_on_segment(5, 5, 0, 0, 10, 10)
        assert point_on_segment(0, 0, 0, 0, 10, 10)  # endpoint counts
        assert not point_on_segment(5, 6, 0, 0, 10, 10)
        assert not point_on_segment(11, 11, 0, 0, 10, 10)  # past the end

    def test_boundary_detection(self):
        assert point_on_ring_boundary(5, 0, SQUARE)
        assert point_on_ring_boundary(10, 10, SQUARE)
        assert not point_on_ring_boundary(5, 5, SQUARE)

    def test_segments_crossing(self):
        assert segments_intersect((0, 0), (10, 10), (0, 10), (10, 0))

    def test_segments_parallel_disjoint(self):
        assert not segments_intersect((0, 0), (10, 0), (0, 1), (10, 1))

    def test_segments_touching_endpoint(self):
        assert segments_intersect((0, 0), (5, 5), (5, 5), (10, 0))

    def test_segments_collinear_overlap(self):
        assert segments_intersect((0, 0), (5, 0), (3, 0), (8, 0))

    def test_segments_collinear_disjoint(self):
        assert not segments_intersect((0, 0), (2, 0), (3, 0), (8, 0))


class TestPointInTriangle:
    def test_inside_any_winding(self):
        assert point_in_triangle(1, 1, 0, 0, 4, 0, 0, 4)
        assert point_in_triangle(1, 1, 0, 0, 0, 4, 4, 0)  # CW

    def test_boundary_counts(self):
        assert point_in_triangle(2, 0, 0, 0, 4, 0, 0, 4)
        assert point_in_triangle(0, 0, 0, 0, 4, 0, 0, 4)

    def test_outside(self):
        assert not point_in_triangle(3, 3, 0, 0, 4, 0, 0, 4)
