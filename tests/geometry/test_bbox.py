"""Unit tests for repro.geometry.bbox."""

import numpy as np
import pytest

from repro.errors import GeometryError
from repro.geometry.bbox import BBox


class TestConstruction:
    def test_valid(self):
        box = BBox(0, 1, 2, 3)
        assert box.width == 2 and box.height == 2

    def test_degenerate_allowed_when_zero_size(self):
        box = BBox(1, 1, 1, 1)
        assert box.area == 0

    def test_inverted_rejected(self):
        with pytest.raises(GeometryError):
            BBox(2, 0, 1, 1)
        with pytest.raises(GeometryError):
            BBox(0, 2, 1, 1)

    def test_of_points(self):
        xs = np.asarray([1.0, 5.0, 3.0])
        ys = np.asarray([2.0, -1.0, 4.0])
        box = BBox.of_points(xs, ys)
        assert box.as_tuple() == (1.0, -1.0, 5.0, 4.0)

    def test_of_points_pad(self):
        box = BBox.of_points(np.asarray([0.0, 1.0]), np.asarray([0.0, 1.0]), pad=0.5)
        assert box.as_tuple() == (-0.5, -0.5, 1.5, 1.5)

    def test_of_points_empty_raises(self):
        with pytest.raises(GeometryError):
            BBox.of_points(np.zeros(0), np.zeros(0))


class TestPredicates:
    def test_half_open_containment(self):
        box = BBox(0, 0, 10, 10)
        assert box.contains_point(0, 0)
        assert box.contains_point(9.999, 9.999)
        assert not box.contains_point(10, 5)
        assert not box.contains_point(5, 10)

    def test_contains_points_vectorized_matches_scalar(self):
        box = BBox(2, 3, 8, 9)
        rng = np.random.default_rng(0)
        xs = rng.uniform(0, 10, 500)
        ys = rng.uniform(0, 10, 500)
        vec = box.contains_points(xs, ys)
        scalar = np.asarray([box.contains_point(x, y) for x, y in zip(xs, ys)])
        assert np.array_equal(vec, scalar)

    def test_intersects_touching_edges(self):
        a = BBox(0, 0, 1, 1)
        b = BBox(1, 0, 2, 1)
        assert a.intersects(b)
        assert not a.intersects(BBox(1.01, 0, 2, 1))

    def test_contains_bbox(self):
        outer = BBox(0, 0, 10, 10)
        assert outer.contains_bbox(BBox(1, 1, 9, 9))
        assert outer.contains_bbox(outer)
        assert not outer.contains_bbox(BBox(-1, 1, 9, 9))


class TestSetOperations:
    def test_union(self):
        assert BBox(0, 0, 1, 1).union(BBox(2, 2, 3, 3)).as_tuple() == (0, 0, 3, 3)

    def test_intersection(self):
        assert BBox(0, 0, 4, 4).intersection(BBox(2, 2, 6, 6)).as_tuple() == (2, 2, 4, 4)

    def test_intersection_disjoint_is_none(self):
        assert BBox(0, 0, 1, 1).intersection(BBox(2, 2, 3, 3)) is None

    def test_expanded(self):
        assert BBox(0, 0, 1, 1).expanded(2).as_tuple() == (-2, -2, 3, 3)


class TestSplit:
    def test_split_partitions_exactly(self):
        box = BBox(0, 0, 10, 7)
        tiles = list(box.split(3, 2))
        assert len(tiles) == 6
        assert abs(sum(t.area for t in tiles) - box.area) < 1e-12
        # Last tile's max edges equal the box's max edges exactly.
        assert tiles[-1].xmax == box.xmax and tiles[-1].ymax == box.ymax

    def test_split_each_point_in_exactly_one_tile(self):
        box = BBox(0, 0, 10, 10)
        tiles = list(box.split(4, 3))
        rng = np.random.default_rng(1)
        xs = rng.uniform(0, 10, 1000)
        ys = rng.uniform(0, 10, 1000)
        membership = np.zeros(1000, dtype=int)
        for tile in tiles:
            membership += tile.contains_points(xs, ys)
        assert np.all(membership == 1)

    def test_split_invalid(self):
        with pytest.raises(GeometryError):
            list(BBox(0, 0, 1, 1).split(0, 1))
