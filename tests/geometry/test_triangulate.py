"""Unit tests for ear-clipping triangulation."""

import numpy as np
import pytest

from repro.errors import TriangulationError
from repro.geometry.polygon import Polygon, regular_polygon
from repro.geometry.predicates import orientation, point_in_triangle
from repro.geometry.triangulate import (
    triangulate_polygon,
    triangulate_ring,
    triangulate_set,
)
from tests.conftest import random_star_polygon


def tri_area_sum(triangles) -> float:
    return sum(abs(orientation(t)) for t in triangles)


class TestTriangulateRing:
    def test_triangle_passthrough(self):
        ring = np.asarray([(0, 0), (4, 0), (0, 4)], dtype=float)
        tris = triangulate_ring(ring)
        assert len(tris) == 1

    def test_square_two_triangles(self):
        tris = triangulate_ring(np.asarray([(0, 0), (1, 0), (1, 1), (0, 1)], float))
        assert len(tris) == 2
        assert abs(tri_area_sum(tris) - 1.0) < 1e-12

    def test_concave(self, concave_polygon):
        tris = triangulate_ring(concave_polygon.exterior)
        assert abs(tri_area_sum(tris) - concave_polygon.area) < 1e-9

    def test_cw_input_normalized(self):
        ring = np.asarray([(0, 0), (1, 0), (1, 1), (0, 1)], float)[::-1]
        tris = triangulate_ring(ring)
        assert abs(tri_area_sum(tris) - 1.0) < 1e-12

    def test_collinear_vertices_tolerated(self):
        ring = np.asarray(
            [(0, 0), (5, 0), (10, 0), (10, 10), (0, 10)], dtype=float
        )
        tris = triangulate_ring(ring)
        assert abs(tri_area_sum(tris) - 100.0) < 1e-9

    def test_self_intersecting_detected_or_mismatched(self):
        """Ear clipping is not a validator: non-simple input either raises
        (no ear exists) or produces triangles whose total area disagrees
        with the shoelace area — never a silently 'correct' answer."""
        bowtie = np.asarray([(0, 0), (10, 10), (10, 0), (0, 8)], float)
        try:
            tris = triangulate_ring(bowtie)
        except TriangulationError:
            return
        shoelace = abs(orientation(bowtie))
        assert abs(tri_area_sum(tris) - shoelace) > 1e-9

    def test_no_ear_raises(self):
        # A self-intersecting ring (found by random search) on which ear
        # clipping genuinely finds no ear and must fail fast.
        ring = np.asarray(
            [
                (24.98190862, 40.76441848),
                (37.88868466, 44.02040379),
                (28.03218106, 42.91002176),
                (30.96748148, 53.30354628),
                (26.66861818, 56.53969858),
                (41.13354781, 28.72193422),
            ],
            float,
        )
        with pytest.raises(TriangulationError):
            triangulate_ring(ring)

    def test_too_few_vertices(self):
        with pytest.raises(TriangulationError):
            triangulate_ring(np.asarray([(0, 0), (1, 0)], float))


class TestTriangulatePolygon:
    def test_area_preserved_random(self, rng):
        for _ in range(50):
            poly = random_star_polygon(rng, vertices=int(rng.integers(5, 20)))
            tris = triangulate_polygon(poly)
            assert len(tris) >= len(poly.exterior) - 2 - 2  # slivers may drop
            assert abs(tri_area_sum(tris) - poly.area) < 1e-6 * poly.area

    def test_all_output_ccw(self, rng):
        poly = random_star_polygon(rng)
        for tri in triangulate_polygon(poly):
            assert orientation(tri) > 0

    def test_hole_area_excluded(self, holed_polygon):
        tris = triangulate_polygon(holed_polygon)
        assert abs(tri_area_sum(tris) - 300.0) < 1e-9

    def test_hole_not_covered(self, holed_polygon):
        tris = triangulate_polygon(holed_polygon)
        # A point inside the hole lies in no triangle.
        for tri in tris:
            assert not point_in_triangle(10, 10, *tri[0], *tri[1], *tri[2])

    def test_multiple_holes(self):
        poly = Polygon(
            [(0, 0), (30, 0), (30, 10), (0, 10)],
            holes=[
                [(2, 2), (8, 2), (8, 8), (2, 8)],
                [(12, 2), (18, 2), (18, 8), (12, 8)],
                [(22, 2), (28, 2), (28, 8), (22, 8)],
            ],
        )
        tris = triangulate_polygon(poly)
        assert abs(tri_area_sum(tris) - poly.area) < 1e-9

    def test_many_vertices(self):
        poly = regular_polygon(0, 0, 10, 100)
        tris = triangulate_polygon(poly)
        assert len(tris) == 98
        assert abs(tri_area_sum(tris) - poly.area) < 1e-9


class TestTriangulateSet:
    def test_ids_align(self, three_regions):
        tris, ids = triangulate_set(list(three_regions))
        assert len(tris) == len(ids)
        assert set(ids.tolist()) == {0, 1, 2}
        # Per-polygon triangle areas must reproduce each polygon's area.
        for pid, poly in enumerate(three_regions):
            area = tri_area_sum(tris[ids == pid])
            assert abs(area - poly.area) < 1e-9

    def test_empty(self):
        tris, ids = triangulate_set([])
        assert tris.shape == (0, 3, 2) and len(ids) == 0
