"""Unit tests for repro.geometry.polygon."""

import numpy as np
import pytest

from repro.errors import InvalidPolygonError
from repro.geometry.polygon import Polygon, PolygonSet, rectangle, regular_polygon


class TestConstruction:
    def test_normalizes_winding(self):
        cw = Polygon([(0, 10), (10, 10), (10, 0), (0, 0)])
        from repro.geometry.predicates import orientation

        assert orientation(cw.exterior) > 0

    def test_hole_normalized_clockwise(self):
        poly = Polygon(
            [(0, 0), (20, 0), (20, 20), (0, 20)],
            holes=[[(5, 5), (15, 5), (15, 15), (5, 15)]],
        )
        from repro.geometry.predicates import orientation

        assert orientation(poly.holes[0]) < 0

    def test_closing_vertex_dropped(self):
        poly = Polygon([(0, 0), (10, 0), (10, 10), (0, 10), (0, 0)])
        assert len(poly.exterior) == 4

    def test_too_few_vertices(self):
        with pytest.raises(InvalidPolygonError):
            Polygon([(0, 0), (1, 1)])

    def test_zero_area_rejected(self):
        with pytest.raises(InvalidPolygonError):
            Polygon([(0, 0), (1, 1), (2, 2)])

    def test_nonfinite_rejected(self):
        with pytest.raises(InvalidPolygonError):
            Polygon([(0, 0), (np.nan, 1), (2, 0)])

    def test_bad_shape_rejected(self):
        with pytest.raises(InvalidPolygonError):
            Polygon(np.zeros((4, 3)))


class TestMeasures:
    def test_area_square(self, unit_square):
        assert unit_square.area == 100.0

    def test_area_with_hole(self, holed_polygon):
        assert holed_polygon.area == 400.0 - 100.0

    def test_bbox(self, concave_polygon):
        assert concave_polygon.bbox.as_tuple() == (0, 0, 10, 10)

    def test_num_vertices_counts_holes(self, holed_polygon):
        assert holed_polygon.num_vertices == 8

    def test_edges_cover_all_rings(self, holed_polygon):
        assert len(list(holed_polygon.edges())) == 8


class TestContainment:
    def test_hole_excluded(self, holed_polygon):
        assert holed_polygon.contains(2, 2)
        assert not holed_polygon.contains(10, 10)

    def test_outside_bbox_shortcut(self, unit_square):
        assert not unit_square.contains(100, 100)

    def test_vectorized_matches_scalar(self, concave_polygon, rng):
        xs = rng.uniform(-2, 12, 1000)
        ys = rng.uniform(-2, 12, 1000)
        vec = concave_polygon.contains_points(xs, ys)
        scalar = np.asarray(
            [concave_polygon.contains(x, y) for x, y in zip(xs, ys)]
        )
        assert np.array_equal(vec, scalar)

    def test_on_boundary(self, unit_square):
        assert unit_square.on_boundary(5, 0)
        assert not unit_square.on_boundary(5, 5)


class TestSimplicity:
    def test_simple(self, concave_polygon):
        assert concave_polygon.is_simple()

    def test_bowtie_not_simple(self):
        # Asymmetric bowtie: nonzero signed area (so construction passes)
        # but the first and third edges cross.
        bowtie = Polygon([(0, 0), (10, 10), (10, 0), (0, 8)])
        assert not bowtie.is_simple()


class TestHelpers:
    def test_rectangle(self):
        rect = rectangle(1, 2, 5, 7)
        assert rect.area == 20.0

    def test_regular_polygon_area_converges_to_circle(self):
        poly = regular_polygon(0, 0, 1, 256)
        assert abs(poly.area - np.pi) < 1e-3


class TestPolygonSet:
    def test_ids_are_positional(self, three_regions):
        assert len(three_regions) == 3
        assert three_regions[1] is three_regions.polygons[1]

    def test_default_names(self, three_regions):
        assert three_regions.names[0] == "region-0"

    def test_custom_names_validated(self, unit_square):
        with pytest.raises(InvalidPolygonError):
            PolygonSet([unit_square], names=["a", "b"])

    def test_bbox_union(self, three_regions):
        box = three_regions.bbox
        assert box.xmin == 10 and box.xmax == 90
        assert box.ymin == 10 and box.ymax == 95

    def test_empty_rejected(self):
        with pytest.raises(InvalidPolygonError):
            PolygonSet([])

    def test_iteration(self, three_regions):
        assert sum(1 for _ in three_regions) == 3
