"""QuerySession thread-safety: one session hammered from many threads.

The serving layer shares a single session across concurrent queries, so
every mutation path — prepared-state insert/lookup, partition cache,
pyramid registry, invalidation, byte accounting — must hold up under
races.  Before the coarse RLock, concurrent ``prepared_for`` calls could
corrupt the LRU dicts mid-``popitem`` and double-count byte budgets.
"""

from __future__ import annotations

import threading

import numpy as np
import pytest

from repro import AccurateRasterJoin, PointDataset, QuerySession
from tests.conftest import random_star_polygon
from repro.geometry.polygon import PolygonSet

THREADS = 8
ROUNDS = 12


@pytest.fixture
def polygon_sets(rng):
    return [
        PolygonSet([
            random_star_polygon(rng, center=(40.0 + 5 * i, 50.0)),
            random_star_polygon(rng, center=(60.0, 40.0 + 5 * i)),
        ])
        for i in range(4)
    ]


def test_eight_thread_hammer(rng, polygon_sets):
    session = QuerySession(capacity=3)
    spec = ("accurate", 128, 128, 8192)
    points = PointDataset(
        rng.uniform(0.0, 100.0, 2000), rng.uniform(0.0, 100.0, 2000)
    )
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS)

    def hammer(worker: int) -> None:
        try:
            barrier.wait(10.0)
            local = np.random.default_rng(worker)
            for round_no in range(ROUNDS):
                polygons = polygon_sets[(worker + round_no) % len(polygon_sets)]
                prepared, source = session.prepared_for(polygons, spec)
                assert isinstance(source, str)
                assert prepared is not None
                token = ("partition", worker % 2)
                if local.random() < 0.5:
                    session.partition_store(points, token, [[], []], 0)
                else:
                    session.partition_lookup(points, token)
                session.contains(polygons, spec)
                session.warmth(polygons, spec)
                assert len(session) >= 0
                assert session.nbytes >= 0
                assert session.partition_nbytes >= 0
                if local.random() < 0.2:
                    session.invalidate(polygons)
                session.checkpoint()
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [
        threading.Thread(target=hammer, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    assert not errors, errors
    # The budget stayed consistent: re-derive it from scratch.
    assert 0 <= len(session) <= 3


def test_concurrent_executions_share_session_bit_identically(
    rng, uniform_points, three_regions
):
    """Eight threads executing through one shared session agree exactly."""
    session = QuerySession()
    engine = AccurateRasterJoin(resolution=128, session=session)
    reference = engine.execute(uniform_points, three_regions)
    results: dict[int, np.ndarray] = {}
    errors: list[BaseException] = []
    barrier = threading.Barrier(THREADS)

    def run(worker: int) -> None:
        try:
            barrier.wait(10.0)
            worker_engine = AccurateRasterJoin(
                resolution=128, session=session
            )
            results[worker] = worker_engine.execute(
                uniform_points, three_regions
            ).values
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=run, args=(i,)) for i in range(THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(60.0)
    assert not errors, errors
    assert len(results) == THREADS
    for values in results.values():
        assert np.array_equal(values, reference.values)
