"""Unit and integration tests for the prepared-state cache subsystem."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    IndexJoin,
    MaterializingJoin,
    PreparedPolygons,
    Polygon,
    PolygonSet,
    QuerySession,
    RasterJoinOptimizer,
    Sum,
)
from repro.cache import polygon_fingerprint
from repro.errors import QueryError
from tests.conftest import brute_force_counts


def shifted_regions(regions: PolygonSet, dx: float) -> PolygonSet:
    return PolygonSet(
        [Polygon(p.exterior + [dx, 0.0],
                 holes=[h + [dx, 0.0] for h in p.holes]) for p in regions]
    )


class TestFingerprint:
    def test_same_content_same_fingerprint(self, three_regions):
        clone = PolygonSet(
            [Polygon(p.exterior.copy(), holes=[h.copy() for h in p.holes])
             for p in three_regions]
        )
        assert polygon_fingerprint(three_regions) == polygon_fingerprint(clone)

    def test_vertex_edit_changes_fingerprint(self, three_regions):
        assert polygon_fingerprint(three_regions) != polygon_fingerprint(
            shifted_regions(three_regions, 1e-9)
        )

    def test_order_matters(self, three_regions):
        reordered = PolygonSet(list(three_regions)[::-1])
        assert polygon_fingerprint(three_regions) != polygon_fingerprint(
            reordered
        )


class TestQuerySession:
    def test_hit_miss_accounting(self, three_regions):
        session = QuerySession()
        a1, hit1 = session.prepared_for(three_regions, ("spec", 1))
        a2, hit2 = session.prepared_for(three_regions, ("spec", 1))
        _, hit3 = session.prepared_for(three_regions, ("spec", 2))
        # The source tag is falsy on a miss and truthy on any hit; an
        # in-memory hit reports "memory" (see the store tests for the
        # disk tier's "store" tag).
        assert (bool(hit1), bool(hit2), bool(hit3)) == (False, True, False)
        assert hit2 == "memory"
        assert a1 is a2
        assert session.hits == 1 and session.misses == 2

    def test_lru_eviction(self, three_regions):
        session = QuerySession(capacity=2)
        session.prepared_for(three_regions, ("a",))
        session.prepared_for(three_regions, ("b",))
        session.prepared_for(three_regions, ("c",))  # evicts ("a",)
        assert len(session) == 2
        _, hit = session.prepared_for(three_regions, ("a",))
        assert not hit

    def test_invalidate_all_and_by_polygons(self, three_regions):
        other = shifted_regions(three_regions, 5.0)
        session = QuerySession()
        session.prepared_for(three_regions, ("a",))
        session.prepared_for(three_regions, ("b",))
        session.prepared_for(other, ("a",))
        assert session.invalidate(three_regions) == 2
        assert len(session) == 1
        assert session.invalidate() == 1
        assert len(session) == 0

    def test_invalid_capacity(self):
        with pytest.raises(QueryError):
            QuerySession(capacity=0)

    def test_prepared_repr_and_nbytes(self, three_regions):
        session = QuerySession()
        engine = AccurateRasterJoin(resolution=128, session=session)
        # populate via a real execution
        from repro import PointDataset

        pts = PointDataset(np.array([20.0, 60.0]), np.array([20.0, 70.0]))
        engine.execute(pts, three_regions)
        assert session.nbytes > 0
        assert "QuerySession" in repr(session)


class TestEnginesReusePreparedState:
    @pytest.fixture
    def session(self):
        return QuerySession()

    def assert_warm_reuses(self, engine, uniform_points, three_regions,
                           baseline_engine, point_side_index=False):
        cold = engine.execute(uniform_points, three_regions,
                              aggregate=Sum("fare"))
        warm = engine.execute(uniform_points, three_regions,
                              aggregate=Sum("fare"))
        base = baseline_engine.execute(uniform_points, three_regions,
                                       aggregate=Sum("fare"))
        assert cold.stats.prepared_misses == 1
        assert cold.stats.prepared_hits == 0
        assert warm.stats.prepared_hits == 1
        assert warm.stats.prepared_misses == 0
        # No polygon-side rebuild on the warm run (the materializing engine
        # still indexes the *points* per batch).
        assert warm.stats.triangulation_s == 0.0
        if not point_side_index:
            assert warm.stats.index_build_s == 0.0
        # Cached and uncached results are bit-identical.
        assert np.array_equal(cold.values, warm.values)
        assert np.array_equal(warm.values, base.values)
        for name in base.channels:
            assert np.array_equal(warm.channels[name], base.channels[name])

    def test_accurate(self, session, uniform_points, three_regions):
        self.assert_warm_reuses(
            AccurateRasterJoin(resolution=256, session=session),
            uniform_points, three_regions,
            AccurateRasterJoin(resolution=256),
        )

    def test_bounded_triangle_path(self, session, uniform_points,
                                   three_regions):
        self.assert_warm_reuses(
            BoundedRasterJoin(resolution=256, session=session),
            uniform_points, three_regions,
            BoundedRasterJoin(resolution=256),
        )

    def test_bounded_scanline_path(self, session, uniform_points,
                                   three_regions):
        self.assert_warm_reuses(
            BoundedRasterJoin(resolution=256, use_scanline=True,
                              session=session),
            uniform_points, three_regions,
            BoundedRasterJoin(resolution=256, use_scanline=True),
        )

    def test_index_join(self, session, uniform_points, three_regions):
        self.assert_warm_reuses(
            IndexJoin(mode="gpu", session=session),
            uniform_points, three_regions,
            IndexJoin(mode="gpu"),
        )

    def test_materializing(self, session, uniform_points, three_regions):
        self.assert_warm_reuses(
            MaterializingJoin(truncate_bits=None, session=session),
            uniform_points, three_regions,
            MaterializingJoin(truncate_bits=None),
            point_side_index=True,
        )

    def test_accurate_results_stay_exact(self, session, uniform_points,
                                         three_regions):
        engine = AccurateRasterJoin(resolution=256, session=session)
        engine.execute(uniform_points, three_regions)
        warm = engine.execute(uniform_points, three_regions)
        assert np.array_equal(
            warm.values, brute_force_counts(uniform_points, three_regions)
        )

    def test_changed_polygons_never_hit(self, session, uniform_points,
                                        three_regions):
        engine = AccurateRasterJoin(resolution=256, session=session)
        engine.execute(uniform_points, three_regions)
        moved = shifted_regions(three_regions, 3.0)
        result = engine.execute(uniform_points, moved)
        assert result.stats.prepared_hits == 0
        assert np.array_equal(
            result.values, brute_force_counts(uniform_points, moved)
        )

    def test_session_shared_across_engines(self, session, uniform_points,
                                           three_regions):
        """Engines with different specs coexist in one session."""
        acc = AccurateRasterJoin(resolution=256, session=session)
        bounded = BoundedRasterJoin(resolution=256, session=session)
        acc.execute(uniform_points, three_regions)
        bounded.execute(uniform_points, three_regions)
        warm_a = acc.execute(uniform_points, three_regions)
        warm_b = bounded.execute(uniform_points, three_regions)
        assert warm_a.stats.prepared_hits == 1
        assert warm_b.stats.prepared_hits == 1

    def test_different_aggregates_share_prepared_state(
        self, session, uniform_points, three_regions
    ):
        """The artifact is keyed by geometry + render spec, not the query:
        a different aggregate over the same zoning is a warm run."""
        engine = AccurateRasterJoin(resolution=256, session=session)
        engine.execute(uniform_points, three_regions)
        warm = engine.execute(uniform_points, three_regions,
                              aggregate=Sum("fare"))
        assert warm.stats.prepared_hits == 1

    def test_streamed_execution_uses_session(self, session, uniform_points,
                                             three_regions):
        engine = AccurateRasterJoin(resolution=256, session=session)
        whole = engine.execute(uniform_points, three_regions)
        streamed = engine.execute_stream(
            lambda: uniform_points.batches(4_000), three_regions
        )
        assert streamed.stats.prepared_hits == 1
        assert np.array_equal(streamed.values, whole.values)

    def test_no_session_records_no_counters(self, uniform_points,
                                            three_regions):
        result = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions
        )
        assert result.stats.prepared_hits == 0
        assert result.stats.prepared_misses == 0


class TestWiring:
    def test_optimizer_forwards_session(self, uniform_points, three_regions):
        session = QuerySession()
        optimizer = RasterJoinOptimizer(session=session)
        engine = optimizer.choose(uniform_points, three_regions, epsilon=5.0)
        assert engine.session is session

    def test_planner_reuses_prepared_state(self, uniform_points,
                                           three_regions):
        from repro.sql.planner import QueryPlanner

        planner = QueryPlanner()
        planner.register_points("trips", uniform_points)
        planner.register_regions("zones", three_regions)
        sql = (
            "SELECT COUNT(*) FROM trips, zones "
            "WHERE trips.location INSIDE zones.geometry GROUP BY zones.id"
        )
        first = planner.execute(sql)
        second = planner.execute(sql)
        assert first.stats.prepared_misses == 1
        assert second.stats.prepared_hits == 1
        assert np.array_equal(first.values, second.values)

    def test_planner_accepts_shared_session(self, uniform_points,
                                            three_regions):
        from repro.sql.planner import QueryPlanner

        session = QuerySession()
        planner = QueryPlanner(session=session)
        planner.register_points("trips", uniform_points)
        planner.register_regions("zones", three_regions)
        engine = AccurateRasterJoin(resolution=1024, session=session)
        engine.execute(uniform_points, three_regions)
        result = planner.execute(
            "SELECT COUNT(*) FROM trips, zones "
            "WHERE trips.location INSIDE zones.geometry GROUP BY zones.id"
        )
        # Planner default engine is accurate @ 1024 with default grid — the
        # same spec as the hand-built engine, so the statement is a warm run.
        assert result.stats.prepared_hits == 1


class TestPreparedPolygons:
    def test_throwaway_artifact_builds_everything(self, three_regions):
        prepared = PreparedPolygons()
        tris = prepared.ensure_triangles(three_regions)
        assert prepared.ensure_triangles(three_regions) is tris
        grid = prepared.ensure_grid(three_regions, 64, "mbr")
        assert prepared.ensure_grid(three_regions, 64, "mbr") is grid
        mbrs = prepared.ensure_mbr_arrays(three_regions)
        assert len(mbrs) == 4
        assert prepared.nbytes > 0

    def test_artifact_is_picklable_for_process_backend(self, uniform_points,
                                                       three_regions):
        """Forked tile workers inherit artifacts copy-on-write, but a
        fully populated artifact must also survive pickling (the
        shareable-or-picklable contract of the execution backends)."""
        import pickle

        session = QuerySession()
        engine = AccurateRasterJoin(resolution=256, session=session)
        expected = engine.execute(uniform_points, three_regions)
        artifact = session._entries[next(iter(session._entries))]
        clone = pickle.loads(pickle.dumps(artifact))
        assert clone.key == artifact.key
        assert clone.canvas.width == artifact.canvas.width
        assert len(clone.tiles) == len(artifact.tiles)
        assert set(clone.boundary_masks) == set(artifact.boundary_masks)
        assert set(clone.coverage) == set(artifact.coverage)
        # The clone is a working artifact: a fresh session seeded with it
        # replays to bit-identical results.
        other = QuerySession()
        other._entries[artifact.key] = clone
        replay = AccurateRasterJoin(resolution=256, session=other).execute(
            uniform_points, three_regions
        )
        assert replay.stats.prepared_hits == 1
        assert np.array_equal(replay.values, expected.values)
