"""Unit tests for per-polygon artifacts: delta derivation, rebuild
accounting, the partition cache, and fractional warmth."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    GPUDevice,
    EngineConfig,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.cache import Warmth, fingerprint_details, polygon_fingerprint
from repro.cache.prepared import PreparedPolygons


def edited_regions(regions: PolygonSet, shrink: float = 0.25) -> PolygonSet:
    """Move one vertex of the (frame-interior) third polygon inward."""
    polys = list(regions)
    ring = polys[2].exterior.copy()
    center = ring.mean(axis=0)
    ring[0] = ring[0] + (center - ring[0]) * shrink
    polys[2] = Polygon(ring, holes=polys[2].holes)
    out = PolygonSet(polys)
    assert out.bbox.xmin == regions.bbox.xmin  # frame unchanged
    return out


def stretched_regions(regions: PolygonSet) -> PolygonSet:
    """An edit that *changes the frame* (moves the extent corner)."""
    polys = list(regions)
    ring = polys[0].exterior.copy()
    corner = np.argmin(ring[:, 0] + ring[:, 1])
    ring[corner] = ring[corner] - 5.0
    polys[0] = Polygon(ring)
    return PolygonSet(polys)


class TestDeltaDerivation:
    def test_single_edit_rebuilds_one_polygon(self, uniform_points,
                                              three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        result = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        assert result.stats.extra["prepared"] == "delta"
        assert result.stats.prepared_delta_hits == 1
        assert result.stats.extra["polygons_rebuilt"] == 1
        assert session.delta_hits == 1
        assert session.polygons_rebuilt == 1
        # Unchanged polygons' units are shared arrays, not copies.
        base_key = (
            polygon_fingerprint(three_regions),
        ) + tuple(engine.prepared_spec())
        new_key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        base_units = session._entries[base_key].units
        new_units = session._entries[new_key].units
        assert new_units[0].triangles is base_units[0].triangles
        assert new_units[2].triangles is not base_units[2].triangles

    def test_only_dirty_triangulation_runs(self, uniform_points,
                                           three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        cold = engine.execute(uniform_points, three_regions,
                              aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        inc = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        # Cold triangulated 3 polygons; the edit only the changed one —
        # the timed preparation shrinks accordingly (structure, not
        # wall-clock: the counters come from the lazy builders).
        new_key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        entry = session._entries[new_key]
        assert entry.delta_dirty == [2]
        assert entry.parent_map == [0, 1, -1]
        assert inc.stats.triangulation_s <= cold.stats.triangulation_s

    def test_frame_change_falls_back_to_cold(self, uniform_points,
                                             three_regions):
        session = QuerySession(store=False)
        engine = BoundedRasterJoin(resolution=128, session=session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        moved = stretched_regions(three_regions)
        result = engine.execute(uniform_points, moved, aggregate=Sum("fare"))
        # The extent changed, so every per-polygon artifact is invalid
        # under the new canvas: no delta, a plain (correct) cold build.
        assert result.stats.extra["prepared"] == "miss"
        assert session.delta_hits == 0

    def test_added_and_removed_polygons(self, uniform_points, three_regions):
        session = QuerySession(store=False)
        engine = BoundedRasterJoin(resolution=128, session=session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        extra = Polygon([(45.0, 15.0), (60.0, 18.0), (52.0, 30.0)])
        grown = PolygonSet(list(three_regions) + [extra])
        res = engine.execute(uniform_points, grown, aggregate=Sum("fare"))
        assert res.stats.extra["prepared"] == "delta"
        assert res.stats.extra["polygons_rebuilt"] == 1
        assert np.array_equal(
            res.values,
            BoundedRasterJoin(resolution=128).execute(
                uniform_points, grown, aggregate=Sum("fare")
            ).values,
        )
        shrunk = PolygonSet(list(three_regions)[:2] + [extra])
        res2 = engine.execute(uniform_points, shrunk, aggregate=Sum("fare"))
        assert res2.stats.extra["prepared"] == "delta"
        assert res2.stats.extra["polygons_rebuilt"] == 0  # all reused
        assert np.array_equal(
            res2.values,
            BoundedRasterJoin(resolution=128).execute(
                uniform_points, shrunk, aggregate=Sum("fare")
            ).values,
        )

    def test_unaffected_tiles_keep_composed_views(self, uniform_points,
                                                  three_regions):
        """On a multi-tile canvas, tiles the edited polygon never touches
        carry their composed boundary/coverage over unchanged."""
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session,
            device=GPUDevice(max_resolution=48),
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        base_key = (
            polygon_fingerprint(three_regions),
        ) + tuple(engine.prepared_spec())
        base = session._entries[base_key]
        assert len(base.tiles) > 1
        after = edited_regions(three_regions)
        fingerprints = fingerprint_details(after)[1]
        new_key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        derived = PreparedPolygons.derive_from(
            base, new_key, after, fingerprints
        )
        carried = set(derived.coverage)
        assert carried  # some tiles are untouched by the edit
        edited_box = after[2].bbox
        for idx in carried:
            assert not base.tiles[idx].bbox.intersects(edited_box)
            assert derived.coverage[idx] is base.coverage[idx]

    def test_delta_result_matches_cold_on_multitile(self, uniform_points,
                                                    three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session,
            device=GPUDevice(max_resolution=48),
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        inc = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        assert inc.stats.extra["prepared"] == "delta"
        cold = AccurateRasterJoin(
            resolution=128, grid_resolution=64,
            device=GPUDevice(max_resolution=48),
        ).execute(uniform_points, after, aggregate=Sum("fare"))
        assert np.array_equal(inc.values, cold.values)


class TestPartitionCache:
    """Satellite: the tile-point partition is cached per (point source,
    canvas spec) so repeated queries skip the partition scan."""

    def _engine(self, session):
        return BoundedRasterJoin(
            resolution=128, session=session,
            device=GPUDevice(max_resolution=48),
            config=EngineConfig(partition_points=True),
        )

    def test_repeat_query_reports_cached(self, uniform_points, three_regions):
        session = QuerySession(store=False)
        engine = self._engine(session)
        first = engine.execute(uniform_points, three_regions,
                               aggregate=Sum("fare"))
        assert first.stats.extra["partition"] == "on"
        second = engine.execute(uniform_points, three_regions,
                                aggregate=Sum("fare"))
        assert second.stats.extra["partition"] == "cached"
        assert session.partition_hits == 1
        assert np.array_equal(first.values, second.values)

    def test_cache_survives_polygon_edits(self, uniform_points,
                                          three_regions):
        """The partition depends on the canvas, not the polygons: the
        edit loop keeps hitting it (frame-preserving edits only)."""
        session = QuerySession(store=False)
        engine = self._engine(session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        edited_run = engine.execute(uniform_points, after,
                                    aggregate=Sum("fare"))
        assert edited_run.stats.extra["partition"] == "cached"
        cold = BoundedRasterJoin(
            resolution=128, device=GPUDevice(max_resolution=48),
        ).execute(uniform_points, after, aggregate=Sum("fare"))
        assert np.array_equal(edited_run.values, cold.values)

    def test_different_points_do_not_hit(self, uniform_points,
                                         three_regions, rng):
        from repro import PointDataset

        session = QuerySession(store=False)
        engine = self._engine(session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        other = PointDataset(
            rng.uniform(0, 100, 500), rng.uniform(0, 100, 500),
            {"fare": rng.uniform(1, 30, 500)},
        )
        res = engine.execute(other, three_regions, aggregate=Sum("fare"))
        assert res.stats.extra["partition"] == "on"
        assert session.partition_hits == 0

    def test_in_place_mutation_is_caught(self, uniform_points,
                                         three_regions):
        session = QuerySession(store=False)
        engine = self._engine(session)
        first = engine.execute(uniform_points, three_regions,
                               aggregate=Sum("fare"))
        # Interior mutation: length and corner values are unchanged —
        # only a full content fingerprint can catch this.
        uniform_points.xs[len(uniform_points) // 2] += 500.0
        res = engine.execute(uniform_points, three_regions,
                             aggregate=Sum("fare"))
        assert res.stats.extra["partition"] == "on"  # guard rejected it
        cold = BoundedRasterJoin(
            resolution=128, device=GPUDevice(max_resolution=48),
        ).execute(uniform_points, three_regions, aggregate=Sum("fare"))
        assert np.array_equal(res.values, cold.values)

    def test_capacity_zero_disables(self, uniform_points, three_regions):
        session = QuerySession(store=False, partition_capacity=0)
        engine = self._engine(session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        res = engine.execute(uniform_points, three_regions,
                             aggregate=Sum("fare"))
        assert res.stats.extra["partition"] == "on"
        assert len(session._partitions) == 0


class TestFractionalWarmth:
    def test_exact_hit_has_fraction_one(self, uniform_points, three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        warm = session.warmth(three_regions, engine.prepared_spec())
        assert warm == "full"
        assert isinstance(warm, Warmth)
        assert warm.fraction == 1.0

    def test_edited_set_grades_fractionally(self, uniform_points,
                                            three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        warm = session.warmth(after, engine.prepared_spec())
        assert warm == "full"
        assert warm.fraction == pytest.approx(2.0 / 3.0)

    def test_duplicate_fingerprints_never_overcount(self, uniform_points):
        """Multiset matching: three identical polygons in the sibling
        must not grade a two-polygon query above fraction 1.0 (a
        candidate-side count once produced fractions > 1, flipping cost
        terms negative)."""
        square = Polygon([(10.0, 10.0), (40.0, 10.0), (40.0, 40.0),
                          (10.0, 40.0)])
        triple = PolygonSet([square, square, square])
        session = QuerySession(store=False)
        engine = BoundedRasterJoin(resolution=128, session=session)
        engine.execute(uniform_points, triple, aggregate=Sum("fare"))
        other = Polygon([(10.0, 10.0), (40.0, 12.0), (20.0, 40.0)])
        pair = PolygonSet([square, other])
        warm = session.warmth(pair, engine.prepared_spec())
        assert warm is not None
        assert 0.0 < warm.fraction <= 1.0
        assert warm.fraction == pytest.approx(0.5)
        result = engine.execute(uniform_points, pair, aggregate=Sum("fare"))
        assert result.stats.extra["prepared"] == "delta"
        assert result.stats.extra["polygons_rebuilt"] == 1
        assert np.array_equal(
            result.values,
            BoundedRasterJoin(resolution=128).execute(
                uniform_points, pair, aggregate=Sum("fare")
            ).values,
        )

    def test_cold_set_grades_none(self, uniform_points, three_regions):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128, grid_resolution=64, session=session
        )
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        moved = stretched_regions(three_regions)  # frame changed: no delta
        assert session.warmth(moved, engine.prepared_spec()) is None

    def test_optimizer_plans_edits_warm(self, uniform_points, three_regions):
        """A 1-of-N edit must cost (nearly) like a warm query: the
        optimizer's estimate discounts the matched share."""
        from repro.core.optimizer import RasterJoinOptimizer

        session = QuerySession(store=False)
        optimizer = RasterJoinOptimizer(session=session)
        engine = AccurateRasterJoin(resolution=1024, session=session)
        engine.execute(uniform_points, three_regions, aggregate=Sum("fare"))
        after = edited_regions(three_regions)
        est_edit = optimizer.estimate(uniform_points, after, epsilon=0.05)
        assert est_edit["accurate_warm"] == "full"
        assert est_edit["accurate_warm"].fraction == pytest.approx(2 / 3)
        est_warm = optimizer.estimate(uniform_points, three_regions,
                                      epsilon=0.05)
        est_cold = optimizer.estimate(
            uniform_points,
            PolygonSet([stretched_regions(three_regions)[0]]),
            epsilon=0.05,
        )
        assert est_warm["accurate"] <= est_edit["accurate"]


class TestPlannerEditLoop:
    def test_reregistered_regions_hit_the_delta_path(self, uniform_points,
                                                     three_regions):
        """The SQL face of incremental edits: replacing a region table
        re-plans statements onto delta-derived prepared state."""
        from repro.sql.planner import QueryPlanner

        planner = QueryPlanner()
        planner.register_points("taxi", uniform_points)
        planner.register_regions("zones", three_regions)
        stmt = (
            "SELECT SUM(taxi.fare) FROM taxi, zones "
            "WHERE taxi.loc INSIDE zones.geometry GROUP BY zones.id"
        )
        planner.execute(stmt)
        after = edited_regions(three_regions)
        planner.register_regions("zones", after)
        result = planner.execute(stmt)
        assert result.stats.extra["prepared"] == "delta"
        assert result.stats.extra["polygons_rebuilt"] == 1
        reference = AccurateRasterJoin().execute(
            uniform_points, after, aggregate=Sum("fare")
        )
        assert np.array_equal(result.values, reference.values)
        planner.close()
