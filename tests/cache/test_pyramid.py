"""Tests for the aggregate-pyramid cache (repro.cache.pyramid)."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    Count,
    Filter,
    Max,
    Min,
    PointDataset,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from repro.cache.pyramid import (
    AggregatePyramid,
    channel_kinds,
    classify_cells,
    decompose_blocks,
    pyramid_levels,
)
from repro.exec.config import PYRAMID_ENV_VAR, EngineConfig
from repro.geometry.polygon import rectangle
from repro.graphics.viewport import Viewport
from repro.index.grid import GridIndex
from tests.conftest import brute_force_counts, brute_force_sums

RES = 128
GRID = 32


@pytest.fixture
def points(rng):
    n = 8_000
    return PointDataset(
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        {"fare": rng.integers(0, 40, n).astype(np.float64)},
    )


@pytest.fixture
def regions():
    return PolygonSet(
        [
            rectangle(5, 5, 55, 45),
            Polygon([(50, 50), (90, 55), (80, 95), (45, 80), (60, 65)]),
            # Anchors the union bbox so edited sets keep the grid frame.
            rectangle(0, 0, 100, 100),
        ]
    )


def engine(session, **kw):
    # Pin the pyramid on unless the test brings its own config: the
    # warm-path assertions must hold even when the ambient environment
    # (e.g. the $REPRO_PYRAMID=0 CI leg) disables the default.
    kw.setdefault("config", EngineConfig(pyramid=True))
    return AccurateRasterJoin(
        resolution=RES, grid_resolution=GRID, session=session, **kw
    )


class TestBlockDecomposition:
    def test_full_grid_promotes_to_root(self):
        res = 16
        cells = np.arange(res * res, dtype=np.int64)
        blocks = decompose_blocks(cells, res, pyramid_levels(res))
        assert len(blocks) == 1
        level, ids = blocks[0]
        assert level == pyramid_levels(res) - 1
        assert list(ids) == [0]

    @pytest.mark.parametrize("res", [8, 13, 32])
    def test_blocks_cover_cells_exactly_once(self, res, rng):
        cells = np.unique(
            rng.integers(0, res * res, size=res * res // 2).astype(np.int64)
        )
        blocks = decompose_blocks(cells, res, pyramid_levels(res))
        covered = []
        for level, ids in blocks:
            # Expand each block back to its level-0 cells.
            ids = np.asarray(ids)
            width = res
            for _ in range(level):
                width = (width + 1) // 2
            for flat in ids:
                cy, cx = divmod(int(flat), width)
                span = 1 << level
                for dy in range(span):
                    for dx in range(span):
                        y, x = cy * span + dy, cx * span + dx
                        if y < res and x < res:
                            covered.append(y * res + x)
        covered = np.sort(np.asarray(covered))
        # Promotion only happens when every in-range child is present,
        # so the expansion reproduces the input set with no duplicates.
        assert np.array_equal(covered, np.sort(cells))

    def test_partial_parent_stays_at_level_zero(self):
        blocks = decompose_blocks(np.asarray([0, 1, 2]), 8, pyramid_levels(8))
        assert len(blocks) == 1
        assert blocks[0][0] == 0
        assert list(blocks[0][1]) == [0, 1, 2]


class TestClassifyCells:
    def test_interior_and_pip_disjoint_and_exact(self, regions):
        grid = GridIndex(regions, resolution=GRID)
        viewport = Viewport(grid.extent, GRID, GRID)
        poly = regions[0]
        cells = GridIndex.cells_for_polygon(
            poly, grid.extent, GRID, grid.assignment
        )
        interior, pip = classify_cells(poly, cells, grid, viewport)
        assert len(np.intersect1d(interior, pip)) == 0
        # Every corner of an interior cell must be strictly inside: the
        # boundary provably misses the cell, so all of it is one side.
        for flat in interior:
            cy, cx = divmod(int(flat), GRID)
            xs = grid.extent.xmin + np.asarray([cx, cx + 1]) * grid.cell_w
            ys = grid.extent.ymin + np.asarray([cy, cy + 1]) * grid.cell_h
            cxs, cys = np.meshgrid(xs, ys)
            assert poly.contains_points(
                cxs.ravel() * 0.999999 + poly.bbox.xmin * 1e-6,
                cys.ravel() * 0.999999 + poly.bbox.ymin * 1e-6,
            ).all()


class TestAggregatePyramid:
    def test_count_channel_matches_histogram(self, points, regions):
        grid = GridIndex(regions, resolution=GRID)
        pyramid = AggregatePyramid.build(points, grid)
        pyramid.ensure_channel("count", None, points)
        level0 = pyramid.channels[("count", None)][0]
        cells = grid.cell_of_points(points.xs, points.ys)
        expect = np.bincount(cells[cells >= 0], minlength=GRID * GRID)
        assert np.array_equal(level0.ravel(), expect.astype(np.float64))
        # The root is the total in-extent population.
        assert pyramid.channels[("count", None)][-1][0, 0] == expect.sum()

    def test_gather_indices_returns_cell_population(self, points, regions):
        grid = GridIndex(regions, resolution=GRID)
        pyramid = AggregatePyramid.build(points, grid)
        cells = np.asarray([3, 100, 501], dtype=np.int64)
        idx = pyramid.gather_indices(cells)
        all_cells = grid.cell_of_points(points.xs, points.ys)
        expect = np.flatnonzero(np.isin(all_cells, cells))
        assert np.array_equal(np.sort(idx), expect)

    def test_channel_kinds_rejects_unsupported(self):
        assert channel_kinds(Count()) == {"count": ("count", None)}
        assert channel_kinds(Sum("v")) == {"sum": ("sum", "v")}
        kinds = channel_kinds(Average("v"))
        assert set(kinds.values()) == {("count", None), ("sum", "v")}


class TestEnginePyramidPath:
    def test_count_sum_bit_identical(self, points, regions):
        for aggregate, reference in [
            (Count(), brute_force_counts(points, regions)),
            (Sum("fare"), brute_force_sums(points, regions, "fare")),
        ]:
            eng = engine(QuerySession())
            cold = eng.execute(points, regions, aggregate)
            assert cold.stats.extra.get("pyramid") == "cold"
            eng.build_pyramid(points, regions)
            warm = eng.execute(points, regions, aggregate)
            assert warm.stats.extra.get("pyramid") == "hit"
            assert warm.stats.extra["pyramid_fallback_points"] < len(points)
            # Bit-identical to the exact path, and exact vs brute force
            # (integer-valued attributes: float64 additions are exact).
            assert np.array_equal(warm.values, cold.values)
            assert np.array_equal(warm.values, reference)

    def test_min_max_average_agree(self, points, regions):
        for aggregate in (Min("fare"), Max("fare"), Average("fare")):
            session = QuerySession()
            eng = engine(session)
            cold = eng.execute(points, regions, aggregate)
            eng.build_pyramid(points, regions)
            warm = eng.execute(points, regions, aggregate)
            assert warm.stats.extra.get("pyramid") == "hit"
            assert np.allclose(warm.values, cold.values, equal_nan=True)

    def test_filters_fall_back_to_exact_path(self, points, regions):
        session = QuerySession()
        eng = engine(session)
        eng.build_pyramid(points, regions)
        result = eng.execute(
            points, regions, Count(), filters=[Filter("fare", "<", 10.0)]
        )
        assert result.stats.extra.get("pyramid") != "hit"
        fare = points.column("fare")
        keep = fare < 10.0
        expect = np.asarray([
            float(np.count_nonzero(
                p.contains_points(points.xs[keep], points.ys[keep])
            ))
            for p in regions
        ])
        assert np.array_equal(result.values, expect)

    def test_env_flag_disables_use_but_not_exactness(
        self, points, regions, monkeypatch
    ):
        session = QuerySession()
        # Env-governed engines: EngineConfig() leaves ``pyramid=None``
        # so $REPRO_PYRAMID decides (the helper would pin it on).
        warm_eng = engine(session, config=EngineConfig())
        warm_eng.build_pyramid(points, regions)
        monkeypatch.setenv(PYRAMID_ENV_VAR, "0")
        off_eng = engine(session, config=EngineConfig())
        off = off_eng.execute(points, regions, Count())
        # The disabled engine must not even report pyramid state — it is
        # running the pre-pyramid execution path verbatim.
        assert "pyramid" not in off.stats.extra
        monkeypatch.delenv(PYRAMID_ENV_VAR)
        on = engine(session, config=EngineConfig()).execute(
            points, regions, Count()
        )
        assert on.stats.extra.get("pyramid") == "hit"
        assert np.array_equal(off.values, on.values)

    def test_config_flag_beats_environment(self, points, regions, monkeypatch):
        monkeypatch.setenv(PYRAMID_ENV_VAR, "0")
        session = QuerySession()
        eng = engine(session, config=EngineConfig(pyramid=True))
        eng.build_pyramid(points, regions)
        result = eng.execute(points, regions, Count())
        assert result.stats.extra.get("pyramid") == "hit"

    def test_pyramid_off_matches_sessionless_bytes(self, points, regions):
        """REPRO_PYRAMID=0 (via config) is byte-for-byte the old path."""
        baseline = AccurateRasterJoin(
            resolution=RES, grid_resolution=GRID
        ).execute(points, regions, Sum("fare"))
        session = QuerySession()
        eng = engine(session, config=EngineConfig(pyramid=False))
        eng.build_pyramid(points, regions)
        off = eng.execute(points, regions, Sum("fare"))
        assert np.array_equal(off.values, baseline.values)
        for name in baseline.channels:
            assert np.array_equal(off.channels[name], baseline.channels[name])

    def test_mutated_points_never_replay_stale_partials(
        self, points, regions
    ):
        session = QuerySession()
        eng = engine(session)
        eng.build_pyramid(points, regions)
        assert eng.execute(points, regions, Count()).stats.extra[
            "pyramid"] == "hit"
        # In-place mutation: the content guard must reject the entry.
        points.xs[:] = (points.xs + 37.0) % 100.0
        result = eng.execute(points, regions, Count())
        assert result.stats.extra.get("pyramid") != "hit"
        assert np.array_equal(result.values, brute_force_counts(points, regions))


class TestDeltaEditsKeepPyramid:
    def test_polygon_edit_keeps_pyramid_warm(self, points, regions):
        session = QuerySession()
        eng = engine(session)
        eng.build_pyramid(points, regions)
        assert eng.execute(points, regions, Count()).stats.extra[
            "pyramid"] == "hit"
        # Edit one polygon without moving the union bbox (the anchor
        # rectangle pins the grid frame): the pyramid depends only on
        # points + frame, so the edited set still answers pyramid-warm.
        edited = PolygonSet(
            [rectangle(10, 8, 50, 42), regions[1], regions[2]],
            names=regions.names,
        )
        result = eng.execute(points, edited, Count())
        assert result.stats.extra.get("pyramid") == "hit"
        assert np.array_equal(result.values, brute_force_counts(points, edited))


class TestPyramidPersistence:
    def test_store_round_trip(self, points, regions, tmp_path):
        grid = GridIndex(regions, resolution=GRID)
        pyramid = AggregatePyramid.build(points, grid)
        pyramid.ensure_channel("count", None, points)
        pyramid.ensure_channel("min", "fare", points)
        from repro.store import ArtifactStore

        store = ArtifactStore(tmp_path)
        key = ("fp", "pyramid", GRID, "mbr", (0.0, 0.0, 1.0, 1.0))
        store.save_pyramid(key, pyramid)
        assert store.contains_pyramid(key)
        back = store.load_pyramid(key)
        assert np.array_equal(back.point_order, pyramid.point_order)
        assert np.array_equal(back.cell_start, pyramid.cell_start)
        for chan, levels in pyramid.channels.items():
            for mine, theirs in zip(levels, back.channels[chan]):
                assert np.array_equal(mine, theirs, equal_nan=True)
        assert store.load_pyramid(("other",) + key[1:]) is None

    def test_corrupt_pair_loads_as_miss(self, points, regions, tmp_path):
        from repro.store import ArtifactStore

        grid = GridIndex(regions, resolution=GRID)
        pyramid = AggregatePyramid.build(points, grid)
        pyramid.ensure_channel("count", None, points)
        store = ArtifactStore(tmp_path)
        key = ("fp", "pyramid", GRID, "mbr", (0.0, 0.0, 1.0, 1.0))
        store.save_pyramid(key, pyramid)
        npz = next(tmp_path.glob("*.npz"))
        npz.write_bytes(npz.read_bytes()[:-7])
        assert store.load_pyramid(key) is None
        assert store.load_failures == 1

    def test_warm_restart_through_store(self, points, regions, tmp_path):
        first = QuerySession(store=str(tmp_path))
        eng = engine(first)
        eng.build_pyramid(points, regions)
        warm = eng.execute(points, regions, Sum("fare"))
        assert warm.stats.extra.get("pyramid") == "hit"
        first.checkpoint()
        # A fresh process: new session, same store directory.
        second = QuerySession(store=str(tmp_path))
        eng2 = engine(second)
        restarted = eng2.execute(points, regions, Sum("fare"))
        assert restarted.stats.extra.get("pyramid") == "hit"
        assert second.pyramid_store_hits == 1
        assert np.array_equal(restarted.values, warm.values)

    def test_session_capacity_evicts_lru(self, points, regions, rng):
        session = QuerySession(pyramid_capacity=1)
        eng = engine(session)
        eng.build_pyramid(points, regions)
        other = PointDataset(
            rng.uniform(0.0, 100.0, 500), rng.uniform(0.0, 100.0, 500)
        )
        eng.build_pyramid(other, regions)
        # Capacity 1: the first source's pyramid was evicted.
        assert not eng.pyramid_warmth(points, regions)
        assert eng.pyramid_warmth(other, regions)


class TestBoundaryPixelStat:
    @staticmethod
    def _union_outline_pixels(regions):
        """The true union outline population over the engine's canvas."""
        from repro.graphics.raster_line import outline_pixels
        from repro.types import ExecutionStats

        probe = engine(QuerySession())
        prepared = probe._prepare(
            regions, ExecutionStats(engine="probe", batches=0, passes=0)
        )
        total = 0
        for tile in prepared.tiles:
            mask = np.zeros((tile.height, tile.width), dtype=bool)
            for poly in regions:
                if not poly.bbox.intersects(tile.bbox):
                    continue
                ix, iy = outline_pixels(tile, poly.rings)
                mask[iy, ix] = True
            total += int(mask.sum())
        return total

    def test_boundary_pixels_counted_exactly_once(self, points, regions):
        """Regression: the stat is the union outline population — not
        double-counted by the render branch accumulating onto a value
        another branch already assigned — and identical however the
        mask was obtained (direct render, composed units, cached)."""
        expected = self._union_outline_pixels(regions)
        sessionless = AccurateRasterJoin(
            resolution=RES, grid_resolution=GRID
        ).execute(points, regions)
        assert sessionless.stats.extra["boundary_pixels"] == expected
        session = QuerySession()
        eng = engine(session)
        composed = eng.execute(points, regions)  # per-unit build + compose
        cached = eng.execute(points, regions)    # replayed boundary masks
        assert composed.stats.extra["boundary_pixels"] == expected
        assert cached.stats.extra["boundary_pixels"] == expected
