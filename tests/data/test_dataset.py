"""Unit tests for PointDataset."""

import numpy as np
import pytest

from repro.data.dataset import PointDataset
from repro.errors import SchemaError


def make(n=10):
    return PointDataset(
        np.arange(n, dtype=float),
        np.arange(n, dtype=float) * 2,
        {"a": np.arange(n, dtype=np.float32)},
    )


class TestConstruction:
    def test_length_mismatch(self):
        with pytest.raises(SchemaError):
            PointDataset(np.zeros(3), np.zeros(4))

    def test_attribute_length_mismatch(self):
        with pytest.raises(SchemaError):
            PointDataset(np.zeros(3), np.zeros(3), {"a": np.zeros(4)})

    def test_non_numeric_attribute(self):
        with pytest.raises(SchemaError):
            PointDataset(
                np.zeros(2), np.zeros(2), {"s": np.asarray(["x", "y"])}
            )

    def test_locations_coerced_float64(self):
        ds = PointDataset(np.asarray([1, 2], dtype=np.int32), np.zeros(2))
        assert ds.xs.dtype == np.float64

    def test_2d_rejected(self):
        with pytest.raises(SchemaError):
            PointDataset(np.zeros((2, 2)), np.zeros(4))


class TestColumns:
    def test_xy_access(self):
        ds = make()
        assert ds.column("x") is ds.xs
        assert ds.column("y") is ds.ys

    def test_attribute_access(self):
        assert make().column("a")[3] == 3.0

    def test_unknown_column(self):
        with pytest.raises(SchemaError):
            make().column("missing")

    def test_schema(self):
        schema = make().schema
        assert schema.names == ("x", "y", "a")
        assert schema.row_bytes() == 8 + 8 + 4

    def test_memory_bytes(self):
        ds = make(100)
        assert ds.memory_bytes(("x", "y")) == 1600
        assert ds.memory_bytes() == 1600 + 400


class TestSlicing:
    def test_take_mask_indices(self):
        ds = make()
        sub = ds.take(np.asarray([0, 5, 9]))
        assert sub.xs.tolist() == [0.0, 5.0, 9.0]
        assert sub.column("a").tolist() == [0.0, 5.0, 9.0]

    def test_head(self):
        assert len(make().head(3)) == 3
        assert len(make(5).head(100)) == 5

    def test_batches_cover_once(self):
        ds = make(10)
        batches = list(ds.batches(3))
        assert [len(b) for b in batches] == [3, 3, 3, 1]
        assert np.concatenate([b.xs for b in batches]).tolist() == ds.xs.tolist()

    def test_batches_invalid(self):
        with pytest.raises(SchemaError):
            list(make().batches(0))

    def test_concat(self):
        joined = make(3).concat(make(4))
        assert len(joined) == 7

    def test_concat_schema_mismatch(self):
        other = PointDataset(np.zeros(2), np.zeros(2), {"b": np.zeros(2)})
        with pytest.raises(SchemaError):
            make().concat(other)

    def test_bbox(self):
        box = make(10).bbox
        assert box.xmin == 0.0 and box.xmax == 9.0
