"""Unit tests for the synthetic taxi / twitter / region generators."""

import numpy as np
import pytest

from repro.data.regions import (
    NYC_REGION_EXTENT,
    generate_voronoi_regions,
)
from repro.data.taxi import NYC_EXTENT, generate_taxi
from repro.data.twitter import USA_EXTENT, generate_twitter
from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.polygon import rectangle


class TestTaxi:
    def test_deterministic(self):
        a = generate_taxi(1000, seed=7)
        b = generate_taxi(1000, seed=7)
        assert np.array_equal(a.xs, b.xs)
        assert np.array_equal(a.column("fare"), b.column("fare"))

    def test_within_extent(self):
        ds = generate_taxi(5000, seed=1)
        assert NYC_EXTENT.contains_points(ds.xs, ds.ys).all()

    def test_attributes_present_and_sane(self):
        ds = generate_taxi(5000, seed=1)
        assert set(ds.attributes) == {"hour", "passengers", "distance", "fare", "tip"}
        assert ds.column("hour").min() >= 0 and ds.column("hour").max() <= 23
        assert ds.column("passengers").min() >= 1
        assert ds.column("fare").min() >= 2.5
        assert (ds.column("tip") >= 0).all()

    def test_fare_correlates_with_distance(self):
        ds = generate_taxi(20_000, seed=2)
        corr = np.corrcoef(ds.column("distance"), ds.column("fare"))[0, 1]
        assert corr > 0.8

    def test_spatial_skew(self):
        """Hotspots must be far denser than the uniform background —
        the property §7.1 calls out and the experiments depend on."""
        ds = generate_taxi(50_000, seed=3)
        hotspot = rectangle(0.36 * 45_000, 0.33 * 40_000,
                            0.40 * 45_000, 0.37 * 40_000)
        fraction = hotspot.contains_points(ds.xs, ds.ys).mean()
        uniform_fraction = hotspot.area / NYC_EXTENT.area
        assert fraction > 10 * uniform_fraction

    def test_prefix_is_valid_scaling(self):
        """head(n) must equal generating the same rows (time-ordered)."""
        big = generate_taxi(2000, seed=5)
        assert len(big.head(500)) == 500


class TestTwitter:
    def test_within_extent(self):
        ds = generate_twitter(5000, seed=1)
        assert USA_EXTENT.contains_points(ds.xs, ds.ys).all()

    def test_attributes(self):
        ds = generate_twitter(5000, seed=1)
        assert set(ds.attributes) == {"day", "favorites", "retweets"}
        assert ds.column("day").min() >= 0 and ds.column("day").max() <= 364
        assert (ds.column("favorites") >= 0).all()

    def test_city_skew(self):
        ds = generate_twitter(50_000, seed=2)
        nyc_like = rectangle(0.85 * 4_500_000, 0.59 * 2_800_000,
                             0.91 * 4_500_000, 0.65 * 2_800_000)
        fraction = nyc_like.contains_points(ds.xs, ds.ys).mean()
        uniform = nyc_like.area / USA_EXTENT.area
        assert fraction > 10 * uniform

    def test_heavy_tailed_engagement(self):
        ds = generate_twitter(20_000, seed=3)
        favorites = ds.column("favorites")
        assert np.median(favorites) <= 1
        assert favorites.max() > 10


class TestVoronoiRegions:
    def test_partition_of_extent(self):
        extent = BBox(0, 0, 100, 100)
        regions = generate_voronoi_regions(32, extent, seed=1)
        assert len(regions) == 32
        total = sum(p.area for p in regions)
        assert abs(total - extent.area) < 1e-6 * extent.area

    def test_all_simple(self):
        regions = generate_voronoi_regions(24, BBox(0, 0, 50, 50), seed=2)
        assert all(p.is_simple() for p in regions)

    def test_contains_concave_shapes(self):
        """Merging convex cells must produce some concave regions."""
        regions = generate_voronoi_regions(16, BBox(0, 0, 100, 100), seed=3)

        def is_convex(poly):
            ring = poly.exterior
            n = len(ring)
            signs = set()
            for i in range(n):
                a, b, c = ring[i], ring[(i + 1) % n], ring[(i + 2) % n]
                cross = (b[0] - a[0]) * (c[1] - a[1]) - (b[1] - a[1]) * (c[0] - a[0])
                if cross != 0:
                    signs.add(cross > 0)
            return len(signs) == 1

        assert any(not is_convex(p) for p in regions)

    def test_deterministic(self):
        a = generate_voronoi_regions(8, BBox(0, 0, 10, 10), seed=9)
        b = generate_voronoi_regions(8, BBox(0, 0, 10, 10), seed=9)
        assert all(
            np.array_equal(pa.exterior, pb.exterior) for pa, pb in zip(a, b)
        )

    def test_invalid_count(self):
        with pytest.raises(GeometryError):
            generate_voronoi_regions(0, BBox(0, 0, 10, 10))
