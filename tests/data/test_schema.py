"""Unit tests for schemas."""

import numpy as np
import pytest

from repro.data.schema import ColumnSpec, Schema
from repro.errors import SchemaError


class TestColumnSpec:
    def test_itemsize(self):
        assert ColumnSpec("a", np.float64).itemsize == 8
        assert ColumnSpec("a", np.int32).itemsize == 4

    def test_empty_name(self):
        with pytest.raises(SchemaError):
            ColumnSpec("", np.float64)

    def test_dtype_normalized(self):
        spec = ColumnSpec("a", "f4")
        assert spec.dtype == np.dtype(np.float32)


class TestSchema:
    def make(self):
        return Schema(
            [
                ColumnSpec("x", np.float64),
                ColumnSpec("y", np.float64),
                ColumnSpec("fare", np.float32),
            ]
        )

    def test_duplicate_names(self):
        with pytest.raises(SchemaError):
            Schema([ColumnSpec("a", "f8"), ColumnSpec("a", "f4")])

    def test_lookup(self):
        schema = self.make()
        assert schema["fare"].itemsize == 4
        assert "x" in schema
        assert "missing" not in schema

    def test_unknown_lookup(self):
        with pytest.raises(SchemaError):
            self.make()["missing"]

    def test_row_bytes_subset(self):
        schema = self.make()
        assert schema.row_bytes() == 20
        assert schema.row_bytes(("x", "fare")) == 12

    def test_validate(self):
        schema = self.make()
        arrays = {
            "x": np.zeros(5),
            "y": np.zeros(5),
            "fare": np.zeros(5, dtype=np.float32),
        }
        schema.validate(arrays, 5)
        with pytest.raises(SchemaError):
            schema.validate({"x": np.zeros(5), "y": np.zeros(5)}, 5)
        arrays["fare"] = np.zeros(4, dtype=np.float32)
        with pytest.raises(SchemaError):
            schema.validate(arrays, 5)

    def test_iteration_preserves_order(self):
        assert [c.name for c in self.make()] == ["x", "y", "fare"]
