"""Unit tests for the on-disk column store."""

import json

import numpy as np
import pytest

from repro.data.column_store import ColumnStore
from repro.data.dataset import PointDataset
from repro.errors import StorageError


@pytest.fixture
def dataset(rng):
    n = 1000
    return PointDataset(
        rng.uniform(0, 10, n),
        rng.uniform(0, 10, n),
        {"fare": rng.uniform(1, 30, n).astype(np.float32)},
        name="trips",
    )


class TestWriteRead:
    def test_round_trip(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        assert store.num_rows == 1000
        assert set(store.column_names) == {"x", "y", "fare"}
        back = store.column_mmap("x")
        assert np.array_equal(np.asarray(back), dataset.xs)

    def test_dtype_preserved(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        assert store.column_mmap("fare").dtype == np.float32

    def test_missing_store(self, tmp_path):
        with pytest.raises(StorageError):
            ColumnStore(tmp_path / "nowhere")

    def test_corrupt_manifest(self, tmp_path, dataset):
        root = tmp_path / "s"
        ColumnStore.write(root, dataset)
        (root / "manifest.json").write_text(json.dumps({"bogus": 1}))
        with pytest.raises(StorageError):
            ColumnStore(root)

    def test_missing_column_file(self, tmp_path, dataset):
        root = tmp_path / "s"
        ColumnStore.write(root, dataset)
        (root / "fare.bin").unlink()
        with pytest.raises(StorageError):
            ColumnStore(root)

    def test_unknown_column(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        with pytest.raises(StorageError):
            store.column_mmap("bogus")


class TestScan:
    def test_chunks_cover_all_rows(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        chunks = list(store.scan(rows_per_chunk=300))
        assert [len(c) for c, _ in chunks] == [300, 300, 300, 100]
        rebuilt = np.concatenate([c.xs for c, _ in chunks])
        assert np.array_equal(rebuilt, dataset.xs)

    def test_scan_column_subset_always_has_locations(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        chunk, _ = next(store.scan(100, columns=("fare",)))
        assert len(chunk.xs) == 100
        assert "fare" in chunk.attributes

    def test_scan_limit(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        total = sum(len(c) for c, _ in store.scan(300, limit=650))
        assert total == 650

    def test_read_seconds_reported(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        for _, read_s in store.scan(500):
            assert read_s >= 0.0

    def test_invalid_chunk_size(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        with pytest.raises(StorageError):
            list(store.scan(0))


class TestAppendChunks:
    def test_streamed_equals_bulk(self, tmp_path, dataset):
        bulk = ColumnStore.write(tmp_path / "bulk", dataset)
        streamed = ColumnStore.append_chunks(
            tmp_path / "stream", dataset.batches(250), name="trips"
        )
        assert streamed.num_rows == bulk.num_rows
        assert np.array_equal(
            np.asarray(streamed.column_mmap("fare")),
            np.asarray(bulk.column_mmap("fare")),
        )

    def test_empty_stream_raises(self, tmp_path):
        with pytest.raises(StorageError):
            ColumnStore.append_chunks(tmp_path / "s", iter(()))

    def test_disk_bytes(self, tmp_path, dataset):
        store = ColumnStore.write(tmp_path / "s", dataset)
        assert store.disk_bytes == 1000 * (8 + 8 + 4)
