"""Unit tests for the SQL lexer."""

import pytest

from repro.errors import SqlError
from repro.sql.lexer import Token, tokenize


def kinds(text):
    return [(t.kind, t.value) for t in tokenize(text) if t.kind != "EOF"]


class TestTokenize:
    def test_keywords_case_insensitive(self):
        assert kinds("select FROM Where")[0] == ("KEYWORD", "SELECT")
        assert kinds("select FROM Where")[1] == ("KEYWORD", "FROM")

    def test_identifiers_preserve_case(self):
        assert kinds("taxiTrips")[0] == ("IDENT", "taxiTrips")

    def test_numbers(self):
        assert kinds("42")[0] == ("NUMBER", "42")
        assert kinds("3.14")[0] == ("NUMBER", "3.14")
        assert kinds("1e-3")[0] == ("NUMBER", "1e-3")
        assert kinds("-7")[0] == ("NUMBER", "-7")

    def test_operators(self):
        assert kinds("a >= 1")[1] == ("OP", ">=")
        assert kinds("a <> 1")[1] == ("OP", "!=")
        assert kinds("a != 1")[1] == ("OP", "!=")
        assert kinds("a = 1")[1] == ("OP", "=")

    def test_punctuation(self):
        got = kinds("COUNT(*)")
        assert got == [("KEYWORD", "COUNT"), ("PUNCT", "("), ("PUNCT", "*"),
                       ("PUNCT", ")")]

    def test_qualified_name(self):
        got = kinds("taxi.fare")
        assert got == [("IDENT", "taxi"), ("PUNCT", "."), ("IDENT", "fare")]

    def test_positions_recorded(self):
        tokens = tokenize("SELECT x")
        assert tokens[0].position == 0
        assert tokens[1].position == 7

    def test_eof_sentinel(self):
        assert tokenize("")[-1].kind == "EOF"

    def test_bad_character(self):
        with pytest.raises(SqlError):
            tokenize("SELECT @")

    def test_bad_number(self):
        with pytest.raises(SqlError):
            tokenize("1.2.3")

    def test_whitespace_insensitive(self):
        assert kinds("a   >\n 1") == kinds("a > 1")
