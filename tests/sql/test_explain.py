"""EXPLAIN ANALYZE: parsing, planning, and the three-regime report."""

import numpy as np
import pytest

from repro.errors import SqlError
from repro.sql.explain import ExplainResult
from repro.sql.parser import parse
from repro.sql.planner import QueryPlanner

QUERY = (
    "SELECT COUNT(*) FROM taxi, hoods "
    "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
)


@pytest.fixture
def planner(uniform_points, three_regions):
    p = QueryPlanner()
    p.register_points("taxi", uniform_points)
    p.register_regions("hoods", three_regions)
    return p


class TestParsing:
    def test_prefix_sets_flag(self):
        stmt = parse("EXPLAIN ANALYZE " + QUERY)
        assert stmt.explain_analyze is True

    def test_plain_select_unflagged(self):
        assert parse(QUERY).explain_analyze is False

    def test_explain_without_analyze_rejected(self):
        with pytest.raises(SqlError):
            parse("EXPLAIN " + QUERY)

    def test_str_round_trips_the_prefix(self):
        stmt = parse("EXPLAIN ANALYZE " + QUERY)
        assert str(stmt).startswith("EXPLAIN ANALYZE SELECT")
        assert parse(str(stmt)).explain_analyze is True

    def test_table_swap_keeps_aggregates_and_flag(
        self, uniform_points, three_regions
    ):
        # Regression: _resolve used to rebuild the statement field by
        # field on a FROM-order swap, dropping the SELECT list and the
        # EXPLAIN ANALYZE flag.
        p = QueryPlanner()
        p.register_points("taxi", uniform_points)
        p.register_regions("hoods", three_regions)
        stmt = parse(
            "EXPLAIN ANALYZE SELECT SUM(taxi.fare) FROM hoods, taxi "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        resolved, points, regions = p._resolve(stmt)
        assert resolved.point_table == "taxi"
        assert resolved.explain_analyze is True
        (spec,) = resolved.select_list()
        assert spec.function == "SUM" and spec.column == "fare"


class TestReport:
    def test_cold_then_warm_regimes(self, planner):
        first = planner.execute("EXPLAIN ANALYZE " + QUERY)
        assert isinstance(first, ExplainResult)
        assert first.regime == "cold"
        second = planner.execute("EXPLAIN ANALYZE " + QUERY)
        assert second.regime == "warm"
        # The warm prediction drops the preparation-heavy terms.
        assert second.predicted["prepare"] <= first.predicted["prepare"]

    def test_pyramid_warm_regime_after_prewarm(self, planner):
        planner.prewarm("taxi", "hoods")
        report = planner.execute("EXPLAIN ANALYZE " + QUERY)
        assert report.regime == "pyramid-warm"
        assert "pyramid_blocks" in report.predicted
        assert "point_pass" not in report.predicted
        assert "pyramid-block-merge" in report.text

    def test_values_match_plain_execution(self, planner):
        explained = planner.execute("EXPLAIN ANALYZE " + QUERY)
        plain = planner.execute(QUERY)
        assert np.array_equal(explained.result.values, plain.values)

    def test_text_has_tree_and_prediction_table(self, planner):
        report = planner.execute("EXPLAIN ANALYZE " + QUERY)
        text = str(report)
        assert text.startswith("regime: ")
        assert "query" in text
        header = next(
            line for line in text.splitlines() if line.startswith("term")
        )
        assert "predicted" in header and "measured" in header
        assert "rel_error" in header
        # Every measured term line carries a numeric relative error.
        for term, meas in report.measured.items():
            if meas > 0:
                (line,) = [
                    l for l in text.splitlines() if l.startswith(term)
                ]
                assert "+" in line or "-" in line

    def test_measured_terms_cover_the_span_tree(self, planner):
        report = planner.execute("EXPLAIN ANALYZE " + QUERY)
        assert report.root.name in ("query", "explain")
        assert "prepare" in report.measured
        for seconds in report.measured.values():
            assert seconds >= 0.0

    def test_bounded_within_path(self, planner):
        report = planner.execute(
            "EXPLAIN ANALYZE SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry WITHIN 2.0 "
            "GROUP BY hoods.id"
        )
        assert isinstance(report, ExplainResult)
        assert report.regime in ("cold", "warm")
        assert {"prepare", "point_pass", "polygon_pass"} <= set(
            report.predicted
        )
