"""Tests for multi-aggregate SELECT lists in the SQL frontend (§8)."""

import numpy as np
import pytest

from repro.core.multi import MultiAggregate
from repro.errors import SqlError
from repro.sql.parser import parse
from repro.sql.planner import QueryPlanner
from tests.conftest import brute_force_counts, brute_force_sums

MULTI = (
    "SELECT COUNT(*), SUM(taxi.fare), AVG(taxi.fare) FROM taxi, hoods "
    "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
)


@pytest.fixture
def planner(uniform_points, three_regions):
    p = QueryPlanner()
    p.register_points("taxi", uniform_points)
    p.register_regions("hoods", three_regions)
    return p


class TestParsing:
    def test_select_list_parsed(self):
        stmt = parse(MULTI)
        assert len(stmt.select_list()) == 3
        assert stmt.select_list()[0].function == "COUNT"
        assert stmt.select_list()[2].function == "AVG"
        assert stmt.aggregate.function == "COUNT"  # primary = first

    def test_single_aggregate_unchanged(self):
        stmt = parse(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert len(stmt.select_list()) == 1

    def test_str_round_trips(self):
        stmt = parse(MULTI)
        reparsed = parse(str(stmt))
        assert len(reparsed.select_list()) == 3

    def test_trailing_comma_rejected(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT(*), FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )


class TestPlanning:
    def test_lowered_to_multi_aggregate(self, planner):
        _, _, _, aggregate, _ = planner.plan(MULTI)
        assert isinstance(aggregate, MultiAggregate)
        assert aggregate.output_names == ("count", "sum(fare)", "avg(fare)")

    def test_min_in_select_list_rejected(self, planner):
        with pytest.raises(Exception):
            planner.plan(
                "SELECT COUNT(*), MIN(taxi.fare) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )


class TestExecution:
    def test_all_values_exact(self, planner, uniform_points, three_regions):
        counts = brute_force_counts(uniform_points, three_regions)
        sums = brute_force_sums(uniform_points, three_regions, "fare")
        result = planner.execute(MULTI)
        # Primary values = first SELECT item.
        assert np.array_equal(result.values, counts)
        # Remaining items come from the shared channels.
        engine, _, _, aggregate, _ = planner.plan(MULTI)
        everything = aggregate.finalize_all(result.channels)
        assert np.allclose(everything["sum(fare)"], sums, rtol=1e-9)
        assert np.allclose(everything["avg(fare)"], sums / counts, rtol=1e-9)

    def test_one_pass_only(self, planner):
        result = planner.execute(MULTI)
        # One fused query: the channels hold count and sum:fare only.
        assert set(result.channels) == {"count", "sum:fare"}
