"""Unit tests for the SQL parser."""

import pytest

from repro.errors import SqlError
from repro.sql.parser import parse

BASE = (
    "SELECT COUNT(*) FROM taxi, hoods "
    "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
)


class TestValidStatements:
    def test_count_star(self):
        stmt = parse(BASE)
        assert stmt.aggregate.function == "COUNT"
        assert stmt.aggregate.column is None
        assert stmt.point_table == "taxi"
        assert stmt.region_table == "hoods"
        assert stmt.spatial.epsilon is None

    def test_avg_with_column(self):
        stmt = parse(
            "SELECT AVG(taxi.fare) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert stmt.aggregate.function == "AVG"
        assert stmt.aggregate.column == "fare"
        assert stmt.aggregate.table == "taxi"

    def test_unqualified_aggregate_column(self):
        stmt = parse(
            "SELECT SUM(fare) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert stmt.aggregate.column == "fare"
        assert stmt.aggregate.table is None

    def test_filters(self):
        stmt = parse(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry "
            "AND hour >= 7 AND taxi.fare < 50 GROUP BY hoods.id"
        )
        assert len(stmt.conditions) == 2
        assert stmt.conditions[0].column == "hour"
        assert stmt.conditions[1].table == "taxi"
        assert stmt.conditions[1].value == 50.0

    def test_within_bound(self):
        stmt = parse(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry WITHIN 12.5 "
            "GROUP BY hoods.id"
        )
        assert stmt.spatial.epsilon == 12.5

    def test_min_max(self):
        for func in ("MIN", "MAX"):
            stmt = parse(
                f"SELECT {func}(fare) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )
            assert stmt.aggregate.function == func

    def test_str_round_trip_parses(self):
        stmt = parse(BASE)
        assert parse(str(stmt)).point_table == "taxi"


class TestErrors:
    def test_missing_group_by(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry"
            )

    def test_missing_inside(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE hour > 7 GROUP BY hoods.id"
            )

    def test_count_needs_parens(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )

    def test_unqualified_inside_rejected(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE loc INSIDE geometry GROUP BY hoods.id"
            )

    def test_negative_within(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry WITHIN -5 "
                "GROUP BY hoods.id"
            )

    def test_trailing_garbage(self):
        with pytest.raises(SqlError):
            parse(BASE + " LIMIT 5")

    def test_unknown_aggregate(self):
        with pytest.raises(SqlError):
            parse(
                "SELECT MEDIAN(fare) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )

    def test_error_reports_position(self):
        try:
            parse("SELECT COUNT(*) FROM taxi hoods WHERE x GROUP BY y")
        except SqlError as exc:
            assert "position" in str(exc)
        else:
            pytest.fail("expected SqlError")
