"""Unit tests for the SQL planner and catalog."""

import numpy as np
import pytest

from repro import AccurateRasterJoin, BoundedRasterJoin
from repro.errors import SqlError
from repro.sql.planner import QueryPlanner
from tests.conftest import brute_force_counts, brute_force_sums


@pytest.fixture
def planner(uniform_points, three_regions):
    p = QueryPlanner()
    p.register_points("taxi", uniform_points)
    p.register_regions("hoods", three_regions)
    return p


class TestCatalog:
    def test_name_collision(self, planner, uniform_points, three_regions):
        with pytest.raises(SqlError):
            planner.register_regions("taxi", three_regions)
        with pytest.raises(SqlError):
            planner.register_points("hoods", uniform_points)

    def test_unknown_tables(self, planner):
        with pytest.raises(SqlError):
            planner.execute(
                "SELECT COUNT(*) FROM nope, hoods "
                "WHERE nope.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )

    def test_from_order_insensitive(self, planner, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = planner.execute(
            "SELECT COUNT(*) FROM hoods, taxi "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert np.array_equal(result.values, exact)


class TestLowering:
    def test_default_engine_accurate(self, planner):
        engine, *_ = planner.plan(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert isinstance(engine, AccurateRasterJoin)

    def test_within_selects_bounded(self, planner):
        engine, *_ = planner.plan(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry WITHIN 2.0 "
            "GROUP BY hoods.id"
        )
        assert isinstance(engine, BoundedRasterJoin)
        assert engine.epsilon == 2.0

    def test_unknown_aggregate_column(self, planner):
        with pytest.raises(Exception):
            planner.execute(
                "SELECT SUM(bogus) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )

    def test_aggregate_from_region_table_rejected(self, planner):
        with pytest.raises(SqlError):
            planner.plan(
                "SELECT SUM(hoods.fare) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
            )

    def test_group_by_validated(self, planner):
        with pytest.raises(SqlError):
            planner.plan(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY taxi.id"
            )
        with pytest.raises(SqlError):
            planner.plan(
                "SELECT COUNT(*) FROM taxi, hoods "
                "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.shape"
            )


class TestExecution:
    def test_count_matches_brute_force(
        self, planner, uniform_points, three_regions
    ):
        exact = brute_force_counts(uniform_points, three_regions)
        result = planner.execute(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
        )
        assert np.array_equal(result.values, exact)

    def test_filtered_sum(self, planner, uniform_points, three_regions):
        mask = uniform_points.column("hour") >= 12
        subset = uniform_points.take(np.flatnonzero(mask))
        exact = brute_force_sums(subset, three_regions, "fare")
        result = planner.execute(
            "SELECT SUM(taxi.fare) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry AND hour >= 12 "
            "GROUP BY hoods.id"
        )
        assert np.allclose(result.values, exact, rtol=1e-9)

    def test_bounded_within_close(self, planner, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        result = planner.execute(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry WITHIN 0.2 "
            "GROUP BY hoods.id"
        )
        rel = np.abs(result.values - exact) / exact
        assert rel.max() < 0.02


class TestSharedBackend:
    """Every engine a planner lowers shares one backend instance, so the
    persistent worker pool survives across statements instead of being
    respawned (and leaked) per query."""

    QUERY = (
        "SELECT COUNT(*) FROM taxi, hoods "
        "WHERE taxi.loc INSIDE hoods.geometry GROUP BY hoods.id"
    )

    def _parallel_planner(self, uniform_points, three_regions):
        from repro import EngineConfig, GPUDevice

        p = QueryPlanner(
            device=GPUDevice(max_resolution=48),
            config=EngineConfig(backend="thread", workers=2),
        )
        p.register_points("taxi", uniform_points)
        p.register_regions("hoods", three_regions)
        return p

    def test_lowered_engines_share_one_backend(
        self, uniform_points, three_regions
    ):
        planner = self._parallel_planner(uniform_points, three_regions)
        try:
            one, *_ = planner.plan(self.QUERY)
            two, *_ = planner.plan(self.QUERY)
            assert one.backend is two.backend
        finally:
            planner.close()

    def test_second_statement_reuses_the_pool(
        self, uniform_points, three_regions
    ):
        planner = self._parallel_planner(uniform_points, three_regions)
        try:
            first = planner.execute(self.QUERY)
            assert first.stats.extra["pool"] == "created"
            second = planner.execute(self.QUERY)
            assert second.stats.extra["pool"] == "reused"
            assert np.array_equal(first.values, second.values)
        finally:
            planner.close()

    def test_planner_context_manager_closes_pool(
        self, uniform_points, three_regions
    ):
        with self._parallel_planner(uniform_points, three_regions) as planner:
            planner.execute(self.QUERY)
            assert planner.config.backend._pool is not None
        assert planner.config.backend._pool is None
