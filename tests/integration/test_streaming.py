"""Integration tests for streamed (disk-resident style) execution."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Filter,
    GPUDevice,
    IndexJoin,
    Sum,
)
from repro.errors import QueryError
from tests.conftest import brute_force_counts


def chunk_source_of(points, rows):
    def chunks():
        return points.batches(rows)

    return chunks


class TestStreamedEqualsMonolithic:
    def test_bounded_shared_polygon_pass(self, uniform_points, three_regions):
        whole = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions
        )
        streamed = BoundedRasterJoin(resolution=512).execute_stream(
            chunk_source_of(uniform_points, 3_000), three_regions
        )
        assert np.array_equal(streamed.values, whole.values)
        # The polygon pass ran once, not once per chunk.
        assert streamed.stats.passes == whole.stats.passes

    def test_bounded_streamed_with_tiling(self, uniform_points, three_regions):
        whole = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions
        )
        streamed = BoundedRasterJoin(
            resolution=512, device=GPUDevice(max_resolution=150)
        ).execute_stream(
            chunk_source_of(uniform_points, 5_000), three_regions
        )
        assert streamed.stats.extra["tiles"] > 1
        assert np.array_equal(streamed.values, whole.values)

    def test_bounded_streamed_filters_and_attributes(
        self, uniform_points, three_regions
    ):
        filters = [Filter("hour", ">=", 12)]
        whole = BoundedRasterJoin(resolution=512).execute(
            uniform_points, three_regions,
            aggregate=Sum("fare"), filters=filters,
        )
        streamed = BoundedRasterJoin(resolution=512).execute_stream(
            chunk_source_of(uniform_points, 4_000), three_regions,
            aggregate=Sum("fare"), filters=filters,
        )
        assert np.allclose(streamed.values, whole.values, rtol=1e-6)

    def test_generic_stream_index_join_exact(
        self, uniform_points, three_regions
    ):
        exact = brute_force_counts(uniform_points, three_regions)
        streamed = IndexJoin(mode="gpu").execute_stream(
            chunk_source_of(uniform_points, 3_000), three_regions
        )
        assert np.array_equal(streamed.values, exact)

    def test_generic_stream_accurate_exact(self, uniform_points, three_regions):
        exact = brute_force_counts(uniform_points, three_regions)
        streamed = AccurateRasterJoin(resolution=256).execute_stream(
            chunk_source_of(uniform_points, 7_000), three_regions
        )
        assert np.array_equal(streamed.values, exact)

    def test_generic_stream_average(self, uniform_points, three_regions):
        """Algebraic aggregates merge correctly across chunks because the
        *channels* (sum, count) are combined, not the finalized values."""
        whole = AccurateRasterJoin(resolution=256).execute(
            uniform_points, three_regions, aggregate=Average("fare")
        )
        streamed = AccurateRasterJoin(resolution=256).execute_stream(
            chunk_source_of(uniform_points, 3_000), three_regions,
            aggregate=Average("fare"),
        )
        assert np.allclose(streamed.values, whole.values, rtol=1e-9)

    def test_empty_source_raises(self, three_regions):
        with pytest.raises(QueryError):
            BoundedRasterJoin(resolution=128).execute_stream(
                lambda: iter(()), three_regions
            )
        with pytest.raises(QueryError):
            IndexJoin(mode="gpu").execute_stream(
                lambda: iter(()), three_regions
            )

    def test_chunk_size_invariance(self, uniform_points, three_regions):
        results = [
            BoundedRasterJoin(resolution=256).execute_stream(
                chunk_source_of(uniform_points, rows), three_regions
            ).values
            for rows in (1_000, 20_000)
        ]
        assert np.array_equal(results[0], results[1])
