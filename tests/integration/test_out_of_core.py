"""Integration tests for out-of-core and disk-resident execution."""

import numpy as np
import pytest

from repro import AccurateRasterJoin, BoundedRasterJoin, GPUDevice, IndexJoin
from repro.data import ColumnStore, generate_taxi, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT
from tests.conftest import brute_force_counts


@pytest.fixture(scope="module")
def taxi():
    return generate_taxi(30_000, seed=21)


@pytest.fixture(scope="module")
def hoods():
    return generate_voronoi_regions(16, NYC_REGION_EXTENT, seed=21)


class TestBatchInvariance:
    """Result must not depend on how the points were batched."""

    def test_bounded_any_capacity(self, taxi, hoods):
        reference = BoundedRasterJoin(resolution=256).execute(taxi, hoods)
        for capacity in (350_000, 500_000, 900_000):
            device = GPUDevice(capacity_bytes=capacity, max_resolution=256)
            result = BoundedRasterJoin(resolution=256, device=device).execute(
                taxi, hoods
            )
            assert np.array_equal(result.values, reference.values), capacity

    def test_accurate_any_capacity(self, taxi, hoods):
        exact = brute_force_counts(taxi, hoods)
        for capacity in (800_000, 1_500_000):
            device = GPUDevice(capacity_bytes=capacity, max_resolution=256)
            result = AccurateRasterJoin(resolution=256, device=device).execute(
                taxi, hoods
            )
            assert np.array_equal(result.values, exact), capacity

    def test_index_join_any_capacity(self, taxi, hoods):
        exact = brute_force_counts(taxi, hoods)
        device = GPUDevice(capacity_bytes=250_000)
        result = IndexJoin(mode="gpu", device=device).execute(taxi, hoods)
        assert result.stats.batches > 1
        assert np.array_equal(result.values, exact)

    def test_transfer_time_grows_with_batches(self, taxi, hoods):
        lean = GPUDevice(capacity_bytes=4_000_000, max_resolution=128)
        tight = GPUDevice(capacity_bytes=350_000, max_resolution=128)
        fast = BoundedRasterJoin(resolution=128, device=lean).execute(taxi, hoods)
        slow = BoundedRasterJoin(resolution=128, device=tight).execute(taxi, hoods)
        assert slow.stats.batches > fast.stats.batches
        assert slow.stats.bytes_transferred == fast.stats.bytes_transferred


class TestDiskResident:
    def test_store_scan_join_equals_in_memory(self, tmp_path, taxi, hoods):
        """The Figure 13 pipeline: scan chunks from disk, join per chunk,
        merge — must equal the all-in-memory result exactly."""
        store = ColumnStore.write(tmp_path / "taxi", taxi)
        engine = AccurateRasterJoin(resolution=256)
        merged = None
        io_total = 0.0
        for chunk, read_s in store.scan(rows_per_chunk=7_000):
            partial = engine.execute(chunk, hoods)
            merged = (
                partial.values if merged is None else merged + partial.values
            )
            io_total += read_s
        exact = brute_force_counts(taxi, hoods)
        assert np.array_equal(merged, exact)
        assert io_total >= 0.0

    def test_chunk_size_invariance(self, tmp_path, taxi, hoods):
        store = ColumnStore.write(tmp_path / "taxi", taxi)
        results = []
        for rows in (5_000, 12_000):
            total = np.zeros(len(hoods))
            for chunk, _ in store.scan(rows_per_chunk=rows):
                total += BoundedRasterJoin(resolution=128).execute(
                    chunk, hoods
                ).values
            results.append(total)
        assert np.array_equal(results[0], results[1])
