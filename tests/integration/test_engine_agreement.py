"""Cross-engine integration tests on realistic synthetic workloads.

Every exact engine must agree bit-for-bit; the bounded engine must approach
them as resolution grows.  These tests run the full taxi-over-neighborhoods
pipeline end to end, which is the paper's headline experiment in miniature.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Count,
    Filter,
    IndexJoin,
    MaterializingJoin,
    Sum,
)
from repro.data import generate_taxi, generate_voronoi_regions
from repro.geometry.bbox import BBox
from tests.conftest import brute_force_counts


@pytest.fixture(scope="module")
def taxi():
    return generate_taxi(40_000, seed=11)


@pytest.fixture(scope="module")
def hoods():
    from repro.data.regions import NYC_REGION_EXTENT

    return generate_voronoi_regions(24, NYC_REGION_EXTENT, seed=11)


@pytest.fixture(scope="module")
def exact_counts(taxi, hoods):
    return brute_force_counts(taxi, hoods)


EXACT_ENGINES = [
    AccurateRasterJoin(resolution=512),
    IndexJoin(mode="gpu", grid_resolution=256),
    MaterializingJoin(truncate_bits=None),
]


class TestExactEnginesAgree:
    @pytest.mark.parametrize("engine", EXACT_ENGINES, ids=lambda e: e.name)
    def test_counts(self, engine, taxi, hoods, exact_counts):
        result = engine.execute(taxi, hoods)
        assert np.array_equal(result.values, exact_counts)

    def test_sum_agreement(self, taxi, hoods):
        results = [
            engine.execute(taxi, hoods, aggregate=Sum("fare")).values
            for engine in EXACT_ENGINES
        ]
        for other in results[1:]:
            assert np.allclose(results[0], other, rtol=1e-9)

    def test_filtered_agreement(self, taxi, hoods):
        filters = [Filter("hour", ">=", 17), Filter("passengers", "<=", 2)]
        results = [
            engine.execute(taxi, hoods, filters=filters).values
            for engine in EXACT_ENGINES
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_cpu_modes_agree_with_gpu(self, taxi, hoods, exact_counts):
        small = taxi.head(3000)
        expected = brute_force_counts(small, hoods)
        for mode in ("cpu", "multicore"):
            result = IndexJoin(mode=mode, grid_resolution=128, workers=2).execute(
                small, hoods
            )
            assert np.array_equal(result.values, expected)


class TestBoundedConvergence:
    def test_monotone_error_decay(self, taxi, hoods, exact_counts):
        """Median relative error decreases as epsilon shrinks (Fig 12b)."""
        nonzero = exact_counts > 0
        medians = []
        for eps in (2000.0, 500.0, 125.0):
            approx = BoundedRasterJoin(epsilon=eps).execute(taxi, hoods)
            rel = (
                np.abs(approx.values[nonzero] - exact_counts[nonzero])
                / exact_counts[nonzero]
            )
            medians.append(float(np.median(rel)))
        assert medians[0] >= medians[1] >= medians[2]

    def test_default_epsilon_error_small(self, taxi, hoods, exact_counts):
        """At the paper's default 10 m bound on NYC-scale data, the median
        error is a fraction of a percent (paper reports ~0.15%)."""
        approx = BoundedRasterJoin(epsilon=10.0).execute(taxi, hoods)
        nonzero = exact_counts > 0
        rel = (
            np.abs(approx.values[nonzero] - exact_counts[nonzero])
            / exact_counts[nonzero]
        )
        assert np.median(rel) < 0.01

    def test_average_aggregate_close(self, taxi, hoods):
        accurate = AccurateRasterJoin(resolution=512).execute(
            taxi, hoods, aggregate=Average("fare")
        )
        bounded = BoundedRasterJoin(epsilon=50.0).execute(
            taxi, hoods, aggregate=Average("fare")
        )
        both = np.isfinite(accurate.values) & np.isfinite(bounded.values)
        assert np.abs(accurate.values[both] - bounded.values[both]).max() < 0.5


class TestVisualizationQuality:
    def test_jnd_indistinguishable_at_20m(self, taxi, hoods, exact_counts):
        """The Figure 6 claim: at epsilon = 20 m the approximate heat map
        is perceptually identical to the accurate one."""
        from repro.viz import jnd_report

        approx = BoundedRasterJoin(epsilon=20.0).execute(taxi, hoods)
        report = jnd_report(approx.values, exact_counts)
        assert report.indistinguishable
        assert report.max_difference < 0.01
