"""Cross-engine integration tests on realistic synthetic workloads.

Every exact engine must agree bit-for-bit; the bounded engine must approach
them as resolution grows.  These tests run the full taxi-over-neighborhoods
pipeline end to end, which is the paper's headline experiment in miniature.

``TestExecutionMatrix`` additionally sweeps the full execution matrix —
(engine × backend × streamed/monolithic × warm/cold QuerySession) — and
requires every cell to be bit-identical to the serial, cold, monolithic
reference on a multi-tile canvas.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    BoundedRasterJoin,
    Count,
    EngineConfig,
    Filter,
    GPUDevice,
    IndexJoin,
    MaterializingJoin,
    PointDataset,
    QuerySession,
    Sum,
)
from repro.data import generate_taxi, generate_voronoi_regions
from repro.geometry.bbox import BBox
from tests.conftest import brute_force_counts, brute_force_sums


@pytest.fixture(scope="module")
def taxi():
    return generate_taxi(40_000, seed=11)


@pytest.fixture(scope="module")
def hoods():
    from repro.data.regions import NYC_REGION_EXTENT

    return generate_voronoi_regions(24, NYC_REGION_EXTENT, seed=11)


@pytest.fixture(scope="module")
def exact_counts(taxi, hoods):
    return brute_force_counts(taxi, hoods)


EXACT_ENGINES = [
    AccurateRasterJoin(resolution=512),
    IndexJoin(mode="gpu", grid_resolution=256),
    MaterializingJoin(truncate_bits=None),
]


class TestExactEnginesAgree:
    @pytest.mark.parametrize("engine", EXACT_ENGINES, ids=lambda e: e.name)
    def test_counts(self, engine, taxi, hoods, exact_counts):
        result = engine.execute(taxi, hoods)
        assert np.array_equal(result.values, exact_counts)

    def test_sum_agreement(self, taxi, hoods):
        results = [
            engine.execute(taxi, hoods, aggregate=Sum("fare")).values
            for engine in EXACT_ENGINES
        ]
        for other in results[1:]:
            assert np.allclose(results[0], other, rtol=1e-9)

    def test_filtered_agreement(self, taxi, hoods):
        filters = [Filter("hour", ">=", 17), Filter("passengers", "<=", 2)]
        results = [
            engine.execute(taxi, hoods, filters=filters).values
            for engine in EXACT_ENGINES
        ]
        for other in results[1:]:
            assert np.array_equal(results[0], other)

    def test_cpu_modes_agree_with_gpu(self, taxi, hoods, exact_counts):
        small = taxi.head(3000)
        expected = brute_force_counts(small, hoods)
        for mode in ("cpu", "multicore"):
            result = IndexJoin(mode=mode, grid_resolution=128, workers=2).execute(
                small, hoods
            )
            assert np.array_equal(result.values, expected)


class TestBoundedConvergence:
    def test_monotone_error_decay(self, taxi, hoods, exact_counts):
        """Median relative error decreases as epsilon shrinks (Fig 12b)."""
        nonzero = exact_counts > 0
        medians = []
        for eps in (2000.0, 500.0, 125.0):
            approx = BoundedRasterJoin(epsilon=eps).execute(taxi, hoods)
            rel = (
                np.abs(approx.values[nonzero] - exact_counts[nonzero])
                / exact_counts[nonzero]
            )
            medians.append(float(np.median(rel)))
        assert medians[0] >= medians[1] >= medians[2]

    def test_default_epsilon_error_small(self, taxi, hoods, exact_counts):
        """At the paper's default 10 m bound on NYC-scale data, the median
        error is a fraction of a percent (paper reports ~0.15%)."""
        approx = BoundedRasterJoin(epsilon=10.0).execute(taxi, hoods)
        nonzero = exact_counts > 0
        rel = (
            np.abs(approx.values[nonzero] - exact_counts[nonzero])
            / exact_counts[nonzero]
        )
        assert np.median(rel) < 0.01

    def test_average_aggregate_close(self, taxi, hoods):
        accurate = AccurateRasterJoin(resolution=512).execute(
            taxi, hoods, aggregate=Average("fare")
        )
        bounded = BoundedRasterJoin(epsilon=50.0).execute(
            taxi, hoods, aggregate=Average("fare")
        )
        both = np.isfinite(accurate.values) & np.isfinite(bounded.values)
        assert np.abs(accurate.values[both] - bounded.values[both]).max() < 0.5


#: The execution matrix dimensions (satellite of the parallel-backend PR).
MATRIX_ENGINES = ("accurate", "bounded")
MATRIX_BACKENDS = ("serial", "thread", "process")

#: A framebuffer limit below the render resolution forces a multi-tile
#: canvas, so the backend dimension exercises real tile fan-out.
MATRIX_RESOLUTION = 256
MATRIX_MAX_FBO = 128


def _matrix_engine(kind: str, backend: str, session: QuerySession | None):
    config = EngineConfig(backend=backend, workers=3)
    device = GPUDevice(max_resolution=MATRIX_MAX_FBO)
    if kind == "accurate":
        return AccurateRasterJoin(
            resolution=MATRIX_RESOLUTION, device=device,
            grid_resolution=256, session=session, config=config,
        )
    return BoundedRasterJoin(
        resolution=MATRIX_RESOLUTION, device=device, session=session,
        config=config,
    )


class TestExecutionMatrix:
    """Every (engine × backend × streamed × warm) cell is bit-identical
    to the serial / cold / monolithic reference of the same engine."""

    @pytest.fixture(scope="class")
    def matrix_points(self, taxi):
        return taxi.head(6_000)

    @pytest.fixture(scope="class")
    def matrix_chunks(self, matrix_points):
        def chunk_source():
            n = len(matrix_points)
            step = -(-n // 3)
            fares = matrix_points.column("fare")
            for start in range(0, n, step):
                end = min(start + step, n)
                yield PointDataset(
                    matrix_points.xs[start:end],
                    matrix_points.ys[start:end],
                    {"fare": fares[start:end]},
                )
        return chunk_source

    @pytest.fixture(scope="class")
    def references(self, matrix_points, matrix_chunks, hoods):
        """Serial cold result per (engine kind, ingestion mode).

        Monolithic and streamed ingestion fold boundary-path partial
        sums in different chunkings (a pre-existing last-ulp effect of
        pairwise summation), so bit-equality is defined per mode; the
        backend, worker count, and session warmth must never change a
        bit within one.
        """
        out = {}
        for kind in MATRIX_ENGINES:
            monolithic = _matrix_engine(kind, "serial", None).execute(
                matrix_points, hoods, aggregate=Sum("fare")
            )
            # The matrix only means something on a multi-tile canvas.
            assert monolithic.stats.extra["tiles"] > 1
            out[(kind, False)] = monolithic
            out[(kind, True)] = _matrix_engine(
                kind, "serial", None
            ).execute_stream(matrix_chunks, hoods, aggregate=Sum("fare"))
            assert np.allclose(out[(kind, False)].values,
                               out[(kind, True)].values, rtol=1e-9)
        return out

    @pytest.mark.parametrize("warm", [False, True], ids=["cold", "warm"])
    @pytest.mark.parametrize(
        "streamed", [False, True], ids=["monolithic", "streamed"]
    )
    @pytest.mark.parametrize("backend", MATRIX_BACKENDS)
    @pytest.mark.parametrize("kind", MATRIX_ENGINES)
    def test_cell_bit_identical(
        self, kind, backend, streamed, warm, matrix_points, matrix_chunks,
        hoods, references,
    ):
        session = QuerySession() if warm else None
        engine = _matrix_engine(kind, backend, session)
        aggregate = Sum("fare")

        def run():
            if streamed:
                return engine.execute_stream(
                    matrix_chunks, hoods, aggregate=aggregate
                )
            return engine.execute(matrix_points, hoods, aggregate=aggregate)

        if warm:
            run()  # priming run populates the session
            result = run()
            assert result.stats.prepared_hits == 1
        else:
            result = run()

        reference = references[(kind, streamed)]
        assert np.array_equal(result.values, reference.values)
        for name in reference.channels:
            assert np.array_equal(result.channels[name],
                                  reference.channels[name])
        assert result.stats.extra["backend"] == backend
        assert result.stats.extra["tiles"] == reference.stats.extra["tiles"]

    def test_accurate_reference_matches_brute_force(
        self, matrix_points, hoods, references
    ):
        """The anchor: the multi-tile accurate reference is correct, so
        bit-equality with it means every matrix cell is correct."""
        expected = brute_force_sums(matrix_points, hoods, "fare")
        assert np.allclose(references[("accurate", False)].values, expected,
                           rtol=1e-9)


class TestVisualizationQuality:
    def test_jnd_indistinguishable_at_20m(self, taxi, hoods, exact_counts):
        """The Figure 6 claim: at epsilon = 20 m the approximate heat map
        is perceptually identical to the accurate one."""
        from repro.viz import jnd_report

        approx = BoundedRasterJoin(epsilon=20.0).execute(taxi, hoods)
        report = jnd_report(approx.values, exact_counts)
        assert report.indistinguishable
        assert report.max_difference < 0.01
