"""End-to-end scenarios exercising the full public API surface."""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    BoundedRasterJoin,
    Count,
    Filter,
    GPUDevice,
    RasterJoinOptimizer,
    Sum,
)
from repro.data import generate_taxi, generate_twitter, generate_voronoi_regions
from repro.data.regions import NYC_REGION_EXTENT, USA_REGION_EXTENT
from repro.sql import QueryPlanner
from tests.conftest import brute_force_counts


class TestUrbaneScenario:
    """The paper's motivating application: interactive heat maps with
    dynamically changing filters (Figure 1)."""

    @pytest.fixture(scope="class")
    def setup(self):
        taxi = generate_taxi(30_000, seed=31)
        hoods = generate_voronoi_regions(20, NYC_REGION_EXTENT, seed=31)
        return taxi, hoods

    def test_interactive_filter_changes(self, setup):
        taxi, hoods = setup
        engine = BoundedRasterJoin(epsilon=20.0)
        morning = engine.execute(
            taxi, hoods, filters=[Filter("hour", ">=", 7), Filter("hour", "<=", 9)]
        )
        evening = engine.execute(
            taxi, hoods, filters=[Filter("hour", ">=", 17), Filter("hour", "<=", 19)]
        )
        assert morning.values.sum() > 0
        assert evening.values.sum() > 0
        assert not np.array_equal(morning.values, evening.values)

    def test_changing_aggregation(self, setup):
        taxi, hoods = setup
        engine = AccurateRasterJoin(resolution=512)
        counts = engine.execute(taxi, hoods, aggregate=Count())
        fares = engine.execute(taxi, hoods, aggregate=Sum("fare"))
        # Regions with zero trips must have zero fares.
        empty = counts.values == 0
        assert np.all(fares.values[empty] == 0)

    def test_rezoning_polygons_changed_between_queries(self, setup):
        """Urban planning scenario: polygons change, no precomputation can
        be reused — the engines must handle fresh polygons cheaply."""
        taxi, _ = setup
        engine = BoundedRasterJoin(epsilon=50.0)
        for seed in (1, 2, 3):
            zones = generate_voronoi_regions(12, NYC_REGION_EXTENT, seed=seed)
            result = engine.execute(taxi, zones)
            assert len(result.values) == 12
            assert result.values.sum() > 0


class TestTwitterCountiesScenario:
    def test_continental_scale_epsilon(self):
        """County-scale analysis with the paper's 1 km bound."""
        tweets = generate_twitter(25_000, seed=41)
        counties = generate_voronoi_regions(40, USA_REGION_EXTENT, seed=41)
        exact = brute_force_counts(tweets, counties)
        approx = BoundedRasterJoin(epsilon=1000.0).execute(tweets, counties)
        nonzero = exact > 10
        rel = np.abs(approx.values[nonzero] - exact[nonzero]) / exact[nonzero]
        assert np.median(rel) < 0.05


class TestSqlRoundTrip:
    def test_full_stack(self):
        taxi = generate_taxi(15_000, seed=51)
        hoods = generate_voronoi_regions(10, NYC_REGION_EXTENT, seed=51)
        planner = QueryPlanner(device=GPUDevice())
        planner.register_points("taxi", taxi)
        planner.register_regions("hoods", hoods)
        result = planner.execute(
            "SELECT COUNT(*) FROM taxi, hoods "
            "WHERE taxi.loc INSIDE hoods.geometry AND hour >= 7 "
            "GROUP BY hoods.id"
        )
        mask = taxi.column("hour") >= 7
        subset = taxi.take(np.flatnonzero(mask))
        exact = brute_force_counts(subset, hoods)
        assert np.array_equal(result.values, exact)


class TestOptimizerScenario:
    def test_lod_exploration(self):
        """Level-of-detail: coarse first, then zoom with tighter bounds;
        the optimizer should flip engines across the sweep."""
        taxi = generate_taxi(10_000, seed=61)
        hoods = generate_voronoi_regions(8, NYC_REGION_EXTENT, seed=61)
        optimizer = RasterJoinOptimizer()
        chosen = {
            eps: type(optimizer.choose(taxi, hoods, eps)).__name__
            for eps in (500.0, 0.05)
        }
        assert chosen[500.0] == "BoundedRasterJoin"
        assert chosen[0.05] == "AccurateRasterJoin"
