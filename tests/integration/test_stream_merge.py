"""Multi-chunk merge semantics for Average, Min, and Max.

Two merge paths exist: the generic per-chunk merge in
``SpatialAggregationEngine.execute_stream`` (used by the index joins,
which combine per-chunk *channels* — sums and counts for the algebraic
Average — rather than finalized values) and the accurate engine's
tile-shared override (which accumulates every chunk into one tile FBO and
runs the polygon pass once).  Both must agree with single-shot ``execute``
bit-for-bit.

The additive channels use dyadic attribute values (multiples of 0.25 with
small magnitude), so every partial sum is exactly representable and
bit-equality is well-defined regardless of how chunks group the additions.
Min/max are idempotent and order-insensitive, so they get arbitrary float
values.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    Average,
    GPUDevice,
    IndexJoin,
    Max,
    Min,
    PointDataset,
)


@pytest.fixture
def dyadic_points(rng):
    """20k uniform points with an exactly-representable attribute."""
    n = 20_000
    return PointDataset(
        rng.uniform(0.0, 100.0, n),
        rng.uniform(0.0, 100.0, n),
        {
            "fare": rng.integers(4, 120, n).astype(np.float64) * 0.25,
            "noise": rng.uniform(-1e3, 1e3, n),
        },
    )


def chunks_of(points, rows):
    return lambda: points.batches(rows)


def assert_bit_equal(streamed, whole):
    assert np.array_equal(streamed.values, whole.values, equal_nan=True)
    assert set(streamed.channels) == set(whole.channels)
    for name, values in whole.channels.items():
        assert np.array_equal(streamed.channels[name], values, equal_nan=True)


class TestGenericPerChunkMerge:
    """engine.py's execute_stream: per-chunk execute + channel combine."""

    def test_average(self, dyadic_points, three_regions):
        engine = IndexJoin(mode="gpu")
        whole = engine.execute(dyadic_points, three_regions, Average("fare"))
        streamed = engine.execute_stream(
            chunks_of(dyadic_points, 3_000), three_regions, Average("fare")
        )
        assert streamed.stats.batches >= 7
        assert_bit_equal(streamed, whole)

    @pytest.mark.parametrize("agg_cls", [Min, Max])
    def test_order_statistics(self, dyadic_points, three_regions, agg_cls):
        engine = IndexJoin(mode="gpu")
        whole = engine.execute(dyadic_points, three_regions, agg_cls("noise"))
        streamed = engine.execute_stream(
            chunks_of(dyadic_points, 2_500), three_regions, agg_cls("noise")
        )
        assert_bit_equal(streamed, whole)

    def test_average_chunk_size_invariance(self, dyadic_points, three_regions):
        engine = IndexJoin(mode="gpu")
        results = [
            engine.execute_stream(
                chunks_of(dyadic_points, rows), three_regions, Average("fare")
            )
            for rows in (1_000, 7_000, 20_000)
        ]
        for other in results[1:]:
            assert_bit_equal(other, results[0])


class TestAccurateTileSharedMerge:
    """accurate.py's override: shared FBO + one polygon pass per tile."""

    def test_average(self, dyadic_points, three_regions):
        engine = AccurateRasterJoin(resolution=256)
        whole = engine.execute(dyadic_points, three_regions, Average("fare"))
        streamed = engine.execute_stream(
            chunks_of(dyadic_points, 3_000), three_regions, Average("fare")
        )
        assert_bit_equal(streamed, whole)

    @pytest.mark.parametrize("agg_cls", [Min, Max])
    def test_order_statistics(self, dyadic_points, three_regions, agg_cls):
        engine = AccurateRasterJoin(resolution=256)
        whole = engine.execute(dyadic_points, three_regions, agg_cls("noise"))
        streamed = engine.execute_stream(
            chunks_of(dyadic_points, 2_500), three_regions, agg_cls("noise")
        )
        assert_bit_equal(streamed, whole)

    @pytest.mark.parametrize("agg_cls", [Average, Min, Max])
    def test_with_tiling(self, dyadic_points, three_regions, agg_cls):
        """Multi-tile streamed execution still matches single-shot."""
        column = "fare" if agg_cls is Average else "noise"
        whole = AccurateRasterJoin(resolution=256).execute(
            dyadic_points, three_regions, agg_cls(column)
        )
        streamed = AccurateRasterJoin(
            resolution=256, device=GPUDevice(max_resolution=100)
        ).execute_stream(
            chunks_of(dyadic_points, 4_000), three_regions, agg_cls(column)
        )
        assert streamed.stats.extra["tiles"] > 1
        assert_bit_equal(streamed, whole)
