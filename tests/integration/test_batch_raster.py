"""Integration tests for the batched rasterization pipeline.

The batched layer must be a pure performance change: every engine
result, prepared artifact, and incremental-edit behavior is bit-for-bit
what the scalar per-triangle path produces.
"""

import numpy as np
import pytest

from repro import (
    AccurateRasterJoin,
    ArtifactStore,
    BoundedRasterJoin,
    EngineConfig,
    PointDataset,
    Polygon,
    PolygonSet,
    QuerySession,
    Sum,
)
from tests.conftest import random_star_polygon


@pytest.fixture
def many_regions() -> PolygonSet:
    rng = np.random.default_rng(42)
    return PolygonSet(
        [
            random_star_polygon(
                rng,
                center=(rng.uniform(15, 85), rng.uniform(15, 85)),
                radius_range=(3, 12),
                vertices=int(rng.integers(4, 10)),
            )
            for _ in range(64)
        ]
    )


def _edit_one(regions: PolygonSet, pid: int = 10) -> PolygonSet:
    polys = list(regions)
    ring = polys[pid].exterior.copy()
    center = ring.mean(axis=0)
    ring[0] = ring[0] + (center - ring[0]) * 0.25
    polys[pid] = Polygon(ring, holes=polys[pid].holes)
    out = PolygonSet(polys)
    assert out.bbox == regions.bbox  # frame unchanged -> delta eligible
    return out


class TestEngineEquivalence:
    @pytest.mark.parametrize("resolution", [64, 256])
    def test_accurate_batch_on_off_bit_identical(
        self, uniform_points, many_regions, resolution
    ):
        on = AccurateRasterJoin(
            resolution=resolution, config=EngineConfig(batch_raster=True)
        ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
        off = AccurateRasterJoin(
            resolution=resolution, config=EngineConfig(batch_raster=False)
        ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
        assert np.array_equal(on.values, off.values)

    @pytest.mark.parametrize("resolution", [64, 256])
    def test_bounded_batch_on_off_bit_identical(
        self, uniform_points, many_regions, resolution
    ):
        on = BoundedRasterJoin(
            resolution=resolution, config=EngineConfig(batch_raster=True)
        ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
        off = BoundedRasterJoin(
            resolution=resolution, config=EngineConfig(batch_raster=False)
        ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
        assert np.array_equal(on.values, off.values)

    def test_env_flag_controls_default(self, monkeypatch):
        monkeypatch.setenv("REPRO_BATCH_RASTER", "0")
        assert EngineConfig().batch_raster_enabled() is False
        monkeypatch.setenv("REPRO_BATCH_RASTER", "1")
        assert EngineConfig().batch_raster_enabled() is True
        monkeypatch.delenv("REPRO_BATCH_RASTER")
        assert EngineConfig().batch_raster_enabled() is True  # default on
        assert EngineConfig(batch_raster=False).batch_raster_enabled() is False

    def test_session_artifacts_bit_identical(
        self, uniform_points, many_regions
    ):
        """Units built batched carry the same boundaries/coverage as
        units built by the scalar loops."""
        results = {}
        for flag in (True, False):
            session = QuerySession(store=False)
            AccurateRasterJoin(
                resolution=128,
                grid_resolution=64,
                session=session,
                config=EngineConfig(batch_raster=flag),
            ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
            results[flag] = session._entries[next(iter(session._entries))]
        a, b = results[True], results[False]
        assert set(a.coverage) == set(b.coverage)
        for idx in a.coverage:
            assert len(a.coverage[idx]) == len(b.coverage[idx])
            for (pid_a, pieces_a), (pid_b, pieces_b) in zip(
                a.coverage[idx], b.coverage[idx]
            ):
                assert pid_a == pid_b
                assert len(pieces_a) == len(pieces_b)
                for (iy_a, ix_a), (iy_b, ix_b) in zip(pieces_a, pieces_b):
                    assert np.array_equal(iy_a, iy_b)
                    assert np.array_equal(ix_a, ix_b)
        assert set(a.boundary_masks) == set(b.boundary_masks)
        for idx, mask in a.boundary_masks.items():
            assert np.array_equal(mask, b.boundary_masks[idx])


class TestIncrementalThroughBatch:
    def test_one_of_64_edit_rebuilds_one_polygon(
        self, uniform_points, many_regions
    ):
        """PR 5's per-polygon invalidation survives the batched
        builders: a single edit rebuilds exactly one polygon's slice and
        splices the grid instead of re-composing it."""
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=256,
            grid_resolution=128,
            session=session,
            config=EngineConfig(batch_raster=True),
        )
        engine.execute(uniform_points, many_regions, aggregate=Sum("fare"))
        after = _edit_one(many_regions)
        result = engine.execute(uniform_points, after, aggregate=Sum("fare"))
        assert result.stats.extra["prepared"] == "delta"
        assert result.stats.extra["polygons_rebuilt"] == 1
        assert result.stats.extra.get("grid_spliced") == 1
        fresh = AccurateRasterJoin(
            resolution=256,
            grid_resolution=128,
            config=EngineConfig(batch_raster=False),
        ).execute(uniform_points, after, aggregate=Sum("fare"))
        assert np.array_equal(result.values, fresh.values)

    def test_spliced_grid_matches_recomposed(
        self, uniform_points, many_regions
    ):
        session = QuerySession(store=False)
        engine = AccurateRasterJoin(
            resolution=128,
            grid_resolution=256,
            session=session,
            config=EngineConfig(batch_raster=True),
        )
        engine.execute(uniform_points, many_regions, aggregate=Sum("fare"))
        after = _edit_one(many_regions, pid=33)
        engine.execute(uniform_points, after, aggregate=Sum("fare"))
        from repro.cache import polygon_fingerprint

        new_key = (polygon_fingerprint(after),) + tuple(engine.prepared_spec())
        spliced = session._entries[new_key].grid
        assert spliced is not None
        from repro.index.grid import GridIndex

        fresh = GridIndex(
            list(after),
            resolution=256,
            assignment=spliced.assignment,
            extent=spliced.extent,
        )
        assert np.array_equal(spliced.cell_start, fresh.cell_start)
        assert np.array_equal(spliced.entries, fresh.entries)


class TestStoreRoundTrip:
    def test_batched_built_units_round_trip(
        self, tmp_path, uniform_points, many_regions
    ):
        """Coverage pieces built by the batched pass (np.split views)
        persist and reload bit-identically."""
        store = ArtifactStore(tmp_path / "artifacts")
        session = QuerySession(store=store)
        engine = AccurateRasterJoin(
            resolution=128,
            grid_resolution=64,
            session=session,
            config=EngineConfig(batch_raster=True),
        )
        expected = engine.execute(
            uniform_points, many_regions, aggregate=Sum("fare")
        )
        key = next(iter(session._entries))
        artifact = session._entries[key]
        loaded = store.load(key, many_regions)
        assert loaded is not None
        assert set(loaded.coverage) == set(artifact.coverage)
        for idx, entries in artifact.coverage.items():
            for (pid_a, pieces_a), (pid_b, pieces_b) in zip(
                entries, loaded.coverage[idx]
            ):
                assert pid_a == pid_b
                for (iy_a, ix_a), (iy_b, ix_b) in zip(pieces_a, pieces_b):
                    assert np.array_equal(iy_a, iy_b)
                    assert np.array_equal(ix_a, ix_b)
        # Warm replay from disk is bit-identical.
        other = QuerySession(store=store)
        replay = AccurateRasterJoin(
            resolution=128,
            grid_resolution=64,
            session=other,
            config=EngineConfig(batch_raster=True),
        ).execute(uniform_points, many_regions, aggregate=Sum("fare"))
        assert replay.stats.prepared_store_hits == 1
        assert np.array_equal(replay.values, expected.values)


class TestCalibrationStat:
    def test_polygon_pass_share_measured(self, uniform_points, many_regions):
        result = AccurateRasterJoin(resolution=128).execute(
            uniform_points, many_regions, aggregate=Sum("fare")
        )
        assert 0.0 < result.stats.polygon_pass_s <= result.stats.processing_s
