"""Persistent artifact store: disk-spilled prepared polygon state.

PR 1's :class:`~repro.cache.session.QuerySession` makes repeated queries
warm *within* one process; this package makes them warm *across*
processes.  A :class:`~repro.store.store.ArtifactStore` is a directory
of ``(.npz, .json manifest)`` pairs — one per (geometry fingerprint,
render spec) key — with atomic writes, checksum validation,
corruption-tolerant loads, and an LRU-by-recency disk budget.  Attach
one to a session (or set ``$REPRO_STORE_DIR``) and a restarted server
answers its first repeated query without re-triangulating anything.

Format version 2 persists artifacts per polygon, which enables **patch
journaling**: a single-polygon edit is appended to the lineage's
``.journal`` as a small checksummed record (plus a tiny ``.ref``
manifest) instead of rewriting the whole pair, and replaying the chain
after a restart reproduces the edited artifact bit-identically.

See ``docs/artifact_store.md`` for the format, the eviction tiers, and
the environment knobs, and ``docs/incremental_edits.md`` for the patch
journal.
"""

from repro.store.format import (
    COORD_DTYPE,
    FORMAT_VERSION,
    ArtifactFormatError,
    key_id,
)
from repro.store.store import (
    STORE_BUDGET_ENV_VAR,
    STORE_DIR_ENV_VAR,
    ArtifactStore,
    ArtifactTooLargeError,
    parse_bytes,
)

__all__ = [
    "ArtifactFormatError",
    "ArtifactStore",
    "ArtifactTooLargeError",
    "COORD_DTYPE",
    "FORMAT_VERSION",
    "STORE_BUDGET_ENV_VAR",
    "STORE_DIR_ENV_VAR",
    "key_id",
    "parse_bytes",
]
