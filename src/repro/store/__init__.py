"""Persistent artifact store: disk-spilled prepared polygon state.

PR 1's :class:`~repro.cache.session.QuerySession` makes repeated queries
warm *within* one process; this package makes them warm *across*
processes.  A :class:`~repro.store.store.ArtifactStore` is a directory
of ``(.npz, .json manifest)`` pairs — one per (geometry fingerprint,
render spec) key — with atomic writes, checksum validation,
corruption-tolerant loads, and an LRU-by-recency disk budget.  Attach
one to a session (or set ``$REPRO_STORE_DIR``) and a restarted server
answers its first repeated query without re-triangulating anything.

See ``docs/artifact_store.md`` for the format, the eviction tiers, and
the environment knobs.
"""

from repro.store.format import (
    COORD_DTYPE,
    FORMAT_VERSION,
    ArtifactFormatError,
    key_id,
)
from repro.store.store import (
    STORE_BUDGET_ENV_VAR,
    STORE_DIR_ENV_VAR,
    ArtifactStore,
    ArtifactTooLargeError,
    parse_bytes,
)

__all__ = [
    "ArtifactFormatError",
    "ArtifactStore",
    "ArtifactTooLargeError",
    "COORD_DTYPE",
    "FORMAT_VERSION",
    "STORE_BUDGET_ENV_VAR",
    "STORE_DIR_ENV_VAR",
    "key_id",
    "parse_bytes",
]
