"""Durable artifact store: spill :class:`PreparedPolygons` to disk.

An :class:`ArtifactStore` is a directory of ``(<key_id>.npz,
<key_id>.json)`` pairs, one per (geometry fingerprint, render spec) key.
It is the disk tier behind :class:`~repro.cache.session.QuerySession`:
artifacts demoted out of the in-memory byte budget land here, and a
fresh process pointed at a populated store answers its first repeated
query warm — no re-triangulation, no coverage rebuild.

Durability contract:

* **Atomic writes.**  Both files are written to temporary names and
  committed with :func:`os.replace`; the ``.npz`` is committed before
  the manifest, and loads read the manifest first, so a reader can never
  observe a half-written pair as valid.
* **Checksums.**  The manifest carries a digest of the ``.npz`` bytes;
  any mismatch (torn pair, bit rot, truncation) fails validation.
* **Corruption tolerance.**  Every load failure — missing file, bad
  zip, bad JSON, version or key mismatch, checksum mismatch — returns
  ``None`` instead of raising, so callers fall back to a rebuild.  The
  rebuilt artifact overwrites the bad pair on the next save.
* **Disk budget.**  ``disk_budget`` caps the directory size; beyond it,
  the oldest pairs by mtime are evicted (loads touch mtime, making this
  LRU-by-recency, not merely by write time).

Nothing in this module imports the session — the store is a standalone
subsystem that later scaling work (sharding, multi-process serving) can
drive directly.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.errors import QueryError
from repro.store import format as artifact_format
from repro.store.format import ArtifactFormatError

#: Directory of the shared artifact store; unset or empty disables it.
STORE_DIR_ENV_VAR = "REPRO_STORE_DIR"
#: On-disk size cap in bytes (suffixes K/M/G accepted); unset = unbounded.
STORE_BUDGET_ENV_VAR = "REPRO_STORE_BUDGET"

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


class ArtifactTooLargeError(QueryError):
    """A single artifact exceeds the store's whole disk budget.

    Such a pair is rejected *before* anything is written: admitting it
    would force the budget loop to evict every other artifact and still
    end over cap, wiping the warm-restart store for all other keys.
    Callers (the session) degrade to memory-only for that key.
    """


def parse_bytes(value: int | str | None) -> int | None:
    """Parse a byte budget: plain int, digit string, or ``"512M"`` style."""
    if value is None:
        return None
    if isinstance(value, int):
        budget = value
    else:
        text = str(value).strip().lower()
        if not text:
            return None
        multiplier = 1
        if text[-1] in _SIZE_SUFFIXES:
            multiplier = _SIZE_SUFFIXES[text[-1]]
            text = text[:-1]
        try:
            budget = int(float(text) * multiplier)
        except ValueError:
            raise QueryError(f"unparseable byte budget {value!r}") from None
    if budget < 1:
        raise QueryError(f"byte budget must be >= 1 byte, got {value!r}")
    return budget


class ArtifactStore:
    """A directory of persisted prepared-polygon artifacts.

    Safe to share between sessions, threads, and processes: writes are
    atomic renames and loads are checksum-validated, so concurrent use
    degrades (at worst) to a redundant rebuild, never to a wrong result.
    """

    def __init__(
        self,
        root: str | Path,
        disk_budget: int | str | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_budget = parse_bytes(disk_budget)
        # Counters (per store instance, not per directory).
        self.saves = 0
        self.loads = 0
        self.load_failures = 0
        #: Incremented by callers (the session) that degrade a failed
        #: save to "stay dirty, retry later" instead of raising.
        self.save_failures = 0
        #: Saves refused because one artifact exceeds the whole budget.
        self.rejected_saves = 0
        self.evictions = 0
        self.save_s = 0.0
        self.load_s = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """The store described by ``$REPRO_STORE_DIR`` (None when unset)."""
        root = os.environ.get(STORE_DIR_ENV_VAR)
        if not root:
            return None
        return cls(root, disk_budget=os.environ.get(STORE_BUDGET_ENV_VAR))

    @staticmethod
    def coerce(store) -> "ArtifactStore | None":
        """Normalize a ``store=`` argument.

        ``ArtifactStore`` instances pass through; a path creates a store
        there (honoring ``$REPRO_STORE_BUDGET``, like every other wiring
        path — pass an ``ArtifactStore`` to control the budget
        explicitly); ``None`` consults the environment; ``False``
        disables the disk tier even when the environment configures one.
        """
        if store is False:
            return None
        if store is None:
            return ArtifactStore.from_env()
        if isinstance(store, ArtifactStore):
            return store
        return ArtifactStore(
            store, disk_budget=os.environ.get(STORE_BUDGET_ENV_VAR)
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _paths(self, key: Sequence) -> tuple[Path, Path]:
        kid = artifact_format.key_id(key)
        return self.root / f"{kid}.npz", self.root / f"{kid}.json"

    def _paths_or_none(self, key: Sequence) -> tuple[Path, Path] | None:
        """Like :meth:`_paths`, but ``None`` for keys the format cannot
        address (a spec value JSON can't serialize).  Read-side methods
        treat such keys as simply not stored; only :meth:`save` raises,
        and the session marks the key unstorable."""
        try:
            return self._paths(key)
        except (TypeError, ValueError):
            return None

    def _tmp_name(self, final: Path) -> Path:
        return final.with_name(
            f"{final.name}.tmp-{os.getpid()}-{threading.get_ident()}-"
            f"{uuid.uuid4().hex[:8]}"
        )

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, key: Sequence, prepared: PreparedPolygons) -> int:
        """Persist an artifact atomically; returns bytes written.

        The npz payload is committed before the manifest, so a manifest
        on disk always describes a complete payload (modulo a concurrent
        writer replacing the pair, which the checksum catches).

        Raises :class:`ArtifactTooLargeError` — before writing anything —
        when the pair alone would exceed the disk budget; see the
        exception's docstring for why such pairs are never admitted.
        """
        start = time.perf_counter()
        arrays, manifest = artifact_format.encode(prepared, key)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        manifest["checksum"] = artifact_format.checksum(payload)
        manifest["payload_bytes"] = len(payload)
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        if (
            self.disk_budget is not None
            and len(payload) + len(manifest_bytes) > self.disk_budget
        ):
            self.rejected_saves += 1
            raise ArtifactTooLargeError(
                f"artifact pair ({(len(payload) + len(manifest_bytes)) / 1e6:.1f}"
                f" MB) exceeds the store's disk budget "
                f"({self.disk_budget / 1e6:.1f} MB)"
            )

        npz_path, manifest_path = self._paths(key)
        tmp_npz = self._tmp_name(npz_path)
        tmp_manifest = self._tmp_name(manifest_path)
        try:
            tmp_npz.write_bytes(payload)
            os.replace(tmp_npz, npz_path)
            tmp_manifest.write_bytes(manifest_bytes)
            os.replace(tmp_manifest, manifest_path)
        finally:
            for leftover in (tmp_npz, tmp_manifest):
                try:
                    leftover.unlink(missing_ok=True)
                except OSError:
                    pass
        self.saves += 1
        self.save_s += time.perf_counter() - start
        if self.disk_budget is not None:
            self.enforce_disk_budget(protect=artifact_format.key_id(key))
        return len(payload) + len(manifest_bytes)

    def load(self, key: Sequence, polygons) -> PreparedPolygons | None:
        """Load and validate the artifact for ``key``; ``None`` on any
        failure (missing, torn, corrupt, stale format) — the caller
        rebuilds, it never crashes.
        """
        start = time.perf_counter()
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        try:
            manifest = json.loads(manifest_path.read_bytes())
            artifact_format.validate_manifest(manifest, key)
            payload = npz_path.read_bytes()
            if len(payload) != manifest.get("payload_bytes"):
                raise ArtifactFormatError("payload size mismatch")
            if artifact_format.checksum(payload) != manifest.get("checksum"):
                raise ArtifactFormatError("payload checksum mismatch")
            with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
                prepared = artifact_format.decode(
                    arrays, manifest, polygons, key
                )
        except FileNotFoundError:
            return None
        except Exception:
            # Anything else is a corrupt or torn pair: report a failure
            # and let the caller rebuild.  The next save overwrites it.
            self.load_failures += 1
            return None
        now = time.time()
        for path in (npz_path, manifest_path):
            try:
                os.utime(path, (now, now))  # recency for LRU eviction
            except OSError:
                pass
        self.loads += 1
        self.load_s += time.perf_counter() - start
        return prepared

    def contains(self, key: Sequence) -> bool:
        """Whether a (possibly invalid) pair exists for ``key`` — a cheap
        existence probe used by dirty tracking, not a validation."""
        paths = self._paths_or_none(key)
        if paths is None:
            return False
        npz_path, manifest_path = paths
        return npz_path.exists() and manifest_path.exists()

    def describe(self, key: Sequence) -> list[str] | None:
        """The stored artifact's field list, without loading the payload.

        Reads and validates only the (small) manifest — cache-aware
        costing uses this to tell a *full* artifact (coverage present:
        the polygon pass replays) from a *partial* one (triangles/grid
        only: preparation is skipped but coverage re-rasterizes).
        Returns ``None`` for missing or invalid pairs; never raises.
        """
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        try:
            manifest = json.loads(manifest_path.read_bytes())
            artifact_format.validate_manifest(manifest, key)
            # Truncation (the common corruption) is visible from the
            # size alone; deeper rot still surfaces at load time and
            # costs only a mispredicted-but-correct query.
            if npz_path.stat().st_size != manifest.get("payload_bytes"):
                return None
            return list(manifest.get("fields", ()))
        except Exception:
            return None

    def delete(self, key: Sequence) -> bool:
        """Drop the pair for ``key``; True if anything was removed."""
        paths = self._paths_or_none(key)
        if paths is None:
            return False
        removed = False
        for path in paths:
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every file in the store; returns artifacts removed.

        Also sweeps orphan payloads (a crash between the two commits of
        a save) and abandoned temporary files.
        """
        removed = 0
        for manifest_path in self.root.glob("*.json"):
            removed += 1
            manifest_path.unlink(missing_ok=True)
        for leftover in (*self.root.glob("*.npz"), *self.root.glob("*.tmp-*")):
            leftover.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------
    # Disk budget
    # ------------------------------------------------------------------
    #: Temporary files younger than this are assumed to belong to a live
    #: writer; older ones are crash debris, accounted and evictable.
    TMP_GRACE_SECONDS = 300.0

    def _scan(self) -> dict[str, tuple[int, float, list[Path]]]:
        """group id -> (bytes, last-use mtime, paths) for everything the
        budget should see: artifact pairs (complete or torn) grouped by
        key_id, plus aged ``*.tmp-*`` crash debris as its own group, so
        the disk accounting never undercounts and eviction can reclaim
        any of it.  Fresh tmp files (a live writer) are left alone.
        """
        now = time.time()
        groups: dict[str, tuple[int, float, list[Path]]] = {}
        for path in self.root.iterdir():
            name = path.name
            if ".tmp-" in name:
                group = name
            elif name.endswith(".json") or name.endswith(".npz"):
                group = path.stem
            else:
                continue
            try:
                stat = path.stat()
            except (FileNotFoundError, OSError):
                continue  # racing a concurrent eviction
            if ".tmp-" in name and now - stat.st_mtime < self.TMP_GRACE_SECONDS:
                continue
            size, mtime, paths = groups.get(group, (0, 0.0, []))
            groups[group] = (size + stat.st_size,
                             max(mtime, stat.st_mtime), paths + [path])
        return groups

    def entries(self) -> list[tuple[str, int, float]]:
        """(group id, bytes, last-use mtime) per evictable unit — see
        :meth:`_scan` for what counts as a unit."""
        return [
            (group, size, mtime)
            for group, (size, mtime, _) in self._scan().items()
        ]

    @property
    def disk_bytes(self) -> int:
        """Current size of all complete pairs in the store."""
        return sum(size for _, size, _ in self.entries())

    def enforce_disk_budget(self, protect: str | None = None) -> int:
        """Evict oldest pairs until the directory fits the budget.

        ``protect`` names a key_id never evicted (the pair just written,
        so a single save can't evict its own artifact).  Returns the
        number of artifacts evicted.
        """
        if self.disk_budget is None:
            return 0
        groups = self._scan()
        order = sorted(groups.items(), key=lambda item: item[1][1])
        total = sum(size for size, _, _ in groups.values())
        evicted = 0
        for group, (size, _, paths) in order:
            if total <= self.disk_budget:
                break
            if group == protect:
                continue
            for path in paths:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries())

    def __bool__(self) -> bool:
        # A store is a capability, not a container: an *empty* store is
        # still an attached store (len() would otherwise decide).
        return True

    def __repr__(self) -> str:
        budget = (
            f"{self.disk_budget / 1e6:.0f} MB cap"
            if self.disk_budget is not None else "uncapped"
        )
        return (
            f"ArtifactStore({self.root}, {len(self)} artifacts, "
            f"~{self.disk_bytes / 1e6:.1f} MB, {budget}, "
            f"{self.saves} saves, {self.loads} loads, "
            f"{self.load_failures} load failures, "
            f"{self.evictions} evictions)"
        )
