"""Durable artifact store: spill :class:`PreparedPolygons` to disk.

An :class:`ArtifactStore` is a directory of ``(<key_id>.npz,
<key_id>.json)`` pairs, one per (geometry fingerprint, render spec) key.
It is the disk tier behind :class:`~repro.cache.session.QuerySession`:
artifacts demoted out of the in-memory byte budget land here, and a
fresh process pointed at a populated store answers its first repeated
query warm — no re-triangulation, no coverage rebuild.

**Patch journals** (PR 5): a delta-derived artifact — an edited polygon
set that reused most of a sibling's per-polygon state — persists as a
small record appended to its lineage root's ``<root_kid>.journal`` plus
a tiny ``<key_id>.ref`` manifest, instead of rewriting the whole pair.
Loading such a key replays the journal chain over the root pair (pure
per-polygon array work) and recomposes — bit-identical to a full save.
Journals **compact** automatically: once a lineage's journal outgrows
its base payload (or the chain gets long), the next edit is written as
a fresh full pair, and the LRU disk budget treats the root pair plus
its journal as one evictable group.  See ``docs/incremental_edits.md``.

Durability contract:

* **Atomic writes.**  Pair and ref files are written to temporary names
  and committed with :func:`os.replace`; the ``.npz`` is committed
  before the manifest, and loads read the manifest first, so a reader
  can never observe a half-written pair as valid.
* **Checksums.**  The manifest carries a digest of the ``.npz`` bytes;
  any mismatch (torn pair, bit rot, truncation) fails validation.
  Journal records are individually length-framed and checksummed: a
  truncated or corrupt trailing record (crash debris) is detected and
  dropped, falling back to the last consistent state.
* **Corruption tolerance.**  Every load failure — missing file, bad
  zip, bad JSON, version or key mismatch, checksum mismatch, broken
  journal chain — returns ``None`` instead of raising, so callers fall
  back to a rebuild.  The rebuilt artifact overwrites the bad state on
  the next save.
* **Disk budget.**  ``disk_budget`` caps the directory size; beyond it,
  the oldest groups by mtime are evicted (loads touch mtime, making
  this LRU-by-recency, not merely by write time).  A root pair and its
  journal share one group; refs are tiny groups of their own, and a ref
  whose root was evicted simply loads as a miss.

Nothing in this module imports the session — the store is a standalone
subsystem that later scaling work (sharding, multi-process serving) can
drive directly.
"""

from __future__ import annotations

import io
import json
import os
import threading
import time
import uuid
from pathlib import Path
from typing import Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.errors import QueryError
from repro.obs import metrics
from repro.store import format as artifact_format
from repro.store.format import ArtifactFormatError

#: Directory of the shared artifact store; unset or empty disables it.
STORE_DIR_ENV_VAR = "REPRO_STORE_DIR"
#: On-disk size cap in bytes (suffixes K/M/G accepted); unset = unbounded.
STORE_BUDGET_ENV_VAR = "REPRO_STORE_BUDGET"

_SIZE_SUFFIXES = {"k": 1 << 10, "m": 1 << 20, "g": 1 << 30, "t": 1 << 40}


class ArtifactTooLargeError(QueryError):
    """A single artifact exceeds the store's whole disk budget.

    Such a pair is rejected *before* anything is written: admitting it
    would force the budget loop to evict every other artifact and still
    end over cap, wiping the warm-restart store for all other keys.
    Callers (the session) degrade to memory-only for that key.
    """


def parse_bytes(value: int | str | None) -> int | None:
    """Parse a byte budget: plain int, digit string, or ``"512M"`` style."""
    if value is None:
        return None
    if isinstance(value, int):
        budget = value
    else:
        text = str(value).strip().lower()
        if not text:
            return None
        multiplier = 1
        if text[-1] in _SIZE_SUFFIXES:
            multiplier = _SIZE_SUFFIXES[text[-1]]
            text = text[:-1]
        try:
            budget = int(float(text) * multiplier)
        except ValueError:
            raise QueryError(f"unparseable byte budget {value!r}") from None
    if budget < 1:
        raise QueryError(f"byte budget must be >= 1 byte, got {value!r}")
    return budget


class ArtifactStore:
    """A directory of persisted prepared-polygon artifacts.

    Safe to share between sessions, threads, and processes: writes are
    atomic renames and loads are checksum-validated, so concurrent use
    degrades (at worst) to a redundant rebuild, never to a wrong result.
    """

    def __init__(
        self,
        root: str | Path,
        disk_budget: int | str | None = None,
    ) -> None:
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.disk_budget = parse_bytes(disk_budget)
        # Counters (per store instance, not per directory).
        self.saves = 0
        self.loads = 0
        self.load_failures = 0
        #: Incremented by callers (the session) that degrade a failed
        #: save to "stay dirty, retry later" instead of raising.
        self.save_failures = 0
        #: Saves refused because one artifact exceeds the whole budget.
        self.rejected_saves = 0
        #: Edits persisted as journal records instead of full pairs,
        #: journal replays served, patch attempts that fell back to a
        #: full save (compaction or an unpatchable parent), and corrupt
        #: or truncated journal records dropped by the checksum guard.
        self.patch_saves = 0
        self.patch_loads = 0
        self.patch_fallbacks = 0
        self.dropped_records = 0
        #: Distinct journal damage sites already counted, so repeated
        #: scans of the same debris don't inflate ``dropped_records``.
        self._damage_seen: set[tuple] = set()
        self.evictions = 0
        self.save_s = 0.0
        self.load_s = 0.0

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_env(cls) -> "ArtifactStore | None":
        """The store described by ``$REPRO_STORE_DIR`` (None when unset)."""
        root = os.environ.get(STORE_DIR_ENV_VAR)
        if not root:
            return None
        return cls(root, disk_budget=os.environ.get(STORE_BUDGET_ENV_VAR))

    @staticmethod
    def coerce(store) -> "ArtifactStore | None":
        """Normalize a ``store=`` argument.

        ``ArtifactStore`` instances pass through; a path creates a store
        there (honoring ``$REPRO_STORE_BUDGET``, like every other wiring
        path — pass an ``ArtifactStore`` to control the budget
        explicitly); ``None`` consults the environment; ``False``
        disables the disk tier even when the environment configures one.
        """
        if store is False:
            return None
        if store is None:
            return ArtifactStore.from_env()
        if isinstance(store, ArtifactStore):
            return store
        return ArtifactStore(
            store, disk_budget=os.environ.get(STORE_BUDGET_ENV_VAR)
        )

    # ------------------------------------------------------------------
    # Paths
    # ------------------------------------------------------------------
    def _paths(self, key: Sequence) -> tuple[Path, Path]:
        kid = artifact_format.key_id(key)
        return self.root / f"{kid}.npz", self.root / f"{kid}.json"

    def _paths_or_none(self, key: Sequence) -> tuple[Path, Path] | None:
        """Like :meth:`_paths`, but ``None`` for keys the format cannot
        address (a spec value JSON can't serialize).  Read-side methods
        treat such keys as simply not stored; only :meth:`save` raises,
        and the session marks the key unstorable."""
        try:
            return self._paths(key)
        except (TypeError, ValueError):
            return None

    def _tmp_name(self, final: Path) -> Path:
        return final.with_name(
            f"{final.name}.tmp-{os.getpid()}-{threading.get_ident()}-"
            f"{uuid.uuid4().hex[:8]}"
        )

    def _ref_path(self, kid: str) -> Path:
        return self.root / f"{kid}.ref"

    def _journal_path(self, kid: str) -> Path:
        return self.root / f"{kid}.journal"

    # ------------------------------------------------------------------
    # Journal framing
    # ------------------------------------------------------------------
    #: Per-record frame: magic, little-endian payload length, then a
    #: 32-hex checksum of the payload.  The payload is a 4-byte header
    #: length + JSON header + npz bytes.  Framing makes every record
    #: independently verifiable, so crash debris (a truncated or torn
    #: trailing record) is detected and dropped rather than misread.
    _RECORD_MAGIC = b"RJPJ"
    #: Compaction rules: stop appending once the journal outgrows the
    #: base payload by this factor (replaying would read more bytes than
    #: a full pair) or the record count passes the cap (replay latency);
    #: the next edit then writes a fresh full pair for its own key.
    JOURNAL_SIZE_FACTOR = 1.0
    JOURNAL_MAX_RECORDS = 16

    def _frame_record(self, header: dict, arrays: dict) -> bytes:
        header_bytes = json.dumps(header, sort_keys=True).encode("utf-8")
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = (
            len(header_bytes).to_bytes(4, "little") + header_bytes
            + buffer.getvalue()
        )
        return (
            self._RECORD_MAGIC
            + len(payload).to_bytes(8, "little")
            + artifact_format.checksum(payload).encode("ascii")
            + payload
        )

    def _note_damage(self, journal_path: Path, offset: int) -> None:
        """Count a journal damage site once, however often it is
        re-scanned (loads and saves both walk journals repeatedly)."""
        site = (journal_path.name, offset)
        if site not in self._damage_seen:
            self._damage_seen.add(site)
            self.dropped_records += 1

    def _read_records(self, journal_path: Path) -> list[tuple[dict, bytes]]:
        """All intact records of a journal, in append order — see
        :meth:`_scan_journal`."""
        return self._scan_journal(journal_path)[0]

    def _scan_journal(
        self, journal_path: Path
    ) -> tuple[list[tuple[dict, bytes]], int, int]:
        """(intact records, valid-prefix end offset, file size).

        Stops at the first frame that fails any check — short header,
        short payload, bad magic, checksum mismatch — and counts the
        drop: everything before the damage is the last consistent state,
        everything after it is unreachable (readers stop there, so
        appenders must not add records past it — see
        :meth:`save_patch`).  The full-validation walk reads the whole
        journal, which compaction bounds to about the base payload size.
        """
        try:
            blob = journal_path.read_bytes()
        except (FileNotFoundError, OSError):
            return [], 0, 0
        records: list[tuple[dict, bytes]] = []
        offset = 0
        prefix = len(self._RECORD_MAGIC) + 8 + 32
        while offset < len(blob):
            if offset + prefix > len(blob):
                self._note_damage(journal_path, offset)  # truncated frame header
                break
            magic = blob[offset:offset + 4]
            if magic != self._RECORD_MAGIC:
                self._note_damage(journal_path, offset)
                break
            length = int.from_bytes(blob[offset + 4:offset + 12], "little")
            digest = blob[offset + 12:offset + prefix].decode(
                "ascii", "replace"
            )
            payload = blob[offset + prefix:offset + prefix + length]
            if len(payload) < length:
                self._note_damage(journal_path, offset)  # truncated trailing record
                break
            if artifact_format.checksum(payload) != digest:
                self._note_damage(journal_path, offset)
                break
            try:
                header_len = int.from_bytes(payload[:4], "little")
                header = json.loads(payload[4:4 + header_len])
                npz_bytes = payload[4 + header_len:]
            except Exception:
                self._note_damage(journal_path, offset)
                break
            records.append((header, npz_bytes))
            offset += prefix + length
        return records, offset, len(blob)

    # ------------------------------------------------------------------
    # Save / load
    # ------------------------------------------------------------------
    def save(self, key: Sequence, prepared: PreparedPolygons) -> int:
        """Persist an artifact atomically; returns bytes written.

        The npz payload is committed before the manifest, so a manifest
        on disk always describes a complete payload (modulo a concurrent
        writer replacing the pair, which the checksum catches).

        Raises :class:`ArtifactTooLargeError` — before writing anything —
        when the pair alone would exceed the disk budget; see the
        exception's docstring for why such pairs are never admitted.
        """
        start = time.perf_counter()
        arrays, manifest = artifact_format.encode(prepared, key)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        manifest["checksum"] = artifact_format.checksum(payload)
        manifest["payload_bytes"] = len(payload)
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        if (
            self.disk_budget is not None
            and len(payload) + len(manifest_bytes) > self.disk_budget
        ):
            self.rejected_saves += 1
            raise ArtifactTooLargeError(
                f"artifact pair ({(len(payload) + len(manifest_bytes)) / 1e6:.1f}"
                f" MB) exceeds the store's disk budget "
                f"({self.disk_budget / 1e6:.1f} MB)"
            )

        npz_path, manifest_path = self._paths(key)
        tmp_npz = self._tmp_name(npz_path)
        tmp_manifest = self._tmp_name(manifest_path)
        try:
            tmp_npz.write_bytes(payload)
            os.replace(tmp_npz, npz_path)
            tmp_manifest.write_bytes(manifest_bytes)
            os.replace(tmp_manifest, manifest_path)
        finally:
            for leftover in (tmp_npz, tmp_manifest):
                try:
                    leftover.unlink(missing_ok=True)
                except OSError:
                    pass
        self.saves += 1
        elapsed = time.perf_counter() - start
        self.save_s += elapsed
        metrics.counter("store_saves", kind="prepared")
        metrics.counter("store_save_bytes",
                        len(payload) + len(manifest_bytes), kind="prepared")
        metrics.observe("store_save_seconds", elapsed, kind="prepared")
        # A full save supersedes any patch ref for the same key.
        try:
            self._ref_path(artifact_format.key_id(key)).unlink(missing_ok=True)
        except OSError:
            pass
        if self.disk_budget is not None:
            self.enforce_disk_budget(protect=artifact_format.key_id(key))
        return len(payload) + len(manifest_bytes)

    def save_patch(self, key: Sequence, prepared: PreparedPolygons) -> int:
        """Persist a delta-derived artifact as a journal record.

        Appends a per-polygon patch record (only the rebuilt polygons'
        arrays) to the lineage root's journal and commits a tiny
        ``<key_id>.ref`` manifest pointing at it — the "manifest bump"
        that makes the new key addressable.  Falls back to a full
        :meth:`save` (counted in ``patch_fallbacks``) whenever patching
        can't faithfully represent the artifact:

        * the parent key has no loadable state here (never persisted, or
          evicted);
        * the parent's stored fields lack something this artifact has
          (e.g. the parent was persisted stripped — replaying would
          silently lose coverage);
        * the journal carries crash debris or in-place corruption after
          its last valid record — a record appended there would be
          unreachable, so the full pair re-roots the lineage instead;
        * compaction: the journal would outgrow its base payload
          (``JOURNAL_SIZE_FACTOR``) or the record cap
          (``JOURNAL_MAX_RECORDS``) — the full pair *is* the compacted
          state, and the old lineage ages out via the LRU budget.
        """
        parent_key = prepared.delta_parent
        if parent_key is None or prepared.units is None:
            return self.save(key, prepared)
        root_kid = self._lineage_root(parent_key)
        if root_kid is None:
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        parent_fields = self.describe(parent_key)
        if parent_fields is None:
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        start = time.perf_counter()
        try:
            arrays, header = artifact_format.encode_patch(prepared, key)
        except artifact_format.ArtifactFormatError:
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        missing = [
            f for f in header["fields"]
            if f not in parent_fields and f not in ("canvas", "tiles")
        ]
        if missing:
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        journal_path = self._journal_path(root_kid)
        record = self._frame_record(header, arrays)
        records, valid_end, journal_size = self._scan_journal(journal_path)
        try:
            base_size = (self.root / f"{root_kid}.npz").stat().st_size
        except (FileNotFoundError, OSError):
            base_size = 0
        if valid_end < journal_size:
            # Debris or in-place corruption after the last fully valid
            # record: appending there would commit a ref no reader can
            # reach (readers stop at the first bad frame), and
            # truncating would race a concurrent appender whose record
            # we simply haven't validated.  A full pair sidesteps both —
            # and re-roots the lineage, so the damaged journal ages out.
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        if (
            valid_end + len(record) > base_size * self.JOURNAL_SIZE_FACTOR
            or len(records) >= self.JOURNAL_MAX_RECORDS
        ):
            self.patch_fallbacks += 1
            return self.save(key, prepared)
        if (
            self.disk_budget is not None
            and len(record) > self.disk_budget
        ):
            self.rejected_saves += 1
            raise ArtifactTooLargeError(
                f"patch record ({len(record) / 1e6:.1f} MB) exceeds the "
                f"store's disk budget ({self.disk_budget / 1e6:.1f} MB)"
            )
        # Append the record first, then commit the ref atomically: a
        # crash in between leaves an unreferenced (harmless) record.
        # The append is one O_APPEND os.write of the whole frame, so
        # concurrent writers sharing the directory land whole records
        # (POSIX serializes the offset per write); a torn tail from a
        # signal or full disk is caught by the frame checksum.
        fd = os.open(
            journal_path, os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644
        )
        try:
            os.write(fd, record)
        finally:
            os.close(fd)
        kid = artifact_format.key_id(key)
        ref = {
            "type": "patch-ref",
            "version": artifact_format.FORMAT_VERSION,
            "dtype": artifact_format.COORD_DTYPE,
            "fingerprint": key[0],
            "spec": artifact_format.canonical_spec(list(key)[1:]),
            "root": root_kid,
            "fields": header["fields"],
            "nbytes": header["nbytes"],
            "created": header["created"],
        }
        ref_bytes = json.dumps(ref, sort_keys=True).encode("utf-8")
        ref_path = self._ref_path(kid)
        tmp_ref = self._tmp_name(ref_path)
        try:
            tmp_ref.write_bytes(ref_bytes)
            os.replace(tmp_ref, ref_path)
        finally:
            try:
                tmp_ref.unlink(missing_ok=True)
            except OSError:
                pass
        self.patch_saves += 1
        self.saves += 1
        elapsed = time.perf_counter() - start
        self.save_s += elapsed
        metrics.counter("store_saves", kind="patch")
        metrics.counter("store_save_bytes",
                        len(record) + len(ref_bytes), kind="patch")
        metrics.observe("store_save_seconds", elapsed, kind="patch")
        if self.disk_budget is not None:
            self.enforce_disk_budget(protect=root_kid)
        return len(record) + len(ref_bytes)

    def _lineage_root(self, key: Sequence) -> str | None:
        """The key_id owning the journal a patch of ``key`` appends to:
        the key's own id when a full pair exists, else the root its ref
        points at, else ``None`` (nothing stored to patch against)."""
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        kid = artifact_format.key_id(key)
        if npz_path.exists() and manifest_path.exists():
            return kid
        ref = self._read_ref(kid)
        if ref is not None:
            root = ref.get("root")
            if isinstance(root, str) and (
                self.root / f"{root}.npz"
            ).exists():
                return root
        return None

    def _read_ref(self, kid: str) -> dict | None:
        try:
            ref = json.loads(self._ref_path(kid).read_bytes())
        except (FileNotFoundError, OSError, ValueError):
            return None
        if (
            isinstance(ref, dict)
            and ref.get("type") == "patch-ref"
            and ref.get("version") == artifact_format.FORMAT_VERSION
            and ref.get("dtype") == artifact_format.COORD_DTYPE
        ):
            return ref
        return None

    def load(self, key: Sequence, polygons) -> PreparedPolygons | None:
        """Load and validate the artifact for ``key``; ``None`` on any
        failure (missing, torn, corrupt, stale format) — the caller
        rebuilds, it never crashes.

        A key persisted as a patch (a ``.ref`` file) replays its journal
        chain over the lineage's base pair and recomposes — bit-identical
        to loading a full pair, by the determinism of the per-polygon
        composition.
        """
        start = time.perf_counter()
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        if not manifest_path.exists():
            return self._load_patched(key, polygons, start)
        try:
            manifest = json.loads(manifest_path.read_bytes())
            artifact_format.validate_manifest(manifest, key)
            payload = npz_path.read_bytes()
            if len(payload) != manifest.get("payload_bytes"):
                raise ArtifactFormatError("payload size mismatch")
            if artifact_format.checksum(payload) != manifest.get("checksum"):
                raise ArtifactFormatError("payload checksum mismatch")
            with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
                prepared = artifact_format.decode(
                    arrays, manifest, polygons, key
                )
        except FileNotFoundError:
            return None
        except Exception:
            # Anything else is a corrupt or torn pair: report a failure
            # and let the caller rebuild.  The next save overwrites it.
            self.load_failures += 1
            return None
        self._touch(npz_path, manifest_path)
        self.loads += 1
        elapsed = time.perf_counter() - start
        self.load_s += elapsed
        metrics.counter("store_loads", kind="prepared")
        metrics.counter("store_load_bytes", len(payload), kind="prepared")
        metrics.observe("store_load_seconds", elapsed, kind="prepared")
        return prepared

    def _load_patched(self, key: Sequence, polygons,
                      start: float) -> PreparedPolygons | None:
        """Replay a journaled key: base pair + patch-record chain."""
        kid = artifact_format.key_id(key)
        ref = self._read_ref(kid)
        if ref is None:
            return None
        fingerprint, *spec = key
        if (
            ref.get("fingerprint") != fingerprint
            or ref.get("spec") != artifact_format.canonical_spec(spec)
        ):
            self.load_failures += 1
            return None
        root_kid = ref.get("root")
        base_npz = self.root / f"{root_kid}.npz"
        base_manifest_path = self.root / f"{root_kid}.json"
        journal_path = self._journal_path(root_kid)
        try:
            manifest = json.loads(base_manifest_path.read_bytes())
            if (
                manifest.get("version") != artifact_format.FORMAT_VERSION
                or manifest.get("dtype") != artifact_format.COORD_DTYPE
            ):
                raise ArtifactFormatError("stale base pair")
            payload = base_npz.read_bytes()
            if len(payload) != manifest.get("payload_bytes"):
                raise ArtifactFormatError("base payload size mismatch")
            if artifact_format.checksum(payload) != manifest.get("checksum"):
                raise ArtifactFormatError("base payload checksum mismatch")
            base_fp = manifest.get("fingerprint")
            # Build the parent chain: target fp back to the base fp via
            # each record's parent pointer (undo/redo branches share one
            # journal, so records are chained by fingerprint, not by
            # append order).
            records = self._read_records(journal_path)
            by_fp: dict[str, tuple[dict, bytes]] = {}
            for header, blob in records:
                if (
                    header.get("version") == artifact_format.FORMAT_VERSION
                    and header.get("spec")
                    == artifact_format.canonical_spec(spec)
                ):
                    by_fp[header.get("fingerprint")] = (header, blob)
            chain: list[tuple[dict, bytes]] = []
            cursor = fingerprint
            while cursor != base_fp:
                node = by_fp.get(cursor)
                if node is None or len(chain) > len(records):
                    raise ArtifactFormatError("journal chain is broken")
                chain.append(node)
                cursor = node[0].get("parent_fingerprint")
            with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
                units, meta = artifact_format.decode_units_state(
                    arrays, manifest
                )
            for header, blob in reversed(chain):
                with np.load(io.BytesIO(blob), allow_pickle=False) as arrays:
                    units, meta = artifact_format.apply_patch(
                        units, meta, header, arrays
                    )
            prepared = artifact_format.compose_from_units(
                units, meta, polygons, key
            )
        except Exception:
            self.load_failures += 1
            return None
        self._touch(
            base_npz, base_manifest_path, journal_path, self._ref_path(kid)
        )
        self.loads += 1
        self.patch_loads += 1
        elapsed = time.perf_counter() - start
        self.load_s += elapsed
        metrics.counter("store_loads", kind="patch")
        metrics.counter("store_load_bytes", len(payload), kind="patch")
        metrics.observe("store_load_seconds", elapsed, kind="patch")
        return prepared

    @staticmethod
    def _touch(*paths: Path) -> None:
        now = time.time()
        for path in paths:
            try:
                os.utime(path, (now, now))  # recency for LRU eviction
            except OSError:
                pass

    def contains(self, key: Sequence) -> bool:
        """Whether (possibly invalid) stored state exists for ``key`` — a
        cheap existence probe used by dirty tracking, not a validation.

        A patch ref counts only while its lineage root pair still
        exists: an orphaned ref (the root was evicted) is *not*
        containment — dirty tracking uses this answer to decide whether
        demoting an entry without saving it loses data, and an orphaned
        ref cannot serve a load.
        """
        paths = self._paths_or_none(key)
        if paths is None:
            return False
        npz_path, manifest_path = paths
        if npz_path.exists() and manifest_path.exists():
            return True
        ref = self._read_ref(artifact_format.key_id(key))
        if ref is None:
            return False
        root = ref.get("root")
        return (
            isinstance(root, str)
            and (self.root / f"{root}.npz").exists()
            and (self.root / f"{root}.json").exists()
        )

    # ------------------------------------------------------------------
    # Aggregate pyramids — second artifact type, same pair layout
    # ------------------------------------------------------------------
    def save_pyramid(self, key: Sequence, pyramid) -> int:
        """Persist an aggregate pyramid atomically; returns bytes written.

        Same durability contract as :meth:`save` — tmp-and-rename pair
        commit with the npz first, checksum in the manifest, and an
        :class:`ArtifactTooLargeError` *before* writing anything when
        the pair alone would exceed the disk budget.  Pyramids never
        journal: a channel addition rewrites the (small) pair whole.
        """
        start = time.perf_counter()
        arrays, manifest = artifact_format.encode_pyramid(pyramid, key)
        buffer = io.BytesIO()
        np.savez(buffer, **arrays)
        payload = buffer.getvalue()
        manifest["checksum"] = artifact_format.checksum(payload)
        manifest["payload_bytes"] = len(payload)
        manifest_bytes = json.dumps(manifest, sort_keys=True).encode("utf-8")
        if (
            self.disk_budget is not None
            and len(payload) + len(manifest_bytes) > self.disk_budget
        ):
            self.rejected_saves += 1
            raise ArtifactTooLargeError(
                f"pyramid pair ({(len(payload) + len(manifest_bytes)) / 1e6:.1f}"
                f" MB) exceeds the store's disk budget "
                f"({self.disk_budget / 1e6:.1f} MB)"
            )
        npz_path, manifest_path = self._paths(key)
        tmp_npz = self._tmp_name(npz_path)
        tmp_manifest = self._tmp_name(manifest_path)
        try:
            tmp_npz.write_bytes(payload)
            os.replace(tmp_npz, npz_path)
            tmp_manifest.write_bytes(manifest_bytes)
            os.replace(tmp_manifest, manifest_path)
        finally:
            for leftover in (tmp_npz, tmp_manifest):
                try:
                    leftover.unlink(missing_ok=True)
                except OSError:
                    pass
        self.saves += 1
        elapsed = time.perf_counter() - start
        self.save_s += elapsed
        metrics.counter("store_saves", kind="pyramid")
        metrics.counter("store_save_bytes",
                        len(payload) + len(manifest_bytes), kind="pyramid")
        metrics.observe("store_save_seconds", elapsed, kind="pyramid")
        if self.disk_budget is not None:
            self.enforce_disk_budget(protect=artifact_format.key_id(key))
        return len(payload) + len(manifest_bytes)

    def load_pyramid(self, key: Sequence):
        """Load and validate the pyramid for ``key``; ``None`` on any
        failure — the caller rebuilds from points, it never crashes."""
        start = time.perf_counter()
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        try:
            manifest = json.loads(manifest_path.read_bytes())
            artifact_format.validate_pyramid_manifest(manifest, key)
            payload = npz_path.read_bytes()
            if len(payload) != manifest.get("payload_bytes"):
                raise ArtifactFormatError("payload size mismatch")
            if artifact_format.checksum(payload) != manifest.get("checksum"):
                raise ArtifactFormatError("payload checksum mismatch")
            with np.load(io.BytesIO(payload), allow_pickle=False) as arrays:
                pyramid = artifact_format.decode_pyramid(arrays, manifest)
        except FileNotFoundError:
            return None
        except Exception:
            self.load_failures += 1
            return None
        self._touch(npz_path, manifest_path)
        self.loads += 1
        elapsed = time.perf_counter() - start
        self.load_s += elapsed
        metrics.counter("store_loads", kind="pyramid")
        metrics.counter("store_load_bytes", len(payload), kind="pyramid")
        metrics.observe("store_load_seconds", elapsed, kind="pyramid")
        return pyramid

    def contains_pyramid(self, key: Sequence) -> bool:
        """Cheap existence probe for a persisted pyramid pair."""
        paths = self._paths_or_none(key)
        if paths is None:
            return False
        npz_path, manifest_path = paths
        return npz_path.exists() and manifest_path.exists()

    def describe(self, key: Sequence) -> list[str] | None:
        """The stored artifact's field list, without loading the payload.

        Reads and validates only the (small) manifest — cache-aware
        costing uses this to tell a *full* artifact (coverage present:
        the polygon pass replays) from a *partial* one (triangles/grid
        only: preparation is skipped but coverage re-rasterizes).
        Journaled keys answer from their ref manifest, equally cheaply.
        Returns ``None`` for missing or invalid state; never raises.
        """
        paths = self._paths_or_none(key)
        if paths is None:
            return None
        npz_path, manifest_path = paths
        try:
            manifest = json.loads(manifest_path.read_bytes())
            artifact_format.validate_manifest(manifest, key)
            # Truncation (the common corruption) is visible from the
            # size alone; deeper rot still surfaces at load time and
            # costs only a mispredicted-but-correct query.
            if npz_path.stat().st_size != manifest.get("payload_bytes"):
                return None
            return list(manifest.get("fields", ()))
        except FileNotFoundError:
            pass
        except Exception:
            return None
        kid = artifact_format.key_id(key)
        ref = self._read_ref(kid)
        if ref is None:
            return None
        fingerprint, *spec = key
        if (
            ref.get("fingerprint") != fingerprint
            or ref.get("spec") != artifact_format.canonical_spec(spec)
        ):
            return None
        root = ref.get("root")
        if not isinstance(root, str) or not (
            self.root / f"{root}.npz"
        ).exists():
            return None  # lineage base evicted: the key won't load
        return list(ref.get("fields", ()))

    def delete(self, key: Sequence) -> bool:
        """Drop the stored state for ``key``; True if anything was
        removed.  Removes the pair, the key's patch ref, and — when the
        key roots a lineage — its journal (derived refs then load as
        misses and rebuild)."""
        paths = self._paths_or_none(key)
        if paths is None:
            return False
        kid = artifact_format.key_id(key)
        removed = False
        for path in (*paths, self._ref_path(kid), self._journal_path(kid)):
            try:
                path.unlink()
                removed = True
            except FileNotFoundError:
                pass
        return removed

    def clear(self) -> int:
        """Remove every file in the store; returns artifacts removed.

        Also sweeps refs, journals, orphan payloads (a crash between the
        two commits of a save), and abandoned temporary files.
        """
        removed = 0
        for manifest_path in self.root.glob("*.json"):
            removed += 1
            manifest_path.unlink(missing_ok=True)
        for ref_path in self.root.glob("*.ref"):
            removed += 1
            ref_path.unlink(missing_ok=True)
        for leftover in (
            *self.root.glob("*.npz"),
            *self.root.glob("*.journal"),
            *self.root.glob("*.tmp-*"),
        ):
            leftover.unlink(missing_ok=True)
        return removed

    # ------------------------------------------------------------------
    # Disk budget
    # ------------------------------------------------------------------
    #: Temporary files younger than this are assumed to belong to a live
    #: writer; older ones are crash debris, accounted and evictable.
    TMP_GRACE_SECONDS = 300.0

    def _scan(self) -> dict[str, tuple[int, float, list[Path]]]:
        """group id -> (bytes, last-use mtime, paths) for everything the
        budget should see: artifact pairs (complete or torn) grouped by
        key_id — a lineage root's journal shares its pair's group, so a
        base and its patch records evict as one unit — patch refs as
        their own (tiny) groups, plus aged ``*.tmp-*`` crash debris, so
        the disk accounting never undercounts and eviction can reclaim
        any of it.  Fresh tmp files (a live writer) are left alone.
        """
        now = time.time()
        groups: dict[str, tuple[int, float, list[Path]]] = {}
        for path in self.root.iterdir():
            name = path.name
            if ".tmp-" in name:
                group = name
            elif (
                name.endswith(".json") or name.endswith(".npz")
                or name.endswith(".ref") or name.endswith(".journal")
            ):
                group = path.stem
            else:
                continue
            try:
                stat = path.stat()
            except (FileNotFoundError, OSError):
                continue  # racing a concurrent eviction
            if ".tmp-" in name and now - stat.st_mtime < self.TMP_GRACE_SECONDS:
                continue
            size, mtime, paths = groups.get(group, (0, 0.0, []))
            groups[group] = (size + stat.st_size,
                             max(mtime, stat.st_mtime), paths + [path])
        return groups

    def entries(self) -> list[tuple[str, int, float]]:
        """(group id, bytes, last-use mtime) per evictable unit — see
        :meth:`_scan` for what counts as a unit."""
        return [
            (group, size, mtime)
            for group, (size, mtime, _) in self._scan().items()
        ]

    @property
    def disk_bytes(self) -> int:
        """Current size of all complete pairs in the store."""
        return sum(size for _, size, _ in self.entries())

    def enforce_disk_budget(self, protect: str | None = None) -> int:
        """Evict oldest pairs until the directory fits the budget.

        ``protect`` names a key_id never evicted (the pair just written,
        so a single save can't evict its own artifact).  Returns the
        number of artifacts evicted.
        """
        if self.disk_budget is None:
            return 0
        groups = self._scan()
        order = sorted(groups.items(), key=lambda item: item[1][1])
        total = sum(size for size, _, _ in groups.values())
        evicted = 0
        for group, (size, _, paths) in order:
            if total <= self.disk_budget:
                break
            if group == protect:
                continue
            for path in paths:
                try:
                    path.unlink()
                except FileNotFoundError:
                    pass
            total -= size
            evicted += 1
        self.evictions += evicted
        return evicted

    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.entries())

    def __bool__(self) -> bool:
        # A store is a capability, not a container: an *empty* store is
        # still an attached store (len() would otherwise decide).
        return True

    def __repr__(self) -> str:
        budget = (
            f"{self.disk_budget / 1e6:.0f} MB cap"
            if self.disk_budget is not None else "uncapped"
        )
        return (
            f"ArtifactStore({self.root}, {len(self)} artifacts, "
            f"~{self.disk_bytes / 1e6:.1f} MB, {budget}, "
            f"{self.saves} saves, {self.loads} loads, "
            f"{self.load_failures} load failures, "
            f"{self.evictions} evictions)"
        )
