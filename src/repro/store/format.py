"""On-disk artifact format: one ``.npz`` + one JSON manifest per key.

A persisted :class:`~repro.cache.prepared.PreparedPolygons` is split into
two files so the cheap part (the manifest) can be read without touching
the bulk arrays:

* ``<key_id>.npz`` — every array field of the artifact, flattened into
  named NumPy arrays;
* ``<key_id>.json`` — the manifest: format version, the full cache key
  (fingerprint + render spec), which fields are present, structural
  metadata, and a checksum over the ``.npz`` bytes.

Format version 2 stores artifacts **per polygon**: each polygon's
triangulation, grid-cell list, per-tile outline pixels, and per-tile raw
coverage pieces are written as that polygon's slice of concatenated
arrays, and the set-level views the engines consume (CSR grid, boundary
masks, boundary-excluded coverage) are *recomposed* on load — the same
deterministic composition a live session performs, so a loaded artifact
is bit-identical to the one saved.  The per-polygon layout is what makes
**patch records** possible: an edited set persists as a small journal
record carrying only the changed polygons' arrays plus a mapping onto
its parent (see :func:`encode_patch` / :func:`apply_patch` and
``docs/incremental_edits.md``), instead of rewriting the whole pair.
Artifacts without per-polygon units (built session-less and saved by
hand) still round-trip through the legacy composed layout.

``key_id`` is a content hash of ``(FORMAT_VERSION, COORD_DTYPE,
fingerprint, spec)``: bumping the format version or changing the
canonical coordinate dtype silently invalidates every existing file by
keying new names, so no migration code is ever needed — stale files age
out through the disk budget.

Everything here is pure (bytes in, objects out); durability, atomicity,
journal framing, and eviction live in :mod:`repro.store.store`.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Sequence

import numpy as np

from repro.cache.prepared import PolygonUnit, PreparedPolygons
from repro.errors import QueryError
from repro.geometry.bbox import BBox
from repro.graphics.viewport import Canvas, Viewport
from repro.index.grid import GridIndex

#: Bump on any incompatible change to the array layout or manifest shape.
#: The version participates in the key hash, so old artifacts are never
#: even opened by a newer reader — they just stop being addressable.
FORMAT_VERSION = 2

#: Canonical coordinate dtype: little-endian float64.  Part of the key so
#: artifacts written on any platform address the same bytes.
COORD_DTYPE = "<f8"

#: Index dtype for pixel/CSR arrays.
INDEX_DTYPE = "<i8"

#: Narrow on-disk index dtype, used whenever the values fit.  Pixel and
#: cell indices are int64 in memory but virtually never exceed 2^31, so
#: storing them as int32 halves the dominant arrays; loads widen them
#: back, making the round trip value-exact either way.
NARROW_INDEX_DTYPE = "<i4"


def _compact_indices(arr: np.ndarray) -> np.ndarray:
    """Non-negative index array in the narrowest lossless on-disk dtype."""
    arr = np.asarray(arr)
    if arr.size == 0 or int(arr.max()) < np.iinfo(np.int32).max:
        return arr.astype(NARROW_INDEX_DTYPE)
    return arr.astype(INDEX_DTYPE)


class ArtifactFormatError(QueryError):
    """A persisted artifact failed validation (corrupt, torn, or stale)."""


def _canonical_value(value):
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


def canonical_spec(spec: Sequence) -> list:
    """Render-spec values in the exact shape JSON will return them.

    Two jobs, both at the format boundary so save/hash/validate can
    never disagree: NumPy scalars (``resolution=np.int64(...)`` out of
    a parameter sweep) become their Python counterparts instead of
    crashing the manifest dump, and nested sequences become lists —
    the shape a JSON round trip produces — so a spec saved with a tuple
    in it still validates when loaded back.
    """
    return [_canonical_value(value) for value in spec]


def key_id(key: Sequence) -> str:
    """Stable file-name hash of a cache key (fingerprint + render spec).

    The hash covers the format version and canonical dtype in addition to
    the key itself, so a format bump or dtype change re-keys every
    artifact instead of misreading old bytes.
    """
    fingerprint, *spec = key
    canonical = json.dumps(
        [FORMAT_VERSION, COORD_DTYPE, fingerprint, canonical_spec(spec)],
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def checksum(data: bytes) -> str:
    """Integrity digest stored in the manifest and verified on load."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ArtifactFormatError(message)


# ----------------------------------------------------------------------
# Shared field helpers (canvas / tiles / MBRs — identical in both layouts)
# ----------------------------------------------------------------------
def _encode_frame(prepared: PreparedPolygons, arrays: dict,
                  manifest: dict, fields: list[str]) -> None:
    if prepared.canvas is not None:
        fields.append("canvas")
        ext = prepared.canvas.extent
        arrays["canvas_extent"] = np.asarray(
            [ext.xmin, ext.ymin, ext.xmax, ext.ymax], dtype=COORD_DTYPE
        )
        manifest["canvas"] = {
            "width": int(prepared.canvas.width),
            "height": int(prepared.canvas.height),
        }
    if prepared.tiles is not None:
        fields.append("tiles")
        arrays["tiles_bbox"] = np.asarray(
            [
                (t.bbox.xmin, t.bbox.ymin, t.bbox.xmax, t.bbox.ymax)
                for t in prepared.tiles
            ],
            dtype=COORD_DTYPE,
        ).reshape(len(prepared.tiles), 4)
        arrays["tiles_shape"] = np.asarray(
            [
                (t.width, t.height, t.x_offset, t.y_offset)
                for t in prepared.tiles
            ],
            dtype=INDEX_DTYPE,
        ).reshape(len(prepared.tiles), 4)
    if prepared.mbr_arrays is not None:
        fields.append("mbr_arrays")
        for name, arr in zip(
            ("mbr_xmin", "mbr_xmax", "mbr_ymin", "mbr_ymax"),
            prepared.mbr_arrays,
        ):
            arrays[name] = np.asarray(arr, dtype=COORD_DTYPE)


def _decode_canvas(arrays, manifest: dict) -> Canvas:
    ext = np.asarray(arrays["canvas_extent"], dtype=np.float64)
    _require(ext.shape == (4,), "bad canvas extent")
    meta = manifest["canvas"]
    return Canvas(
        BBox(float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])),
        int(meta["width"]), int(meta["height"]),
    )


def _decode_tiles(arrays) -> list[Viewport]:
    boxes = np.asarray(arrays["tiles_bbox"], dtype=np.float64)
    shapes = np.asarray(arrays["tiles_shape"], dtype=np.int64)
    _require(
        boxes.ndim == 2 and boxes.shape == (len(shapes), 4),
        "bad tile tables",
    )
    return [
        Viewport(
            BBox(*(float(v) for v in box)),
            int(w), int(h), x_offset=int(xo), y_offset=int(yo),
        )
        for box, (w, h, xo, yo) in zip(boxes, shapes)
    ]


def _decode_mbrs(arrays) -> tuple[np.ndarray, ...]:
    return tuple(
        np.asarray(arrays[name], dtype=np.float64)
        for name in ("mbr_xmin", "mbr_xmax", "mbr_ymin", "mbr_ymax")
    )


# ----------------------------------------------------------------------
# Per-polygon unit (de)serialization primitives
# ----------------------------------------------------------------------
def _encode_unit_triangles(units: Sequence[PolygonUnit], arrays: dict,
                           prefix: str = "") -> None:
    flat = [
        np.asarray(tri, dtype=COORD_DTYPE)
        for unit in units
        for tri in unit.triangles
    ]
    arrays[f"{prefix}tri_data"] = (
        np.stack(flat) if flat else np.zeros((0, 3, 2), dtype=COORD_DTYPE)
    )
    arrays[f"{prefix}tri_counts"] = _compact_indices(
        np.asarray([len(unit.triangles) for unit in units])
    )


def _decode_unit_triangles(units: Sequence[PolygonUnit], arrays,
                           prefix: str = "") -> None:
    data = np.asarray(arrays[f"{prefix}tri_data"], dtype=np.float64)
    counts = np.asarray(arrays[f"{prefix}tri_counts"], dtype=np.int64)
    _require(
        data.ndim == 3 and data.shape[1:] == (3, 2)
        and len(counts) == len(units)
        and int(counts.sum()) == len(data),
        "triangle table does not add up",
    )
    cursor = 0
    for unit, count in zip(units, counts):
        unit.triangles = [data[cursor + k] for k in range(int(count))]
        cursor += int(count)


def _encode_unit_cells(units: Sequence[PolygonUnit], arrays: dict,
                       prefix: str = "") -> None:
    cells = [np.asarray(unit.cells) for unit in units]
    arrays[f"{prefix}cells_data"] = _compact_indices(
        np.concatenate(cells) if cells else np.zeros(0, dtype=np.int64)
    )
    arrays[f"{prefix}cells_counts"] = _compact_indices(
        np.asarray([len(c) for c in cells])
    )


def _decode_unit_cells(units: Sequence[PolygonUnit], arrays,
                       prefix: str = "") -> None:
    data = np.asarray(arrays[f"{prefix}cells_data"], dtype=np.int64)
    counts = np.asarray(arrays[f"{prefix}cells_counts"], dtype=np.int64)
    _require(
        len(counts) == len(units) and int(counts.sum()) == len(data),
        "grid cell table does not add up",
    )
    cursor = 0
    for unit, count in zip(units, counts):
        unit.cells = data[cursor:cursor + int(count)]
        cursor += int(count)


def _encode_unit_boundary(units: Sequence[PolygonUnit], tile_idx: int,
                          arrays: dict, prefix: str = "") -> None:
    ixs = [np.asarray(unit.boundary[tile_idx][0]) for unit in units]
    iys = [np.asarray(unit.boundary[tile_idx][1]) for unit in units]
    arrays[f"{prefix}ub_{tile_idx}_ix"] = _compact_indices(
        np.concatenate(ixs) if ixs else np.zeros(0, dtype=np.int64)
    )
    arrays[f"{prefix}ub_{tile_idx}_iy"] = _compact_indices(
        np.concatenate(iys) if iys else np.zeros(0, dtype=np.int64)
    )
    arrays[f"{prefix}ub_{tile_idx}_counts"] = _compact_indices(
        np.asarray([len(ix) for ix in ixs])
    )


def _decode_unit_boundary(units: Sequence[PolygonUnit], tile_idx: int,
                          arrays, prefix: str = "") -> None:
    ix = np.asarray(arrays[f"{prefix}ub_{tile_idx}_ix"], dtype=np.int64)
    iy = np.asarray(arrays[f"{prefix}ub_{tile_idx}_iy"], dtype=np.int64)
    counts = np.asarray(
        arrays[f"{prefix}ub_{tile_idx}_counts"], dtype=np.int64
    )
    _require(
        len(counts) == len(units)
        and int(counts.sum()) == len(ix) == len(iy),
        "boundary pixel table does not add up",
    )
    cursor = 0
    for unit, count in zip(units, counts):
        unit.boundary[tile_idx] = (
            ix[cursor:cursor + int(count)],
            iy[cursor:cursor + int(count)],
        )
        cursor += int(count)


def _encode_unit_coverage(units: Sequence[PolygonUnit], tile_idx: int,
                          arrays: dict, prefix: str = "") -> None:
    pids, lens, iys, ixs = [], [], [], []
    for pid, unit in enumerate(units):
        for piece_iy, piece_ix in unit.coverage[tile_idx]:
            pids.append(pid)
            lens.append(len(piece_iy))
            iys.append(piece_iy)
            ixs.append(piece_ix)
    arrays[f"{prefix}uc_{tile_idx}_pid"] = _compact_indices(np.asarray(pids))
    arrays[f"{prefix}uc_{tile_idx}_len"] = _compact_indices(np.asarray(lens))
    arrays[f"{prefix}uc_{tile_idx}_iy"] = _compact_indices(
        np.concatenate(iys) if iys else np.zeros(0, dtype=np.int64)
    )
    arrays[f"{prefix}uc_{tile_idx}_ix"] = _compact_indices(
        np.concatenate(ixs) if ixs else np.zeros(0, dtype=np.int64)
    )


def _decode_unit_coverage(units: Sequence[PolygonUnit], tile_idx: int,
                          arrays, prefix: str = "") -> None:
    pids = np.asarray(arrays[f"{prefix}uc_{tile_idx}_pid"], dtype=np.int64)
    lens = np.asarray(arrays[f"{prefix}uc_{tile_idx}_len"], dtype=np.int64)
    iy = np.asarray(arrays[f"{prefix}uc_{tile_idx}_iy"], dtype=np.int64)
    ix = np.asarray(arrays[f"{prefix}uc_{tile_idx}_ix"], dtype=np.int64)
    _require(
        len(pids) == len(lens) and int(lens.sum()) == len(iy) == len(ix),
        "coverage table does not add up",
    )
    for unit in units:
        unit.coverage[tile_idx] = []
    cursor = 0
    for pid, length in zip(pids, lens):
        _require(0 <= int(pid) < len(units), "coverage pid out of range")
        units[int(pid)].coverage[tile_idx].append(
            (iy[cursor:cursor + int(length)], ix[cursor:cursor + int(length)])
        )
        cursor += int(length)


def _units_tiles(units: Sequence[PolygonUnit], kind: str) -> list[int]:
    """Tile indices every unit carries (the composable tiles)."""
    sets = [
        set(getattr(unit, kind)) for unit in units
    ]
    if not sets:
        return []
    common = set.intersection(*sets)
    return sorted(int(t) for t in common)


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode(prepared: PreparedPolygons, key: Sequence) -> tuple[dict, dict]:
    """Flatten an artifact into (named arrays, manifest) for persistence.

    Only populated fields are written; the manifest records which, so a
    partial artifact (triangles + grid, no coverage) round-trips as
    exactly that partial artifact.  Artifacts carrying per-polygon units
    are written in the per-polygon layout; legacy (session-less) ones in
    the composed layout.
    """
    fingerprint, *spec = key
    arrays: dict[str, np.ndarray] = {}
    fields: list[str] = []
    manifest: dict = {
        "version": FORMAT_VERSION,
        "dtype": COORD_DTYPE,
        "fingerprint": fingerprint,
        "spec": canonical_spec(spec),
        "created": time.time(),
        "nbytes": int(prepared.nbytes),
        "fields": fields,
    }
    _encode_frame(prepared, arrays, manifest, fields)
    if prepared.units is not None:
        _encode_units(prepared, arrays, manifest, fields)
    else:
        _encode_composed(prepared, arrays, manifest, fields)
    return arrays, manifest


def _encode_units(prepared: PreparedPolygons, arrays: dict,
                  manifest: dict, fields: list[str]) -> None:
    units = prepared.units
    manifest["units"] = {
        "polygon_fps": list(prepared.polygon_fps or ()),
        "bboxes": [list(unit.bbox) for unit in units],
        "source_bbox": (
            list(prepared.source_bbox)
            if prepared.source_bbox is not None else None
        ),
    }
    if all(unit.triangles is not None for unit in units):
        fields.append("triangles")
        _encode_unit_triangles(units, arrays)
    if prepared.grid is not None and all(
        unit.cells is not None for unit in units
    ):
        fields.append("grid")
        grid = prepared.grid
        ext = grid.extent
        _encode_unit_cells(units, arrays)
        arrays["grid_extent"] = np.asarray(
            [ext.xmin, ext.ymin, ext.xmax, ext.ymax], dtype=COORD_DTYPE
        )
        manifest["grid"] = {
            "resolution": int(grid.resolution),
            "assignment": grid.assignment,
        }
    boundary_tiles = _units_tiles(units, "boundary")
    if boundary_tiles:
        fields.append("boundary_masks")
        manifest["boundary_tiles"] = boundary_tiles
        for idx in boundary_tiles:
            _encode_unit_boundary(units, idx, arrays)
    coverage_tiles = _units_tiles(units, "coverage")
    if coverage_tiles:
        fields.append("coverage")
        manifest["coverage_tiles"] = coverage_tiles
        for idx in coverage_tiles:
            _encode_unit_coverage(units, idx, arrays)


def _encode_composed(prepared: PreparedPolygons, arrays: dict,
                     manifest: dict, fields: list[str]) -> None:
    """Legacy layout for artifacts without per-polygon units."""
    if prepared.triangles is not None:
        fields.append("triangles")
        flat = [
            np.asarray(tri, dtype=COORD_DTYPE)
            for tris in prepared.triangles
            for tri in tris
        ]
        arrays["tri_data"] = (
            np.stack(flat) if flat else np.zeros((0, 3, 2), dtype=COORD_DTYPE)
        )
        arrays["tri_counts"] = _compact_indices(
            np.asarray([len(tris) for tris in prepared.triangles])
        )
    if prepared.grid is not None:
        fields.append("grid")
        grid = prepared.grid
        ext = grid.extent
        arrays["grid_cell_start"] = _compact_indices(grid.cell_start)
        arrays["grid_entries"] = _compact_indices(grid.entries)
        arrays["grid_extent"] = np.asarray(
            [ext.xmin, ext.ymin, ext.xmax, ext.ymax], dtype=COORD_DTYPE
        )
        manifest["grid"] = {
            "resolution": int(grid.resolution),
            "assignment": grid.assignment,
        }
    if prepared.boundary_masks:
        fields.append("boundary_masks")
        # Masks are bit-packed on disk (8x smaller); the manifest keeps
        # each tile's (height, width) so loads can unpack exactly.
        manifest["boundary_tiles"] = [
            [idx, *map(int, prepared.boundary_masks[idx].shape)]
            for idx in sorted(int(i) for i in prepared.boundary_masks)
        ]
        for idx, _, _ in manifest["boundary_tiles"]:
            arrays[f"bmask_{idx}"] = np.packbits(prepared.boundary_masks[idx])
    if prepared.coverage:
        fields.append("coverage")
        manifest["coverage_tiles"] = sorted(int(i) for i in prepared.coverage)
        for idx in manifest["coverage_tiles"]:
            pids, lens, iys, ixs = [], [], [], []
            for pid, pieces in prepared.coverage[idx]:
                for piece_iy, piece_ix in pieces:
                    pids.append(pid)
                    lens.append(len(piece_iy))
                    iys.append(piece_iy)
                    ixs.append(piece_ix)
            arrays[f"cov_{idx}_pid"] = _compact_indices(np.asarray(pids))
            arrays[f"cov_{idx}_len"] = _compact_indices(np.asarray(lens))
            arrays[f"cov_{idx}_iy"] = _compact_indices(
                np.concatenate(iys) if iys else np.zeros(0, dtype=np.int64)
            )
            arrays[f"cov_{idx}_ix"] = _compact_indices(
                np.concatenate(ixs) if ixs else np.zeros(0, dtype=np.int64)
            )


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def validate_manifest(manifest: dict, key: Sequence) -> None:
    """Reject manifests from another format version or a different key."""
    _require(isinstance(manifest, dict), "manifest is not an object")
    _require(
        manifest.get("version") == FORMAT_VERSION,
        f"format version {manifest.get('version')!r} != {FORMAT_VERSION}",
    )
    _require(manifest.get("dtype") == COORD_DTYPE, "coordinate dtype mismatch")
    fingerprint, *spec = key
    _require(
        manifest.get("fingerprint") == fingerprint
        and manifest.get("spec") == canonical_spec(spec),
        "manifest key does not match the requested key",
    )


def decode_units_state(
    arrays, manifest: dict
) -> tuple[list[PolygonUnit], dict]:
    """Rebuild the per-polygon units and frame metadata — polygon-free.

    This is the journal-replayable half of a load: everything here is
    pure array data, so patch records can be applied to the result
    without the (intermediate) polygon sets in hand.  The final
    :func:`compose_from_units` step needs the live polygons only for the
    grid index's object references.
    """
    meta_units = manifest.get("units")
    _require(isinstance(meta_units, dict), "manifest lacks unit metadata")
    fps = list(meta_units.get("polygon_fps", ()))
    bboxes = meta_units.get("bboxes", ())
    _require(len(fps) == len(bboxes), "unit fingerprint/bbox mismatch")
    units = [
        PolygonUnit(fp, tuple(float(v) for v in bbox))
        for fp, bbox in zip(fps, bboxes)
    ]
    fields = set(manifest.get("fields", ()))
    meta: dict = {
        "fields": list(manifest.get("fields", ())),
        "polygon_fps": fps,
        "source_bbox": (
            tuple(float(v) for v in meta_units["source_bbox"])
            if meta_units.get("source_bbox") is not None else None
        ),
        "canvas": None,
        "tiles": None,
        "grid": None,
        "mbr_arrays": None,
    }
    if "canvas" in fields:
        meta["canvas"] = _decode_canvas(arrays, manifest)
    if "tiles" in fields:
        meta["tiles"] = _decode_tiles(arrays)
    if "mbr_arrays" in fields:
        meta["mbr_arrays"] = _decode_mbrs(arrays)
    if "triangles" in fields:
        _decode_unit_triangles(units, arrays)
    if "grid" in fields:
        grid_meta = manifest["grid"]
        ext = np.asarray(arrays["grid_extent"], dtype=np.float64)
        _require(ext.shape == (4,), "bad grid extent")
        _decode_unit_cells(units, arrays)
        meta["grid"] = {
            "resolution": int(grid_meta["resolution"]),
            "assignment": grid_meta["assignment"],
            "extent": BBox(
                float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])
            ),
        }
    if "boundary_masks" in fields:
        for idx in manifest.get("boundary_tiles", ()):
            _decode_unit_boundary(units, int(idx), arrays)
    if "coverage" in fields:
        for idx in manifest.get("coverage_tiles", ()):
            _decode_unit_coverage(units, int(idx), arrays)
    return units, meta


def compose_from_units(
    units: list[PolygonUnit], meta: dict, polygons, key: Sequence
) -> PreparedPolygons:
    """Assemble the engine-consumed artifact from per-polygon units.

    Runs the same composition the live session performs after a build —
    OR the outline pixels into boundary masks, exclude them from the raw
    coverage, scatter the grid CSR — so the result is bit-identical to
    the artifact that was saved.
    """
    prepared = PreparedPolygons(tuple(key))
    prepared.units = units
    prepared.polygon_fps = meta["polygon_fps"]
    prepared.source_bbox = meta["source_bbox"]
    prepared.canvas = meta["canvas"]
    prepared.tiles = meta["tiles"]
    prepared.mbr_arrays = meta["mbr_arrays"]
    if all(unit.triangles is not None for unit in units):
        prepared.triangles = [unit.triangles for unit in units]
    grid_meta = meta["grid"]
    if grid_meta is not None and all(
        unit.cells is not None for unit in units
    ):
        prepared.grid = GridIndex.from_cells(
            polygons,
            [unit.cells for unit in units],
            resolution=grid_meta["resolution"],
            assignment=grid_meta["assignment"],
            extent=grid_meta["extent"],
        )
        prepared.grid.build_seconds = 0.0  # nothing was rebuilt
    boundary_tiles = _units_tiles(units, "boundary")
    if boundary_tiles:
        _require(prepared.tiles is not None,
                 "boundary pixels without tile layout")
        for idx in boundary_tiles:
            _require(0 <= idx < len(prepared.tiles),
                     "boundary tile out of range")
            prepared.boundary_masks[idx] = prepared.compose_boundary(
                idx, prepared.tiles[idx]
            )
    for idx in _units_tiles(units, "coverage"):
        prepared.coverage[idx] = prepared.compose_coverage(
            idx, prepared.boundary_masks.get(idx)
        )
    return prepared


def decode(arrays, manifest: dict, polygons, key: Sequence) -> PreparedPolygons:
    """Rebuild a :class:`PreparedPolygons` from persisted arrays.

    ``polygons`` is the live polygon set the caller is querying with —
    the grid index references polygon objects, which are never persisted
    (the fingerprint in the key guarantees the caller's geometry is the
    geometry the artifact was built from).
    """
    if manifest.get("units") is not None:
        units, meta = decode_units_state(arrays, manifest)
        return compose_from_units(units, meta, polygons, key)
    return _decode_composed(arrays, manifest, polygons, key)


def _decode_composed(arrays, manifest: dict, polygons,
                     key: Sequence) -> PreparedPolygons:
    """Legacy layout: set-level arrays stored directly."""
    prepared = PreparedPolygons(tuple(key))
    fields = set(manifest.get("fields", ()))

    if "canvas" in fields:
        prepared.canvas = _decode_canvas(arrays, manifest)
    if "tiles" in fields:
        prepared.tiles = _decode_tiles(arrays)
    if "triangles" in fields:
        data = np.asarray(arrays["tri_data"], dtype=np.float64)
        counts = np.asarray(arrays["tri_counts"], dtype=np.int64)
        _require(
            data.ndim == 3 and data.shape[1:] == (3, 2)
            and int(counts.sum()) == len(data),
            "triangle table does not add up",
        )
        triangles: list[list[np.ndarray]] = []
        cursor = 0
        for count in counts:
            triangles.append(
                [data[cursor + k] for k in range(int(count))]
            )
            cursor += int(count)
        prepared.triangles = triangles
    if "grid" in fields:
        meta = manifest["grid"]
        ext = np.asarray(arrays["grid_extent"], dtype=np.float64)
        _require(ext.shape == (4,), "bad grid extent")
        cell_start = np.asarray(arrays["grid_cell_start"], dtype=np.int64)
        entries = np.asarray(arrays["grid_entries"], dtype=np.int64)
        resolution = int(meta["resolution"])
        _require(
            len(cell_start) == resolution * resolution + 1
            and int(cell_start[-1]) == len(entries),
            "grid CSR arrays do not add up",
        )
        prepared.grid = GridIndex.from_arrays(
            polygons,
            resolution=resolution,
            assignment=meta["assignment"],
            extent=BBox(
                float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])
            ),
            cell_start=cell_start,
            entries=entries,
        )
    if "boundary_masks" in fields:
        for idx, height, width in manifest["boundary_tiles"]:
            packed = np.asarray(arrays[f"bmask_{idx}"], dtype=np.uint8)
            count = int(height) * int(width)
            _require(packed.size * 8 >= count, "bad boundary mask size")
            prepared.boundary_masks[int(idx)] = (
                np.unpackbits(packed, count=count)
                .reshape(int(height), int(width))
                .astype(bool)
            )
    if "coverage" in fields:
        for idx in manifest["coverage_tiles"]:
            pids = np.asarray(arrays[f"cov_{idx}_pid"], dtype=np.int64)
            lens = np.asarray(arrays[f"cov_{idx}_len"], dtype=np.int64)
            iy = np.asarray(arrays[f"cov_{idx}_iy"], dtype=np.int64)
            ix = np.asarray(arrays[f"cov_{idx}_ix"], dtype=np.int64)
            _require(
                len(pids) == len(lens)
                and int(lens.sum()) == len(iy) == len(ix),
                "coverage table does not add up",
            )
            entries_list: list = []
            cursor = 0
            for pid, length in zip(pids, lens):
                piece = (
                    iy[cursor:cursor + int(length)],
                    ix[cursor:cursor + int(length)],
                )
                cursor += int(length)
                # Pieces of one polygon are stored (and were built)
                # consecutively, so regrouping by run reproduces the
                # original [(pid, [pieces])] structure exactly.
                if entries_list and entries_list[-1][0] == int(pid):
                    entries_list[-1][1].append(piece)
                else:
                    entries_list.append((int(pid), [piece]))
            prepared.coverage[int(idx)] = entries_list
    if "mbr_arrays" in fields:
        prepared.mbr_arrays = _decode_mbrs(arrays)
    return prepared


# ----------------------------------------------------------------------
# Patch records (per-polygon edits, journaled by the store)
# ----------------------------------------------------------------------
def encode_patch(prepared: PreparedPolygons, key: Sequence) -> tuple[dict, dict]:
    """Flatten a delta-derived artifact into (arrays, header).

    The arrays carry **only the rebuilt polygons'** unit state; the
    header records how every polygon of the new set maps onto the parent
    artifact (``parent_map``), so replay clones the unchanged units from
    the parent and decodes just the dirty ones.  Raises
    :class:`ArtifactFormatError` when the artifact has no delta
    provenance.
    """
    _require(
        prepared.units is not None and prepared.delta_parent is not None
        and prepared.parent_map is not None,
        "artifact has no delta provenance to patch from",
    )
    fingerprint, *spec = key
    dirty = list(prepared.delta_dirty or ())
    dirty_units = [prepared.units[pid] for pid in dirty]
    header: dict = {
        "version": FORMAT_VERSION,
        "dtype": COORD_DTYPE,
        "type": "patch",
        "fingerprint": fingerprint,
        "spec": canonical_spec(spec),
        "parent_fingerprint": prepared.delta_parent[0],
        "parent_map": list(prepared.parent_map),
        "dirty": dirty,
        "polygon_fps": list(prepared.polygon_fps or ()),
        "bboxes": [list(prepared.units[pid].bbox) for pid in dirty],
        "source_bbox": (
            list(prepared.source_bbox)
            if prepared.source_bbox is not None else None
        ),
        "created": time.time(),
        "nbytes": int(prepared.nbytes),
        "fields": _effective_fields(prepared),
    }
    arrays: dict[str, np.ndarray] = {}
    if dirty_units and all(u.triangles is not None for u in dirty_units):
        header["has_triangles"] = True
        _encode_unit_triangles(dirty_units, arrays, prefix="d_")
    if (
        prepared.grid is not None
        and dirty_units
        and all(u.cells is not None for u in dirty_units)
    ):
        ext = prepared.grid.extent
        header["grid"] = {
            "resolution": int(prepared.grid.resolution),
            "assignment": prepared.grid.assignment,
            "extent": [ext.xmin, ext.ymin, ext.xmax, ext.ymax],
        }
        _encode_unit_cells(dirty_units, arrays, prefix="d_")
    boundary_tiles = (
        _units_tiles(dirty_units, "boundary") if dirty_units
        else _units_tiles(prepared.units, "boundary")
    )
    header["boundary_tiles"] = boundary_tiles
    for idx in boundary_tiles if dirty_units else []:
        _encode_unit_boundary(dirty_units, idx, arrays, prefix="d_")
    coverage_tiles = (
        _units_tiles(dirty_units, "coverage") if dirty_units
        else _units_tiles(prepared.units, "coverage")
    )
    header["coverage_tiles"] = coverage_tiles
    for idx in coverage_tiles if dirty_units else []:
        _encode_unit_coverage(dirty_units, idx, arrays, prefix="d_")
    return arrays, header


def _effective_fields(prepared: PreparedPolygons) -> list[str]:
    """The composed-equivalent field list of a unit-carrying artifact."""
    fields: list[str] = []
    if prepared.canvas is not None:
        fields.append("canvas")
    if prepared.tiles is not None:
        fields.append("tiles")
    if prepared.mbr_arrays is not None:
        fields.append("mbr_arrays")
    units = prepared.units or []
    if units and all(u.triangles is not None for u in units):
        fields.append("triangles")
    if prepared.grid is not None and units and all(
        u.cells is not None for u in units
    ):
        fields.append("grid")
    if _units_tiles(units, "boundary"):
        fields.append("boundary_masks")
    if _units_tiles(units, "coverage"):
        fields.append("coverage")
    return fields


def apply_patch(
    parent_units: list[PolygonUnit],
    parent_meta: dict,
    header: dict,
    arrays,
) -> tuple[list[PolygonUnit], dict]:
    """Apply one journal record to a (units, meta) state.

    Clones the unchanged units per ``parent_map`` and decodes the dirty
    ones from the record's arrays.  Pure array work — no polygon
    objects, so a whole chain replays before the final composition.
    """
    parent_map = header.get("parent_map", ())
    dirty = list(header.get("dirty", ()))
    fps = list(header.get("polygon_fps", ()))
    _require(len(parent_map) == len(fps), "patch header tables disagree")
    if header.get("source_bbox") is not None and (
        parent_meta.get("source_bbox") is not None
    ):
        _require(
            tuple(float(v) for v in header["source_bbox"])
            == tuple(parent_meta["source_bbox"]),
            "patch frame does not match the parent artifact",
        )
    dirty_bboxes = header.get("bboxes", ())
    _require(len(dirty_bboxes) == len(dirty), "patch bbox table disagrees")
    dirty_units = [
        PolygonUnit(fps[pid], tuple(float(v) for v in bbox))
        for pid, bbox in zip(dirty, dirty_bboxes)
    ]
    if header.get("has_triangles"):
        _decode_unit_triangles(dirty_units, arrays, prefix="d_")
    grid_meta = header.get("grid")
    meta = dict(parent_meta)
    meta["polygon_fps"] = fps
    if grid_meta is not None:
        _decode_unit_cells(dirty_units, arrays, prefix="d_")
        ext = grid_meta["extent"]
        meta["grid"] = {
            "resolution": int(grid_meta["resolution"]),
            "assignment": grid_meta["assignment"],
            "extent": BBox(
                float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])
            ),
        }
    for idx in header.get("boundary_tiles", ()) if dirty_units else []:
        _decode_unit_boundary(dirty_units, int(idx), arrays, prefix="d_")
    for idx in header.get("coverage_tiles", ()) if dirty_units else []:
        _decode_unit_coverage(dirty_units, int(idx), arrays, prefix="d_")
    units: list[PolygonUnit] = []
    cursor = 0
    for pid, src in enumerate(parent_map):
        if src >= 0:
            _require(src < len(parent_units), "patch parent id out of range")
            units.append(parent_units[src].clone())
        else:
            _require(cursor < len(dirty_units), "patch dirty table short")
            units.append(dirty_units[cursor])
            cursor += 1
    _require(cursor == len(dirty_units), "patch dirty table long")
    # MBR columns are a cheap pure function of the live polygons; a
    # patched state drops them rather than splicing (ensure_mbr_arrays
    # rebuilds bit-identically on first use).
    meta["mbr_arrays"] = None
    meta["fields"] = [f for f in header.get("fields", ()) if f != "mbr_arrays"]
    return units, meta


# ----------------------------------------------------------------------
# Aggregate pyramids (repro.cache.pyramid) — a second artifact type
# sharing the pair layout, keyed by *point* content instead of polygons
# ----------------------------------------------------------------------
def encode_pyramid(pyramid, key: Sequence) -> tuple[dict, dict]:
    """(arrays, manifest) for an :class:`~repro.cache.pyramid.AggregatePyramid`.

    Only level 0 of each channel is stored — the coarser levels are a
    pure deterministic reduction and rebuild on load
    (:meth:`~repro.cache.pyramid.AggregatePyramid.install_channel`), so
    persisting them would roughly double the payload to save no work
    worth timing.  ``key`` is ``(point content fingerprint, *grid-frame
    token)``; the manifest records it like the polygon artifacts do.
    """
    fingerprint, *spec = key
    arrays: dict = {
        "pyr_point_order": _compact_indices(pyramid.point_order),
        "pyr_cell_start": np.asarray(pyramid.cell_start, dtype=INDEX_DTYPE),
    }
    channels = []
    for idx, ((kind, column), level0) in enumerate(
        sorted(pyramid.level_zero().items(), key=lambda kv: (
            kv[0][0], kv[0][1] or ""
        ))
    ):
        arrays[f"pyr_ch_{idx}"] = np.asarray(level0, dtype=COORD_DTYPE)
        channels.append([kind, column])
    manifest = {
        "version": FORMAT_VERSION,
        "dtype": COORD_DTYPE,
        "type": "pyramid",
        "fingerprint": fingerprint,
        "spec": canonical_spec(spec),
        "extent": [float(v) for v in pyramid.extent],
        "resolution": int(pyramid.resolution),
        "num_points": int(pyramid.num_points),
        "channels": channels,
    }
    return arrays, manifest


def validate_pyramid_manifest(manifest: dict, key: Sequence) -> None:
    """:func:`validate_manifest` plus the pyramid type tag."""
    validate_manifest(manifest, key)
    _require(manifest.get("type") == "pyramid", "not a pyramid artifact")


def decode_pyramid(arrays, manifest: dict):
    """Rebuild a pyramid from a validated pair (upper levels re-derived)."""
    from repro.cache.pyramid import AggregatePyramid

    resolution = int(manifest["resolution"])
    num_cells = resolution * resolution
    cell_start = np.asarray(arrays["pyr_cell_start"], dtype=np.int64)
    _require(
        cell_start.shape == (num_cells + 1,), "pyramid cell_start shape"
    )
    point_order = np.asarray(arrays["pyr_point_order"], dtype=np.int64)
    _require(
        len(point_order) == int(cell_start[-1]), "pyramid point_order length"
    )
    pyramid = AggregatePyramid(
        tuple(float(v) for v in manifest["extent"]),
        resolution,
        int(manifest["num_points"]),
        point_order,
        cell_start,
    )
    for idx, (kind, column) in enumerate(manifest.get("channels", ())):
        level0 = np.asarray(arrays[f"pyr_ch_{idx}"], dtype=np.float64)
        _require(
            level0.shape == (resolution, resolution),
            "pyramid channel shape",
        )
        pyramid.install_channel(str(kind), column, level0)
    return pyramid
