"""On-disk artifact format: one ``.npz`` + one JSON manifest per key.

A persisted :class:`~repro.cache.prepared.PreparedPolygons` is split into
two files so the cheap part (the manifest) can be read without touching
the bulk arrays:

* ``<key_id>.npz`` — every array field of the artifact, flattened into
  named NumPy arrays (triangles, grid CSR, boundary masks, coverage
  indices, MBR columns, canvas/tile geometry);
* ``<key_id>.json`` — the manifest: format version, the full cache key
  (fingerprint + render spec), which fields are present, structural
  metadata, and a checksum over the ``.npz`` bytes.

``key_id`` is a content hash of ``(FORMAT_VERSION, COORD_DTYPE,
fingerprint, spec)``: bumping the format version or changing the
canonical coordinate dtype silently invalidates every existing file by
keying new names, so no migration code is ever needed — stale files age
out through the disk budget.

Everything here is pure (bytes in, objects out); durability, atomicity,
and eviction live in :mod:`repro.store.store`.
"""

from __future__ import annotations

import hashlib
import json
import time
from typing import Sequence

import numpy as np

from repro.cache.prepared import PreparedPolygons
from repro.errors import QueryError
from repro.geometry.bbox import BBox
from repro.graphics.viewport import Canvas, Viewport
from repro.index.grid import GridIndex

#: Bump on any incompatible change to the array layout or manifest shape.
#: The version participates in the key hash, so old artifacts are never
#: even opened by a newer reader — they just stop being addressable.
FORMAT_VERSION = 1

#: Canonical coordinate dtype: little-endian float64.  Part of the key so
#: artifacts written on any platform address the same bytes.
COORD_DTYPE = "<f8"

#: Index dtype for pixel/CSR arrays.
INDEX_DTYPE = "<i8"

#: Narrow on-disk index dtype, used whenever the values fit.  Pixel and
#: CSR indices are int64 in memory but virtually never exceed 2^31, so
#: storing them as int32 halves the dominant arrays; loads widen them
#: back, making the round trip value-exact either way.
NARROW_INDEX_DTYPE = "<i4"


def _compact_indices(arr: np.ndarray) -> np.ndarray:
    """Non-negative index array in the narrowest lossless on-disk dtype."""
    arr = np.asarray(arr)
    if arr.size == 0 or int(arr.max()) < np.iinfo(np.int32).max:
        return arr.astype(NARROW_INDEX_DTYPE)
    return arr.astype(INDEX_DTYPE)


class ArtifactFormatError(QueryError):
    """A persisted artifact failed validation (corrupt, torn, or stale)."""


def _canonical_value(value):
    if isinstance(value, np.bool_):
        return bool(value)
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    if isinstance(value, (list, tuple)):
        return [_canonical_value(v) for v in value]
    return value


def canonical_spec(spec: Sequence) -> list:
    """Render-spec values in the exact shape JSON will return them.

    Two jobs, both at the format boundary so save/hash/validate can
    never disagree: NumPy scalars (``resolution=np.int64(...)`` out of
    a parameter sweep) become their Python counterparts instead of
    crashing the manifest dump, and nested sequences become lists —
    the shape a JSON round trip produces — so a spec saved with a tuple
    in it still validates when loaded back.
    """
    return [_canonical_value(value) for value in spec]


def key_id(key: Sequence) -> str:
    """Stable file-name hash of a cache key (fingerprint + render spec).

    The hash covers the format version and canonical dtype in addition to
    the key itself, so a format bump or dtype change re-keys every
    artifact instead of misreading old bytes.
    """
    fingerprint, *spec = key
    canonical = json.dumps(
        [FORMAT_VERSION, COORD_DTYPE, fingerprint, canonical_spec(spec)],
        separators=(",", ":"),
        sort_keys=True,
    )
    return hashlib.blake2b(canonical.encode("utf-8"), digest_size=16).hexdigest()


def checksum(data: bytes) -> str:
    """Integrity digest stored in the manifest and verified on load."""
    return hashlib.blake2b(data, digest_size=16).hexdigest()


# ----------------------------------------------------------------------
# Encode
# ----------------------------------------------------------------------
def encode(prepared: PreparedPolygons, key: Sequence) -> tuple[dict, dict]:
    """Flatten an artifact into (named arrays, manifest) for persistence.

    Only populated fields are written; the manifest records which, so a
    partial artifact (triangles + grid, no coverage) round-trips as
    exactly that partial artifact.
    """
    fingerprint, *spec = key
    arrays: dict[str, np.ndarray] = {}
    fields: list[str] = []
    manifest: dict = {
        "version": FORMAT_VERSION,
        "dtype": COORD_DTYPE,
        "fingerprint": fingerprint,
        "spec": canonical_spec(spec),
        "created": time.time(),
        "nbytes": int(prepared.nbytes),
        "fields": fields,
    }

    if prepared.canvas is not None:
        fields.append("canvas")
        ext = prepared.canvas.extent
        arrays["canvas_extent"] = np.asarray(
            [ext.xmin, ext.ymin, ext.xmax, ext.ymax], dtype=COORD_DTYPE
        )
        manifest["canvas"] = {
            "width": int(prepared.canvas.width),
            "height": int(prepared.canvas.height),
        }
    if prepared.tiles is not None:
        fields.append("tiles")
        arrays["tiles_bbox"] = np.asarray(
            [
                (t.bbox.xmin, t.bbox.ymin, t.bbox.xmax, t.bbox.ymax)
                for t in prepared.tiles
            ],
            dtype=COORD_DTYPE,
        ).reshape(len(prepared.tiles), 4)
        arrays["tiles_shape"] = np.asarray(
            [
                (t.width, t.height, t.x_offset, t.y_offset)
                for t in prepared.tiles
            ],
            dtype=INDEX_DTYPE,
        ).reshape(len(prepared.tiles), 4)
    if prepared.triangles is not None:
        fields.append("triangles")
        flat = [
            np.asarray(tri, dtype=COORD_DTYPE)
            for tris in prepared.triangles
            for tri in tris
        ]
        arrays["tri_data"] = (
            np.stack(flat) if flat else np.zeros((0, 3, 2), dtype=COORD_DTYPE)
        )
        arrays["tri_counts"] = _compact_indices(
            np.asarray([len(tris) for tris in prepared.triangles])
        )
    if prepared.grid is not None:
        fields.append("grid")
        grid = prepared.grid
        ext = grid.extent
        arrays["grid_cell_start"] = _compact_indices(grid.cell_start)
        arrays["grid_entries"] = _compact_indices(grid.entries)
        arrays["grid_extent"] = np.asarray(
            [ext.xmin, ext.ymin, ext.xmax, ext.ymax], dtype=COORD_DTYPE
        )
        manifest["grid"] = {
            "resolution": int(grid.resolution),
            "assignment": grid.assignment,
        }
    if prepared.boundary_masks:
        fields.append("boundary_masks")
        # Masks are bit-packed on disk (8x smaller); the manifest keeps
        # each tile's (height, width) so loads can unpack exactly.
        manifest["boundary_tiles"] = [
            [idx, *map(int, prepared.boundary_masks[idx].shape)]
            for idx in sorted(int(i) for i in prepared.boundary_masks)
        ]
        for idx, _, _ in manifest["boundary_tiles"]:
            arrays[f"bmask_{idx}"] = np.packbits(prepared.boundary_masks[idx])
    if prepared.coverage:
        fields.append("coverage")
        manifest["coverage_tiles"] = sorted(int(i) for i in prepared.coverage)
        for idx in manifest["coverage_tiles"]:
            pids, lens, iys, ixs = [], [], [], []
            for pid, pieces in prepared.coverage[idx]:
                for piece_iy, piece_ix in pieces:
                    pids.append(pid)
                    lens.append(len(piece_iy))
                    iys.append(piece_iy)
                    ixs.append(piece_ix)
            arrays[f"cov_{idx}_pid"] = _compact_indices(np.asarray(pids))
            arrays[f"cov_{idx}_len"] = _compact_indices(np.asarray(lens))
            arrays[f"cov_{idx}_iy"] = _compact_indices(
                np.concatenate(iys) if iys else np.zeros(0, dtype=np.int64)
            )
            arrays[f"cov_{idx}_ix"] = _compact_indices(
                np.concatenate(ixs) if ixs else np.zeros(0, dtype=np.int64)
            )
    if prepared.mbr_arrays is not None:
        fields.append("mbr_arrays")
        for name, arr in zip(
            ("mbr_xmin", "mbr_xmax", "mbr_ymin", "mbr_ymax"),
            prepared.mbr_arrays,
        ):
            arrays[name] = np.asarray(arr, dtype=COORD_DTYPE)
    return arrays, manifest


# ----------------------------------------------------------------------
# Decode
# ----------------------------------------------------------------------
def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ArtifactFormatError(message)


def validate_manifest(manifest: dict, key: Sequence) -> None:
    """Reject manifests from another format version or a different key."""
    _require(isinstance(manifest, dict), "manifest is not an object")
    _require(
        manifest.get("version") == FORMAT_VERSION,
        f"format version {manifest.get('version')!r} != {FORMAT_VERSION}",
    )
    _require(manifest.get("dtype") == COORD_DTYPE, "coordinate dtype mismatch")
    fingerprint, *spec = key
    _require(
        manifest.get("fingerprint") == fingerprint
        and manifest.get("spec") == canonical_spec(spec),
        "manifest key does not match the requested key",
    )


def decode(arrays, manifest: dict, polygons, key: Sequence) -> PreparedPolygons:
    """Rebuild a :class:`PreparedPolygons` from persisted arrays.

    ``polygons`` is the live polygon set the caller is querying with —
    the grid index references polygon objects, which are never persisted
    (the fingerprint in the key guarantees the caller's geometry is the
    geometry the artifact was built from).
    """
    prepared = PreparedPolygons(tuple(key))
    fields = set(manifest.get("fields", ()))

    if "canvas" in fields:
        ext = np.asarray(arrays["canvas_extent"], dtype=np.float64)
        _require(ext.shape == (4,), "bad canvas extent")
        meta = manifest["canvas"]
        prepared.canvas = Canvas(
            BBox(float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])),
            int(meta["width"]), int(meta["height"]),
        )
    if "tiles" in fields:
        boxes = np.asarray(arrays["tiles_bbox"], dtype=np.float64)
        shapes = np.asarray(arrays["tiles_shape"], dtype=np.int64)
        _require(
            boxes.ndim == 2 and boxes.shape == (len(shapes), 4),
            "bad tile tables",
        )
        prepared.tiles = [
            Viewport(
                BBox(*(float(v) for v in box)),
                int(w), int(h), x_offset=int(xo), y_offset=int(yo),
            )
            for box, (w, h, xo, yo) in zip(boxes, shapes)
        ]
    if "triangles" in fields:
        data = np.asarray(arrays["tri_data"], dtype=np.float64)
        counts = np.asarray(arrays["tri_counts"], dtype=np.int64)
        _require(
            data.ndim == 3 and data.shape[1:] == (3, 2)
            and int(counts.sum()) == len(data),
            "triangle table does not add up",
        )
        triangles: list[list[np.ndarray]] = []
        cursor = 0
        for count in counts:
            triangles.append(
                [data[cursor + k] for k in range(int(count))]
            )
            cursor += int(count)
        prepared.triangles = triangles
    if "grid" in fields:
        meta = manifest["grid"]
        ext = np.asarray(arrays["grid_extent"], dtype=np.float64)
        _require(ext.shape == (4,), "bad grid extent")
        cell_start = np.asarray(arrays["grid_cell_start"], dtype=np.int64)
        entries = np.asarray(arrays["grid_entries"], dtype=np.int64)
        resolution = int(meta["resolution"])
        _require(
            len(cell_start) == resolution * resolution + 1
            and int(cell_start[-1]) == len(entries),
            "grid CSR arrays do not add up",
        )
        prepared.grid = GridIndex.from_arrays(
            polygons,
            resolution=resolution,
            assignment=meta["assignment"],
            extent=BBox(
                float(ext[0]), float(ext[1]), float(ext[2]), float(ext[3])
            ),
            cell_start=cell_start,
            entries=entries,
        )
    if "boundary_masks" in fields:
        for idx, height, width in manifest["boundary_tiles"]:
            packed = np.asarray(arrays[f"bmask_{idx}"], dtype=np.uint8)
            count = int(height) * int(width)
            _require(packed.size * 8 >= count, "bad boundary mask size")
            prepared.boundary_masks[int(idx)] = (
                np.unpackbits(packed, count=count)
                .reshape(int(height), int(width))
                .astype(bool)
            )
    if "coverage" in fields:
        for idx in manifest["coverage_tiles"]:
            pids = np.asarray(arrays[f"cov_{idx}_pid"], dtype=np.int64)
            lens = np.asarray(arrays[f"cov_{idx}_len"], dtype=np.int64)
            iy = np.asarray(arrays[f"cov_{idx}_iy"], dtype=np.int64)
            ix = np.asarray(arrays[f"cov_{idx}_ix"], dtype=np.int64)
            _require(
                len(pids) == len(lens)
                and int(lens.sum()) == len(iy) == len(ix),
                "coverage table does not add up",
            )
            entries_list: list = []
            cursor = 0
            for pid, length in zip(pids, lens):
                piece = (
                    iy[cursor:cursor + int(length)],
                    ix[cursor:cursor + int(length)],
                )
                cursor += int(length)
                # Pieces of one polygon are stored (and were built)
                # consecutively, so regrouping by run reproduces the
                # original [(pid, [pieces])] structure exactly.
                if entries_list and entries_list[-1][0] == int(pid):
                    entries_list[-1][1].append(piece)
                else:
                    entries_list.append((int(pid), [piece]))
            prepared.coverage[int(idx)] = entries_list
    if "mbr_arrays" in fields:
        prepared.mbr_arrays = tuple(
            np.asarray(arrays[name], dtype=np.float64)
            for name in ("mbr_xmin", "mbr_xmax", "mbr_ymin", "mbr_ymax")
        )
    return prepared
