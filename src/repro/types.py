"""Shared result and statistics types.

Every engine returns an :class:`AggregationResult`; its
:class:`ExecutionStats` carries the timing breakdown the paper reports
(transfer vs. processing, polygon preprocessing, PIP-test counts) so the
benchmark harness can regenerate the figures without re-instrumenting the
engines.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np


@dataclass
class ExecutionStats:
    """Timing and work counters for one query execution.

    All times are seconds.  ``transfer_s`` covers host-to-device copies of
    point batches; ``processing_s`` is device-side work (rasterization,
    probes, PIP tests, aggregation); ``triangulation_s`` and
    ``index_build_s`` are the polygon preprocessing costs of Table 1, kept
    separate because the paper excludes them from query time but reports
    them on their own.  ``prepared_hits``/``prepared_misses`` count
    *in-memory* prepared-state cache lookups when the engine runs with a
    :class:`~repro.cache.session.QuerySession` (zero without one): a hit
    means triangulation, grid index, canvas layout, boundary masks, and
    polygon coverage were all reused instead of rebuilt.
    ``prepared_store_hits`` counts the memory misses that were answered
    by the session's disk tier (the artifact store) instead of a rebuild
    — every store hit is also counted as a ``prepared_miss``, so the
    memory-cache counters read the same whether or not a store is
    attached.
    """

    engine: str = ""
    transfer_s: float = 0.0
    processing_s: float = 0.0
    #: The polygon-pass share of ``processing_s`` (coverage build +
    #: channel reduction); the cost model's calibration uses the measured
    #: split between point rendering and the polygon pass instead of
    #: guessing one.
    polygon_pass_s: float = 0.0
    #: Parent-side point partitioning (one global projection + bucketing
    #: per chunk on multi-tile canvases); part of query processing time.
    partition_s: float = 0.0
    triangulation_s: float = 0.0
    index_build_s: float = 0.0
    io_s: float = 0.0
    pip_tests: int = 0
    points_processed: int = 0
    points_filtered_out: int = 0
    boundary_points: int = 0
    passes: int = 1
    batches: int = 1
    bytes_transferred: int = 0
    prepared_hits: int = 0
    prepared_misses: int = 0
    prepared_store_hits: int = 0
    #: Memory misses answered by *delta derivation* from a sibling
    #: artifact (an edited polygon set adopting the unchanged polygons'
    #: prepared state); like store hits, every delta hit is also counted
    #: as a ``prepared_miss``.  ``extra["polygons_rebuilt"]`` reports how
    #: many polygons the derivation actually had to rebuild.
    prepared_delta_hits: int = 0
    extra: dict = field(default_factory=dict)

    @property
    def query_s(self) -> float:
        """Query execution time as the paper reports it.

        Polygon preprocessing (triangulation, index creation) is excluded,
        matching §7.1: "we do not include the polygon processing time in
        the reported query execution time".
        """
        return self.transfer_s + self.processing_s + self.partition_s + self.io_s

    @property
    def total_s(self) -> float:
        """End-to-end time including polygon preprocessing."""
        return self.query_s + self.triangulation_s + self.index_build_s

    def merge(self, other: "ExecutionStats") -> None:
        """Accumulate another execution's counters into this one."""
        self.transfer_s += other.transfer_s
        self.processing_s += other.processing_s
        self.polygon_pass_s += other.polygon_pass_s
        self.partition_s += other.partition_s
        self.triangulation_s += other.triangulation_s
        self.index_build_s += other.index_build_s
        self.io_s += other.io_s
        self.pip_tests += other.pip_tests
        self.points_processed += other.points_processed
        self.points_filtered_out += other.points_filtered_out
        self.boundary_points += other.boundary_points
        self.passes += other.passes
        self.batches += other.batches
        self.bytes_transferred += other.bytes_transferred
        self.prepared_hits += other.prepared_hits
        self.prepared_misses += other.prepared_misses
        self.prepared_store_hits += other.prepared_store_hits
        self.prepared_delta_hits += other.prepared_delta_hits
        # ``extra`` merges by type: numeric entries are per-execution
        # work counts (``boundary_pixels``, ``materialized_pairs``) and
        # sum; everything else — strings ("partition", "pool"), bools,
        # tuples — describes the execution environment, where the most
        # recent execution wins.  bool is checked before int/float
        # because it *is* an int in Python, and True+True == 2 would turn
        # a flag into a count.
        for key, value in other.extra.items():
            if isinstance(value, bool):
                self.extra[key] = value
            elif isinstance(value, (int, float)):
                base = self.extra.get(key, 0)
                if isinstance(base, (int, float)) and not isinstance(base, bool):
                    self.extra[key] = base + value
                else:
                    self.extra[key] = value
            else:
                self.extra[key] = value

    # ------------------------------------------------------------------
    def summary(self) -> str:
        """The §7.1 timing breakdown as an aligned two-column table."""
        rows: list[tuple[str, str]] = []

        def add(label: str, value) -> None:
            if isinstance(value, float):
                rows.append((label, f"{value:.4f}"))
            else:
                rows.append((label, f"{value}"))

        add("engine", self.engine or "?")
        add("transfer_s", self.transfer_s)
        add("processing_s", self.processing_s)
        add("  polygon_pass_s", self.polygon_pass_s)
        add("partition_s", self.partition_s)
        add("io_s", self.io_s)
        add("query_s", self.query_s)
        add("triangulation_s", self.triangulation_s)
        add("index_build_s", self.index_build_s)
        add("total_s", self.total_s)
        add("points_processed", self.points_processed)
        if self.points_filtered_out:
            add("points_filtered_out", self.points_filtered_out)
        if self.boundary_points:
            add("boundary_points", self.boundary_points)
        if self.pip_tests:
            add("pip_tests", self.pip_tests)
        add("passes", self.passes)
        add("batches", self.batches)
        add("bytes_transferred", self.bytes_transferred)
        if self.prepared_hits or self.prepared_misses:
            add("prepared_hits", self.prepared_hits)
            add("prepared_misses", self.prepared_misses)
        if self.prepared_store_hits:
            add("prepared_store_hits", self.prepared_store_hits)
        if self.prepared_delta_hits:
            add("prepared_delta_hits", self.prepared_delta_hits)
        for key in sorted(self.extra):
            add(f"extra.{key}", self.extra[key])
        width = max(len(label) for label, _ in rows)
        vwidth = max(len(value) for _, value in rows)
        lines = [f"{label.ljust(width)}  {value.rjust(vwidth)}"
                 for label, value in rows]
        return "\n".join(lines)

    def as_span_attrs(self) -> dict:
        """The stats ↔ span bridge: the breakdown as flat span attributes.

        Engines stamp this onto the query root span so exported traces
        carry the same §7.1 numbers as the stats object, without the
        exporters needing to know about :class:`ExecutionStats`.
        """
        attrs = {
            "engine": self.engine,
            "transfer_s": self.transfer_s,
            "processing_s": self.processing_s,
            "polygon_pass_s": self.polygon_pass_s,
            "partition_s": self.partition_s,
            "triangulation_s": self.triangulation_s,
            "index_build_s": self.index_build_s,
            "io_s": self.io_s,
            "query_s": self.query_s,
            "points_processed": self.points_processed,
            "pip_tests": self.pip_tests,
            "batches": self.batches,
            "bytes_transferred": self.bytes_transferred,
        }
        for key, value in self.extra.items():
            attrs[f"extra.{key}"] = value
        return attrs


@dataclass
class ResultIntervals:
    """Per-polygon result ranges for the bounded raster join (§5).

    ``loose_lo``/``loose_hi`` hold with 100% confidence: every false
    positive or negative lives in a boundary pixel, so subtracting or
    adding whole boundary-pixel totals bounds the exact value.  The
    ``expected_*`` interval assumes points are uniformly distributed within
    each (tiny) boundary pixel and scales boundary-pixel totals by the
    pixel∩polygon area fraction.
    """

    loose_lo: np.ndarray
    loose_hi: np.ndarray
    expected_lo: np.ndarray
    expected_hi: np.ndarray
    expected_value: np.ndarray

    def contains(self, exact: np.ndarray) -> np.ndarray:
        """Whether each exact value lies in the loose interval."""
        exact = np.asarray(exact, dtype=np.float64)
        return (exact >= self.loose_lo - 1e-9) & (exact <= self.loose_hi + 1e-9)


@dataclass
class AggregationResult:
    """The answer to one spatial aggregation query.

    ``values[i]`` is the aggregate for polygon ``i`` (the GROUP BY R.id
    output).  ``channels`` exposes the raw distributive parts (e.g. the sum
    and count behind an average).  ``intervals`` is populated only when the
    bounded engine is asked for result ranges.
    """

    values: np.ndarray
    channels: dict[str, np.ndarray]
    stats: ExecutionStats
    intervals: ResultIntervals | None = None
    #: Root :class:`repro.obs.trace.Span` of the execution, populated
    #: only when tracing was active (``$REPRO_TRACE`` or an ambient
    #: tracer such as ``EXPLAIN ANALYZE``); ``None`` otherwise.
    trace: object | None = None

    def __len__(self) -> int:
        return len(self.values)

    def max_abs_error(self, reference: "AggregationResult") -> float:
        """Largest absolute per-polygon deviation from a reference result."""
        return float(np.max(np.abs(self.values - reference.values)))

    def percent_errors(self, reference: "AggregationResult") -> np.ndarray:
        """Per-polygon percent error vs. a reference, NaN-safe.

        Polygons whose reference value is zero contribute 0 when the
        approximate value is also zero and inf otherwise, mirroring how the
        paper's box plots treat empty regions.
        """
        ref = np.asarray(reference.values, dtype=np.float64)
        approx = np.asarray(self.values, dtype=np.float64)
        errors = np.zeros(len(ref), dtype=np.float64)
        nonzero = ref != 0
        errors[nonzero] = 100.0 * np.abs(approx[nonzero] - ref[nonzero]) / np.abs(ref[nonzero])
        zero_mismatch = (~nonzero) & (approx != 0)
        errors[zero_mismatch] = np.inf
        return errors
