"""STR-packed R-tree over polygon bounding boxes.

Not part of the paper's system — the paper deliberately uses a grid for its
O(1) probes — but a classical R-tree is the natural point of comparison for
the index-join baseline, so the ablation benchmark
(`bench_ablation_grid_resolution`) contrasts the two.  The tree is bulk-
loaded with the Sort-Tile-Recursive packing of Leutenegger et al., which
yields near-optimal leaves without incremental inserts.
"""

from __future__ import annotations

import math
import time
from typing import Sequence

import numpy as np

from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet


class _Node:
    __slots__ = ("bbox", "children", "polygon_ids")

    def __init__(
        self,
        bbox: BBox,
        children: list["_Node"] | None = None,
        polygon_ids: np.ndarray | None = None,
    ) -> None:
        self.bbox = bbox
        self.children = children or []
        self.polygon_ids = polygon_ids  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.polygon_ids is not None


def _bbox_of(boxes: list[BBox]) -> BBox:
    out = boxes[0]
    for b in boxes[1:]:
        out = out.union(b)
    return out


class STRTree:
    """Bulk-loaded R-tree with point and box queries."""

    def __init__(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        leaf_capacity: int = 16,
        fanout: int = 8,
    ) -> None:
        polys = list(polygons)
        self.polygons = polys
        self.leaf_capacity = max(1, leaf_capacity)
        self.fanout = max(2, fanout)

        start = time.perf_counter()
        ids = np.arange(len(polys), dtype=np.int64)
        boxes = [p.bbox for p in polys]
        self.root = self._pack_leaves(ids, boxes)
        self.build_seconds = time.perf_counter() - start

    # ------------------------------------------------------------------
    # STR packing
    # ------------------------------------------------------------------
    def _pack_leaves(self, ids: np.ndarray, boxes: list[BBox]) -> _Node:
        n = len(ids)
        num_leaves = max(1, math.ceil(n / self.leaf_capacity))
        num_slices = max(1, math.ceil(math.sqrt(num_leaves)))
        centers_x = np.asarray([b.center[0] for b in boxes])
        centers_y = np.asarray([b.center[1] for b in boxes])

        order_x = np.argsort(centers_x, kind="stable")
        per_slice = math.ceil(n / num_slices)
        leaves: list[_Node] = []
        for s in range(0, n, per_slice):
            slice_idx = order_x[s:s + per_slice]
            order_y = slice_idx[np.argsort(centers_y[slice_idx], kind="stable")]
            for t in range(0, len(order_y), self.leaf_capacity):
                group = order_y[t:t + self.leaf_capacity]
                leaf_boxes = [boxes[int(i)] for i in group]
                leaves.append(_Node(_bbox_of(leaf_boxes), polygon_ids=ids[group]))
        return self._pack_upward(leaves)

    def _pack_upward(self, nodes: list[_Node]) -> _Node:
        while len(nodes) > 1:
            parents: list[_Node] = []
            # Re-sort by center to keep siblings spatially tight.
            nodes.sort(key=lambda nd: nd.bbox.center)
            for s in range(0, len(nodes), self.fanout):
                group = nodes[s:s + self.fanout]
                parents.append(_Node(_bbox_of([g.bbox for g in group]), children=group))
            nodes = parents
        return nodes[0]

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------
    def candidates_of_point(self, x: float, y: float) -> np.ndarray:
        """Polygon ids whose bbox contains the point (closed test)."""
        out: list[np.ndarray] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            box = node.bbox
            if not (box.xmin <= x <= box.xmax and box.ymin <= y <= box.ymax):
                continue
            if node.is_leaf:
                ids = node.polygon_ids
                keep = [
                    int(i) for i in ids
                    if self.polygons[int(i)].bbox.xmin <= x <= self.polygons[int(i)].bbox.xmax
                    and self.polygons[int(i)].bbox.ymin <= y <= self.polygons[int(i)].bbox.ymax
                ]
                if keep:
                    out.append(np.asarray(keep, dtype=np.int64))
            else:
                stack.extend(node.children)
        if not out:
            return np.zeros(0, dtype=np.int64)
        return np.concatenate(out)

    def query_bbox(self, box: BBox) -> np.ndarray:
        """Polygon ids whose bbox intersects the query box."""
        out: list[int] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if not node.bbox.intersects(box):
                continue
            if node.is_leaf:
                out.extend(
                    int(i) for i in node.polygon_ids
                    if self.polygons[int(i)].bbox.intersects(box)
                )
            else:
                stack.extend(node.children)
        return np.asarray(sorted(out), dtype=np.int64)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        d = 1
        node = self.root
        while not node.is_leaf:
            node = node.children[0]
            d += 1
        return d

    def __repr__(self) -> str:
        return f"STRTree({len(self.polygons)} polygons, depth={self.depth()})"
