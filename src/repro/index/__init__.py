"""Spatial indexes.

The raster-join paper needs exactly one index — a uniform grid over the
query polygons (§6.1) — used by the accurate variant and by the index-join
baselines.  The package also ships an STR-packed R-tree (used by the
ablation study as a classical alternative) and a point quadtree (used by
the Zhang-style materializing comparator of Table 2).
"""

from repro.index.grid import GridIndex
from repro.index.strtree import STRTree
from repro.index.quadtree import PointQuadtree

__all__ = ["GridIndex", "STRTree", "PointQuadtree"]
