"""Point quadtree used by the Zhang-style materializing comparator.

Zhang et al. (the Table 2 comparator) index the *points* with a quadtree to
load-balance GPU batches before joining against polygon MBRs.  This module
provides that point index: a region quadtree that splits leaves past a
capacity, and reports its leaves as (bbox, point-id-range) batches over a
Morton-ordered permutation of the points.
"""

from __future__ import annotations

import time

import numpy as np

from repro.geometry.bbox import BBox


class _QuadNode:
    __slots__ = ("bbox", "start", "end", "children")

    def __init__(self, bbox: BBox, start: int, end: int) -> None:
        self.bbox = bbox
        self.start = start  # range into the permuted point order
        self.end = end
        self.children: list["_QuadNode"] = []

    @property
    def is_leaf(self) -> bool:
        return not self.children

    @property
    def count(self) -> int:
        return self.end - self.start


class PointQuadtree:
    """Region quadtree over points with leaf capacity splitting.

    ``order`` is a permutation of point indices such that every node's
    points are contiguous — the array layout a GPU batcher wants.
    """

    def __init__(
        self,
        xs: np.ndarray,
        ys: np.ndarray,
        leaf_capacity: int = 4096,
        max_depth: int = 16,
    ) -> None:
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        start = time.perf_counter()
        self.xs = xs
        self.ys = ys
        self.leaf_capacity = max(1, leaf_capacity)
        self.max_depth = max(1, max_depth)
        self.order = np.arange(len(xs), dtype=np.int64)
        extent = BBox.of_points(xs, ys, pad=1e-9) if len(xs) else BBox(0, 0, 1, 1)
        self.root = _QuadNode(extent, 0, len(xs))
        self._split(self.root, depth=0)
        self.build_seconds = time.perf_counter() - start

    def _split(self, node: _QuadNode, depth: int) -> None:
        if node.count <= self.leaf_capacity or depth >= self.max_depth:
            return
        box = node.bbox
        cx, cy = box.center
        idx = self.order[node.start:node.end]
        px = self.xs[idx]
        py = self.ys[idx]
        quadrant = (px >= cx).astype(np.int64) + 2 * (py >= cy).astype(np.int64)
        reorder = np.argsort(quadrant, kind="stable")
        self.order[node.start:node.end] = idx[reorder]
        counts = np.bincount(quadrant, minlength=4)
        bounds = [
            BBox(box.xmin, box.ymin, cx, cy),
            BBox(cx, box.ymin, box.xmax, cy),
            BBox(box.xmin, cy, cx, box.ymax),
            BBox(cx, cy, box.xmax, box.ymax),
        ]
        cursor = node.start
        for q in range(4):
            if counts[q] == 0:
                continue
            child = _QuadNode(bounds[q], cursor, cursor + int(counts[q]))
            cursor += int(counts[q])
            node.children.append(child)
            self._split(child, depth + 1)

    # ------------------------------------------------------------------
    # Iteration
    # ------------------------------------------------------------------
    def leaves(self) -> list[_QuadNode]:
        out: list[_QuadNode] = []
        stack = [self.root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                out.append(node)
            else:
                stack.extend(node.children)
        out.sort(key=lambda nd: nd.start)
        return out

    def leaf_point_ids(self, leaf: _QuadNode) -> np.ndarray:
        return self.order[leaf.start:leaf.end]

    def num_leaves(self) -> int:
        return len(self.leaves())

    def __repr__(self) -> str:
        return (
            f"PointQuadtree({len(self.xs)} points, {self.num_leaves()} leaves, "
            f"capacity={self.leaf_capacity})"
        )
