"""Uniform grid index over polygons (the paper's §6.1 index).

The grid stores, for every cell, the ids of the polygons that may contain
points falling in that cell.  The paper builds it on the GPU in two passes
(count, then fill, into one contiguous allocation because the GPU has no
dynamic memory); we reproduce the same CSR-style two-pass build.

Two assignment modes exist, mirroring the paper:

* ``mbr`` — a polygon is registered in every cell its bounding box
  intersects (the GPU build).
* ``exact`` — a polygon is registered only in cells its actual geometry
  touches (the optimized CPU-baseline build of §7.1, which "assigns a
  polygon only to those grid cells that the actual geometry intersects").
  Exact assignment reuses the conservative rasterizer: the cells a polygon
  touches are precisely its conservative raster on the grid viewport.

Probing is O(1): a point maps to one cell and scans that cell's list.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.conservative import conservative_polygon_pixels
from repro.graphics.viewport import Viewport


class GridIndex:
    """CSR-encoded uniform grid over a polygon set."""

    def __init__(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        resolution: int = 1024,
        assignment: str = "mbr",
        extent: BBox | None = None,
    ) -> None:
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(f"grid resolution must be >= 1, got {resolution}")
        polys = list(polygons)
        if extent is None:
            extent = self.default_extent(polys)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = polys
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution

        start = time.perf_counter()
        cells_per_poly = [self._cells_of(p) for p in polys]
        self._scatter_csr(cells_per_poly)
        self.build_seconds = time.perf_counter() - start

    def _scatter_csr(self, cells_per_poly: list[np.ndarray]) -> None:
        """Two-pass CSR build, like the GPU implementation: one
        histogram pass counts entries per cell (a single ``bincount``
        over the concatenated cell lists), one pass scatters polygon
        ids in ascending pid order — so each cell's candidate list is
        deterministic whatever the lists came from (a direct build or
        composed per-polygon caches)."""
        resolution = self.resolution
        num_cells = resolution * resolution
        all_cells = (
            np.concatenate(cells_per_poly) if cells_per_poly
            else np.zeros(0, dtype=np.int64)
        )
        counts = np.bincount(all_cells, minlength=num_cells)
        self.cell_start = np.concatenate(
            [[0], np.cumsum(counts, dtype=np.int64)]
        )
        self.entries = np.zeros(len(all_cells), dtype=np.int64)
        cursor = self.cell_start[:-1].copy()
        for pid, cells in enumerate(cells_per_poly):
            pos = cursor[cells]
            self.entries[pos] = pid
            cursor[cells] += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def default_extent(polygons: PolygonSet | Sequence[Polygon]) -> BBox:
        """The extent the constructor derives when none is given.

        Exposed so per-polygon cell lists (incremental edits) are
        computed against exactly the extent a from-scratch build would
        use: the union of all polygon boxes, padded so boundary points
        on the max edges still map to a cell.
        """
        polys = list(polygons)
        extent = polys[0].bbox
        for p in polys[1:]:
            extent = extent.union(p.bbox)
        pad = 1e-9 + 1e-9 * max(abs(extent.xmax), abs(extent.ymax))
        return BBox(extent.xmin, extent.ymin,
                    extent.xmax + pad, extent.ymax + pad)

    @classmethod
    def cells_for_polygon(
        cls,
        polygon: Polygon,
        extent: BBox,
        resolution: int,
        assignment: str,
    ) -> np.ndarray:
        """One polygon's flat cell ids under a fixed frame.

        A pure function of (polygon geometry, extent, resolution,
        assignment) — the grid-index contribution a
        :class:`~repro.cache.prepared.PolygonUnit` carries, identical to
        what a full build would compute for that polygon.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(
                f"grid resolution must be >= 1, got {resolution}"
            )
        probe = cls.__new__(cls)
        probe.extent = extent
        probe.resolution = resolution
        probe.assignment = assignment
        probe.cell_w = extent.width / resolution
        probe.cell_h = extent.height / resolution
        return probe._cells_of(polygon)

    @classmethod
    def from_cells(
        cls,
        polygons: PolygonSet | Sequence[Polygon],
        cells_per_poly: list[np.ndarray],
        resolution: int,
        assignment: str,
        extent: BBox,
    ) -> "GridIndex":
        """Compose an index from precomputed per-polygon cell lists.

        Runs the same two-pass CSR scatter as the constructor over the
        given lists, so composing cached per-polygon cells — with only
        edited polygons' lists recomputed — yields bit-identical
        ``cell_start``/``entries`` arrays to a from-scratch build.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(
                f"grid resolution must be >= 1, got {resolution}"
            )
        self = cls.__new__(cls)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = list(polygons)
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution
        start = time.perf_counter()
        self._scatter_csr(cells_per_poly)
        self.build_seconds = time.perf_counter() - start
        return self

    @classmethod
    def from_arrays(
        cls,
        polygons: PolygonSet | Sequence[Polygon],
        resolution: int,
        assignment: str,
        extent: BBox,
        cell_start: np.ndarray,
        entries: np.ndarray,
    ) -> "GridIndex":
        """Rehydrate an index from persisted CSR arrays, skipping the build.

        Used by the artifact store: the CSR arrays are a pure function of
        (polygon content, resolution, assignment, extent), so an index
        loaded from disk probes identically to one built from scratch.
        ``build_seconds`` is zero — nothing was rebuilt.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        self = cls.__new__(cls)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = list(polygons)
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution
        self.cell_start = np.asarray(cell_start, dtype=np.int64)
        self.entries = np.asarray(entries, dtype=np.int64)
        self.build_seconds = 0.0
        return self

    def _cells_of(self, polygon: Polygon) -> np.ndarray:
        """Flat cell ids a polygon is assigned to, per the assignment mode."""
        r = self.resolution
        if self.assignment == "mbr":
            box = polygon.bbox
            x0 = self._clamp(int((box.xmin - self.extent.xmin) / self.cell_w))
            x1 = self._clamp(int((box.xmax - self.extent.xmin) / self.cell_w))
            y0 = self._clamp(int((box.ymin - self.extent.ymin) / self.cell_h))
            y1 = self._clamp(int((box.ymax - self.extent.ymin) / self.cell_h))
            gx, gy = np.meshgrid(
                np.arange(x0, x1 + 1, dtype=np.int64),
                np.arange(y0, y1 + 1, dtype=np.int64),
            )
            return (gy * r + gx).ravel()
        # Exact: cells overlapped by the geometry = conservative raster of
        # the polygon's triangles over the grid-as-viewport.
        viewport = Viewport(self.extent, r, r)
        tris = triangulate_polygon(polygon)
        ix, iy = conservative_polygon_pixels(viewport, tris)
        return iy * r + ix

    def _clamp(self, c: int) -> int:
        return min(max(c, 0), self.resolution - 1)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def cell_of_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Flat cell id per point; -1 for points outside the extent."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        gx = np.floor((xs - self.extent.xmin) / self.cell_w).astype(np.int64)
        gy = np.floor((ys - self.extent.ymin) / self.cell_h).astype(np.int64)
        out = gy * self.resolution + gx
        outside = (
            (gx < 0) | (gx >= self.resolution)
            | (gy < 0) | (gy >= self.resolution)
        )
        out[outside] = -1
        return out

    def candidates_of_cell(self, cell: int) -> np.ndarray:
        """Polygon ids registered in one cell."""
        if cell < 0:
            return np.zeros(0, dtype=np.int64)
        return self.entries[self.cell_start[cell]:self.cell_start[cell + 1]]

    def candidates_of_point(self, x: float, y: float) -> np.ndarray:
        cell = self.cell_of_points(np.asarray([x]), np.asarray([y]))[0]
        return self.candidates_of_cell(int(cell))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def memory_bytes(self) -> int:
        return self.cell_start.nbytes + self.entries.nbytes

    def cell_occupancy(self) -> np.ndarray:
        """Entries per cell — used by the grid-resolution ablation."""
        return np.diff(self.cell_start)

    def __repr__(self) -> str:
        return (
            f"GridIndex({self.resolution}^2 cells, {len(self.polygons)} polygons, "
            f"{self.num_entries} entries, assignment={self.assignment!r})"
        )
