"""Uniform grid index over polygons (the paper's §6.1 index).

The grid stores, for every cell, the ids of the polygons that may contain
points falling in that cell.  The paper builds it on the GPU in two passes
(count, then fill, into one contiguous allocation because the GPU has no
dynamic memory); we reproduce the same CSR-style two-pass build.

Two assignment modes exist, mirroring the paper:

* ``mbr`` — a polygon is registered in every cell its bounding box
  intersects (the GPU build).
* ``exact`` — a polygon is registered only in cells its actual geometry
  touches (the optimized CPU-baseline build of §7.1, which "assigns a
  polygon only to those grid cells that the actual geometry intersects").
  Exact assignment reuses the conservative rasterizer: the cells a polygon
  touches are precisely its conservative raster on the grid viewport.

Probing is O(1): a point maps to one cell and scans that cell's list.
"""

from __future__ import annotations

import time
from typing import Sequence

import numpy as np

from repro.errors import GeometryError
from repro.geometry.bbox import BBox
from repro.geometry.polygon import Polygon, PolygonSet
from repro.geometry.triangulate import triangulate_polygon
from repro.graphics.conservative import conservative_polygon_pixels
from repro.graphics.viewport import Viewport


class GridIndex:
    """CSR-encoded uniform grid over a polygon set."""

    def __init__(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        resolution: int = 1024,
        assignment: str = "mbr",
        extent: BBox | None = None,
    ) -> None:
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(f"grid resolution must be >= 1, got {resolution}")
        polys = list(polygons)
        if extent is None:
            extent = self.default_extent(polys)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = polys
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution

        start = time.perf_counter()
        cells_per_poly = [self._cells_of(p) for p in polys]
        self._scatter_csr(cells_per_poly)
        self.build_seconds = time.perf_counter() - start

    def _scatter_csr(self, cells_per_poly: list[np.ndarray]) -> None:
        """Two-pass CSR build, like the GPU implementation: one
        histogram pass counts entries per cell (a single ``bincount``
        over the concatenated cell lists), one pass scatters polygon
        ids in ascending pid order — so each cell's candidate list is
        deterministic whatever the lists came from (a direct build or
        composed per-polygon caches)."""
        resolution = self.resolution
        num_cells = resolution * resolution
        all_cells = (
            np.concatenate(cells_per_poly) if cells_per_poly
            else np.zeros(0, dtype=np.int64)
        )
        counts = np.bincount(all_cells, minlength=num_cells)
        self.cell_start = np.concatenate(
            [[0], np.cumsum(counts, dtype=np.int64)]
        )
        self.entries = np.zeros(len(all_cells), dtype=np.int64)
        cursor = self.cell_start[:-1].copy()
        for pid, cells in enumerate(cells_per_poly):
            pos = cursor[cells]
            self.entries[pos] = pid
            cursor[cells] += 1

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def default_extent(polygons: PolygonSet | Sequence[Polygon]) -> BBox:
        """The extent the constructor derives when none is given.

        Exposed so per-polygon cell lists (incremental edits) are
        computed against exactly the extent a from-scratch build would
        use: the union of all polygon boxes, padded so boundary points
        on the max edges still map to a cell.
        """
        polys = list(polygons)
        extent = polys[0].bbox
        for p in polys[1:]:
            extent = extent.union(p.bbox)
        pad = 1e-9 + 1e-9 * max(abs(extent.xmax), abs(extent.ymax))
        return BBox(extent.xmin, extent.ymin,
                    extent.xmax + pad, extent.ymax + pad)

    @classmethod
    def cells_for_polygon(
        cls,
        polygon: Polygon,
        extent: BBox,
        resolution: int,
        assignment: str,
    ) -> np.ndarray:
        """One polygon's flat cell ids under a fixed frame.

        A pure function of (polygon geometry, extent, resolution,
        assignment) — the grid-index contribution a
        :class:`~repro.cache.prepared.PolygonUnit` carries, identical to
        what a full build would compute for that polygon.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(
                f"grid resolution must be >= 1, got {resolution}"
            )
        probe = cls.__new__(cls)
        probe.extent = extent
        probe.resolution = resolution
        probe.assignment = assignment
        probe.cell_w = extent.width / resolution
        probe.cell_h = extent.height / resolution
        return probe._cells_of(polygon)

    @classmethod
    def from_cells(
        cls,
        polygons: PolygonSet | Sequence[Polygon],
        cells_per_poly: list[np.ndarray],
        resolution: int,
        assignment: str,
        extent: BBox,
    ) -> "GridIndex":
        """Compose an index from precomputed per-polygon cell lists.

        Runs the same two-pass CSR scatter as the constructor over the
        given lists, so composing cached per-polygon cells — with only
        edited polygons' lists recomputed — yields bit-identical
        ``cell_start``/``entries`` arrays to a from-scratch build.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        if resolution < 1:
            raise GeometryError(
                f"grid resolution must be >= 1, got {resolution}"
            )
        self = cls.__new__(cls)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = list(polygons)
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution
        start = time.perf_counter()
        self._scatter_csr(cells_per_poly)
        self.build_seconds = time.perf_counter() - start
        return self

    @classmethod
    def from_arrays(
        cls,
        polygons: PolygonSet | Sequence[Polygon],
        resolution: int,
        assignment: str,
        extent: BBox,
        cell_start: np.ndarray,
        entries: np.ndarray,
    ) -> "GridIndex":
        """Rehydrate an index from persisted CSR arrays, skipping the build.

        Used by the artifact store: the CSR arrays are a pure function of
        (polygon content, resolution, assignment, extent), so an index
        loaded from disk probes identically to one built from scratch.
        ``build_seconds`` is zero — nothing was rebuilt.
        """
        if assignment not in ("mbr", "exact"):
            raise GeometryError(f"unknown assignment mode {assignment!r}")
        self = cls.__new__(cls)
        self.extent = extent
        self.resolution = resolution
        self.assignment = assignment
        self.polygons = list(polygons)
        self.cell_w = extent.width / resolution
        self.cell_h = extent.height / resolution
        self.cell_start = np.asarray(cell_start, dtype=np.int64)
        self.entries = np.asarray(entries, dtype=np.int64)
        self.build_seconds = 0.0
        return self

    def splice(
        self,
        polygons: PolygonSet | Sequence[Polygon],
        changes: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> "GridIndex":
        """A new index with a few polygons' cell lists replaced in place.

        ``changes`` maps polygon id -> (old cells, new cells), where the
        old list is what the polygon contributed to *this* index and the
        new list is what the edited geometry contributes.  Instead of
        re-running the full two-pass compose over every polygon's cells
        (O(total entries + cells) however small the edit), the edited
        pids' entries are deleted from the CSR arrays and the new ones
        inserted at their sorted positions — O(touched slices) plus one
        ``cell_start`` shift — which is the delta-edit head-room at very
        high grid resolutions.

        Bit-identity with :meth:`from_cells` over the updated lists
        follows from the build's invariant that each cell's entry list
        is ascending by pid: deletions keep the survivors' relative
        order, and each inserted pid lands before the first larger pid
        in its cell (ties across inserted pids resolve ascending), which
        is exactly where the ascending-pid scatter would have put it.
        Per-polygon cell lists are unique per cell in both assignment
        modes (MBR boxes and conservative rasters never repeat a cell),
        which the entry-matching below relies on.
        """
        start_time = time.perf_counter()
        num_cells = self.resolution * self.resolution
        entries = self.entries
        cell_start = self.cell_start

        # Deletions: locate every edited pid's entries across its old
        # cells by a ragged gather over only those cells' slices.
        hit_list: list[np.ndarray] = []
        hit_cell_list: list[np.ndarray] = []
        for pid in sorted(changes):
            old, _ = changes[pid]
            old = np.asarray(old, dtype=np.int64)
            if not len(old):
                continue
            starts = cell_start[old]
            spans = cell_start[old + 1] - starts
            total = int(spans.sum())
            if total == 0:
                continue
            offsets = np.concatenate([[0], np.cumsum(spans)[:-1]])
            idx = np.repeat(starts, spans) + (
                np.arange(total, dtype=np.int64) - np.repeat(offsets, spans)
            )
            match = entries[idx] == pid
            hit_list.append(idx[match])
            hit_cell_list.append(np.repeat(old, spans)[match])
        if hit_list:
            hits = np.sort(np.concatenate(hit_list))
            hit_cells = np.concatenate(hit_cell_list)
        else:
            hits = np.zeros(0, dtype=np.int64)
            hit_cells = np.zeros(0, dtype=np.int64)
        entries_d = np.delete(entries, hits)

        # Insertions: each new entry goes before the first larger pid in
        # its (post-deletion) cell slice.  Post-deletion slice bounds
        # come from the sorted hit positions (deletions in cells < c are
        # exactly the hits below cell_start[c]); the smaller-entry counts
        # from a ragged gather over only the target cells — no pass over
        # the full entry array.
        ins_pos: list[np.ndarray] = []
        ins_val: list[np.ndarray] = []
        ins_cell: list[np.ndarray] = []
        for pid in sorted(changes):
            _, new = changes[pid]
            new = np.asarray(new, dtype=np.int64)
            if not len(new):
                continue
            starts_d = cell_start[new] - np.searchsorted(
                hits, cell_start[new]
            )
            ends_d = cell_start[new + 1] - np.searchsorted(
                hits, cell_start[new + 1]
            )
            spans = ends_d - starts_d
            total = int(spans.sum())
            if total:
                offsets = np.concatenate([[0], np.cumsum(spans)[:-1]])
                idx = np.repeat(starts_d, spans) + (
                    np.arange(total, dtype=np.int64)
                    - np.repeat(offsets, spans)
                )
                prefix = np.concatenate(
                    [[0], np.cumsum(entries_d[idx] < pid, dtype=np.int64)]
                )
                less = prefix[np.cumsum(spans)] - prefix[offsets]
            else:
                less = np.zeros(len(new), dtype=np.int64)
            ins_pos.append(starts_d + less)
            ins_val.append(np.full(len(new), pid, dtype=np.int64))
            ins_cell.append(new)
        if ins_pos:
            pos = np.concatenate(ins_pos)
            val = np.concatenate(ins_val)
            ins_cells = np.concatenate(ins_cell)
            # Sort by (position, cell, pid): np.insert keeps the given
            # order for equal positions.  An insert at the *end* of cell
            # c and one at the *start* of cell c+1 share the same flat
            # position, so the cell key must break that tie before pid
            # order settles adjacent inserts within one cell.
            order = np.lexsort((val, ins_cells, pos))
            entries_new = np.insert(entries_d, pos[order], val[order])
        else:
            ins_cells = np.zeros(0, dtype=np.int64)
            entries_new = entries_d

        # Final cell starts: the net size delta is nonzero only at the
        # touched cells, so the boundary shift is a sparse step function
        # — cumulate the per-cell deltas and expand by run lengths
        # instead of a full O(num_cells) prefix sum.
        touched = np.concatenate([hit_cells, ins_cells])
        if len(touched):
            deltas = np.concatenate([
                np.full(len(hit_cells), -1, dtype=np.int64),
                np.ones(len(ins_cells), dtype=np.int64),
            ])
            order_t = np.argsort(touched, kind="stable")
            tc = touched[order_t]
            seg = np.empty(len(tc), dtype=bool)
            seg[0] = True
            np.not_equal(tc[1:], tc[:-1], out=seg[1:])
            cells_u = tc[seg]
            shift_vals = np.cumsum(deltas[order_t])[
                np.concatenate([np.nonzero(seg)[0][1:] - 1, [len(tc) - 1]])
            ]
            reps = np.diff(
                np.concatenate([[0], cells_u + 1, [num_cells + 1]])
            )
            cell_start_new = cell_start + np.repeat(
                np.concatenate([[0], shift_vals]), reps
            )
        else:
            cell_start_new = cell_start.copy()

        out = GridIndex.from_arrays(
            polygons, self.resolution, self.assignment, self.extent,
            cell_start_new, entries_new,
        )
        out.build_seconds = time.perf_counter() - start_time
        return out

    def _cells_of(self, polygon: Polygon) -> np.ndarray:
        """Flat cell ids a polygon is assigned to, per the assignment mode."""
        r = self.resolution
        if self.assignment == "mbr":
            box = polygon.bbox
            x0 = self._clamp(int((box.xmin - self.extent.xmin) / self.cell_w))
            x1 = self._clamp(int((box.xmax - self.extent.xmin) / self.cell_w))
            y0 = self._clamp(int((box.ymin - self.extent.ymin) / self.cell_h))
            y1 = self._clamp(int((box.ymax - self.extent.ymin) / self.cell_h))
            gx, gy = np.meshgrid(
                np.arange(x0, x1 + 1, dtype=np.int64),
                np.arange(y0, y1 + 1, dtype=np.int64),
            )
            return (gy * r + gx).ravel()
        # Exact: cells overlapped by the geometry = conservative raster of
        # the polygon's triangles over the grid-as-viewport.
        viewport = Viewport(self.extent, r, r)
        tris = triangulate_polygon(polygon)
        ix, iy = conservative_polygon_pixels(viewport, tris)
        return iy * r + ix

    def _clamp(self, c: int) -> int:
        return min(max(c, 0), self.resolution - 1)

    # ------------------------------------------------------------------
    # Probing
    # ------------------------------------------------------------------
    def cell_of_points(self, xs: np.ndarray, ys: np.ndarray) -> np.ndarray:
        """Flat cell id per point; -1 for points outside the extent."""
        xs = np.asarray(xs, dtype=np.float64)
        ys = np.asarray(ys, dtype=np.float64)
        gx = np.floor((xs - self.extent.xmin) / self.cell_w).astype(np.int64)
        gy = np.floor((ys - self.extent.ymin) / self.cell_h).astype(np.int64)
        out = gy * self.resolution + gx
        outside = (
            (gx < 0) | (gx >= self.resolution)
            | (gy < 0) | (gy >= self.resolution)
        )
        out[outside] = -1
        return out

    def candidates_of_cell(self, cell: int) -> np.ndarray:
        """Polygon ids registered in one cell."""
        if cell < 0:
            return np.zeros(0, dtype=np.int64)
        return self.entries[self.cell_start[cell]:self.cell_start[cell + 1]]

    def candidates_of_point(self, x: float, y: float) -> np.ndarray:
        cell = self.cell_of_points(np.asarray([x]), np.asarray([y]))[0]
        return self.candidates_of_cell(int(cell))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def num_entries(self) -> int:
        return len(self.entries)

    @property
    def memory_bytes(self) -> int:
        return self.cell_start.nbytes + self.entries.nbytes

    def cell_occupancy(self) -> np.ndarray:
        """Entries per cell — used by the grid-resolution ablation."""
        return np.diff(self.cell_start)

    def __repr__(self) -> str:
        return (
            f"GridIndex({self.resolution}^2 cells, {len(self.polygons)} polygons, "
            f"{self.num_entries} entries, assignment={self.assignment!r})"
        )
