"""repro — rasterization-based real-time spatial aggregation.

A from-scratch Python reproduction of *"GPU Rasterization for Real-Time
Spatial Aggregation over Arbitrary Polygons"* (Tzirita Zacharatou,
Doraiswamy, Ailamaki, Silva, Freire; PVLDB 11(3), 2017).

Quickstart::

    import numpy as np
    from repro import PointDataset, PolygonSet, Polygon, BoundedRasterJoin

    points = PointDataset(xs, ys, {"fare": fares})
    regions = PolygonSet([Polygon(ring) for ring in rings])
    result = BoundedRasterJoin(epsilon=10.0).execute(points, regions)
    print(result.values)          # one aggregate per polygon

See :mod:`repro.core` for the engines, :mod:`repro.data` for synthetic
workloads, :mod:`repro.sql` for the SQL frontend, and DESIGN.md for how the
pieces map onto the paper.
"""

from repro.cache import PreparedPolygons, QuerySession
from repro.core import (
    AccurateRasterJoin,
    Aggregate,
    Average,
    BoundedRasterJoin,
    Count,
    Filter,
    FilterSet,
    IndexJoin,
    MaterializingJoin,
    Max,
    Min,
    MultiAggregate,
    RasterJoinOptimizer,
    SpatialAggregationEngine,
    Sum,
)
from repro.data import PointDataset
from repro.device import GPUDevice
from repro.errors import RasterJoinError
from repro.exec import (
    EngineConfig,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
)
from repro.geometry import BBox, Polygon, PolygonSet
from repro.serve import ServeConfig, Server
from repro.store import ArtifactStore
from repro.types import AggregationResult, ExecutionStats, ResultIntervals

__version__ = "1.0.0"

__all__ = [
    "AccurateRasterJoin",
    "Aggregate",
    "AggregationResult",
    "ArtifactStore",
    "Average",
    "BBox",
    "BoundedRasterJoin",
    "Count",
    "EngineConfig",
    "ExecutionBackend",
    "ExecutionStats",
    "Filter",
    "FilterSet",
    "GPUDevice",
    "ProcessBackend",
    "SerialBackend",
    "ServeConfig",
    "Server",
    "ThreadBackend",
    "IndexJoin",
    "MaterializingJoin",
    "Max",
    "Min",
    "MultiAggregate",
    "PointDataset",
    "Polygon",
    "PolygonSet",
    "PreparedPolygons",
    "QuerySession",
    "RasterJoinError",
    "RasterJoinOptimizer",
    "ResultIntervals",
    "SpatialAggregationEngine",
    "Sum",
    "__version__",
]
