"""Resident process workers: descriptor tasks over shared-memory data.

The fork-per-dispatch :class:`~repro.exec.backend.ProcessBackend` pays a
pool fork on every query because its tasks are unpicklable closures —
only a child forked *after* the closures exist can see them.  This
module is the other half of the shm data plane
(:mod:`repro.exec.shm`): once a tile task is a small picklable
:class:`TileTaskSpec` that *names* its inputs (shared-memory segment
descriptors for the point sub-chunks, one pickled state blob for the
prepared artifacts, a slot in a shared result buffer for the output),
nothing forces the fork — a pool of **spawned** workers started once can
serve every later query, caching its mapped segments and unpickled
engine state across dispatches.

Worker-side caches and what keys them:

* segments map once per worker through the process-global
  :data:`repro.exec.shm.SEGMENT_CACHE` (segment names are unique per
  export, so reuse across queries is automatically content-correct);
* the heavy engine state — a device-less engine clone, the
  :class:`~repro.cache.prepared.PreparedPolygons` artifact, and the
  polygon set — unpickles once per ``state_key`` and is reused by every
  spec carrying that key.  The parent derives the key from the
  artifact's content generation (``prepared.version``), so an edit or a
  freshly warmed artifact rolls the key and workers reload exactly
  then (``resident_state_loads`` / ``resident_state_reuse`` count it).

Accumulators come back by writing into the preallocated shared result
buffer — only stats, spans, metrics deltas, and freshly built prepared
pieces cross the pickle boundary.  Determinism is untouched: each spec
is one whole tile task (the same code path
:meth:`~repro.core.accurate.AccurateRasterJoin._run_tile` runs under
every other backend), results are collected by task index, and the
parent folds them in tile order as always.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
from collections import OrderedDict
from dataclasses import dataclass

import numpy as np

from repro.errors import ExecutionBackendError
from repro.exec import shm
from repro.obs import metrics

#: Unpickled state blobs kept per worker.  Dashboards flip between a
#: handful of polygon sets; anything colder reloads from the (still
#: mapped) blob segment.
STATE_CACHE_ENTRIES = 4


@dataclass(frozen=True)
class TileTaskSpec:
    """One tile task, by name: everything a resident worker needs.

    ``state_ref`` addresses a pickled ``(engine, prepared, polygons)``
    blob in shared memory; ``state_key`` is its cache identity.
    ``chunks`` are :class:`~repro.exec.shm.ShmChunk` descriptors (the
    tile's partitioned sub-chunks).  The worker writes its folded
    accumulators into ``result_ref[slot]`` — one ``(channel, polygon)``
    plane per tile — and ships the rest of the
    :class:`~repro.exec.backend.TilePartial` back by value.
    """

    index: int
    state_key: tuple
    state_ref: shm.ShmArray
    tile_idx: int
    aggregate: object
    filters: object
    columns: tuple
    chunks: tuple
    units_mode: bool
    retain: bool
    tracing: bool
    result_ref: shm.ShmArray
    slot: int
    channel_names: tuple


def _load_state(spec: TileTaskSpec, cache: OrderedDict):
    """The spec's (engine, prepared, polygons), from cache or its blob."""
    entry = cache.get(spec.state_key)
    if entry is not None:
        cache.move_to_end(spec.state_key)
        metrics.counter("resident_state_reuse")
        return entry
    blob = shm.view(spec.state_ref)
    entry = pickle.loads(memoryview(blob))
    cache[spec.state_key] = entry
    metrics.counter("resident_state_loads")
    while len(cache) > STATE_CACHE_ENTRIES:
        cache.popitem(last=False)
    return entry


def _run_spec(spec: TileTaskSpec, cache: OrderedDict):
    """Execute one tile task and park its accumulators in shared memory."""
    engine, prepared, polygons = _load_state(spec, cache)
    tile = prepared.tiles[spec.tile_idx]
    partial = engine._run_tile(
        spec.tile_idx, tile,
        prepared=prepared, polygons=polygons, aggregate=spec.aggregate,
        filters=spec.filters, columns=spec.columns, chunks=spec.chunks,
        units_mode=spec.units_mode, retain=spec.retain,
        tracing=spec.tracing,
    )
    result = shm.view(spec.result_ref, writable=True)
    for ci, ch in enumerate(spec.channel_names):
        np.copyto(result[spec.slot, ci], partial.accumulators[ch])
    # Only the slot crosses the pickle boundary, not the arrays.
    partial.accumulators = {}
    return partial


def _picklable_error(exc: BaseException) -> BaseException:
    """The exception itself when it pickles, else a faithful stand-in.

    Probed eagerly: ``mp.Queue`` pickles in a feeder thread, where a
    failure would poison the queue instead of surfacing to the caller.
    """
    try:
        pickle.dumps(exc)
        return exc
    except Exception:
        return ExecutionBackendError(
            f"resident worker task failed: {type(exc).__name__}: {exc!r}"
        )


def _worker_main(task_q, result_q) -> None:  # pragma: no cover - subprocess
    """Resident worker loop: specs in, (seq, index, ok, payload) out.

    Runs in a *spawned* process: fresh interpreter, no inherited locks,
    its own (initially empty) metrics registry — so a per-task delta
    against a task-start baseline is exactly the increments this task
    made, shipped home in ``TilePartial.metrics`` for the parent to
    fold into its registry.
    """
    cache: OrderedDict = OrderedDict()
    while True:
        item = task_q.get()
        if item is None:
            return
        seq, spec = item
        try:
            baseline = metrics.REGISTRY.baseline()
            partial = _run_spec(spec, cache)
            delta = metrics.REGISTRY.delta_since(baseline)
            if delta:
                partial.metrics = delta
            result_q.put((seq, spec.index, True, partial))
        except BaseException as exc:
            result_q.put((seq, spec.index, False, _picklable_error(exc)))


class ResidentWorkerPool:
    """A persistent pool of spawned workers consuming TileTaskSpecs.

    One shared task queue, one shared result queue.  ``dispatch``
    windows its submissions to the requested parallelism (the engines'
    memory-budget cap), collects results by task index, and surfaces
    the first task exception after every in-flight task has drained —
    the pool survives task failures; only a dead worker process marks
    it ``broken`` (the owner then closes and respawns it).
    """

    def __init__(self, workers: int) -> None:
        self.workers = max(1, int(workers))
        self.broken = False
        self._seq = 0
        ctx = mp.get_context("spawn")
        self._task_q = ctx.Queue()
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(self._task_q, self._result_q),
                daemon=True,
                name=f"repro-resident-{i}",
            )
            for i in range(self.workers)
        ]
        for proc in self._procs:
            proc.start()

    def dispatch(self, specs, parallelism: int | None = None) -> list:
        """Run every spec, returning its results in spec-index order."""
        if self.broken:
            raise ExecutionBackendError("resident worker pool is broken")
        specs = list(specs)
        if not specs:
            return []
        self._seq += 1
        seq = self._seq
        window = self.workers if parallelism is None else max(
            1, min(self.workers, parallelism)
        )
        total = len(specs)
        results: list = [None] * total
        submitted = received = 0
        failure: BaseException | None = None
        while submitted < min(window, total):
            self._task_q.put((seq, specs[submitted]))
            submitted += 1
        while received < submitted:
            try:
                rseq, index, ok, payload = self._result_q.get(timeout=1.0)
            except queue_module.Empty:
                dead = [p.name for p in self._procs if not p.is_alive()]
                if dead:
                    self.broken = True
                    raise ExecutionBackendError(
                        f"resident worker(s) died mid-dispatch: {dead}"
                    )
                continue
            if rseq != seq:  # pragma: no cover - stale cross-dispatch echo
                continue
            received += 1
            if ok:
                results[index] = payload
            elif failure is None:
                # Drain the in-flight window before raising, but stop
                # feeding new work for this dispatch.
                failure = payload
            if failure is None and submitted < total:
                self._task_q.put((seq, specs[submitted]))
                submitted += 1
        if failure is not None:
            raise failure
        return results

    def close(self) -> None:
        """Stop the workers (idempotent)."""
        procs, self._procs = self._procs, []
        for _ in procs:
            try:
                self._task_q.put(None)
            except Exception:  # pragma: no cover - teardown path
                break
        for proc in procs:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=1.0)
        for q in (self._task_q, self._result_q):
            try:
                q.close()
                q.cancel_join_thread()
            except Exception:  # pragma: no cover - teardown path
                pass
