"""Tile-local point partitioning: scan each chunk once, not once per tile.

Without partitioning, a T-tile canvas makes every tile task iterate the
full chunk source and project **all** points through its viewport
transform, discarding the ones that land elsewhere — O(T x points) work
per query.  :func:`partition_chunk` removes that factor: each chunk is
projected once against the *global* canvas grid and bucketed into
per-tile sub-chunks, so the per-tile point passes together scan each
point once (plus a vanishing number of seam duplicates).

Bit-equality with the full-scan path is by construction, not by luck.
Three properties make the partitioned result identical bit for bit:

1. **Conservative selection.**  A tile's sub-chunk is a *superset* of
   the points its own ``Viewport.pixel_of`` maps inside the tile.  The
   global projection and the tile-local projection compute the same
   quantity through differently-rounded float64 expressions; their
   continuous screen coordinates agree to within a few ulps of the
   canvas size (~1e-11 pixels for an 8192-wide canvas), so their floor
   can disagree only for points sitting exactly on a pixel boundary,
   and then only by one pixel.  Bucketing therefore assigns every point
   to the tile of its global pixel *and* to the neighboring tile
   whenever the pixel touches a tile seam (first or last pixel row or
   column of a tile); points up to one pixel outside the canvas are
   clamped in rather than dropped.  Membership is *decided* by the tile
   task's own ``pixel_of`` exactly as in the full-scan path — false
   positives are discarded there, so over-approximation can never
   change a result, and any point double-counted by two adjacent tile
   transforms is double-counted identically by both paths.
2. **Stable order.**  Sub-chunks select rows by sorted original-row
   index, so within a tile the surviving points keep the chunk order.
   ``np.add.at`` / ``np.minimum.at`` / ``np.maximum.at`` then visit
   pixels in the same sequence as the full scan, and the boundary-PIP
   path sees the same point order — identical rounding everywhere.
3. **Batch-plan alignment.**  The accurate engine's boundary-PIP path
   folds partial sums per device batch, so batch *grouping* is part of
   the bit pattern.  Sub-chunks are therefore split at the row
   boundaries of the exact batch plan the tile's full-scan task would
   have used for the original chunk (same columns, same device budget,
   same per-tile framebuffer reservation); each sub-chunk then fits in
   one batch by construction, reproducing the full-scan groupings.

Partitioning is a pure performance decision: engines enable it through
:class:`~repro.exec.config.EngineConfig` (``partition_points=`` or
``$REPRO_PARTITION_POINTS``) and it cheaply no-ops on single-tile
canvases.
"""

from __future__ import annotations

import numpy as np

from repro.data.dataset import PointDataset
from repro.device.batching import plan_batches
from repro.device.memory import ResidentPointSet
from repro.errors import DeviceError
from repro.obs import metrics


class ResidentSubset:
    """Device-resident rows gathered for one tile.

    Slicing a :class:`~repro.device.memory.ResidentPointSet` yields
    plain arrays that are already device memory — a GPU would perform
    the gather in-kernel — so engines treat a subset exactly like a
    resident set: one zero-transfer batch, no upload planning.  Keeping
    the residency semantics is what lets partitioning help the
    in-memory scenario instead of taxing it with re-uploads.
    """

    __slots__ = ("_columns", "length")

    def __init__(self, columns: dict[str, np.ndarray]) -> None:
        self._columns = columns
        lengths = {len(arr) for arr in columns.values()}
        if len(lengths) > 1:
            raise DeviceError("resident subset columns have inconsistent lengths")
        self.length = lengths.pop() if lengths else 0

    def __len__(self) -> int:
        return self.length

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self._columns)

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise DeviceError(f"column {name!r} is not resident") from None


def _take(chunk, index: np.ndarray, columns: tuple[str, ...]):
    """Rows ``index`` of ``chunk``, restricted to the query's columns.

    Resident inputs stay resident (see :class:`ResidentSubset`); host
    datasets become trimmed host datasets holding only the columns the
    query touches, so partitioning never widens the data in flight.
    """
    if isinstance(chunk, (ResidentPointSet, ResidentSubset)):
        return ResidentSubset(
            {name: chunk.column(name)[index] for name in columns}
        )
    return PointDataset(
        chunk.column("x")[index],
        chunk.column("y")[index],
        {
            name: chunk.column(name)[index]
            for name in columns
            if name not in ("x", "y")
        },
    )


def tile_grid_shape(canvas, max_resolution: int) -> tuple[int, int]:
    """(columns, rows) of the tile grid ``Canvas.tiles`` produces."""
    nx = -(-canvas.width // max_resolution)
    ny = -(-canvas.height // max_resolution)
    return nx, ny


def partition_chunk(
    chunk,
    canvas,
    tiles,
    max_resolution: int,
    columns: tuple[str, ...],
    device,
    tile_fbo_bytes,
) -> tuple[list[list], int]:
    """Bucket one chunk into per-tile, batch-aligned sub-chunks.

    Returns ``(per_tile, duplicates)`` where ``per_tile[i]`` is the
    list of sub-chunks destined for ``tiles[i]`` (in original row
    order, split at tile ``i``'s batch-plan boundaries over the
    original chunk) and ``duplicates`` counts seam points assigned to
    more than one tile.  See the module docstring for why consuming
    these sub-chunks is bit-identical to full-scan execution.
    """
    per_tile: list[list] = [[] for _ in tiles]
    n = len(chunk)
    if n == 0:
        return per_tile, 0
    xs = chunk.column("x")
    ys = chunk.column("y")
    view = canvas.full_viewport()
    gx, gy, _ = view.pixel_of(xs, ys)
    width, height = canvas.width, canvas.height
    nx, ny = tile_grid_shape(canvas, max_resolution)

    # One pixel of slack on every side: the global and tile-local
    # transforms agree to far less than a pixel, so anything further out
    # cannot be inside any tile (see module docstring, property 1).
    cand = (gx >= -1) & (gx <= width) & (gy >= -1) & (gy <= height)
    if cand.all():
        idx0 = None  # identity — the common all-on-canvas case
    else:
        idx0 = np.flatnonzero(cand)
        if len(idx0) == 0:
            return per_tile, 0
        gx, gy = gx[idx0], gy[idx0]
    cgx = np.clip(gx, 0, width - 1)
    cgy = np.clip(gy, 0, height - 1)
    tx = cgx // max_resolution
    ty = cgy // max_resolution
    rx = cgx - tx * max_resolution
    ry = cgy - ty * max_resolution
    base_tids = ty * nx + tx

    # Seam membership: a point whose global pixel is the first or last
    # row/column of a tile may belong to the neighbor per that tile's
    # own transform; assign it to both and let each tile's exact
    # ``pixel_of`` check decide (false positives are free).
    x_near = {
        -1: (rx == 0) & (tx > 0),
        1: (rx == max_resolution - 1) & (tx < nx - 1),
    }
    y_near = {
        -1: (ry == 0) & (ty > 0),
        1: (ry == max_resolution - 1) & (ty < ny - 1),
    }
    tid_parts = [base_tids]
    idx_parts = [idx0]
    for dx in (-1, 0, 1):
        for dy in (-1, 0, 1):
            if dx == 0 and dy == 0:
                continue
            mask = x_near[dx] if dx else None
            if dy:
                mask = y_near[dy] if mask is None else mask & y_near[dy]
            if not mask.any():
                continue
            where = np.flatnonzero(mask)
            tid_parts.append((ty[where] + dy) * nx + (tx[where] + dx))
            idx_parts.append(where if idx0 is None else idx0[where])
    if len(tid_parts) == 1:
        # No seam duplicates (the overwhelmingly common case): a single
        # stable integer argsort buckets by tile while preserving the
        # original row order inside each bucket.
        duplicates = 0
        order = np.argsort(base_tids, kind="stable")
        tids = base_tids[order]
        idxs = order if idx0 is None else idx0[order]
    else:
        if idx_parts[0] is None:
            idx_parts[0] = np.arange(len(base_tids), dtype=np.int64)
        tids = np.concatenate(tid_parts)
        idxs = np.concatenate(idx_parts)
        duplicates = int(len(idxs) - len(idx_parts[0]))
        # Group by tile with original row order preserved inside each
        # group (duplicated seam rows must interleave by row index).
        order = np.lexsort((idxs, tids))
        tids = tids[order]
        idxs = idxs[order]
    bounds = np.flatnonzero(np.diff(tids)) + 1
    starts = np.concatenate([[0], bounds])
    ends = np.concatenate([bounds, [len(tids)]])

    resident = isinstance(chunk, (ResidentPointSet, ResidentSubset))
    for start, end in zip(starts, ends):
        tile_idx = int(tids[start])
        sel = idxs[start:end]
        if resident:
            # Resident chunks are consumed as a single zero-transfer
            # batch whatever their size — no plan to align with.
            per_tile[tile_idx].append(_take(chunk, sel, columns))
            continue
        rows = plan_batches(
            chunk, columns, device, tile_fbo_bytes[tile_idx]
        ).rows_per_batch
        if rows >= n:
            per_tile[tile_idx].append(_take(chunk, sel, columns))
            continue
        cuts = np.searchsorted(sel, np.arange(rows, n, rows))
        for piece in np.split(sel, cuts):
            if len(piece):
                per_tile[tile_idx].append(_take(chunk, piece, columns))
    metrics.counter("partition_chunks")
    metrics.counter("partition_points", int(n))
    if duplicates:
        metrics.counter("partition_seam_duplicates", duplicates)
    return per_tile, duplicates
