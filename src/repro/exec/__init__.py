"""Execution backends: serial, threaded, and forked tile parallelism.

The per-tile stages of both raster engines are independent across tiles;
this package decides where they run — and, via :mod:`repro.exec.partition`,
which points each tile task even has to look at.  See
:mod:`repro.exec.backend` for the task contract and pool lifecycle, and
:mod:`repro.exec.config` for the engine-facing configuration object.
"""

from repro.exec.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TilePartial,
    default_workers,
    resolve_backend,
)
from repro.exec.config import EngineConfig
from repro.exec.partition import ResidentSubset, partition_chunk

__all__ = [
    "EngineConfig",
    "ExecutionBackend",
    "ProcessBackend",
    "ResidentSubset",
    "SerialBackend",
    "ThreadBackend",
    "TilePartial",
    "default_workers",
    "partition_chunk",
    "resolve_backend",
]
