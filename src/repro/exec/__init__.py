"""Execution backends: serial, threaded, and process tile parallelism.

The per-tile stages of both raster engines are independent across tiles;
this package decides where they run — and, via :mod:`repro.exec.partition`,
which points each tile task even has to look at.  See
:mod:`repro.exec.backend` for the task contract and pool lifecycle,
:mod:`repro.exec.config` for the engine-facing configuration object, and
:mod:`repro.exec.shm` / :mod:`repro.exec.resident` for the zero-copy
shared-memory data plane and the resident spawn pool it feeds
(``EngineConfig(shm=True)`` / ``$REPRO_SHM=1``).
"""

from repro.exec.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TilePartial,
    default_workers,
    resolve_backend,
)
from repro.exec.config import EngineConfig
from repro.exec.partition import ResidentSubset, partition_chunk

__all__ = [
    "EngineConfig",
    "ExecutionBackend",
    "ProcessBackend",
    "ResidentSubset",
    "SerialBackend",
    "ThreadBackend",
    "TilePartial",
    "default_workers",
    "partition_chunk",
    "resolve_backend",
]
