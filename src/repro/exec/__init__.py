"""Execution backends: serial, threaded, and forked tile parallelism.

The per-tile stages of both raster engines are independent across tiles;
this package decides where they run.  See :mod:`repro.exec.backend` for
the task contract and :mod:`repro.exec.config` for the engine-facing
configuration object.
"""

from repro.exec.backend import (
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    TilePartial,
    default_workers,
    resolve_backend,
)
from repro.exec.config import EngineConfig

__all__ = [
    "EngineConfig",
    "ExecutionBackend",
    "ProcessBackend",
    "SerialBackend",
    "ThreadBackend",
    "TilePartial",
    "default_workers",
    "resolve_backend",
]
