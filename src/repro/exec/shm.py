"""Zero-copy shared-memory data plane for multi-process execution.

The fork-per-dispatch :class:`~repro.exec.backend.ProcessBackend` shares
parent memory copy-on-write, but everything a worker *produces* — and,
for resident (spawned) workers, everything it *consumes* — must cross a
pickle boundary.  This module removes that boundary for the bulk data:

* :class:`ShmArray` — a tiny picklable descriptor (segment name, dtype,
  shape, byte offset) that rehydrates into a zero-copy NumPy view over a
  named POSIX shared-memory segment in any process on the host;
* :class:`ShmRegistry` — the parent-side owner of every segment this
  process creates: refcounted leases, ``weakref.finalize`` hooks on the
  objects that hold them, and an ``atexit`` sweep, so no ``/dev/shm``
  entry outlives the interpreter (segment names all carry
  :data:`SHM_PREFIX`, which the CI leak check globs for);
* :class:`SegmentCache` — the worker-side attach cache: segments map
  once per worker and are reused across queries (keyed by name, which is
  unique per export, so a cached mapping can never be stale — only
  unused, which the byte-bounded LRU reclaims);
* :class:`ShmChunk` — a point chunk whose columns live in one shared
  segment.  It quacks like a resident point set (``column`` /
  ``column_names`` / ``__len__``), so engines consume it as a single
  zero-transfer batch, and it pickles as descriptors only — shipping a
  per-tile sub-chunk to a resident worker costs a few hundred bytes
  however many points it holds.

Ownership protocol: the process that *creates* a segment is the only
one that ever unlinks it.  Forked children inherit the registry object
but every mutating entry point is PID-guarded into a no-op, so a child
exiting (or a finalizer firing in one) can never tear down segments the
parent still serves.  Spawned workers share the owner's
``multiprocessing.resource_tracker`` process, so their attaches neither
add tracker state (registering an already-registered name is a set-add
no-op) nor remove it — the owner's registration survives until its own
unlink, and a worker's exit can never unlink a segment it merely mapped.
"""

from __future__ import annotations

import atexit
import os
import secrets
import threading
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory

import numpy as np

from repro.obs import metrics

#: Environment flag for the shared-memory data plane (and the process
#: backend's resident-worker mode); consulted when
#: ``EngineConfig.shm`` / ``QuerySession(shm=...)`` are ``None``.
#: Defaults to off: the shm tier is a host-local performance feature,
#: and results are bit-identical with it on or off.
SHM_ENV_VAR = "REPRO_SHM"

#: Every segment this module creates is named
#: ``{SHM_PREFIX}-{pid}-{seq}-{nonce}``; the post-suite leak check
#: asserts nothing matching ``/dev/shm/{SHM_PREFIX}-*`` survives.
SHM_PREFIX = "repro-shm"

#: Column starts inside a packed segment are aligned for any dtype.
_ALIGN = 64


@dataclass(frozen=True)
class ShmArray:
    """A picklable address of one array inside a shared segment."""

    segment: str
    dtype: str
    shape: tuple
    offset: int = 0

    @property
    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= int(dim)
        return count * np.dtype(self.dtype).itemsize


class ShmRegistry:
    """Refcounted owner of the shared segments this process created."""

    def __init__(self) -> None:
        self._pid = os.getpid()
        self._lock = threading.Lock()
        #: name -> [SharedMemory, refcount, nbytes]
        self._segments: dict[str, list] = {}
        self._seq = 0

    # -- accounting ----------------------------------------------------
    def _owned(self) -> bool:
        # A forked child inherits this object; its mutations must not
        # touch the parent's segments (and its exit must not unlink
        # them), so every entry point no-ops off-PID.
        return os.getpid() == self._pid

    def _publish_gauges(self) -> None:
        metrics.gauge_set("shm_segments", len(self._segments))
        metrics.gauge_set(
            "shm_bytes", sum(entry[2] for entry in self._segments.values())
        )

    # -- lifecycle -----------------------------------------------------
    def create(self, nbytes: int) -> tuple[str, memoryview]:
        """A fresh owned segment with refcount 1; returns (name, buffer)."""
        if not self._owned():  # pragma: no cover - fork-child guard
            raise RuntimeError("shm segments are created by the owner only")
        with self._lock:
            self._seq += 1
            name = (
                f"{SHM_PREFIX}-{self._pid}-{self._seq}-"
                f"{secrets.token_hex(4)}"
            )
            seg = shared_memory.SharedMemory(
                name=name, create=True, size=max(1, int(nbytes))
            )
            self._segments[name] = [seg, 1, seg.size]
            metrics.counter("shm_segments_created")
            self._publish_gauges()
        return name, seg.buf

    def retain(self, name: str) -> None:
        if not self._owned():  # pragma: no cover - fork-child guard
            return
        with self._lock:
            self._segments[name][1] += 1

    def release(self, name: str) -> None:
        """Drop one lease; the last one unmaps and unlinks the segment."""
        if not self._owned():  # pragma: no cover - fork-child guard
            return
        with self._lock:
            entry = self._segments.get(name)
            if entry is None:
                return
            entry[1] -= 1
            if entry[1] > 0:
                return
            del self._segments[name]
            self._publish_gauges()
        seg = entry[0]
        try:
            seg.close()
            seg.unlink()
        except FileNotFoundError:  # pragma: no cover - already gone
            pass

    def buffer(self, name: str) -> memoryview | None:
        """The owner-side mapping of a live segment, or ``None``."""
        with self._lock:
            entry = self._segments.get(name)
            return None if entry is None else entry[0].buf

    def live_segments(self) -> int:
        with self._lock:
            return len(self._segments)

    def live_bytes(self) -> int:
        with self._lock:
            return sum(entry[2] for entry in self._segments.values())

    def close_all(self) -> None:
        """Unlink everything still owned (interpreter-exit sweep)."""
        if not self._owned():  # pragma: no cover - fork-child guard
            return
        with self._lock:
            segments, self._segments = self._segments, {}
        for entry in segments.values():
            try:
                entry[0].close()
                entry[0].unlink()
            except Exception:  # pragma: no cover - exit path
                pass

    # -- exports -------------------------------------------------------
    def export_array(self, array: np.ndarray) -> ShmArray:
        """Copy one array into its own segment (refcount 1)."""
        array = np.ascontiguousarray(array)
        name, buf = self.create(array.nbytes)
        view = np.ndarray(array.shape, dtype=array.dtype, buffer=buf)
        np.copyto(view, array)
        return ShmArray(name, array.dtype.str, tuple(array.shape), 0)

    def export_bytes(self, blob: bytes) -> ShmArray:
        """Copy a byte string into its own segment (refcount 1)."""
        name, buf = self.create(len(blob))
        buf[: len(blob)] = blob
        return ShmArray(name, "|u1", (len(blob),), 0)

    def export_columns(self, columns: dict[str, np.ndarray]) -> dict[str, ShmArray]:
        """Pack several columns into ONE segment, aligned per column.

        One segment per sub-chunk keeps the ``/dev/shm`` entry count (and
        the per-worker attach count) proportional to chunks, not
        chunks x columns.
        """
        arrays = {
            name: np.ascontiguousarray(arr) for name, arr in columns.items()
        }
        offsets: dict[str, int] = {}
        cursor = 0
        for name, arr in arrays.items():
            cursor = -(-cursor // _ALIGN) * _ALIGN
            offsets[name] = cursor
            cursor += arr.nbytes
        segment, buf = self.create(cursor)
        refs: dict[str, ShmArray] = {}
        for name, arr in arrays.items():
            view = np.ndarray(
                arr.shape, dtype=arr.dtype, buffer=buf, offset=offsets[name]
            )
            np.copyto(view, arr)
            refs[name] = ShmArray(
                segment, arr.dtype.str, tuple(arr.shape), offsets[name]
            )
        return refs


#: The process-wide segment owner.  Forked children inherit it inert
#: (PID guards); spawned workers start their own empty one and attach
#: through SEGMENT_CACHE instead.
REGISTRY = ShmRegistry()


@atexit.register
def _close_registry_at_exit() -> None:  # pragma: no cover - exit path
    REGISTRY.close_all()


class SegmentCache:
    """Worker-side attach cache: map once, reuse across queries.

    Names are unique per export, so a cached mapping is never *stale*;
    a mapping whose segment the owner has since unlinked is merely dead
    weight until the byte-bounded LRU drops it.  Attaching re-registers
    the name with the resource tracker, which is deliberately left
    alone: spawned workers share the owner's tracker process, so the
    registration is an idempotent set-add — whereas unregistering here
    would erase the owner's sole entry and make its eventual unlink a
    double-unregister (tracker KeyError spam at every teardown).
    """

    def __init__(self, byte_cap: int = 1 << 30) -> None:
        self.byte_cap = byte_cap
        self._lock = threading.Lock()
        self._segments: dict[str, shared_memory.SharedMemory] = {}
        self._order: list[str] = []

    def buffer(self, name: str) -> memoryview:
        with self._lock:
            seg = self._segments.get(name)
            if seg is not None:
                self._order.remove(name)
                self._order.append(name)
                metrics.counter("shm_segment_attach", event="reused")
                return seg.buf
            seg = shared_memory.SharedMemory(name=name)
            self._segments[name] = seg
            self._order.append(name)
            metrics.counter("shm_segment_attach", event="mapped")
            while (
                len(self._order) > 1
                and sum(s.size for s in self._segments.values()) > self.byte_cap
            ):
                oldest = self._order.pop(0)
                self._segments.pop(oldest).close()
            return seg.buf

    def close(self) -> None:
        with self._lock:
            segments, self._segments = self._segments, {}
            self._order = []
        for seg in segments.values():
            try:
                seg.close()
            except Exception:  # pragma: no cover - teardown path
                pass


#: This process's attach cache (used when resolving a descriptor whose
#: segment some *other* process owns — i.e. inside resident workers).
SEGMENT_CACHE = SegmentCache()


def view(ref: ShmArray, writable: bool = False) -> np.ndarray:
    """Rehydrate a descriptor into a zero-copy NumPy view.

    The owner resolves through its registry mapping; any other process
    attaches (once) through the segment cache.  Read views are marked
    non-writable so an engine bug cannot silently corrupt a segment a
    sibling query is reading.
    """
    buf = REGISTRY.buffer(ref.segment)
    if buf is None:
        buf = SEGMENT_CACHE.buffer(ref.segment)
    arr = np.ndarray(
        ref.shape, dtype=np.dtype(ref.dtype), buffer=buf, offset=ref.offset
    )
    if not writable:
        arr.flags.writeable = False
    return arr


class ShmChunk:
    """A point chunk whose columns live in one shared segment.

    Duck-types the resident point-set protocol, so engines treat it as
    a single zero-transfer batch — which preserves bit-identity, because
    the partition stage only emits sub-chunks that fit exactly one
    device batch anyway (see :mod:`repro.exec.partition`, property 3).
    Pickles as descriptors + length only; rehydrated copies (workers)
    never own leases, so their GC can't unlink anything.
    """

    __slots__ = ("refs", "length", "_views", "_finalizer", "__weakref__")

    def __init__(self, refs: dict[str, ShmArray], length: int) -> None:
        self.refs = refs
        self.length = length
        self._views: dict[str, np.ndarray] = {}
        self._finalizer = None

    def __len__(self) -> int:
        return self.length

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(self.refs)

    @property
    def segments(self) -> tuple[str, ...]:
        """Distinct segment names backing this chunk (usually one)."""
        return tuple(dict.fromkeys(ref.segment for ref in self.refs.values()))

    @property
    def nbytes(self) -> int:
        return sum(ref.nbytes for ref in self.refs.values())

    def column(self, name: str) -> np.ndarray:
        arr = self._views.get(name)
        if arr is None:
            arr = self._views[name] = view(self.refs[name])
        return arr

    def release(self) -> None:
        """Drop this chunk's leases now (idempotent; owner-side only)."""
        if self._finalizer is not None:
            self._finalizer()

    # Descriptors only — views and finalizers are per-process state.
    def __getstate__(self) -> tuple:
        return (self.refs, self.length)

    def __setstate__(self, state: tuple) -> None:
        self.refs, self.length = state
        self._views = {}
        self._finalizer = None


def export_chunk(chunk, columns: tuple[str, ...] | None = None) -> ShmChunk:
    """Copy a point chunk's columns into shared memory (owner-side).

    The returned chunk holds one registry lease per backing segment,
    released by an explicit :meth:`ShmChunk.release` or — because
    eviction from the partition cache just drops the reference — by a
    ``weakref.finalize`` hook when the chunk is garbage collected.
    """
    if columns is None:
        names = getattr(chunk, "column_names", None)
        columns = (
            tuple(names) if names is not None
            else ("x", "y", *getattr(chunk, "attributes", {}))
        )
    refs = REGISTRY.export_columns(
        {name: chunk.column(name) for name in columns}
    )
    out = ShmChunk(refs, len(chunk))
    segments = out.segments
    out._finalizer = weakref.finalize(
        out, _release_segments, REGISTRY, segments
    )
    return out


def _release_segments(registry: ShmRegistry, segments: tuple[str, ...]) -> None:
    for name in segments:
        registry.release(name)
