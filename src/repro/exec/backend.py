"""Pluggable execution backends for independent tile tasks.

The raster-join pipeline is embarrassingly parallel across canvas tiles:
each tile's boundary render, point pass, and polygon pass read shared
prepared state but write only tile-local framebuffers and accumulators.
A backend decides *where* those tile tasks run — inline, on a thread
pool, or on forked worker processes — while the engines keep the merge
deterministic by folding the returned partials in tile-index order.

Every backend obeys the same contract:

* ``run_tasks(tasks)`` executes zero-argument callables and returns their
  results **in task order**, whatever order they complete in;
* a raised exception in any task propagates to the caller;
* ``parallelism`` caps in-flight tasks below ``workers`` (the engines use
  this to keep concurrent device batches inside the memory budget).

Because results are merged in task order and each task folds its own
accumulators from the blend identity, results are bit-identical across
backends and worker counts (see ``docs/parallel_execution.md``).

Pools are **persistent** by default: a :class:`ThreadBackend` spawns its
executor lazily on first multi-task dispatch and keeps it for the life
of the backend instance, so a second query on the same engine pays zero
pool construction.  ``close()`` releases the pool explicitly; anything
still open is reclaimed at interpreter exit, and forked children drop
inherited pools (whose threads do not survive a fork) so they rebuild
lazily.

:class:`ProcessBackend` runs in one of two modes.  Its default is
fork-per-dispatch: tasks are unpicklable closures, and only a child
forked *after* they exist can see them, so each dispatch forks a fresh
pool and relies on the parent's memory (prepared artifacts, partitioned
point chunks) being inherited copy-on-write for free.  With the
shared-memory data plane enabled (``resident=True`` /
``$REPRO_SHM=1``), engines may instead hand it **descriptor tasks**
(:class:`~repro.exec.resident.TileTaskSpec`): small picklable specs
naming shared-memory segments instead of closing over arrays.  Those
dispatch to a persistent pool of spawned workers (``run_specs``) that
caches mapped segments and unpickled engine state across queries —
warm repeated queries skip the fork, the state pickling, and the bulk
result pickling entirely.  Both modes produce bit-identical results;
see ``docs/parallel_execution.md``.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import weakref
from abc import ABC, abstractmethod
from collections import OrderedDict
from concurrent.futures import ThreadPoolExecutor, wait as wait_futures
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutionBackendError
from repro.exec import shm
from repro.exec.shm import SHM_ENV_VAR
from repro.obs import metrics
from repro.types import ExecutionStats

#: Environment variables consulted when no backend is configured
#: explicitly — the CI matrix runs the whole test suite under each
#: backend by exporting these, without touching any call site.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"
WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"
PERSISTENT_ENV_VAR = "REPRO_PERSISTENT_POOL"

_TRUE_FLAGS = frozenset({"1", "true", "yes", "on"})
_FALSE_FLAGS = frozenset({"0", "false", "no", "off"})


def flag_from_env(name: str, default: bool) -> bool:
    """Parse a boolean environment flag, rejecting unrecognized values."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUE_FLAGS:
        return True
    if lowered in _FALSE_FLAGS:
        return False
    raise ExecutionBackendError(
        f"{name} must be a boolean flag "
        f"({sorted(_TRUE_FLAGS)} / {sorted(_FALSE_FLAGS)}), got {raw!r}"
    )


@dataclass
class TilePartial:
    """Everything one tile task hands back to the deterministic merge.

    ``accumulators`` are per-polygon channel arrays folded from the blend
    identity over this tile only; ``stats`` counts only this tile's work.
    ``boundary_mask`` and ``coverage`` carry newly built prepared-state
    pieces back to the parent (required under the process backend, where
    workers mutate copy-on-write clones of the artifact), and ``payload``
    is engine-specific (the bounded engine's per-tile FBO for §5 result
    intervals).  ``unit_boundary`` and ``unit_coverage`` carry the
    *per-polygon* slices of the same builds (polygon id -> outline
    pixels / raw coverage pieces) so the parent can install them into
    the artifact's :class:`~repro.cache.prepared.PolygonUnit` list —
    the state that makes single-polygon edits incremental.  ``span`` is
    the tile task's finished trace subtree (plain picklable
    :class:`repro.obs.trace.Span` data, so it survives the process
    backend's result pickling), or ``None`` when tracing was off.
    ``metrics`` carries the counter/histogram increments the task made
    in a *worker process* (forked or resident) — a
    :meth:`~repro.obs.metrics.MetricsRegistry.delta_since` dict the
    parent merge folds into its registry, so process-backend workers'
    instrumentation is no longer silently lost; ``None`` under the
    in-process backends, whose increments land directly.
    """

    tile_idx: int
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    saw_points: bool = False
    boundary_mask: np.ndarray | None = None
    coverage: list | None = None
    unit_boundary: dict | None = None
    unit_coverage: dict | None = None
    payload: object = None
    span: object = None
    metrics: dict | None = None


#: Live backends whose pools must be dropped in forked children (their
#: threads do not cross the fork) and closed at interpreter exit.
_LIVE_BACKENDS: "weakref.WeakSet[ExecutionBackend]" = weakref.WeakSet()

#: True in every process forked from this one (pool workers, including
#: replacements the pool spawns mid-map).  A ProcessBackend dispatch in
#: such a child runs inline instead of forking again.
_IN_FORKED_CHILD = False


def _mark_forked_child() -> None:  # pragma: no cover - fork path
    global _IN_FORKED_CHILD
    _IN_FORKED_CHILD = True
    for backend in _LIVE_BACKENDS:
        backend._forget_pool()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_mark_forked_child)


@atexit.register
def _close_backends_at_exit() -> None:  # pragma: no cover - exit path
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.close()
        except Exception:
            pass


class ExecutionBackend(ABC):
    """Runs independent tasks and returns their results in task order."""

    name = "abstract"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionBackendError(
                f"worker count must be >= 1, got {workers}"
            )
        self.workers = workers if workers is not None else default_workers()
        #: Whether multi-task dispatches reuse a long-lived pool.
        #: ``None`` consults ``$REPRO_PERSISTENT_POOL``, defaulting to
        #: ``True``.  Purely a performance decision — results are
        #: bit-identical either way.
        self.persistent = (
            flag_from_env(PERSISTENT_ENV_VAR, True)
            if persistent is None
            else persistent
        )
        # Per-thread dispatch events: backends are deliberately shared
        # across engines (optimizer, planner), so concurrent queries
        # must each read the event of *their own* dispatch, not the
        # latest one on the instance.
        self._events = threading.local()
        _LIVE_BACKENDS.add(self)

    @property
    def last_pool_event(self) -> str | None:
        """How this thread's most recent ``run_tasks`` executed:
        ``"inline"`` (no pool), ``"created"`` (persistent pool spawned),
        ``"reused"`` (persistent pool already live), ``"ephemeral"``
        (throwaway pool), ``"forked"`` (fresh fork fan-out),
        ``"resident-created"`` (persistent spawn pool brought up for a
        shm descriptor dispatch), or ``"resident-reused"`` (descriptor
        dispatch served by the live spawn pool).
        Engines copy it into ``ExecutionStats.extra["pool"]``.  Recorded
        per calling thread, so concurrent queries on one shared backend
        never see each other's events."""
        return getattr(self._events, "last", None)

    def _record_event(self, event: str) -> None:
        self._events.last = event
        metrics.counter("backend_pool_events", backend=self.name,
                        event=event)

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[Callable[[], object]],
        parallelism: int | None = None,
    ) -> list:
        """Execute every task, returning results in task order."""

    def close(self) -> None:
        """Release any long-lived pool.  Safe to call repeatedly; the
        next dispatch simply respawns lazily."""

    def _forget_pool(self) -> None:
        """Drop pool state without joining it (fork-child reset)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # Backends ride along when an engine is pickled into a resident
    # worker's state blob; thread-locals (and subclass pool state) are
    # per-process and rebuild on the other side.
    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        state.pop("_events", None)
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._events = threading.local()
        _LIVE_BACKENDS.add(self)

    def _effective_workers(
        self, num_tasks: int, parallelism: int | None
    ) -> int:
        limit = self.workers if parallelism is None else min(
            self.workers, max(1, parallelism)
        )
        return max(1, min(limit, num_tasks))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference semantics every backend matches."""

    name = "serial"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        # A serial backend runs one task at a time by definition; the
        # worker count is pinned so stats reporting never lies.
        super().__init__(1, persistent)

    def run_tasks(self, tasks, parallelism=None):
        self._record_event("inline")
        return [task() for task in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared prepared state, no pickling.

    NumPy kernels release the GIL for the bulk of the per-tile work
    (rasterization, gathers, reductions), so threads overlap well on
    multi-core hosts while sharing :class:`PreparedPolygons` artifacts
    and device-resident point sets by reference.

    The pool is owned by the backend instance: spawned lazily on the
    first dispatch that needs it and reused by every later one (sized
    ``workers``; per-dispatch ``parallelism`` caps are enforced with a
    semaphore instead of a smaller pool).  ``close()`` joins it;
    interpreter exit reclaims stragglers; a forked child drops the
    inherited pool, whose threads did not survive the fork, and
    respawns on demand.
    """

    name = "thread"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        super().__init__(workers, persistent)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for key in ("_pool", "_pool_lock", "_in_worker"):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._pool = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()

    def _submit_all(self, call, tasks) -> list:
        """Submit every task to the persistent pool, spawning it if needed.

        Submission happens under the pool lock so a concurrent
        ``close()`` can never shut the executor down halfway through a
        dispatch — it either runs before (this dispatch respawns the
        pool) or after (the futures are already queued, and
        ``shutdown(wait=True)`` lets them finish).
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-tile",
                )
                self._record_event("created")
            else:
                self._record_event("reused")
            return [self._pool.submit(call, task) for task in tasks]

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _forget_pool(self) -> None:  # pragma: no cover - fork path
        # The inherited executor's threads do not exist in this child;
        # drop it without shutdown (joining dead threads would hang) and
        # re-arm the lock, which may have been held at fork time.
        self._pool = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()
        self._events = threading.local()

    def run_tasks(self, tasks, parallelism=None):
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1 or getattr(self._in_worker, "active", False):
            # Degenerate parallelism — or a nested dispatch from inside
            # one of our own pool threads, which must not wait on pool
            # slots it is itself occupying.
            self._record_event("inline")
            return [task() for task in tasks]
        if not self.persistent:
            self._record_event("ephemeral")
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # Executor.map yields results in submission order
                # regardless of completion order — the determinism anchor.
                return list(pool.map(self._run_one, tasks))
        if workers < self.workers:
            gate = threading.BoundedSemaphore(workers)

            def call(task):
                with gate:
                    return self._run_one(task)
        else:
            call = self._run_one
        # Futures resolve in submission order whatever order they
        # complete in — the determinism anchor.  On failure, siblings
        # are cancelled and awaited so no task of this dispatch is
        # still running when run_tasks raises (the same invariant the
        # ephemeral with-block enforces).
        futures = self._submit_all(call, tasks)
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            wait_futures(futures)
            raise

    def _run_one(self, task):
        self._in_worker.active = True
        try:
            return task()
        finally:
            self._in_worker.active = False


#: Task lists inherited by forked workers, keyed by dispatch token
#: (copy-on-write; nothing is pickled on the way in — only the token
#: travels through ``pool.map`` and only results are pickled back).
#: An entry stays published for its pool's whole lifetime, so workers
#: the pool re-forks mid-map (replacements for a crashed worker) still
#: inherit the right task list; concurrent dispatches coexist under
#: distinct tokens.  The name is only ever rebound to a *fresh* dict —
#: never mutated in place — so a fork snapshotted at any instant (pool
#: replacements fork from the maintenance thread at arbitrary times)
#: sees an internally consistent mapping.  ``_FORK_LOCK`` serializes
#: the rebinding and the initial pool fork; it is released before the
#: (long) map, so concurrent fan-outs from different threads overlap
#: their work and serialize only their forks.
_FORK_REGISTRY: dict[int, Sequence[Callable[[], object]]] = {}
_FORK_LOCK = threading.Lock()
_FORK_TOKEN_COUNTER = 0


def _attach_metrics_delta(result, delta: dict) -> None:
    """Hang a worker's metrics delta on its result, when it can carry one.

    A tile task's result is a :class:`TilePartial`; the fused shared-scan
    executor returns a *list* of them per tile (one per member query), in
    which case the delta rides on the first — it is applied exactly once
    by whichever member's merge sees it.  Results of neither shape drop
    the delta (no TilePartial travels home to carry it).
    """
    if isinstance(result, TilePartial):
        result.metrics = delta
    elif (
        isinstance(result, list) and result
        and isinstance(result[0], TilePartial)
    ):
        result[0].metrics = delta


def _run_forked_task(job: tuple[int, int]):
    # Runs in a forked pool child.  The child inherited the parent's
    # metrics registry contents at fork time, so a delta against a
    # task-start baseline is exactly this task's own increments — shipped
    # home on the TilePartial (parent-side merge applies it), because
    # everything incremented here otherwise dies with the child.
    token, index = job
    baseline = metrics.REGISTRY.baseline()
    result = _FORK_REGISTRY[token][index]()
    delta = metrics.REGISTRY.delta_since(baseline)
    if delta:
        _attach_metrics_delta(result, delta)
    return result


class ProcessBackend(ExecutionBackend):
    """Process execution: true parallelism, two dispatch modes.

    **Closure mode** (``run_tasks``, always available): tasks are plain
    closures handed to freshly *forked* children through process memory,
    so nothing on the way in needs to be picklable; results
    (:class:`TilePartial`) are pickled on the way back.  The fork is
    per dispatch by necessity — a pool forked before a query cannot see
    that query's closures — and what persists across queries is the
    parent's memory, inherited copy-on-write.  Requires the ``fork``
    start method (POSIX); platforms without it should use
    :class:`ThreadBackend` — see ``docs/parallel_execution.md``.

    **Resident mode** (``run_specs``, on with ``resident=True`` /
    ``$REPRO_SHM=1``): engines that can express a tile task as a
    picklable :class:`~repro.exec.resident.TileTaskSpec` — inputs named
    by shared-memory descriptors, output written into a shared result
    buffer — dispatch to one persistent pool of **spawned** workers
    that lives across queries, caching mapped segments and unpickled
    engine state worker-side (keyed by the artifact's content
    generation).  Warm repeated queries then pay no fork, no state
    pickling, and no bulk result pickling.  Callers probe
    :meth:`resident_capable` first and fall back to closure mode for
    anything the spec form cannot express — both modes run the same
    tile code and merge identically, so results never depend on which
    one served a query.
    """

    name = "process"

    #: Parent-side pickled state blobs kept for the resident pool, LRU.
    STATE_CACHE_ENTRIES = 4

    def __init__(
        self,
        workers: int | None = None,
        persistent: bool | None = None,
        resident: bool | None = None,
    ) -> None:
        super().__init__(workers, persistent)
        #: Whether descriptor dispatches (``run_specs``) are available.
        #: ``None`` consults ``$REPRO_SHM``, defaulting to off.
        self.resident = (
            flag_from_env(SHM_ENV_VAR, False)
            if resident is None
            else resident
        )
        self._resident_lock = threading.RLock()
        self._resident_pool = None
        #: token -> (anchor, state_key, blob ShmArray).  ``anchor``
        #: strong-refs the live objects the token identifies by id(), so
        #: an id can never be recycled while its entry is cached.
        self._resident_states: OrderedDict = OrderedDict()
        self._result_buffer: tuple[tuple, shm.ShmArray] | None = None
        self._state_seq = 0

    # -- resident mode -------------------------------------------------
    def resident_capable(
        self, num_tasks: int, parallelism: int | None = None
    ) -> bool:
        """Whether ``run_specs`` would actually use the resident pool.

        False inside a forked child (nested dispatches run inline) and
        for degenerate parallelism, where the closure path is strictly
        cheaper.
        """
        return (
            self.resident
            and not _IN_FORKED_CHILD
            and self._effective_workers(num_tasks, parallelism) > 1
        )

    def resident_guard(self):
        """The lock serializing resident dispatches on this backend.

        Callers hold it across ``resident_state`` + ``resident_result``
        + ``run_specs`` + reading the result buffer, so a concurrent
        query on the same shared backend can never swap or overwrite
        the buffer mid-read (the lock is reentrant).
        """
        return self._resident_lock

    def resident_state(self, token, anchor, build_blob) -> tuple:
        """(state_key, blob ref) for a pickled engine-state blob, cached.

        ``token`` identifies the state by content generation (the caller
        includes ``prepared.version``), so a warmed or edited artifact
        gets a fresh blob — and a fresh ``state_key``, which is what
        tells resident workers their cached unpickled copy is stale.
        """
        with self._resident_lock:
            entry = self._resident_states.get(token)
            if entry is not None:
                self._resident_states.move_to_end(token)
                metrics.counter("resident_state_blobs", event="reused")
                return entry[1], entry[2]
            ref = shm.REGISTRY.export_bytes(build_blob())
            self._state_seq += 1
            state_key = (os.getpid(), id(self), self._state_seq)
            self._resident_states[token] = (anchor, state_key, ref)
            metrics.counter("resident_state_blobs", event="exported")
            while len(self._resident_states) > self.STATE_CACHE_ENTRIES:
                _, old = self._resident_states.popitem(last=False)
                shm.REGISTRY.release(old[2].segment)
            return state_key, ref

    def resident_result(self, shape: tuple) -> shm.ShmArray:
        """The shared result buffer for this dispatch shape.

        One buffer per backend, reallocated only when the shape
        changes; dispatches are serialized under :meth:`resident_guard`,
        so reuse across queries is race-free.
        """
        with self._resident_lock:
            if self._result_buffer is None or self._result_buffer[0] != shape:
                if self._result_buffer is not None:
                    shm.REGISTRY.release(self._result_buffer[1].segment)
                ref = shm.REGISTRY.export_array(
                    np.zeros(shape, dtype=np.float64)
                )
                self._result_buffer = (shape, ref)
            return self._result_buffer[1]

    def run_specs(self, specs, parallelism: int | None = None) -> list:
        """Dispatch descriptor tasks to the persistent resident pool.

        Results come back in spec-index order (the same contract as
        ``run_tasks``).  A broken pool (a worker process died) is torn
        down so the next dispatch respawns it fresh.
        """
        from repro.exec.resident import ResidentWorkerPool

        specs = list(specs)
        if not specs:
            return []
        with self._resident_lock:
            if self._resident_pool is None:
                self._resident_pool = ResidentWorkerPool(self.workers)
                self._record_event("resident-created")
            else:
                self._record_event("resident-reused")
            try:
                return self._resident_pool.dispatch(specs, parallelism)
            except BaseException:
                if (
                    self._resident_pool is not None
                    and self._resident_pool.broken
                ):
                    pool, self._resident_pool = self._resident_pool, None
                    pool.close()
                raise

    def close(self) -> None:
        with self._resident_lock:
            pool, self._resident_pool = self._resident_pool, None
            states, self._resident_states = (
                self._resident_states, OrderedDict()
            )
            buffer, self._result_buffer = self._result_buffer, None
        if pool is not None:
            pool.close()
        for _, entry in states.items():
            shm.REGISTRY.release(entry[2].segment)
        if buffer is not None:
            shm.REGISTRY.release(buffer[1].segment)

    def _forget_pool(self) -> None:  # pragma: no cover - fork path
        # A forked child shares the parent's pool queues and segment
        # leases; it must neither use nor release them.  Drop the
        # references (the shm registry's PID guard makes any stray
        # release a no-op) and re-arm the lock.
        self._resident_pool = None
        self._resident_lock = threading.RLock()
        self._resident_states = OrderedDict()
        self._result_buffer = None
        self._events = threading.local()

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        for key in (
            "_resident_lock", "_resident_pool", "_resident_states",
            "_result_buffer",
        ):
            state.pop(key, None)
        return state

    def __setstate__(self, state: dict) -> None:
        super().__setstate__(state)
        self._resident_lock = threading.RLock()
        self._resident_pool = None
        self._resident_states = OrderedDict()
        self._result_buffer = None

    def run_tasks(self, tasks, parallelism=None):
        global _FORK_REGISTRY, _FORK_TOKEN_COUNTER
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1 or _IN_FORKED_CHILD:
            # Degenerate parallelism, or a nested call from inside a
            # forked worker: run inline (results are identical anyway).
            self._record_event("inline")
            return [task() for task in tasks]
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:
            raise ExecutionBackendError(
                "ProcessBackend needs the 'fork' start method, which this "
                "platform does not provide; use ThreadBackend instead"
            ) from exc
        # Publish this dispatch's task list under a fresh token, fork
        # the pool, and leave the entry published until the map is done
        # — any worker forked for this pool (including mid-map
        # replacements) inherits it, while other threads fan out under
        # their own tokens concurrently.  The entry is pruned on every
        # exit path, including a failed pool spawn.
        with _FORK_LOCK:
            _FORK_TOKEN_COUNTER += 1
            token = _FORK_TOKEN_COUNTER
            _FORK_REGISTRY = {**_FORK_REGISTRY, token: tasks}
        pool = None
        try:
            with _FORK_LOCK:
                pool = ctx.Pool(processes=workers)
            self._record_event("forked")
            return pool.map(
                _run_forked_task, [(token, i) for i in range(len(tasks))]
            )
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()
            with _FORK_LOCK:
                _FORK_REGISTRY = {
                    k: v for k, v in _FORK_REGISTRY.items() if k != token
                }


_BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_workers() -> int:
    """Worker count when none is configured: env override, else cores."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be >= 1, got {workers}"
            )
        return workers
    return os.cpu_count() or 1


def resolve_backend(
    spec: str | ExecutionBackend | None = None,
    workers: int | None = None,
    persistent: bool | None = None,
    shm_resident: bool | None = None,
) -> ExecutionBackend:
    """Materialize a backend from a name, an instance, or the environment.

    ``None`` falls back to ``$REPRO_EXEC_BACKEND`` (and worker counts to
    ``$REPRO_EXEC_WORKERS``, pool persistence to
    ``$REPRO_PERSISTENT_POOL``), defaulting to serial execution —
    existing call sites keep their exact pre-parallelism behaviour
    unless they, or the environment, opt in.  An instance passes
    through unchanged, carrying its own persistence setting.
    ``shm_resident`` routes only to :class:`ProcessBackend` (``None``
    consults ``$REPRO_SHM`` there, defaulting to off); the other
    backends run in-process and have no pickle boundary to remove.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    try:
        cls = _BACKEND_CLASSES[spec]
    except KeyError:
        raise ExecutionBackendError(
            f"unknown execution backend {spec!r}; "
            f"expected one of {sorted(_BACKEND_CLASSES)}"
        ) from None
    if cls is ProcessBackend:
        return cls(
            workers=workers, persistent=persistent, resident=shm_resident
        )
    return cls(workers=workers, persistent=persistent)
