"""Pluggable execution backends for independent tile tasks.

The raster-join pipeline is embarrassingly parallel across canvas tiles:
each tile's boundary render, point pass, and polygon pass read shared
prepared state but write only tile-local framebuffers and accumulators.
A backend decides *where* those tile tasks run — inline, on a thread
pool, or on forked worker processes — while the engines keep the merge
deterministic by folding the returned partials in tile-index order.

Every backend obeys the same contract:

* ``run_tasks(tasks)`` executes zero-argument callables and returns their
  results **in task order**, whatever order they complete in;
* a raised exception in any task propagates to the caller;
* ``parallelism`` caps in-flight tasks below ``workers`` (the engines use
  this to keep concurrent device batches inside the memory budget).

Because results are merged in task order and each task folds its own
accumulators from the blend identity, results are bit-identical across
backends and worker counts (see ``docs/parallel_execution.md``).

Pools are **persistent** by default: a :class:`ThreadBackend` spawns its
executor lazily on first multi-task dispatch and keeps it for the life
of the backend instance, so a second query on the same engine pays zero
pool construction.  ``close()`` releases the pool explicitly; anything
still open is reclaimed at interpreter exit, and forked children drop
inherited pools (whose threads do not survive a fork) so they rebuild
lazily.  :class:`ProcessBackend` deliberately stays fork-per-dispatch —
see its docstring for why a long-lived fork pool cannot work here —
but what *persists* across its queries is the parent's memory (prepared
artifacts, partitioned point segments), which every re-fork inherits
copy-on-write at zero copy cost.
"""

from __future__ import annotations

import atexit
import multiprocessing as mp
import os
import threading
import weakref
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor, wait as wait_futures
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutionBackendError
from repro.obs import metrics
from repro.types import ExecutionStats

#: Environment variables consulted when no backend is configured
#: explicitly — the CI matrix runs the whole test suite under each
#: backend by exporting these, without touching any call site.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"
WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"
PERSISTENT_ENV_VAR = "REPRO_PERSISTENT_POOL"

_TRUE_FLAGS = frozenset({"1", "true", "yes", "on"})
_FALSE_FLAGS = frozenset({"0", "false", "no", "off"})


def flag_from_env(name: str, default: bool) -> bool:
    """Parse a boolean environment flag, rejecting unrecognized values."""
    raw = os.environ.get(name)
    if raw is None or raw == "":
        return default
    lowered = raw.strip().lower()
    if lowered in _TRUE_FLAGS:
        return True
    if lowered in _FALSE_FLAGS:
        return False
    raise ExecutionBackendError(
        f"{name} must be a boolean flag "
        f"({sorted(_TRUE_FLAGS)} / {sorted(_FALSE_FLAGS)}), got {raw!r}"
    )


@dataclass
class TilePartial:
    """Everything one tile task hands back to the deterministic merge.

    ``accumulators`` are per-polygon channel arrays folded from the blend
    identity over this tile only; ``stats`` counts only this tile's work.
    ``boundary_mask`` and ``coverage`` carry newly built prepared-state
    pieces back to the parent (required under the process backend, where
    workers mutate copy-on-write clones of the artifact), and ``payload``
    is engine-specific (the bounded engine's per-tile FBO for §5 result
    intervals).  ``unit_boundary`` and ``unit_coverage`` carry the
    *per-polygon* slices of the same builds (polygon id -> outline
    pixels / raw coverage pieces) so the parent can install them into
    the artifact's :class:`~repro.cache.prepared.PolygonUnit` list —
    the state that makes single-polygon edits incremental.  ``span`` is
    the tile task's finished trace subtree (plain picklable
    :class:`repro.obs.trace.Span` data, so it survives the process
    backend's result pickling), or ``None`` when tracing was off.
    """

    tile_idx: int
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    saw_points: bool = False
    boundary_mask: np.ndarray | None = None
    coverage: list | None = None
    unit_boundary: dict | None = None
    unit_coverage: dict | None = None
    payload: object = None
    span: object = None


#: Live backends whose pools must be dropped in forked children (their
#: threads do not cross the fork) and closed at interpreter exit.
_LIVE_BACKENDS: "weakref.WeakSet[ExecutionBackend]" = weakref.WeakSet()

#: True in every process forked from this one (pool workers, including
#: replacements the pool spawns mid-map).  A ProcessBackend dispatch in
#: such a child runs inline instead of forking again.
_IN_FORKED_CHILD = False


def _mark_forked_child() -> None:  # pragma: no cover - fork path
    global _IN_FORKED_CHILD
    _IN_FORKED_CHILD = True
    for backend in _LIVE_BACKENDS:
        backend._forget_pool()


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_mark_forked_child)


@atexit.register
def _close_backends_at_exit() -> None:  # pragma: no cover - exit path
    for backend in list(_LIVE_BACKENDS):
        try:
            backend.close()
        except Exception:
            pass


class ExecutionBackend(ABC):
    """Runs independent tasks and returns their results in task order."""

    name = "abstract"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        if workers is not None and workers < 1:
            raise ExecutionBackendError(
                f"worker count must be >= 1, got {workers}"
            )
        self.workers = workers if workers is not None else default_workers()
        #: Whether multi-task dispatches reuse a long-lived pool.
        #: ``None`` consults ``$REPRO_PERSISTENT_POOL``, defaulting to
        #: ``True``.  Purely a performance decision — results are
        #: bit-identical either way.
        self.persistent = (
            flag_from_env(PERSISTENT_ENV_VAR, True)
            if persistent is None
            else persistent
        )
        # Per-thread dispatch events: backends are deliberately shared
        # across engines (optimizer, planner), so concurrent queries
        # must each read the event of *their own* dispatch, not the
        # latest one on the instance.
        self._events = threading.local()
        _LIVE_BACKENDS.add(self)

    @property
    def last_pool_event(self) -> str | None:
        """How this thread's most recent ``run_tasks`` executed:
        ``"inline"`` (no pool), ``"created"`` (persistent pool spawned),
        ``"reused"`` (persistent pool already live), ``"ephemeral"``
        (throwaway pool), or ``"forked"`` (fresh fork fan-out).
        Engines copy it into ``ExecutionStats.extra["pool"]``.  Recorded
        per calling thread, so concurrent queries on one shared backend
        never see each other's events."""
        return getattr(self._events, "last", None)

    def _record_event(self, event: str) -> None:
        self._events.last = event
        metrics.counter("backend_pool_events", backend=self.name,
                        event=event)

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[Callable[[], object]],
        parallelism: int | None = None,
    ) -> list:
        """Execute every task, returning results in task order."""

    def close(self) -> None:
        """Release any long-lived pool.  Safe to call repeatedly; the
        next dispatch simply respawns lazily."""

    def _forget_pool(self) -> None:
        """Drop pool state without joining it (fork-child reset)."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def _effective_workers(
        self, num_tasks: int, parallelism: int | None
    ) -> int:
        limit = self.workers if parallelism is None else min(
            self.workers, max(1, parallelism)
        )
        return max(1, min(limit, num_tasks))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference semantics every backend matches."""

    name = "serial"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        # A serial backend runs one task at a time by definition; the
        # worker count is pinned so stats reporting never lies.
        super().__init__(1, persistent)

    def run_tasks(self, tasks, parallelism=None):
        self._record_event("inline")
        return [task() for task in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared prepared state, no pickling.

    NumPy kernels release the GIL for the bulk of the per-tile work
    (rasterization, gathers, reductions), so threads overlap well on
    multi-core hosts while sharing :class:`PreparedPolygons` artifacts
    and device-resident point sets by reference.

    The pool is owned by the backend instance: spawned lazily on the
    first dispatch that needs it and reused by every later one (sized
    ``workers``; per-dispatch ``parallelism`` caps are enforced with a
    semaphore instead of a smaller pool).  ``close()`` joins it;
    interpreter exit reclaims stragglers; a forked child drops the
    inherited pool, whose threads did not survive the fork, and
    respawns on demand.
    """

    name = "thread"

    def __init__(
        self, workers: int | None = None, persistent: bool | None = None
    ) -> None:
        super().__init__(workers, persistent)
        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()

    def _submit_all(self, call, tasks) -> list:
        """Submit every task to the persistent pool, spawning it if needed.

        Submission happens under the pool lock so a concurrent
        ``close()`` can never shut the executor down halfway through a
        dispatch — it either runs before (this dispatch respawns the
        pool) or after (the futures are already queued, and
        ``shutdown(wait=True)`` lets them finish).
        """
        with self._pool_lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.workers,
                    thread_name_prefix="repro-tile",
                )
                self._record_event("created")
            else:
                self._record_event("reused")
            return [self._pool.submit(call, task) for task in tasks]

    def close(self) -> None:
        with self._pool_lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def _forget_pool(self) -> None:  # pragma: no cover - fork path
        # The inherited executor's threads do not exist in this child;
        # drop it without shutdown (joining dead threads would hang) and
        # re-arm the lock, which may have been held at fork time.
        self._pool = None
        self._pool_lock = threading.Lock()
        self._in_worker = threading.local()
        self._events = threading.local()

    def run_tasks(self, tasks, parallelism=None):
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1 or getattr(self._in_worker, "active", False):
            # Degenerate parallelism — or a nested dispatch from inside
            # one of our own pool threads, which must not wait on pool
            # slots it is itself occupying.
            self._record_event("inline")
            return [task() for task in tasks]
        if not self.persistent:
            self._record_event("ephemeral")
            with ThreadPoolExecutor(max_workers=workers) as pool:
                # Executor.map yields results in submission order
                # regardless of completion order — the determinism anchor.
                return list(pool.map(self._run_one, tasks))
        if workers < self.workers:
            gate = threading.BoundedSemaphore(workers)

            def call(task):
                with gate:
                    return self._run_one(task)
        else:
            call = self._run_one
        # Futures resolve in submission order whatever order they
        # complete in — the determinism anchor.  On failure, siblings
        # are cancelled and awaited so no task of this dispatch is
        # still running when run_tasks raises (the same invariant the
        # ephemeral with-block enforces).
        futures = self._submit_all(call, tasks)
        try:
            return [future.result() for future in futures]
        except BaseException:
            for future in futures:
                future.cancel()
            wait_futures(futures)
            raise

    def _run_one(self, task):
        self._in_worker.active = True
        try:
            return task()
        finally:
            self._in_worker.active = False


#: Task lists inherited by forked workers, keyed by dispatch token
#: (copy-on-write; nothing is pickled on the way in — only the token
#: travels through ``pool.map`` and only results are pickled back).
#: An entry stays published for its pool's whole lifetime, so workers
#: the pool re-forks mid-map (replacements for a crashed worker) still
#: inherit the right task list; concurrent dispatches coexist under
#: distinct tokens.  The name is only ever rebound to a *fresh* dict —
#: never mutated in place — so a fork snapshotted at any instant (pool
#: replacements fork from the maintenance thread at arbitrary times)
#: sees an internally consistent mapping.  ``_FORK_LOCK`` serializes
#: the rebinding and the initial pool fork; it is released before the
#: (long) map, so concurrent fan-outs from different threads overlap
#: their work and serialize only their forks.
_FORK_REGISTRY: dict[int, Sequence[Callable[[], object]]] = {}
_FORK_LOCK = threading.Lock()
_FORK_TOKEN_COUNTER = 0


def _run_forked_task(job: tuple[int, int]):
    token, index = job
    return _FORK_REGISTRY[token][index]()


class ProcessBackend(ExecutionBackend):
    """Fork-pool execution: true parallelism, copy-on-write sharing.

    Tasks are plain closures handed to forked children through process
    memory, so nothing on the way *in* needs to be picklable; results
    (:class:`TilePartial`) are pickled on the way back.  Requires the
    ``fork`` start method (POSIX); platforms without it should use
    :class:`ThreadBackend` — see ``docs/parallel_execution.md``.

    This backend forks **per dispatch** even when ``persistent`` is
    set, by design rather than omission: a long-lived fork pool
    snapshots the parent at spawn time, so workers forked before a
    query can never see that query's task closures — the copy-on-write
    trick that lets unpicklable closures, prepared artifacts, and chunk
    sources cross the process boundary for free is fundamentally
    per-fork.  Shipping tasks to resident workers instead would require
    every task (and everything it closes over) to be picklable, exactly
    the cost this backend exists to avoid.  What *is* reused across
    queries is the parent's memory: session-held artifacts and
    partitioned point segments are inherited by each re-fork at zero
    copy cost, which is the "resident segment + re-fork" half of the
    persistent-pool design (see ``docs/parallel_execution.md``).
    """

    name = "process"

    def run_tasks(self, tasks, parallelism=None):
        global _FORK_REGISTRY, _FORK_TOKEN_COUNTER
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1 or _IN_FORKED_CHILD:
            # Degenerate parallelism, or a nested call from inside a
            # forked worker: run inline (results are identical anyway).
            self._record_event("inline")
            return [task() for task in tasks]
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:
            raise ExecutionBackendError(
                "ProcessBackend needs the 'fork' start method, which this "
                "platform does not provide; use ThreadBackend instead"
            ) from exc
        # Publish this dispatch's task list under a fresh token, fork
        # the pool, and leave the entry published until the map is done
        # — any worker forked for this pool (including mid-map
        # replacements) inherits it, while other threads fan out under
        # their own tokens concurrently.  The entry is pruned on every
        # exit path, including a failed pool spawn.
        with _FORK_LOCK:
            _FORK_TOKEN_COUNTER += 1
            token = _FORK_TOKEN_COUNTER
            _FORK_REGISTRY = {**_FORK_REGISTRY, token: tasks}
        pool = None
        try:
            with _FORK_LOCK:
                pool = ctx.Pool(processes=workers)
            self._record_event("forked")
            return pool.map(
                _run_forked_task, [(token, i) for i in range(len(tasks))]
            )
        finally:
            if pool is not None:
                pool.terminate()
                pool.join()
            with _FORK_LOCK:
                _FORK_REGISTRY = {
                    k: v for k, v in _FORK_REGISTRY.items() if k != token
                }


_BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_workers() -> int:
    """Worker count when none is configured: env override, else cores."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be >= 1, got {workers}"
            )
        return workers
    return os.cpu_count() or 1


def resolve_backend(
    spec: str | ExecutionBackend | None = None,
    workers: int | None = None,
    persistent: bool | None = None,
) -> ExecutionBackend:
    """Materialize a backend from a name, an instance, or the environment.

    ``None`` falls back to ``$REPRO_EXEC_BACKEND`` (and worker counts to
    ``$REPRO_EXEC_WORKERS``, pool persistence to
    ``$REPRO_PERSISTENT_POOL``), defaulting to serial execution —
    existing call sites keep their exact pre-parallelism behaviour
    unless they, or the environment, opt in.  An instance passes
    through unchanged, carrying its own persistence setting.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    try:
        cls = _BACKEND_CLASSES[spec]
    except KeyError:
        raise ExecutionBackendError(
            f"unknown execution backend {spec!r}; "
            f"expected one of {sorted(_BACKEND_CLASSES)}"
        ) from None
    return cls(workers=workers, persistent=persistent)
