"""Pluggable execution backends for independent tile tasks.

The raster-join pipeline is embarrassingly parallel across canvas tiles:
each tile's boundary render, point pass, and polygon pass read shared
prepared state but write only tile-local framebuffers and accumulators.
A backend decides *where* those tile tasks run — inline, on a thread
pool, or on forked worker processes — while the engines keep the merge
deterministic by folding the returned partials in tile-index order.

Every backend obeys the same contract:

* ``run_tasks(tasks)`` executes zero-argument callables and returns their
  results **in task order**, whatever order they complete in;
* a raised exception in any task propagates to the caller;
* ``parallelism`` caps in-flight tasks below ``workers`` (the engines use
  this to keep concurrent device batches inside the memory budget).

Because results are merged in task order and each task folds its own
accumulators from the blend identity, results are bit-identical across
backends and worker counts (see ``docs/parallel_execution.md``).
"""

from __future__ import annotations

import multiprocessing as mp
import os
import threading
from abc import ABC, abstractmethod
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.errors import ExecutionBackendError
from repro.types import ExecutionStats

#: Environment variables consulted when no backend is configured
#: explicitly — the CI matrix runs the whole test suite under each
#: backend by exporting these, without touching any call site.
BACKEND_ENV_VAR = "REPRO_EXEC_BACKEND"
WORKERS_ENV_VAR = "REPRO_EXEC_WORKERS"


@dataclass
class TilePartial:
    """Everything one tile task hands back to the deterministic merge.

    ``accumulators`` are per-polygon channel arrays folded from the blend
    identity over this tile only; ``stats`` counts only this tile's work.
    ``boundary_mask`` and ``coverage`` carry newly built prepared-state
    pieces back to the parent (required under the process backend, where
    workers mutate copy-on-write clones of the artifact), and ``payload``
    is engine-specific (the bounded engine's per-tile FBO for §5 result
    intervals).
    """

    tile_idx: int
    accumulators: dict[str, np.ndarray] = field(default_factory=dict)
    stats: ExecutionStats = field(default_factory=ExecutionStats)
    saw_points: bool = False
    boundary_mask: np.ndarray | None = None
    coverage: list | None = None
    payload: object = None


class ExecutionBackend(ABC):
    """Runs independent tasks and returns their results in task order."""

    name = "abstract"

    def __init__(self, workers: int | None = None) -> None:
        if workers is not None and workers < 1:
            raise ExecutionBackendError(
                f"worker count must be >= 1, got {workers}"
            )
        self.workers = workers if workers is not None else default_workers()

    @abstractmethod
    def run_tasks(
        self,
        tasks: Sequence[Callable[[], object]],
        parallelism: int | None = None,
    ) -> list:
        """Execute every task, returning results in task order."""

    def _effective_workers(
        self, num_tasks: int, parallelism: int | None
    ) -> int:
        limit = self.workers if parallelism is None else min(
            self.workers, max(1, parallelism)
        )
        return max(1, min(limit, num_tasks))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Inline execution — the reference semantics every backend matches."""

    name = "serial"

    def __init__(self, workers: int | None = None) -> None:
        # A serial backend runs one task at a time by definition; the
        # worker count is pinned so stats reporting never lies.
        super().__init__(1)

    def run_tasks(self, tasks, parallelism=None):
        return [task() for task in tasks]


class ThreadBackend(ExecutionBackend):
    """Thread-pool execution: shared prepared state, no pickling.

    NumPy kernels release the GIL for the bulk of the per-tile work
    (rasterization, gathers, reductions), so threads overlap well on
    multi-core hosts while sharing :class:`PreparedPolygons` artifacts
    and device-resident point sets by reference.
    """

    name = "thread"

    def run_tasks(self, tasks, parallelism=None):
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1:
            return [task() for task in tasks]
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # Executor.map yields results in submission order regardless
            # of completion order — the determinism anchor.
            return list(pool.map(lambda task: task(), tasks))


#: Task list inherited by forked workers (copy-on-write; nothing is
#: pickled on the way in — only results are pickled on the way back).
#: Guarded by ``_FORK_LOCK`` so concurrent fan-outs from different
#: threads serialize instead of clobbering each other's task lists.
_FORKED_TASKS: Sequence[Callable[[], object]] | None = None
_FORK_LOCK = threading.Lock()


def _run_forked_task(index: int):
    return _FORKED_TASKS[index]()


class ProcessBackend(ExecutionBackend):
    """Fork-pool execution: true parallelism, copy-on-write sharing.

    Tasks are plain closures handed to forked children through process
    memory, so nothing on the way *in* needs to be picklable; results
    (:class:`TilePartial`) are pickled on the way back.  Requires the
    ``fork`` start method (POSIX); platforms without it should use
    :class:`ThreadBackend` — see ``docs/parallel_execution.md``.
    """

    name = "process"

    def run_tasks(self, tasks, parallelism=None):
        global _FORKED_TASKS
        tasks = list(tasks)
        if not tasks:
            return []
        workers = self._effective_workers(len(tasks), parallelism)
        if workers == 1 or _FORKED_TASKS is not None:
            # Degenerate parallelism, or a nested call from inside a
            # forked worker: run inline (results are identical anyway).
            return [task() for task in tasks]
        try:
            ctx = mp.get_context("fork")
        except ValueError as exc:
            raise ExecutionBackendError(
                "ProcessBackend needs the 'fork' start method, which this "
                "platform does not provide; use ThreadBackend instead"
            ) from exc
        with _FORK_LOCK:
            _FORKED_TASKS = tasks
            try:
                with ctx.Pool(processes=workers) as pool:
                    return pool.map(_run_forked_task, range(len(tasks)))
            finally:
                _FORKED_TASKS = None


_BACKEND_CLASSES: dict[str, type[ExecutionBackend]] = {
    "serial": SerialBackend,
    "thread": ThreadBackend,
    "process": ProcessBackend,
}


def default_workers() -> int:
    """Worker count when none is configured: env override, else cores."""
    env = os.environ.get(WORKERS_ENV_VAR)
    if env:
        try:
            workers = int(env)
        except ValueError:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be an integer, got {env!r}"
            ) from None
        if workers < 1:
            raise ExecutionBackendError(
                f"{WORKERS_ENV_VAR} must be >= 1, got {workers}"
            )
        return workers
    return os.cpu_count() or 1


def resolve_backend(
    spec: str | ExecutionBackend | None = None,
    workers: int | None = None,
) -> ExecutionBackend:
    """Materialize a backend from a name, an instance, or the environment.

    ``None`` falls back to ``$REPRO_EXEC_BACKEND`` (and worker counts to
    ``$REPRO_EXEC_WORKERS``), defaulting to serial execution — existing
    call sites keep their exact pre-parallelism behaviour unless they, or
    the environment, opt in.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if spec is None:
        spec = os.environ.get(BACKEND_ENV_VAR) or "serial"
    try:
        cls = _BACKEND_CLASSES[spec]
    except KeyError:
        raise ExecutionBackendError(
            f"unknown execution backend {spec!r}; "
            f"expected one of {sorted(_BACKEND_CLASSES)}"
        ) from None
    return cls(workers=workers)
