"""Engine-level execution configuration.

An :class:`EngineConfig` is the single knob callers (engine constructors,
the optimizer, the SQL planner) use to choose how tile tasks execute and
where prepared-state artifacts persist.  It is deliberately tiny — a
backend selector, a worker count, and an artifact-store location — so it
can be passed through every layer unchanged and compared or hashed
freely.

Results never depend on it: every backend/worker/store combination
produces bit-identical grids (see ``docs/parallel_execution.md`` and
``docs/artifact_store.md``), so the config is purely a performance
decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.backend import (
    ExecutionBackend,
    flag_from_env,
    resolve_backend,
)

#: Environment hook for the point-partitioning stage; consulted when
#: ``EngineConfig.partition_points`` is ``None``.  Defaults to on —
#: partitioning is bit-identical to the full scan and cheaply no-ops on
#: single-tile canvases, so there is no correctness reason to opt out.
PARTITION_ENV_VAR = "REPRO_PARTITION_POINTS"

#: Environment hook for the batched rasterization layer; consulted when
#: ``EngineConfig.batch_raster`` is ``None``.  Defaults to on — the
#: batched builders are bit-identical to the per-triangle loops (see
#: ``docs/rasterization.md``), so the flag exists only for the
#: scalar-vs-batched ablation and the equivalence test suites.
BATCH_RASTER_ENV_VAR = "REPRO_BATCH_RASTER"

#: Environment hook for the aggregate-pyramid warm path; consulted when
#: ``EngineConfig.pyramid`` is ``None``.  Defaults to on — but the flag
#: only governs whether the accurate engine *consults* a pyramid that an
#: explicit :meth:`AccurateRasterJoin.build_pyramid` call (or the SQL
#: planner's prewarm) has made resident; nothing builds one implicitly,
#: and with none resident every query runs the exact path unchanged.
#: ``REPRO_PYRAMID=0`` forces the exact path even with a resident
#: pyramid (see ``docs/aggregate_pyramid.md``).
PYRAMID_ENV_VAR = "REPRO_PYRAMID"


@dataclass(frozen=True)
class EngineConfig:
    """How an engine executes: backend, workers, artifact persistence.

    ``backend`` is a name (``"serial"``, ``"thread"``, ``"process"``), an
    :class:`ExecutionBackend` instance, or ``None`` to consult
    ``$REPRO_EXEC_BACKEND`` and default to serial.  ``workers`` of
    ``None`` consults ``$REPRO_EXEC_WORKERS`` and defaults to the host's
    core count (always 1 for the serial backend).

    ``store_dir`` names the directory of a persistent
    :class:`~repro.store.ArtifactStore`; ``None`` leaves store selection
    to the session (which consults ``$REPRO_STORE_DIR``).  When set, an
    engine or planner constructed without a session creates one backed
    by that store, so cross-session persistence can be switched on from
    configuration alone.  ``store_budget`` caps that store's on-disk
    size (bytes, or a ``"512M"``-style string; ``None`` consults
    ``$REPRO_STORE_BUDGET``).

    ``partition_points`` controls the tile-local point-partitioning
    stage on multi-tile canvases (``None`` consults
    ``$REPRO_PARTITION_POINTS``, defaulting to on); ``persistent_pool``
    controls whether the backend keeps a long-lived worker pool across
    queries (``None`` consults ``$REPRO_PERSISTENT_POOL``, defaulting
    to on); ``batch_raster`` selects the batched whole-set raster
    builders over the per-triangle loops (``None`` consults
    ``$REPRO_BATCH_RASTER``, defaulting to on — see
    ``docs/rasterization.md``); ``pyramid`` lets the accurate engine
    answer warm queries from an explicitly built aggregate pyramid
    (``None`` consults ``$REPRO_PYRAMID``, defaulting to on — see
    ``docs/aggregate_pyramid.md``); ``shm`` turns on the shared-memory
    data plane — partition sub-chunks exported as named segments and
    the process backend's resident spawned-worker pool (``None``
    consults ``$REPRO_SHM``, defaulting to off — see
    ``docs/parallel_execution.md``).  Results never depend on any of
    them — like the backend choice they are purely performance decisions
    (see ``docs/parallel_execution.md``; the pyramid path's per-aggregate
    exactness contract is spelled out in its doc).
    """

    backend: str | ExecutionBackend | None = None
    workers: int | None = None
    store_dir: str | None = None
    store_budget: int | str | None = None
    partition_points: bool | None = None
    persistent_pool: bool | None = None
    batch_raster: bool | None = None
    pyramid: bool | None = None
    shm: bool | None = None

    def make_backend(self) -> ExecutionBackend:
        """The backend instance this configuration describes."""
        return resolve_backend(
            self.backend, self.workers, persistent=self.persistent_pool,
            shm_resident=self.shm,
        )

    def shm_enabled(self) -> bool:
        """Whether the shared-memory data plane is on.

        Governs two coupled behaviours: the partition cache exporting
        per-tile sub-chunks as shared-memory segments, and the process
        backend's resident-worker dispatch that consumes them (``None``
        consults ``$REPRO_SHM``, defaulting to off).  Like every knob
        here it is purely a performance decision — results are
        bit-identical with it on or off (see
        ``docs/parallel_execution.md``).
        """
        if self.shm is not None:
            return self.shm
        from repro.exec.shm import SHM_ENV_VAR

        return flag_from_env(SHM_ENV_VAR, False)

    def with_pinned_backend(self) -> "EngineConfig":
        """This config with its backend resolved to a live instance.

        Components that construct many engines (the optimizer, the SQL
        planner) pin the backend once so every engine they build shares
        one instance — and therefore one persistent worker pool —
        instead of respawning a pool per query.  Idempotent: an already
        pinned config is returned unchanged.
        """
        if isinstance(self.backend, ExecutionBackend):
            return self
        import dataclasses

        return dataclasses.replace(self, backend=self.make_backend())

    def partition_enabled(self) -> bool:
        """Whether multi-tile executions partition points per tile."""
        if self.partition_points is not None:
            return self.partition_points
        return flag_from_env(PARTITION_ENV_VAR, True)

    def batch_raster_enabled(self) -> bool:
        """Whether engines build raster state through the batched layer.

        The batched builders (:mod:`repro.graphics.raster_batch`,
        :func:`repro.graphics.raster_line.outline_pixels_many`) produce
        bit-identical boundaries and coverage to the per-triangle loops,
        so like every other knob here this is purely a performance
        decision; off exists for ablation and equivalence testing.
        """
        if self.batch_raster is not None:
            return self.batch_raster
        return flag_from_env(BATCH_RASTER_ENV_VAR, True)

    def pyramid_enabled(self) -> bool:
        """Whether the accurate engine may answer from a resident
        aggregate pyramid.

        Only gates *use*: pyramids are built solely through explicit
        calls (:meth:`AccurateRasterJoin.build_pyramid`, planner
        prewarm), so with none resident the exact path runs regardless.
        Count/Sum answers are bit-identical either way; Min/Max/Average
        are exact with documented merge semantics (see
        ``docs/aggregate_pyramid.md``).
        """
        if self.pyramid is not None:
            return self.pyramid
        return flag_from_env(PYRAMID_ENV_VAR, True)

    def make_store(self):
        """The artifact store this configuration describes (or ``None``).

        Explicit fields win over the environment independently: the
        directory comes from ``store_dir`` else ``$REPRO_STORE_DIR``,
        the disk cap from ``store_budget`` else ``$REPRO_STORE_BUDGET``.
        No directory from either source means no store.
        """
        import os

        from repro.store import (
            STORE_BUDGET_ENV_VAR,
            STORE_DIR_ENV_VAR,
            ArtifactStore,
        )

        root = self.store_dir or os.environ.get(STORE_DIR_ENV_VAR)
        if not root:
            return None
        budget = self.store_budget
        if budget is None:
            budget = os.environ.get(STORE_BUDGET_ENV_VAR)
        return ArtifactStore(root, disk_budget=budget)

    def default_session(self):
        """The session a session-less engine/optimizer should own, or
        ``None``.

        Only an *explicit* ``store_dir`` creates one: persistence needs
        a session to live in, and a bare ``$REPRO_STORE_DIR`` must not
        silently convert cache-free (session-less) construction into
        caching construction — the environment takes effect through
        whatever ``QuerySession()`` the caller does create.  This is the
        single gate for that decision; engines, the optimizer, and the
        planner all route through it.
        """
        if not self.store_dir:
            return None
        from repro.cache.session import QuerySession

        return QuerySession(store=self.make_store())
