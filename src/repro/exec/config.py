"""Engine-level execution configuration.

An :class:`EngineConfig` is the single knob callers (engine constructors,
the optimizer, the SQL planner) use to choose how tile tasks execute.  It
is deliberately tiny — a backend selector plus a worker count — so it can
be passed through every layer unchanged and compared or hashed freely.

Results never depend on it: every backend/worker combination produces
bit-identical grids (see ``docs/parallel_execution.md``), so the config
is purely a performance decision.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exec.backend import ExecutionBackend, resolve_backend


@dataclass(frozen=True)
class EngineConfig:
    """How an engine executes: which backend, how many workers.

    ``backend`` is a name (``"serial"``, ``"thread"``, ``"process"``), an
    :class:`ExecutionBackend` instance, or ``None`` to consult
    ``$REPRO_EXEC_BACKEND`` and default to serial.  ``workers`` of
    ``None`` consults ``$REPRO_EXEC_WORKERS`` and defaults to the host's
    core count (always 1 for the serial backend).
    """

    backend: str | ExecutionBackend | None = None
    workers: int | None = None

    def make_backend(self) -> ExecutionBackend:
        """The backend instance this configuration describes."""
        return resolve_backend(self.backend, self.workers)
