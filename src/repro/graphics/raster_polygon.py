"""Scanline polygon rasterization (fast path).

The paper rasterizes polygons as triangles because that is what GPUs
implement in hardware.  A software rasterizer is free to scan-convert the
whole polygon directly, which visits each covered pixel once instead of
once per overlapping triangle bounding box.  This module provides that fast
path; an ablation benchmark (`bench_ablation_raster_paths`) compares it with
the triangle path, and the test suite asserts they produce identical
coverage.

Coverage semantics are identical to the triangle path: a pixel is covered
iff its center lies inside the polygon under the even-odd rule, with
vertices snapped to the same sub-pixel grid.  Span endpoints computed in
floating point are re-verified with exact integer crossing tests so that
centers lying exactly on edges match the fill rule bit-for-bit.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from repro.graphics.raster_triangle import SUBPIXEL_SCALE, snap_to_subpixels
from repro.graphics.viewport import Viewport

_HALF = SUBPIXEL_SCALE // 2


def _snap_rings(
    viewport: Viewport, rings: Iterable[np.ndarray]
) -> list[tuple[np.ndarray, np.ndarray]]:
    snapped = []
    for ring in rings:
        sx, sy = viewport.to_screen(ring[:, 0], ring[:, 1])
        fx, fy = snap_to_subpixels(sx, sy)
        snapped.append((fx, fy))
    return snapped


def _center_inside_exact(
    px: int, py: int, rings: Sequence[tuple[np.ndarray, np.ndarray]]
) -> bool:
    """Exact even-odd test of a subpixel lattice point, integer arithmetic.

    Counts ring edges whose open-right crossing lies strictly right of the
    point, with the half-open rule ``min(ay,by) <= py < max(ay,by)``.  The
    comparison ``cross_x > px`` is done by cross-multiplication so no
    division is involved.
    """
    inside = False
    for fx, fy in rings:
        n = len(fx)
        ax, ay = int(fx[n - 1]), int(fy[n - 1])
        for i in range(n):
            bx, by = int(fx[i]), int(fy[i])
            if (ay <= py < by) or (by <= py < ay):
                # cross_x - px = N / (by - ay) with
                # N = (bx - ax)(py - ay) - (px - ax)(by - ay)
                num = (bx - ax) * (py - ay) - (px - ax) * (by - ay)
                if (num > 0) == (by > ay) and num != 0:
                    inside = not inside
            ax, ay = bx, by
    return inside


def scanline_polygon_pixels(
    viewport: Viewport, rings: Iterable[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Covered pixels of a polygon given as rings [exterior, *holes].

    Returns local (ix, iy) arrays.  Row by row, the crossings of the ring
    edges with the row's center line are collected; pixels whose centers
    fall in odd-parity intervals are covered.  The two pixels flanking each
    span endpoint are fixed up with the exact integer test.
    """
    snapped = _snap_rings(viewport, rings)
    if not snapped:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)

    all_fy = np.concatenate([fy for _, fy in snapped])
    y_min_px = max(0, int((all_fy.min() - _HALF) // SUBPIXEL_SCALE))
    y_max_px = min(viewport.height - 1, int(all_fy.max() // SUBPIXEL_SCALE))
    if y_max_px < y_min_px:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)

    # Flatten edges once: (ax, ay, bx, by) integer arrays.
    ax_l, ay_l, bx_l, by_l = [], [], [], []
    for fx, fy in snapped:
        n = len(fx)
        ax_l.append(fx)
        ay_l.append(fy)
        bx_l.append(np.roll(fx, -1))
        by_l.append(np.roll(fy, -1))
    ax = np.concatenate(ax_l).astype(np.float64)
    ay = np.concatenate(ay_l).astype(np.float64)
    bx = np.concatenate(bx_l).astype(np.float64)
    by = np.concatenate(by_l).astype(np.float64)

    cols: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    width = viewport.width
    for j in range(y_min_px, y_max_px + 1):
        cy = j * SUBPIXEL_SCALE + _HALF  # row center in subpixel units
        spans = ((ay <= cy) & (cy < by)) | ((by <= cy) & (cy < ay))
        if not spans.any():
            continue
        t = (cy - ay[spans]) / (by[spans] - ay[spans])
        crossings = np.sort(ax[spans] + t * (bx[spans] - ax[spans]))
        if len(crossings) % 2 == 1:
            # Numerically impossible for closed rings, but guard anyway:
            # fall back to exact per-pixel tests for this row.
            row_cols = [
                i for i in range(width)
                if _center_inside_exact(i * SUBPIXEL_SCALE + _HALF, cy, snapped)
            ]
            if row_cols:
                cols.append(np.asarray(row_cols, dtype=np.int64))
                rows.append(np.full(len(row_cols), j, dtype=np.int64))
            continue
        row_cols_parts: list[np.ndarray] = []
        for k in range(0, len(crossings), 2):
            x_enter = crossings[k] / SUBPIXEL_SCALE
            x_exit = crossings[k + 1] / SUBPIXEL_SCALE
            # Centers at i + 0.5 with x_enter <= i + 0.5 < x_exit.
            i_start = max(0, int(np.ceil(x_enter - 0.5)))
            i_end = min(width - 1, int(np.ceil(x_exit - 0.5)) - 1)
            # Exact fix-up at both ends: float rounding can misplace a span
            # endpoint, possibly by several pixels on adversarial slivers.
            # Walk each endpoint with the exact integer test until it
            # agrees with the fill rule: first grow outward over covered
            # neighbours, then shrink inward while the endpoint pixel
            # itself is not covered.  The walks stop at the first failing
            # test, so they can never jump the gap to another span.
            while i_start > 0 and _center_inside_exact(
                (i_start - 1) * SUBPIXEL_SCALE + _HALF, cy, snapped
            ):
                i_start -= 1
            while i_end < width - 1 and _center_inside_exact(
                (i_end + 1) * SUBPIXEL_SCALE + _HALF, cy, snapped
            ):
                i_end += 1
            while i_start <= i_end and not _center_inside_exact(
                i_start * SUBPIXEL_SCALE + _HALF, cy, snapped
            ):
                i_start += 1
            while i_end >= i_start and not _center_inside_exact(
                i_end * SUBPIXEL_SCALE + _HALF, cy, snapped
            ):
                i_end -= 1
            if i_end >= i_start:
                row_cols_parts.append(
                    np.arange(i_start, i_end + 1, dtype=np.int64)
                )
        if row_cols_parts:
            row_cols_arr = np.unique(np.concatenate(row_cols_parts))
            cols.append(row_cols_arr)
            rows.append(np.full(len(row_cols_arr), j, dtype=np.int64))

    if not cols:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    return np.concatenate(cols), np.concatenate(rows)


def accumulate_polygon_sum(
    viewport: Viewport,
    channel: np.ndarray,
    rings: Iterable[np.ndarray],
) -> float:
    """Sum an FBO channel over a polygon's covered pixels (fast path)."""
    ix, iy = scanline_polygon_pixels(viewport, rings)
    if len(ix) == 0:
        return 0.0
    return float(np.sum(channel[iy, ix], dtype=np.float64))
