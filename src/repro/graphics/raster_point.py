"""Point rasterization: the paper's DrawPoints pass.

Each data point becomes at most one fragment — the pixel containing it —
and the fragment's values are additively blended into the framebuffer.
Points outside the viewport are clipped, exactly like geometry that falls
off-screen in the graphics pipeline; the multi-canvas mode relies on this
clipping to process each point in exactly one tile.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.graphics.fbo import FrameBuffer
from repro.graphics.viewport import Viewport


def rasterize_points(
    viewport: Viewport,
    fbo: FrameBuffer,
    xs: np.ndarray,
    ys: np.ndarray,
    values: Mapping[str, np.ndarray] | None = None,
) -> int:
    """Render points into the FBO with additive blending.

    ``values`` maps channel names to per-point arrays (e.g. the attribute
    being summed); when omitted, the ``count`` channel is incremented.
    Returns the number of points that survived viewport clipping.
    """
    ix, iy, inside = viewport.pixel_of(xs, ys)
    if not inside.all():
        ix = ix[inside]
        iy = iy[inside]
        if values is not None:
            values = {
                name: vals if np.isscalar(vals) else np.asarray(vals)[inside]
                for name, vals in values.items()
            }
    if len(ix) == 0:
        return 0
    fbo.accumulate(ix, iy, values)
    return int(len(ix))


def point_fragment_indices(
    viewport: Viewport, xs: np.ndarray, ys: np.ndarray
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """The fragment coordinates points would rasterize to, plus clip mask.

    Exposed separately for the accurate raster join, which must route each
    point either to the FBO or to a PIP test depending on the boundary mask
    at its fragment location.
    """
    return viewport.pixel_of(xs, ys)
