"""World-to-screen transforms, canvases, and multi-canvas tiling.

A :class:`Canvas` is the conceptual full-resolution pixel grid the raster
join renders into: the polygon set's bounding box mapped onto ``W x H``
pixels.  When the resolution implied by the ε-bound exceeds the device's
maximum framebuffer size, the canvas splits into :class:`Viewport` tiles
that share the *same global pixel grid* — exactly the multi-rendering
scheme of the paper's Figure 5 — so tiled execution is bit-identical to
single-canvas execution.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

import numpy as np

from repro.errors import ResolutionError
from repro.geometry.bbox import BBox

#: Default maximum framebuffer side, matching the paper's experimental
#: configuration ("we limited the maximum FBO resolution to 8192x8192").
DEFAULT_MAX_RESOLUTION = 8192

#: Hard ceiling corresponding to the 32K x 32K FBOs the paper cites for
#: current-generation hardware.
HARDWARE_MAX_RESOLUTION = 32768


def _require_positive_extent(extent: BBox) -> None:
    """Reject extents a pixel grid cannot span.

    A zero-width or zero-height extent (collinear points, a single
    vertex) has no well-defined pixel size — mapping it onto a grid would
    divide by zero — and non-finite bounds poison every transform.
    """
    if (
        not math.isfinite(extent.width)
        or not math.isfinite(extent.height)
        or extent.width <= 0
        or extent.height <= 0
    ):
        raise ResolutionError(
            f"canvas extent must have positive finite width and height, "
            f"got {extent.as_tuple()}"
        )


def resolution_for_epsilon(extent: BBox, epsilon: float) -> tuple[int, int]:
    """Pixel grid size that guarantees an ε-bounded approximation.

    The paper (§4.2) requires a pixel whose *diagonal* is at most ε, i.e. a
    side of ε′ = ε/√2, so the pixelated polygon ε-approximates the original
    in Hausdorff distance.  Rounding the pixel count up only shrinks pixels,
    which preserves the guarantee.
    """
    if epsilon <= 0:
        raise ResolutionError(f"epsilon must be positive, got {epsilon}")
    side = epsilon / math.sqrt(2.0)
    width = max(1, int(math.ceil(extent.width / side)))
    height = max(1, int(math.ceil(extent.height / side)))
    return width, height


@dataclass(frozen=True)
class Viewport:
    """One rendering target: a rectangular window of the global pixel grid.

    ``x_offset``/``y_offset`` locate the tile inside the global grid so that
    fragments can be reported in global pixel coordinates.  A single-canvas
    render is simply a viewport with zero offsets covering the whole grid.
    """

    bbox: BBox          # world-space window
    width: int          # pixels
    height: int         # pixels
    x_offset: int = 0   # global pixel column of this tile's left edge
    y_offset: int = 0   # global pixel row of this tile's bottom edge

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise ResolutionError(
                f"viewport must be at least 1x1, got {self.width}x{self.height}"
            )
        if self.bbox.width <= 0 or self.bbox.height <= 0:
            raise ResolutionError("viewport world window must have positive area")

    # ------------------------------------------------------------------
    # Transforms
    # ------------------------------------------------------------------
    @property
    def x_scale(self) -> float:
        """World units per... inverse: pixels per world unit along x."""
        return self.width / self.bbox.width

    @property
    def y_scale(self) -> float:
        return self.height / self.bbox.height

    @property
    def pixel_width(self) -> float:
        """World-space width of one pixel."""
        return self.bbox.width / self.width

    @property
    def pixel_height(self) -> float:
        return self.bbox.height / self.height

    @property
    def pixel_diagonal(self) -> float:
        """World-space pixel diagonal — the ε the grid actually achieves."""
        return math.hypot(self.pixel_width, self.pixel_height)

    def to_screen(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates to continuous screen coordinates.

        Screen space runs from (0, 0) at the window's min corner to
        (width, height) at its max corner; both axes increase with world
        coordinates, so winding order is preserved.
        """
        sx = (np.asarray(xs, dtype=np.float64) - self.bbox.xmin) * self.x_scale
        sy = (np.asarray(ys, dtype=np.float64) - self.bbox.ymin) * self.y_scale
        return sx, sy

    def pixel_of(
        self, xs: np.ndarray, ys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Map points to (column, row, inside) pixel indices.

        Points outside the half-open window are reported with
        ``inside=False`` and must be discarded by the caller — this is the
        pipeline's clipping stage.
        """
        sx, sy = self.to_screen(xs, ys)
        ix = np.floor(sx).astype(np.int64)
        iy = np.floor(sy).astype(np.int64)
        inside = (ix >= 0) & (ix < self.width) & (iy >= 0) & (iy < self.height)
        return ix, iy, inside

    def pixel_bbox(self, ix: int, iy: int) -> BBox:
        """World-space rectangle of local pixel (ix, iy)."""
        return BBox(
            self.bbox.xmin + ix * self.pixel_width,
            self.bbox.ymin + iy * self.pixel_height,
            self.bbox.xmin + (ix + 1) * self.pixel_width,
            self.bbox.ymin + (iy + 1) * self.pixel_height,
        )

    def pixel_centers(
        self, ixs: np.ndarray, iys: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """World coordinates of pixel centers (vectorized)."""
        cx = self.bbox.xmin + (np.asarray(ixs) + 0.5) * self.pixel_width
        cy = self.bbox.ymin + (np.asarray(iys) + 0.5) * self.pixel_height
        return cx, cy

    @property
    def num_pixels(self) -> int:
        return self.width * self.height


class Canvas:
    """The full-resolution render target for one raster-join execution.

    Splits itself into device-sized viewports when needed.  All tiles are
    cut along global pixel boundaries, so rendering tile-by-tile visits the
    exact same pixel grid as a single huge framebuffer would.
    """

    def __init__(self, extent: BBox, width: int, height: int) -> None:
        _require_positive_extent(extent)
        if width < 1 or height < 1:
            raise ResolutionError(f"canvas must be at least 1x1, got {width}x{height}")
        if width > HARDWARE_MAX_RESOLUTION * 64 or height > HARDWARE_MAX_RESOLUTION * 64:
            raise ResolutionError(
                f"canvas {width}x{height} is beyond any supported tiling"
            )
        self.extent = extent
        self.width = width
        self.height = height

    @classmethod
    def for_epsilon(cls, extent: BBox, epsilon: float) -> "Canvas":
        """Canvas sized so the pixel diagonal is at most ε (paper §4.2)."""
        width, height = resolution_for_epsilon(extent, epsilon)
        return cls(extent, width, height)

    @classmethod
    def for_resolution(cls, extent: BBox, resolution: int) -> "Canvas":
        """Canvas whose longer side has ``resolution`` pixels.

        Pixels are kept square-ish by scaling the shorter side with the
        aspect ratio, mirroring how the paper reports "4k x 4k" canvases
        over non-square extents.
        """
        if resolution < 1:
            raise ResolutionError(f"resolution must be >= 1, got {resolution}")
        _require_positive_extent(extent)
        if extent.width >= extent.height:
            width = resolution
            height = max(1, int(round(resolution * extent.height / extent.width)))
        else:
            height = resolution
            width = max(1, int(round(resolution * extent.width / extent.height)))
        return cls(extent, width, height)

    @property
    def pixel_width(self) -> float:
        return self.extent.width / self.width

    @property
    def pixel_height(self) -> float:
        return self.extent.height / self.height

    @property
    def pixel_diagonal(self) -> float:
        return math.hypot(self.pixel_width, self.pixel_height)

    @property
    def num_pixels(self) -> int:
        return self.width * self.height

    def full_viewport(self) -> Viewport:
        return Viewport(self.extent, self.width, self.height)

    def num_tiles(self, max_resolution: int = DEFAULT_MAX_RESOLUTION) -> int:
        nx = math.ceil(self.width / max_resolution)
        ny = math.ceil(self.height / max_resolution)
        return nx * ny

    def tiles(
        self, max_resolution: int = DEFAULT_MAX_RESOLUTION
    ) -> Iterator[Viewport]:
        """Yield device-sized viewports covering the canvas.

        Tiles are cut on global pixel boundaries: tile (tx, ty) covers
        pixel columns ``[tx * max_resolution, ...)`` of the global grid and
        its world window is derived from those pixel indices, which keeps
        every tile's pixel lattice aligned with the canvas lattice.
        """
        if max_resolution < 1:
            raise ResolutionError(f"max_resolution must be >= 1, got {max_resolution}")
        nx = math.ceil(self.width / max_resolution)
        ny = math.ceil(self.height / max_resolution)
        pw, ph = self.pixel_width, self.pixel_height
        for ty in range(ny):
            y0 = ty * max_resolution
            y1 = min(self.height, y0 + max_resolution)
            for tx in range(nx):
                x0 = tx * max_resolution
                x1 = min(self.width, x0 + max_resolution)
                window = BBox(
                    self.extent.xmin + x0 * pw,
                    self.extent.ymin + y0 * ph,
                    self.extent.xmin + x1 * pw,
                    self.extent.ymin + y1 * ph,
                )
                yield Viewport(window, x1 - x0, y1 - y0, x_offset=x0, y_offset=y0)

    def __repr__(self) -> str:
        return (
            f"Canvas({self.width}x{self.height} over {self.extent.as_tuple()}, "
            f"pixel diag={self.pixel_diagonal:.4g})"
        )
