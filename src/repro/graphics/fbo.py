"""Framebuffer objects with additive blending.

The paper repurposes FBO color channels as accumulators: drawing a point
*adds* to the pixel's channels (the OpenGL blend function set to addition)
instead of overwriting them, so after the point pass each pixel holds the
partial aggregate (count, sum of an attribute, ...) of the points it
contains.  :class:`FrameBuffer` reproduces that contract with named channel
arrays and ``accumulate`` as the blend operation.

Channels default to ``float32`` to match the 32-bit GL color channels the
paper uses; reductions over channels are always performed in float64 by the
callers so large aggregates do not lose precision while the per-pixel
storage stays faithful to the hardware.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import numpy as np

from repro.errors import ResolutionError
from repro.graphics.viewport import Viewport


class FrameBuffer:
    """A ``height x width`` render target with named accumulator channels."""

    def __init__(
        self,
        width: int,
        height: int,
        channels: Iterable[str] = ("count",),
        dtype: np.dtype | type = np.float32,
    ) -> None:
        if width < 1 or height < 1:
            raise ResolutionError(f"FBO must be at least 1x1, got {width}x{height}")
        self.width = width
        self.height = height
        self.dtype = np.dtype(dtype)
        self._channels: dict[str, np.ndarray] = {
            name: np.zeros((height, width), dtype=self.dtype) for name in channels
        }

    @classmethod
    def for_viewport(
        cls,
        viewport: Viewport,
        channels: Iterable[str] = ("count",),
        dtype: np.dtype | type = np.float32,
    ) -> "FrameBuffer":
        return cls(viewport.width, viewport.height, channels=channels, dtype=dtype)

    # ------------------------------------------------------------------
    # Channel access
    # ------------------------------------------------------------------
    @property
    def channel_names(self) -> tuple[str, ...]:
        return tuple(self._channels)

    def channel(self, name: str) -> np.ndarray:
        """The raw ``(height, width)`` array backing a channel."""
        return self._channels[name]

    def add_channel(self, name: str) -> None:
        if name not in self._channels:
            self._channels[name] = np.zeros(
                (self.height, self.width), dtype=self.dtype
            )

    def clear(self) -> None:
        """Reset every channel to zero (glClear with a zero clear color)."""
        for arr in self._channels.values():
            arr.fill(0)

    # ------------------------------------------------------------------
    # Blending
    # ------------------------------------------------------------------
    def accumulate(
        self,
        ix: np.ndarray,
        iy: np.ndarray,
        values: Mapping[str, np.ndarray | float] | None = None,
    ) -> None:
        """Additive blend of fragments into the FBO.

        ``ix``/``iy`` are fragment pixel coordinates (already clipped to the
        viewport).  With ``values=None`` the ``count`` channel is
        incremented by one per fragment; otherwise each named channel is
        incremented by the matching per-fragment value.  Duplicate fragment
        coordinates accumulate (``np.add.at``), which is precisely the
        additive blend-function semantics of the paper's DrawPoints.
        """
        if values is None:
            np.add.at(self._channels["count"], (iy, ix), 1)
            return
        for name, vals in values.items():
            channel = self._channels[name]
            if np.isscalar(vals):
                np.add.at(channel, (iy, ix), vals)
            else:
                np.add.at(channel, (iy, ix), np.asarray(vals, dtype=self.dtype))

    def write(self, ix: np.ndarray, iy: np.ndarray, name: str, value: float) -> None:
        """Overwrite (no blending) — used for boundary-mask rendering."""
        self._channels[name][iy, ix] = value

    # ------------------------------------------------------------------
    # Reads
    # ------------------------------------------------------------------
    def gather(self, ix: np.ndarray, iy: np.ndarray, name: str) -> np.ndarray:
        """Texture fetch: channel values at the given pixels, as float64."""
        return self._channels[name][iy, ix].astype(np.float64)

    def total(self, name: str) -> float:
        """Sum of a whole channel, reduced in float64."""
        return float(np.sum(self._channels[name], dtype=np.float64))

    @property
    def nbytes(self) -> int:
        return sum(arr.nbytes for arr in self._channels.values())

    def __repr__(self) -> str:
        return (
            f"FrameBuffer({self.width}x{self.height}, "
            f"channels={list(self._channels)}, dtype={self.dtype})"
        )
