"""Conservative triangle rasterization.

Reports every pixel whose closed square overlaps a triangle (not just those
whose center is covered).  The paper uses this — via the
``GL_NV_conservative_raster`` extension — to find the false-negative pixels
for result-range estimation: pixels the polygon touches that regular
rasterization misses.

The test is an exact separating-axis check between the pixel square and the
triangle: the candidate axes for two convex polygons are the square's two
axes (handled by the bounding-box pre-cut) and the triangle's three edge
normals (handled by evaluating each edge function at the square corner
deepest inside that edge).
"""

from __future__ import annotations

import numpy as np

from repro.graphics.viewport import Viewport


def conservative_triangle_pixels(
    viewport: Viewport, tri: np.ndarray
) -> tuple[int, int, np.ndarray]:
    """Overlap mask of one triangle against the pixel grid.

    Returns ``(x0, y0, mask)`` like
    :func:`repro.graphics.raster_triangle.triangle_coverage_mask`, but the
    mask marks every pixel square the triangle overlaps (closed test:
    touching an edge or corner counts).
    """
    sx, sy = viewport.to_screen(tri[:, 0], tri[:, 1])
    area2 = (sx[1] - sx[0]) * (sy[2] - sy[0]) - (sy[1] - sy[0]) * (sx[2] - sx[0])
    if area2 == 0.0:
        return 0, 0, np.zeros((0, 0), dtype=bool)
    if area2 < 0:
        sx = sx[::-1].copy()
        sy = sy[::-1].copy()

    # Closed-overlap candidate block: pixel ix spans [ix, ix+1], so it can
    # touch the triangle when ix >= min(sx) - 1 and ix <= max(sx).
    x0 = max(0, int(np.ceil(sx.min())) - 1)
    y0 = max(0, int(np.ceil(sy.min())) - 1)
    x1 = min(viewport.width - 1, int(np.floor(sx.max())))
    y1 = min(viewport.height - 1, int(np.floor(sy.max())))
    if x1 < x0 or y1 < y0:
        return 0, 0, np.zeros((0, 0), dtype=bool)

    # Pixel min corners of the candidate block.
    px = np.arange(x0, x1 + 1, dtype=np.float64)[None, :]
    py = np.arange(y0, y1 + 1, dtype=np.float64)[:, None]

    mask = np.ones((y1 - y0 + 1, x1 - x0 + 1), dtype=bool)
    # Bounding-box axes (the square's axes in the SAT sense): the pixel
    # [px, px+1] x [py, py+1] must overlap the triangle bbox (closed).
    mask &= (px + 1.0 >= sx.min()) & (px <= sx.max())
    mask &= (py + 1.0 >= sy.min()) & (py <= sy.max())

    for e in range(3):
        ax, ay = float(sx[e]), float(sy[e])
        bx, by = float(sx[(e + 1) % 3]), float(sy[(e + 1) % 3])
        dx, dy = bx - ax, by - ay
        # Evaluate the edge function at the square corner most inside this
        # edge: corner x depends on sign(-dy), corner y on sign(dx).
        corner_x = px + (1.0 if dy <= 0 else 0.0)
        corner_y = py + (1.0 if dx >= 0 else 0.0)
        e_val = dx * (corner_y - ay) - dy * (corner_x - ax)
        mask &= e_val >= 0.0
        if not mask.any():
            return 0, 0, np.zeros((0, 0), dtype=bool)
    return x0, y0, mask


def conservative_polygon_pixels(
    viewport: Viewport, triangles: list[np.ndarray]
) -> tuple[np.ndarray, np.ndarray]:
    """Deduplicated (ix, iy) of all pixels a triangulated polygon touches."""
    cols: list[np.ndarray] = []
    rows: list[np.ndarray] = []
    for tri in triangles:
        x0, y0, mask = conservative_triangle_pixels(viewport, tri)
        if mask.size == 0:
            continue
        ys, xs = np.nonzero(mask)
        cols.append(xs + x0)
        rows.append(ys + y0)
    if not cols:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    flat = np.unique(
        np.concatenate(cols) * viewport.height + np.concatenate(rows)
    )
    return flat // viewport.height, flat % viewport.height
