"""Batched triangle rasterization over whole-set flat arrays.

The paper's performance rests on the GPU consuming *all* triangles of all
polygons as one stream.  This module is the software equivalent: instead
of looping :func:`~repro.graphics.raster_triangle.triangle_coverage_mask`
per triangle, the whole polygon set's triangles are concatenated into
flat ``(N, 3)`` snapped-vertex arrays, edge functions are set up for all
N triangles in a handful of vectorized passes, and coverage is evaluated
over flat candidate-fragment arrays — CuRast-style binning by triangle
id — with the results scattered back per triangle and per polygon.

Bit-identity with the scalar path is the contract, not an aspiration:

* vertices snap through the same :func:`snap_to_subpixels` (elementwise
  ``np.rint``), so the sub-pixel lattice is identical;
* clockwise triangles are normalized by swapping vertices 0 and 2 —
  exactly the ``fx[::-1]`` reversal the scalar path performs — so every
  directed edge, and therefore every fill-rule bias, matches;
* edge functions are the same int64 expressions with the same
  ``E + bias >= 0`` tie-break;
* candidate fragments are enumerated row-major within each triangle's
  clipped bounding box, which is precisely the order
  ``np.nonzero(mask)`` reports, so per-triangle fragment arrays are
  byte-for-byte the scalar ``covered_pixels`` output.

A triangle → polygon id map rides along with the flat arrays, so
per-polygon :class:`~repro.cache.prepared.PolygonUnit` slices (outline
pixels, raw coverage pieces) come out of one batched pass grouped
exactly as the per-polygon builders would produce them — an incremental
edit still rebuilds exactly one polygon's slice.
"""

from __future__ import annotations

from typing import Mapping, Sequence

import numpy as np

from repro.graphics.raster_triangle import (
    _HALF,
    SUBPIXEL_SCALE,
    snap_to_subpixels,
)
from repro.graphics.viewport import Viewport

#: Upper bound on candidate fragments materialized per vectorized pass.
#: Chunks split on triangle boundaries, so the grouping of fragments by
#: triangle id — and therefore bit-identity — never depends on it.
DEFAULT_FRAGMENT_BUDGET = 1 << 21


class TriangleSoup:
    """Concatenated triangle geometry for a set of polygons.

    ``verts`` is the flat ``(N, 3, 2)`` world-coordinate array of every
    triangle of every requested polygon, in ascending polygon id order
    with each polygon's triangulation order preserved; ``tri_pid[t]`` is
    the owning polygon id of triangle ``t`` — the scatter key that maps
    batch results back onto per-polygon units.
    """

    __slots__ = ("verts", "tri_pid", "pids")

    def __init__(self, verts: np.ndarray, tri_pid: np.ndarray,
                 pids: list[int]) -> None:
        self.verts = verts
        self.tri_pid = tri_pid
        self.pids = pids

    @property
    def num_triangles(self) -> int:
        return len(self.verts)


def flatten_triangles(
    triangles_by_pid: Mapping[int, Sequence[np.ndarray]],
) -> TriangleSoup:
    """Concatenate per-polygon triangle lists into one flat soup."""
    pids = sorted(triangles_by_pid)
    tris: list[np.ndarray] = []
    owner: list[np.ndarray] = []
    for pid in pids:
        polygon_tris = triangles_by_pid[pid]
        if len(polygon_tris):
            tris.extend(polygon_tris)
            owner.append(np.full(len(polygon_tris), pid, dtype=np.int64))
    if not tris:
        return TriangleSoup(
            np.zeros((0, 3, 2), dtype=np.float64),
            np.zeros(0, dtype=np.int64),
            pids,
        )
    verts = np.stack([np.asarray(t, dtype=np.float64) for t in tris])
    return TriangleSoup(verts, np.concatenate(owner), pids)


class BatchSetup:
    """Vectorized per-triangle rasterization setup (the "vertex stage").

    All arrays are length N (or ``(N, 3)`` per-edge).  ``fx``/``fy`` are
    the snapped sub-pixel vertex coordinates *after* CCW normalization;
    ``x0``/``y0``/``w``/``h`` the clipped pixel bounding boxes (``w``
    and ``h`` are zero for degenerate or fully clipped triangles); and
    ``dx``/``dy``/``bias`` the three directed edges' deltas and
    fill-rule biases, matching the scalar
    :func:`~repro.graphics.raster_triangle._fill_rule_bias` exactly.
    """

    __slots__ = ("fx", "fy", "x0", "y0", "w", "h", "dx", "dy", "bias")

    def __init__(self, fx, fy, x0, y0, w, h, dx, dy, bias) -> None:
        self.fx = fx
        self.fy = fy
        self.x0 = x0
        self.y0 = y0
        self.w = w
        self.h = h
        self.dx = dx
        self.dy = dy
        self.bias = bias


def setup_triangles(viewport: Viewport, verts: np.ndarray) -> BatchSetup:
    """Snap, orient, clip, and edge-set-up N triangles in one pass."""
    verts = np.asarray(verts, dtype=np.float64).reshape(-1, 3, 2)
    sx, sy = viewport.to_screen(verts[:, :, 0], verts[:, :, 1])
    fx, fy = snap_to_subpixels(sx, sy)

    area2 = (
        (fx[:, 1] - fx[:, 0]) * (fy[:, 2] - fy[:, 0])
        - (fy[:, 1] - fy[:, 0]) * (fx[:, 2] - fx[:, 0])
    )
    cw = area2 < 0
    if cw.any():
        # The scalar path reverses the vertex array; swapping vertices 0
        # and 2 is the same permutation, so the directed edges (and their
        # fill-rule biases) come out identical.
        fx[cw] = fx[cw][:, ::-1]
        fy[cw] = fy[cw][:, ::-1]

    x0 = np.maximum(0, (fx.min(axis=1) - _HALF) // SUBPIXEL_SCALE)
    y0 = np.maximum(0, (fy.min(axis=1) - _HALF) // SUBPIXEL_SCALE)
    x1 = np.minimum(viewport.width - 1, fx.max(axis=1) // SUBPIXEL_SCALE)
    y1 = np.minimum(viewport.height - 1, fy.max(axis=1) // SUBPIXEL_SCALE)
    live = (area2 != 0) & (x1 >= x0) & (y1 >= y0)
    w = np.where(live, x1 - x0 + 1, 0)
    h = np.where(live, y1 - y0 + 1, 0)

    dx = np.roll(fx, -1, axis=1) - fx
    dy = np.roll(fy, -1, axis=1) - fy
    bias = np.where((dy < 0) | ((dy == 0) & (dx > 0)),
                    np.int64(0), np.int64(-1))
    return BatchSetup(fx, fy, x0, y0, w, h, dx, dy, bias)


class BatchFragments:
    """Flat covered-fragment arrays for N triangles.

    ``tri``/``ix``/``iy`` list every covered pixel, grouped by triangle
    in input order and row-major within each triangle — the order
    ``covered_pixels`` emits.  ``counts[t]`` is triangle ``t``'s
    fragment count, so ``np.split`` recovers per-triangle views without
    copying.
    """

    __slots__ = ("tri", "ix", "iy", "counts")

    def __init__(self, tri, ix, iy, counts) -> None:
        self.tri = tri
        self.ix = ix
        self.iy = iy
        self.counts = counts


def rasterize_triangles(
    viewport: Viewport,
    verts: np.ndarray,
    budget: int = DEFAULT_FRAGMENT_BUDGET,
) -> BatchFragments:
    """Rasterize N triangles with one vectorized scanline pass.

    Each biased edge function ``E(px, py) + bias`` is linear in ``px``,
    so on a fixed pixel row the half-plane test ``E + bias >= 0``
    constrains the covered columns to a half-line (or to everything /
    nothing when the edge is vertical in ``x``), and the row's covered
    set is the *intersection interval* ``[lo, hi]`` of the three.  The
    interval endpoints come from exact int64 floor/ceil division of the
    same edge-function values the dense per-pixel test evaluates, so the
    emitted fragments are bit-identical to ``covered_pixels`` —
    triangle-major, row-major within a triangle, ascending column within
    a row — while the work drops from O(sum of bbox areas) to
    O(rows + covered pixels).

    ``budget`` caps the fragments emitted per gather block (blocks split
    on row boundaries); it bounds peak memory and cannot change the
    output.
    """
    setup = setup_triangles(viewport, verts)
    n = len(setup.x0)
    empty = np.zeros(0, dtype=np.int64)
    if n == 0:
        return BatchFragments(empty, empty, empty, np.zeros(0, dtype=np.int64))

    # One entry per pixel row of every live triangle's clipped bbox.
    heights = setup.h
    num_rows = int(heights.sum())
    if num_rows == 0:
        return BatchFragments(empty, empty, empty, np.zeros(n, dtype=np.int64))
    row_tri = np.repeat(np.arange(n, dtype=np.int64), heights)
    row_offsets = np.concatenate([[0], np.cumsum(heights)[:-1]])
    row_ly = (
        np.arange(num_rows, dtype=np.int64) - np.repeat(row_offsets, heights)
    )

    # E + bias at the bbox-origin pixel center, and its per-pixel steps.
    ccx0 = setup.x0 * SUBPIXEL_SCALE + _HALF
    ccy0 = setup.y0 * SUBPIXEL_SCALE + _HALF
    lo = np.zeros(num_rows, dtype=np.int64)
    hi = np.repeat(setup.w, heights) - 1
    for e in range(3):
        e0b = (
            setup.dx[:, e] * (ccy0 - setup.fy[:, e])
            - setup.dy[:, e] * (ccx0 - setup.fx[:, e])
            + setup.bias[:, e]
        )
        # Value of E + bias at column 0 of each row; stepping one pixel
        # right subtracts dy * SUBPIXEL_SCALE.
        a = e0b[row_tri] + (setup.dx[:, e] * SUBPIXEL_SCALE)[row_tri] * row_ly
        b = (setup.dy[:, e] * SUBPIXEL_SCALE)[row_tri]
        pos = b > 0
        neg = b < 0
        # b > 0: a - b*lx >= 0  <=>  lx <= floor(a / b).
        hi = np.where(pos, np.minimum(hi, a // np.where(pos, b, 1)), hi)
        # b < 0: lx >= ceil(a / b) = -floor(a / -b).
        lo = np.where(neg, np.maximum(lo, -(a // np.where(neg, -b, 1))), lo)
        # b == 0: the whole row passes or fails on the sign of a.
        hi = np.where(~pos & ~neg & (a < 0), np.int64(-1), hi)
    seg = np.maximum(hi - lo + 1, 0)
    counts = np.bincount(
        row_tri, weights=seg, minlength=n
    ).astype(np.int64)

    keep = seg > 0
    if not keep.any():
        return BatchFragments(empty, empty, empty, counts)
    seg_k = seg[keep]
    py_k = np.repeat(setup.y0, heights)[keep] + row_ly[keep]
    px_start_k = setup.x0[row_tri[keep]] + lo[keep]
    tri_k = row_tri[keep]

    # Emit fragments in budget-bounded blocks of whole rows.
    cum = np.concatenate([[0], np.cumsum(seg_k)])
    out_tri: list[np.ndarray] = []
    out_ix: list[np.ndarray] = []
    out_iy: list[np.ndarray] = []
    start = 0
    num_kept = len(seg_k)
    while start < num_kept:
        end = int(np.searchsorted(cum, cum[start] + budget, side="right")) - 1
        end = min(max(end, start + 1), num_kept)
        block = np.arange(int(cum[end] - cum[start]), dtype=np.int64)
        offs = np.repeat(cum[start:end] - cum[start], seg_k[start:end])
        out_tri.append(np.repeat(tri_k[start:end], seg_k[start:end]))
        out_ix.append(
            block - offs + np.repeat(px_start_k[start:end], seg_k[start:end])
        )
        out_iy.append(np.repeat(py_k[start:end], seg_k[start:end]))
        start = end
    tri = np.concatenate(out_tri)
    ix = np.concatenate(out_ix)
    iy = np.concatenate(out_iy)
    return BatchFragments(tri, ix, iy, counts)


def coverage_pieces_by_polygon(
    viewport: Viewport,
    triangles_by_pid: Mapping[int, Sequence[np.ndarray]],
    budget: int = DEFAULT_FRAGMENT_BUDGET,
) -> dict[int, list[tuple[np.ndarray, np.ndarray]]]:
    """Raw per-polygon coverage pieces from one batched pass.

    Returns ``pid -> [(iy, ix), ...]`` with one piece per non-empty
    triangle, in triangulation order — byte-identical to looping
    ``triangle_coverage_mask`` + ``np.nonzero`` per triangle (the
    ``_unit_coverage`` builders).  Every requested pid gets an entry;
    polygons covering no pixels map to an empty list.  Callers apply
    their own viewport gates (e.g. the polygon-bbox/tile intersection
    test) by choosing which pids to request.
    """
    soup = flatten_triangles(triangles_by_pid)
    out: dict[int, list[tuple[np.ndarray, np.ndarray]]] = {
        pid: [] for pid in soup.pids
    }
    if soup.num_triangles == 0:
        return out
    frags = rasterize_triangles(viewport, soup.verts, budget)
    # Plain slicing instead of np.split: same views, far less per-piece
    # wrapper overhead when the soup holds tens of thousands of
    # triangles.
    bounds = np.concatenate([[0], np.cumsum(frags.counts)])
    iy = frags.iy
    ix = frags.ix
    tri_pid = soup.tri_pid
    for t in range(soup.num_triangles):
        lo = bounds[t]
        hi = bounds[t + 1]
        if hi > lo:
            out[int(tri_pid[t])].append((iy[lo:hi], ix[lo:hi]))
    return out


def accumulate_triangle_sums_batch(
    viewport: Viewport,
    channel: np.ndarray,
    tris: Sequence[np.ndarray],
    budget: int = DEFAULT_FRAGMENT_BUDGET,
) -> np.ndarray:
    """Batched counterpart of :func:`accumulate_triangle_sums`.

    Coverage comes from the batched rasterizer, but each triangle's
    reduction deliberately rebuilds the scalar path's ``(window, mask)``
    pair and reduces with ``np.sum(window, where=mask, dtype=float64)``.
    Summing gathered fragment values instead would walk the same pixels
    in the same order yet is *not* guaranteed bit-equal: NumPy's
    pairwise summation splits its tree by array layout, and a strided
    2-D ``where=`` reduction and a contiguous 1-D gather may associate
    partial sums differently.  Rebuilding the exact scalar reduction
    keeps the result bit-for-bit identical.
    """
    if not len(tris):
        return np.zeros(0, dtype=np.float64)
    verts = np.stack([np.asarray(t, dtype=np.float64) for t in tris])
    setup = setup_triangles(viewport, verts)
    frags = rasterize_triangles(viewport, verts, budget)
    splits = np.cumsum(frags.counts)[:-1]
    per_tri_iy = np.split(frags.iy, splits)
    per_tri_ix = np.split(frags.ix, splits)
    out = np.zeros(len(tris), dtype=np.float64)
    for t in range(len(tris)):
        if not frags.counts[t]:
            continue
        x0 = int(setup.x0[t])
        y0 = int(setup.y0[t])
        w = int(setup.w[t])
        h = int(setup.h[t])
        mask = np.zeros((h, w), dtype=bool)
        mask[per_tri_iy[t] - y0, per_tri_ix[t] - x0] = True
        window = channel[y0:y0 + h, x0:x0 + w]
        out[t] = float(np.sum(window, where=mask, dtype=np.float64))
    return out


def bin_polygons_to_tile(
    tile: Viewport, mbr_arrays: tuple[np.ndarray, ...]
) -> np.ndarray:
    """Vectorized polygon → tile bin pass over columnar MBRs.

    One boolean per polygon: does its bounding box intersect the tile's
    world window?  This replicates the scalar builders' per-polygon
    ``polygon.bbox.intersects(tile.bbox)`` gate (inclusive edges) in a
    single vectorized comparison, so batched builds select exactly the
    polygons the per-polygon loops would have rasterized.
    """
    xmin, xmax, ymin, ymax = mbr_arrays
    box = tile.bbox
    return (
        (xmax >= box.xmin) & (xmin <= box.xmax)
        & (ymax >= box.ymin) & (ymin <= box.ymax)
    )
