"""Supercover line rasterization for polygon outlines.

The accurate raster join (§4.3) needs the set of *all* pixels a polygon
boundary passes through — a conservative outline.  On NVIDIA hardware the
paper uses ``GL_NV_conservative_raster``; the portable fallback it mentions
(a thicker outline with discard) is what grid traversal gives us exactly:
:func:`supercover_line` walks every pixel a segment touches, including
corner-touch cases, using an Amanatides–Woo style DDA.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.graphics.viewport import Viewport


def supercover_line(
    ax: float, ay: float, bx: float, by: float,
    width: int, height: int,
) -> tuple[np.ndarray, np.ndarray]:
    """All pixels of a ``width x height`` grid touched by segment a-b.

    Coordinates are continuous pixel coordinates (pixel (i, j) spans
    ``[i, i+1) x [j, j+1)``).  The traversal is clipped to the grid.  When
    the segment passes exactly through a lattice corner, all four incident
    pixels are reported — strictly conservative, never missing a touched
    pixel (the property the boundary mask requires; extras are harmless).
    """
    cols: list[int] = []
    rows: list[int] = []

    def emit(ix: int, iy: int) -> None:
        if 0 <= ix < width and 0 <= iy < height:
            cols.append(ix)
            rows.append(iy)

    dx = bx - ax
    dy = by - ay

    # Exact traversal: collect the parameter values where the segment
    # crosses vertical (x = k) and horizontal (y = k) lattice lines, plus
    # the endpoints.  Between two consecutive parameters the segment stays
    # inside one pixel — recovered from the interval midpoint — and at each
    # crossing parameter the (up to four) pixels incident to the crossing
    # point are all touched, which handles exact corner hits.
    ts: list[float] = [0.0, 1.0]
    if dx != 0.0:
        lo = int(np.ceil(min(ax, bx)))
        hi = int(np.floor(max(ax, bx)))
        for k in range(lo, hi + 1):
            t = (k - ax) / dx
            if 0.0 <= t <= 1.0:
                ts.append(t)
    if dy != 0.0:
        lo = int(np.ceil(min(ay, by)))
        hi = int(np.floor(max(ay, by)))
        for k in range(lo, hi + 1):
            t = (k - ay) / dy
            if 0.0 <= t <= 1.0:
                ts.append(t)
    ts.sort()

    eps = 1e-9 * max(1.0, abs(ax), abs(ay), abs(bx), abs(by))
    for t in ts:
        x = ax + t * dx
        y = ay + t * dy
        for ix in {int(np.floor(x - eps)), int(np.floor(x + eps))}:
            for iy in {int(np.floor(y - eps)), int(np.floor(y + eps))}:
                emit(ix, iy)
    for t0, t1 in zip(ts, ts[1:]):
        if t1 - t0 <= 0.0:
            continue
        tm = 0.5 * (t0 + t1)
        emit(int(np.floor(ax + tm * dx)), int(np.floor(ay + tm * dy)))

    if not cols:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    flat = np.asarray(cols, dtype=np.int64) * height + np.asarray(rows, dtype=np.int64)
    flat = np.unique(flat)
    return flat // height, flat % height


def _ragged_crossings(
    a: np.ndarray, d: np.ndarray, b: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Per-edge lattice-crossing parameters along one axis, flattened.

    For every edge with start ``a``, delta ``d`` (end ``b = a + d``),
    returns ``(edge_id, t)`` for each integer lattice line ``k`` in
    ``[ceil(min(a, b)), floor(max(a, b))]`` with ``t = (k - a) / d``
    clamped to the segment — exactly the values the scalar
    :func:`supercover_line` loop produces, computed for all edges at
    once via a ragged ``arange``.
    """
    moving = d != 0.0
    lo = np.ceil(np.minimum(a, b))
    hi = np.floor(np.maximum(a, b))
    counts = np.where(moving, np.maximum(hi - lo + 1, 0), 0).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.float64)
    eid = np.repeat(np.arange(len(a), dtype=np.int64), counts)
    offsets = np.concatenate([[0], np.cumsum(counts)[:-1]])
    k = lo[eid] + (np.arange(total, dtype=np.int64) - np.repeat(offsets, counts))
    t = (k - a[eid]) / d[eid]
    keep = (t >= 0.0) & (t <= 1.0)
    return eid[keep], t[keep]


def _edges_touched_pixels(
    ax: np.ndarray, ay: np.ndarray, bx: np.ndarray, by: np.ndarray,
    owner: np.ndarray, width: int, height: int,
) -> tuple[np.ndarray, np.ndarray]:
    """Supercover pixels of many segments in one vectorized pass.

    ``owner[e]`` tags edge ``e`` (e.g. with its polygon id); returns
    ``(owner_of_pixel, flat_code)`` candidate arrays — in-bounds but not
    deduplicated — where ``flat_code = ix * height + iy``, the same
    flattening the scalar path uniques over.  All arithmetic (crossing
    parameters, the ±eps corner probes, interval midpoints) is the exact
    IEEE float64 expression sequence of :func:`supercover_line`, applied
    elementwise, so the candidate *set* per edge is identical.
    """
    dx = bx - ax
    dy = by - ay
    eps = 1e-9 * np.maximum.reduce(
        [np.ones_like(ax), np.abs(ax), np.abs(ay), np.abs(bx), np.abs(by)]
    )

    xe, xt = _ragged_crossings(ax, dx, bx)
    ye, yt = _ragged_crossings(ay, dy, by)
    ends = np.arange(len(ax), dtype=np.int64)
    eid = np.concatenate([ends, ends, xe, ye])
    ts = np.concatenate([
        np.zeros(len(ax)), np.ones(len(ax)), xt, yt,
    ])

    # Crossing-point probes: the four pixels incident to each crossing.
    x = ax[eid] + ts * dx[eid]
    y = ay[eid] + ts * dy[eid]
    e = eps[eid]
    fx0 = np.floor(x - e)
    fx1 = np.floor(x + e)
    fy0 = np.floor(y - e)
    fy1 = np.floor(y + e)
    # Most probe points straddle at most one lattice line, so of the
    # four corner combinations usually only one or two are distinct;
    # dropping the duplicates up front (it changes nothing after the
    # final unique) halves the dedup sort's input.
    dx_differs = fx1 != fx0
    dy_differs = fy1 != fy0
    both = dx_differs & dy_differs
    cand_e = np.concatenate(
        [eid, eid[dy_differs], eid[dx_differs], eid[both]]
    )
    cand_x = np.concatenate(
        [fx0, fx0[dy_differs], fx1[dx_differs], fx1[both]]
    )
    cand_y = np.concatenate(
        [fy0, fy1[dy_differs], fy0[dx_differs], fy1[both]]
    )

    # Interval midpoints: sort parameters per edge; every consecutive
    # pair with positive spacing contributes its midpoint pixel.  The
    # sorted parameter multiset matches the scalar per-edge sort, and
    # zero-length intervals are skipped either way.
    order = np.lexsort((ts, eid))
    ts_s = ts[order]
    eid_s = eid[order]
    pair = (eid_s[:-1] == eid_s[1:]) & (ts_s[1:] - ts_s[:-1] > 0.0)
    if pair.any():
        me = eid_s[:-1][pair]
        tm = 0.5 * (ts_s[:-1][pair] + ts_s[1:][pair])
        cand_e = np.concatenate([cand_e, me])
        cand_x = np.concatenate([cand_x, np.floor(ax[me] + tm * dx[me])])
        cand_y = np.concatenate([cand_y, np.floor(ay[me] + tm * dy[me])])

    inside = (
        (cand_x >= 0) & (cand_x < width) & (cand_y >= 0) & (cand_y < height)
    )
    ix = cand_x[inside].astype(np.int64)
    iy = cand_y[inside].astype(np.int64)
    return owner[cand_e[inside]], ix * height + iy


def _ring_edges(
    viewport: Viewport, rings: Iterable[np.ndarray]
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    """All ring edges as flat (ax, ay, bx, by) screen-coordinate arrays."""
    axs: list[np.ndarray] = []
    ays: list[np.ndarray] = []
    bxs: list[np.ndarray] = []
    bys: list[np.ndarray] = []
    for ring in rings:
        sx, sy = viewport.to_screen(ring[:, 0], ring[:, 1])
        axs.append(sx)
        ays.append(sy)
        bxs.append(np.roll(sx, -1))
        bys.append(np.roll(sy, -1))
    if not axs:
        empty = np.zeros(0, dtype=np.float64)
        return empty, empty, empty, empty
    return (
        np.concatenate(axs), np.concatenate(ays),
        np.concatenate(bxs), np.concatenate(bys),
    )


def outline_pixels(
    viewport: Viewport,
    rings: Iterable[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Conservative outline of a polygon: pixels touched by any ring edge.

    Returns deduplicated local (ix, iy) arrays.  This renders the paper's
    boundary FBO content for one polygon.  All edges are traversed in one
    vectorized pass (the flat-array convention of
    :mod:`repro.graphics.raster_batch`); the result is the same pixel set
    a per-edge :func:`supercover_line` loop produces, in the same sorted
    order (tested property).
    """
    ax, ay, bx, by = _ring_edges(viewport, rings)
    if not len(ax):
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    _, codes = _edges_touched_pixels(
        ax, ay, bx, by, np.zeros(len(ax), dtype=np.int64),
        viewport.width, viewport.height,
    )
    if not len(codes):
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    flat = _sorted_unique(codes)
    return flat // viewport.height, flat % viewport.height


def _sorted_unique(keys: np.ndarray) -> np.ndarray:
    """Sorted distinct values via an explicit sort + neighbor mask.

    Identical result to ``np.unique`` on 1-D integer input, but avoids
    its hash-based dedup path, which is far slower than one sort on the
    clustered (pid, pixel) key distributions the outline pass produces.
    """
    s = np.sort(keys)
    keep = np.empty(len(s), dtype=bool)
    keep[0] = True
    np.not_equal(s[1:], s[:-1], out=keep[1:])
    return s[keep]


def outline_pixels_many(
    viewport: Viewport,
    rings_by_pid: Mapping[int, Sequence[np.ndarray]],
) -> dict[int, tuple[np.ndarray, np.ndarray]]:
    """Outline pixels for many polygons from one vectorized edge pass.

    Returns ``pid -> (ix, iy)`` with an entry for every requested pid
    (empty arrays when the polygon touches no pixel), each identical to
    what :func:`outline_pixels` returns for that polygon alone: edges
    carry their owning polygon id through the flat candidate arrays and
    one sorted dedup over (pid, flat pixel) codes splits per polygon.
    """
    pids = sorted(rings_by_pid)
    empty = np.zeros(0, dtype=np.int64)
    out = {pid: (empty, empty) for pid in pids}
    if not pids:
        return out
    # Assemble every ring of every polygon into one flat vertex array,
    # project it with a single to_screen call, and close the rings with
    # a next-vertex permutation instead of per-ring rolls.
    ring_arrays: list[np.ndarray] = []
    ring_owner: list[int] = []
    for pid in pids:
        for ring in rings_by_pid[pid]:
            if len(ring):
                ring_arrays.append(np.asarray(ring, dtype=np.float64))
                ring_owner.append(pid)
    if not ring_arrays:
        return out
    lengths = np.asarray([len(r) for r in ring_arrays], dtype=np.int64)
    flat = np.concatenate(ring_arrays)
    sx, sy = viewport.to_screen(flat[:, 0], flat[:, 1])
    starts = np.concatenate([[0], np.cumsum(lengths)[:-1]])
    nxt = np.arange(len(flat), dtype=np.int64) + 1
    nxt[starts + lengths - 1] = starts
    owner = np.repeat(
        np.asarray(ring_owner, dtype=np.int64), lengths
    )
    owner_of, codes = _edges_touched_pixels(
        sx, sy, sx[nxt], sy[nxt],
        owner, viewport.width, viewport.height,
    )
    if not len(codes):
        return out
    span = viewport.width * viewport.height
    keyed = _sorted_unique(owner_of * span + codes)
    key_pid = keyed // span
    flat = keyed - key_pid * span
    starts = np.searchsorted(key_pid, np.asarray(pids, dtype=np.int64))
    stops = np.searchsorted(key_pid, np.asarray(pids, dtype=np.int64), "right")
    for pid, lo, hi in zip(pids, starts, stops):
        if hi > lo:
            part = flat[lo:hi]
            out[pid] = (part // viewport.height, part % viewport.height)
    return out
