"""Supercover line rasterization for polygon outlines.

The accurate raster join (§4.3) needs the set of *all* pixels a polygon
boundary passes through — a conservative outline.  On NVIDIA hardware the
paper uses ``GL_NV_conservative_raster``; the portable fallback it mentions
(a thicker outline with discard) is what grid traversal gives us exactly:
:func:`supercover_line` walks every pixel a segment touches, including
corner-touch cases, using an Amanatides–Woo style DDA.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.graphics.viewport import Viewport


def supercover_line(
    ax: float, ay: float, bx: float, by: float,
    width: int, height: int,
) -> tuple[np.ndarray, np.ndarray]:
    """All pixels of a ``width x height`` grid touched by segment a-b.

    Coordinates are continuous pixel coordinates (pixel (i, j) spans
    ``[i, i+1) x [j, j+1)``).  The traversal is clipped to the grid.  When
    the segment passes exactly through a lattice corner, all four incident
    pixels are reported — strictly conservative, never missing a touched
    pixel (the property the boundary mask requires; extras are harmless).
    """
    cols: list[int] = []
    rows: list[int] = []

    def emit(ix: int, iy: int) -> None:
        if 0 <= ix < width and 0 <= iy < height:
            cols.append(ix)
            rows.append(iy)

    dx = bx - ax
    dy = by - ay

    # Exact traversal: collect the parameter values where the segment
    # crosses vertical (x = k) and horizontal (y = k) lattice lines, plus
    # the endpoints.  Between two consecutive parameters the segment stays
    # inside one pixel — recovered from the interval midpoint — and at each
    # crossing parameter the (up to four) pixels incident to the crossing
    # point are all touched, which handles exact corner hits.
    ts: list[float] = [0.0, 1.0]
    if dx != 0.0:
        lo = int(np.ceil(min(ax, bx)))
        hi = int(np.floor(max(ax, bx)))
        for k in range(lo, hi + 1):
            t = (k - ax) / dx
            if 0.0 <= t <= 1.0:
                ts.append(t)
    if dy != 0.0:
        lo = int(np.ceil(min(ay, by)))
        hi = int(np.floor(max(ay, by)))
        for k in range(lo, hi + 1):
            t = (k - ay) / dy
            if 0.0 <= t <= 1.0:
                ts.append(t)
    ts.sort()

    eps = 1e-9 * max(1.0, abs(ax), abs(ay), abs(bx), abs(by))
    for t in ts:
        x = ax + t * dx
        y = ay + t * dy
        for ix in {int(np.floor(x - eps)), int(np.floor(x + eps))}:
            for iy in {int(np.floor(y - eps)), int(np.floor(y + eps))}:
                emit(ix, iy)
    for t0, t1 in zip(ts, ts[1:]):
        if t1 - t0 <= 0.0:
            continue
        tm = 0.5 * (t0 + t1)
        emit(int(np.floor(ax + tm * dx)), int(np.floor(ay + tm * dy)))

    if not cols:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    flat = np.asarray(cols, dtype=np.int64) * height + np.asarray(rows, dtype=np.int64)
    flat = np.unique(flat)
    return flat // height, flat % height


def outline_pixels(
    viewport: Viewport,
    rings: Iterable[np.ndarray],
) -> tuple[np.ndarray, np.ndarray]:
    """Conservative outline of a polygon: pixels touched by any ring edge.

    Returns deduplicated local (ix, iy) arrays.  This renders the paper's
    boundary FBO content for one polygon.
    """
    all_cols: list[np.ndarray] = []
    all_rows: list[np.ndarray] = []
    for ring in rings:
        sx, sy = viewport.to_screen(ring[:, 0], ring[:, 1])
        n = len(ring)
        for i in range(n):
            j = (i + 1) % n
            cols, rows = supercover_line(
                float(sx[i]), float(sy[i]), float(sx[j]), float(sy[j]),
                viewport.width, viewport.height,
            )
            if len(cols):
                all_cols.append(cols)
                all_rows.append(rows)
    if not all_cols:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=np.int64)
    cols = np.concatenate(all_cols)
    rows = np.concatenate(all_rows)
    flat = np.unique(cols * viewport.height + rows)
    return flat // viewport.height, flat % viewport.height
