"""Watertight triangle rasterization with integer edge functions.

This is the software stand-in for the hardware rasterizer the paper builds
on (Olano & Greer-style edge functions).  Two properties matter for the
raster join and both are reproduced exactly:

1. **Pixel-center coverage**: a pixel belongs to a triangle iff its center
   lies inside the triangle — the source of the bounded join's false
   negatives along polygon outlines.
2. **Watertightness**: pixel centers that fall exactly on an edge shared by
   two triangles are assigned to exactly one of them.  Like real GPUs, we
   achieve this by snapping vertices to a fixed sub-pixel grid
   (``SUBPIXEL_BITS`` fractional bits) and evaluating edge functions in
   64-bit integers, then breaking ``E == 0`` ties with a fill-rule that
   includes bottom and left edges.  The rule is chosen to agree with the
   half-open crossing-number convention used by
   :func:`repro.geometry.predicates.point_in_ring`, so "rasterize the
   triangulation" and "PIP-test the pixel center against the polygon"
   coincide.  (OpenGL's top-left rule is the same rule under a y-axis flip;
   only consistency matters.)

Without watertightness the polygon draw pass could double-count a pixel
whose center sits on an interior triangulation edge — corrupting the
aggregate — or drop it entirely.
"""

from __future__ import annotations

import numpy as np

from repro.graphics.viewport import Viewport

#: Fractional bits of the sub-pixel grid (real GPUs use 8 as well).
SUBPIXEL_BITS = 8
SUBPIXEL_SCALE = 1 << SUBPIXEL_BITS
_HALF = SUBPIXEL_SCALE // 2


def snap_to_subpixels(sx: np.ndarray, sy: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Snap continuous screen coordinates onto the sub-pixel integer grid."""
    fx = np.rint(np.asarray(sx, dtype=np.float64) * SUBPIXEL_SCALE).astype(np.int64)
    fy = np.rint(np.asarray(sy, dtype=np.float64) * SUBPIXEL_SCALE).astype(np.int64)
    return fx, fy


def _fill_rule_bias(dx: int, dy: int) -> int:
    """Bias for the E == 0 tie-break: 0 keeps the edge, -1 rejects it.

    For CCW triangles in our y-up screen space the *bottom* edges
    (``dy == 0 and dx > 0``) and *left* edges (``dy < 0``) own their pixels.
    For any directed edge and its reverse, exactly one gets bias 0 — that is
    the watertightness guarantee.
    """
    if dy < 0 or (dy == 0 and dx > 0):
        return 0
    return -1


def triangle_coverage_mask(
    viewport: Viewport, tri: np.ndarray
) -> tuple[int, int, np.ndarray]:
    """Rasterize one CCW triangle within a viewport.

    Parameters
    ----------
    viewport:
        The render target window.
    tri:
        ``(3, 2)`` world-space CCW vertices.

    Returns
    -------
    (x0, y0, mask):
        ``mask[j, i]`` is True when local pixel ``(x0 + i, y0 + j)`` is
        covered.  The mask spans only the triangle's clipped bounding box;
        it may be empty.
    """
    sx, sy = viewport.to_screen(tri[:, 0], tri[:, 1])
    fx, fy = snap_to_subpixels(sx, sy)

    # Signed doubled area in subpixel units; degenerate triangles produce
    # no fragments, matching hardware behaviour.
    area2 = (fx[1] - fx[0]) * (fy[2] - fy[0]) - (fy[1] - fy[0]) * (fx[2] - fx[0])
    if area2 == 0:
        return 0, 0, np.zeros((0, 0), dtype=bool)
    if area2 < 0:  # normalize to CCW
        fx = fx[::-1].copy()
        fy = fy[::-1].copy()

    # Clipped pixel bounding box of the snapped triangle.
    x0 = max(0, int((fx.min() - _HALF) // SUBPIXEL_SCALE))
    y0 = max(0, int((fy.min() - _HALF) // SUBPIXEL_SCALE))
    x1 = min(viewport.width - 1, int(fx.max() // SUBPIXEL_SCALE))
    y1 = min(viewport.height - 1, int(fy.max() // SUBPIXEL_SCALE))
    if x1 < x0 or y1 < y0:
        return 0, 0, np.zeros((0, 0), dtype=bool)

    # Pixel-center lattice in subpixel integer coordinates.
    cx = (np.arange(x0, x1 + 1, dtype=np.int64) * SUBPIXEL_SCALE) + _HALF
    cy = (np.arange(y0, y1 + 1, dtype=np.int64) * SUBPIXEL_SCALE) + _HALF
    gx = cx[None, :]
    gy = cy[:, None]

    mask = np.ones((y1 - y0 + 1, x1 - x0 + 1), dtype=bool)
    for e in range(3):
        ax, ay = int(fx[e]), int(fy[e])
        bx, by = int(fx[(e + 1) % 3]), int(fy[(e + 1) % 3])
        dx, dy = bx - ax, by - ay
        # Integer edge function: E > 0 strictly inside (CCW), E == 0 on the
        # edge line; the bias folds the fill rule into a single comparison.
        e_val = dx * (gy - ay) - dy * (gx - ax)
        mask &= e_val + _fill_rule_bias(dx, dy) >= 0
        if not mask.any():
            return 0, 0, np.zeros((0, 0), dtype=bool)
    return x0, y0, mask


def covered_pixels(
    viewport: Viewport, tri: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Local (ix, iy) index arrays of the pixels a triangle covers."""
    x0, y0, mask = triangle_coverage_mask(viewport, tri)
    if mask.size == 0:
        return (
            np.zeros(0, dtype=np.int64),
            np.zeros(0, dtype=np.int64),
        )
    ys, xs = np.nonzero(mask)
    return xs + x0, ys + y0


def accumulate_triangle_sums(
    viewport: Viewport,
    channel: np.ndarray,
    tri: np.ndarray,
) -> float:
    """Sum a channel over a triangle's covered pixels, reduced in float64.

    This is the fragment-shader body of the paper's DrawPolygons: for each
    fragment, fetch the point-FBO value at the fragment's pixel and add it
    to the polygon's result slot.
    """
    x0, y0, mask = triangle_coverage_mask(viewport, tri)
    if mask.size == 0:
        return 0.0
    window = channel[y0:y0 + mask.shape[0], x0:x0 + mask.shape[1]]
    return float(np.sum(window, where=mask, dtype=np.float64))
