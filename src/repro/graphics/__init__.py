"""Software rasterization pipeline with GPU-faithful semantics.

This package substitutes for the OpenGL pipeline used by the paper.  It
reproduces the semantics that the raster-join algorithms rely on:

* a viewport transform from world coordinates to a pixel grid
  (:mod:`repro.graphics.viewport`), including the multi-canvas tiling of the
  paper's Figure 5;
* framebuffer objects with additive blending
  (:mod:`repro.graphics.fbo`), the paper's point-count FBO;
* point, triangle, line, and polygon rasterization with pixel-center
  coverage and a watertight fill rule
  (:mod:`repro.graphics.raster_point` /:mod:`~repro.graphics.raster_triangle`
  /:mod:`~repro.graphics.raster_line` /:mod:`~repro.graphics.raster_polygon`);
* conservative rasterization (:mod:`repro.graphics.conservative`), standing
  in for ``GL_NV_conservative_raster``.

Like real hardware, the triangle rasterizer snaps vertices to a fixed
sub-pixel grid (1/256 of a pixel) and evaluates integer edge functions, so
adjacent triangles partition their shared edge exactly — the property that
makes the polygon draw pass of the raster join count every pixel exactly
once.
"""

from repro.graphics.viewport import Canvas, Viewport, resolution_for_epsilon
from repro.graphics.fbo import FrameBuffer
from repro.graphics.raster_point import rasterize_points
from repro.graphics.raster_triangle import (
    SUBPIXEL_BITS,
    covered_pixels,
    triangle_coverage_mask,
)
from repro.graphics.raster_line import supercover_line, outline_pixels
from repro.graphics.conservative import conservative_triangle_pixels
from repro.graphics.raster_polygon import scanline_polygon_pixels

__all__ = [
    "Canvas",
    "Viewport",
    "resolution_for_epsilon",
    "FrameBuffer",
    "rasterize_points",
    "SUBPIXEL_BITS",
    "covered_pixels",
    "triangle_coverage_mask",
    "supercover_line",
    "outline_pixels",
    "conservative_triangle_pixels",
    "scanline_polygon_pixels",
]
