"""Aggregate functions over the spatial join.

The paper supports distributive aggregates (count, sum, min, max) and
algebraic ones built from them (average) — §5.  Holistic aggregates
(median, ...) are out of scope by design: they cannot be computed from
per-pixel partial aggregates.

An :class:`Aggregate` describes (a) which FBO channels the point pass must
maintain and from which attribute column, (b) how fragments blend into a
channel (addition for count/sum, min/max for the order statistics), and
(c) how final per-polygon values emerge from the reduced channels.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.errors import QueryError


class Aggregate(ABC):
    """A distributive or algebraic aggregate function."""

    #: channel name -> attribute column (None means "the constant 1")
    channels: dict[str, str | None]
    #: "add", "min" or "max" — the FBO blend equation
    blend: str = "add"
    name: str = "agg"

    @property
    def columns(self) -> tuple[str, ...]:
        """Attribute columns this aggregate reads (transfer payload)."""
        return tuple(col for col in self.channels.values() if col is not None)

    def identity(self) -> float:
        """Neutral element for the blend equation."""
        if self.blend == "add":
            return 0.0
        return np.inf if self.blend == "min" else -np.inf

    def blend_into(self, accumulator: np.ndarray, ids: np.ndarray,
                   values: np.ndarray | float) -> None:
        """Scatter per-item values into result slots with the blend rule."""
        if self.blend == "add":
            np.add.at(accumulator, ids, values)
        elif self.blend == "min":
            np.minimum.at(accumulator, ids, values)
        else:
            np.maximum.at(accumulator, ids, values)

    def reduce_pixels(self, pixel_values: np.ndarray) -> float:
        """Combine one polygon's covered-pixel channel values."""
        if len(pixel_values) == 0:
            return self.identity()
        if self.blend == "add":
            return float(np.sum(pixel_values, dtype=np.float64))
        return float(np.min(pixel_values) if self.blend == "min" else np.max(pixel_values))

    def combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Merge partial results from two batches/tiles."""
        if self.blend == "add":
            return a + b
        return np.minimum(a, b) if self.blend == "min" else np.maximum(a, b)

    @abstractmethod
    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        """Per-polygon final values from the reduced channels."""

    def __repr__(self) -> str:
        cols = ", ".join(self.columns)
        return f"{type(self).__name__}({cols})"


class Count(Aggregate):
    """COUNT(*) — the paper's headline aggregate."""

    name = "count"

    def __init__(self) -> None:
        self.channels = {"count": None}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        return reduced["count"].astype(np.float64)


class Sum(Aggregate):
    """SUM(attribute)."""

    name = "sum"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Sum needs an attribute column")
        self.column = column
        self.channels = {"sum": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        return reduced["sum"].astype(np.float64)


class Average(Aggregate):
    """AVG(attribute) — algebraic: sum channel divided by count channel."""

    name = "avg"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Average needs an attribute column")
        self.column = column
        self.channels = {"sum": column, "count": None}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        counts = reduced["count"].astype(np.float64)
        sums = reduced["sum"].astype(np.float64)
        out = np.full(len(counts), np.nan, dtype=np.float64)
        nonzero = counts > 0
        out[nonzero] = sums[nonzero] / counts[nonzero]
        return out


class Min(Aggregate):
    """MIN(attribute) — distributive with a min blend equation.

    An extension beyond the paper's implementation (its §5 notes the
    approach applies to any distributive aggregate; the authors implement
    count/sum/avg).  Note the *bounded* engine makes min/max conservative
    rather than ε-bounded: a boundary pixel can pull in a neighbouring
    point's value.
    """

    name = "min"
    blend = "min"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Min needs an attribute column")
        self.column = column
        self.channels = {"min": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        out = reduced["min"].astype(np.float64)
        out[~np.isfinite(out)] = np.nan
        return out


class Max(Aggregate):
    """MAX(attribute) — see :class:`Min`."""

    name = "max"
    blend = "max"

    def __init__(self, column: str) -> None:
        if not column:
            raise QueryError("Max needs an attribute column")
        self.column = column
        self.channels = {"max": column}

    def finalize(self, reduced: dict[str, np.ndarray]) -> np.ndarray:
        out = reduced["max"].astype(np.float64)
        out[~np.isfinite(out)] = np.nan
        return out
